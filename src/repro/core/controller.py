"""The pluggable per-machine controller interface.

Every co-location controller in the repo — Rhythm's profiled
:class:`~repro.core.top_controller.TopController`, the Heracles baseline,
and the bake-off rivals under :mod:`repro.baselines` — follows the same
observe → decide → actuate loop: each control period it observes the
monitored LC load and window tail latency, decides one
:class:`~repro.core.actions.BeAction`, and the experiment harness
actuates that action through the machine's existing knobs (cpuset/CAT
via the CPU-LLC subcontroller, memory sizing, DVFS stepping).

:class:`ColocationController` is the extracted contract: subclasses
implement :meth:`_decide` only; the base class owns slack computation,
input validation and the timestamped decision history. Anything that
satisfies this interface can ride the shared-physics bake-off kernel
(:class:`repro.sim.kernel.BakeoffKernel`) or plug into a
:class:`~repro.experiments.colocation.ColocationExperiment` directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

from repro.core.actions import BeAction
from repro.errors import ControlError


class ColocationController(ABC):
    """One machine's decision loop behind a uniform interface.

    Parameters
    ----------
    servpod:
        Name of the Servpod this controller manages (for reporting).
    sla_ms:
        Tail-latency target from the SLA.

    Contract
    --------
    - :meth:`decide` is called once per control period with the same
      ``(load, tail_ms)`` pair every co-located controller sees; it must
      be deterministic in its inputs plus internal state and must not
      read or mutate machine state (actuation is the harness's job —
      that separation is what lets the bake-off kernel share one physics
      pass across controllers).
    - ``tail_ms == 0.0`` means the observation window carried no samples
      (the harness passes the previous action context through unchanged).
    """

    def __init__(self, servpod: str, sla_ms: float) -> None:
        if sla_ms <= 0:
            raise ControlError(f"SLA must be positive, got {sla_ms!r}")
        self.servpod = servpod
        self.sla_ms = float(sla_ms)
        self._history: List[Tuple[float, BeAction]] = []

    # -- the decision function ------------------------------------------

    def slack(self, tail_ms: float) -> float:
        """Latency slack; negative when the SLA is violated."""
        return (self.sla_ms - tail_ms) / self.sla_ms

    def decide(
        self, load: float, tail_ms: float, t: Optional[float] = None
    ) -> BeAction:
        """One control decision given the monitored load and tail."""
        if load < 0:
            raise ControlError(f"negative load {load!r}")
        action = self._decide(load, tail_ms)
        if t is not None:
            self._history.append((t, action))
        return action

    @abstractmethod
    def _decide(self, load: float, tail_ms: float) -> BeAction:
        """The controller-specific decision rule."""

    # -- introspection --------------------------------------------------

    @property
    def history(self) -> List[Tuple[float, BeAction]]:
        """Timestamped decisions (only recorded when ``t`` was passed)."""
        return list(self._history)

    def action_counts(self) -> dict:
        """How many times each action was taken."""
        counts = {action: 0 for action in BeAction}
        for _, action in self._history:
            counts[action] += 1
        return counts
