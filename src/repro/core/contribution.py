"""Tail-latency contribution analysis (§3.4, Equations 1–5).

Given solo-run profiling data — per-load mean sojourn times per Servpod
and per-load tail latencies — the analyzer derives each Servpod's
contribution to end-to-end tail latency:

- **Eq. 1**: ``P_i = T̄_i / Σ_k T̄_k`` — the mean-sojourn weight,
- **Eq. 2**: ``ρ_i`` — Pearson correlation between a Servpod's per-load
  mean sojourn and the per-load tail latency,
- **Eq. 3**: ``V_i = (1/T̄_i) sqrt( Σ_j (T_i^j − T̄_i)² / (m(m−1)) )`` —
  the normalized coefficient of variation across load levels,
- **Eq. 4**: ``C_i = ρ_i · P_i · V_i``,
- **Eq. 5**: for fan-out requests, Servpods off the critical path are
  scaled by ``α_i = Σ_{j∈¬R_i} T_j / Σ_{k∈R} T_k``, where ``¬R_i`` is the
  longest path *through i* among the non-critical paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ProfilingError
from repro.workloads.spec import CallNode, ServiceSpec


@dataclass(frozen=True)
class ServpodContribution:
    """One Servpod's contribution and its factors."""

    servpod: str
    mean_weight: float        # P_i (Eq. 1)
    correlation: float        # rho_i (Eq. 2)
    variation: float          # V_i (Eq. 3)
    alpha: float              # critical-path scaling (Eq. 5); 1 on the path
    contribution: float       # C_i

    @property
    def on_critical_path(self) -> bool:
        """True when the Servpod lies on the mean critical path."""
        return self.alpha >= 1.0


@dataclass
class ContributionResult:
    """Contributions of every Servpod of one service."""

    service: str
    contributions: Dict[str, ServpodContribution] = field(default_factory=dict)

    def contribution(self, servpod: str) -> float:
        """C_i of one Servpod."""
        try:
            return self.contributions[servpod].contribution
        except KeyError:
            raise ProfilingError(
                f"{self.service}: no contribution for Servpod {servpod!r}"
            ) from None

    def normalized(self) -> Dict[str, float]:
        """Contributions normalized to sum to 1 (Algorithm 1's input)."""
        total = sum(c.contribution for c in self.contributions.values())
        if total <= 0:
            raise ProfilingError(f"{self.service}: total contribution is zero")
        return {
            name: c.contribution / total for name, c in self.contributions.items()
        }

    def ranked(self) -> List[ServpodContribution]:
        """Contributions sorted descending."""
        return sorted(
            self.contributions.values(), key=lambda c: c.contribution, reverse=True
        )


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (Eq. 2); 0 when degenerate."""
    if len(xs) != len(ys):
        raise ProfilingError(f"length mismatch {len(xs)} vs {len(ys)}")
    m = len(xs)
    if m < 2:
        raise ProfilingError("Pearson correlation needs at least two load points")
    mean_x = sum(xs) / m
    mean_y = sum(ys) / m
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    denom = math.sqrt(var_x) * math.sqrt(var_y)
    if denom == 0:
        return 0.0
    return cov / denom


class ContributionAnalyzer:
    """Computes Equations 1–5 from profiling sweeps."""

    def __init__(self, service: ServiceSpec) -> None:
        self.service = service

    def analyze(
        self,
        mean_sojourns: Dict[str, Sequence[float]],
        tail_latencies: Sequence[float],
    ) -> ContributionResult:
        """Derive contributions from a solo-run load sweep.

        Parameters
        ----------
        mean_sojourns:
            ``{servpod: [T_i^1 .. T_i^m]}`` — mean sojourn (ms) per load
            level, one entry per Servpod, all of equal length ``m``.
        tail_latencies:
            ``[T_tail^1 .. T_tail^m]`` — tail latency per load level.
        """
        pods = self.service.servpod_names
        m = len(tail_latencies)
        if m < 2:
            raise ProfilingError("contribution analysis needs >= 2 load levels")
        for pod in pods:
            if pod not in mean_sojourns:
                raise ProfilingError(f"missing sojourn sweep for Servpod {pod!r}")
            if len(mean_sojourns[pod]) != m:
                raise ProfilingError(
                    f"Servpod {pod!r}: {len(mean_sojourns[pod])} load points, "
                    f"tail has {m}"
                )

        t_bar = {pod: sum(mean_sojourns[pod]) / m for pod in pods}
        t_total = sum(t_bar.values())
        if t_total <= 0:
            raise ProfilingError("all mean sojourns are zero")

        alphas = self._critical_path_alphas(t_bar)

        result = ContributionResult(service=self.service.name)
        for pod in pods:
            series = list(mean_sojourns[pod])
            p_i = t_bar[pod] / t_total  # Eq. 1
            rho = pearson(series, list(tail_latencies))  # Eq. 2
            sq = sum((x - t_bar[pod]) ** 2 for x in series)
            v_i = (
                math.sqrt(sq / (m * (m - 1))) / t_bar[pod] if t_bar[pod] > 0 else 0.0
            )  # Eq. 3
            alpha = alphas[pod]
            c_i = max(0.0, alpha * rho * p_i * v_i)  # Eq. 4 / Eq. 5
            result.contributions[pod] = ServpodContribution(
                servpod=pod,
                mean_weight=p_i,
                correlation=rho,
                variation=v_i,
                alpha=alpha,
                contribution=c_i,
            )
        return result

    # -- critical-path analysis (Eq. 5) ---------------------------------------

    def _critical_path_alphas(self, t_bar: Dict[str, float]) -> Dict[str, float]:
        """α_i per Servpod from the weighted union of request-type paths.

        Paths are enumerated per request type; the critical path R is the
        one with the largest total mean sojourn across all types. A
        Servpod on R keeps α=1; one off R is scaled by its longest
        non-critical path over R's length.
        """
        paths: List[Tuple[str, ...]] = []
        for rtype in self.service.request_types:
            paths.extend(enumerate_paths(rtype.root))
        if not paths:
            raise ProfilingError("service has no request paths")

        def length(path: Tuple[str, ...]) -> float:
            return sum(t_bar.get(pod, 0.0) for pod in path)

        critical = max(paths, key=length)
        critical_len = length(critical)
        critical_set = set(critical)
        alphas: Dict[str, float] = {}
        for pod in self.service.servpod_names:
            if pod in critical_set or critical_len <= 0:
                alphas[pod] = 1.0
                continue
            through = [p for p in paths if pod in p]
            if not through:
                alphas[pod] = 1.0  # unreachable pod; don't scale blindly
                continue
            longest = max(length(p) for p in through)
            alphas[pod] = min(1.0, longest / critical_len)
        return alphas


def enumerate_paths(node: CallNode) -> List[Tuple[str, ...]]:
    """All root-to-completion paths of a call tree, at Servpod granularity.

    Sequential children all lie on the same path; parallel children fork
    alternative paths (the end-to-end latency is the max over them).
    """
    if not node.children:
        return [(node.servpod,)]
    child_paths: List[List[Tuple[str, ...]]] = [
        enumerate_paths(child) for child in node.children
    ]
    if node.parallel:
        out = []
        for alternatives in child_paths:
            for path in alternatives:
                out.append((node.servpod,) + path)
        return out
    # Sequential: concatenate one alternative from each child, in order.
    combos: List[Tuple[str, ...]] = [()]
    for alternatives in child_paths:
        combos = [prefix + path for prefix in combos for path in alternatives]
    return [(node.servpod,) + combo for combo in combos]
