"""The five BE control actions (§3.5.2).

Ordered from most to least aggressive toward BE jobs:

1. **StopBE** — kill all running BE jobs, release every resource.
2. **SuspendBE** — pause all BE jobs; they keep their memory.
3. **CutBE** — keep BE jobs running but claw back some resources.
4. **DisallowBEGrowth** — freeze: no new BE jobs or resources, existing
   jobs keep running.
5. **AllowBEGrowth** — launch more BE jobs / grant more resources.
"""

from __future__ import annotations

import enum


class BeAction(enum.Enum):
    """A top-controller decision for one control interval."""

    STOP_BE = "StopBE"
    SUSPEND_BE = "SuspendBE"
    CUT_BE = "CutBE"
    DISALLOW_BE_GROWTH = "DisallowBEGrowth"
    ALLOW_BE_GROWTH = "AllowBEGrowth"

    @property
    def severity(self) -> int:
        """Aggressiveness toward BE jobs: higher = harsher."""
        order = {
            BeAction.ALLOW_BE_GROWTH: 0,
            BeAction.DISALLOW_BE_GROWTH: 1,
            BeAction.CUT_BE: 2,
            BeAction.SUSPEND_BE: 3,
            BeAction.STOP_BE: 4,
        }
        return order[self]

    def harsher_than(self, other: "BeAction") -> bool:
        """True when this action restricts BE jobs more than ``other``."""
        return self.severity > other.severity
