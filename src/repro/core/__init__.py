"""Rhythm's core: Servpods, contribution analysis, thresholds, control.

This package is the paper's contribution proper:

- :mod:`repro.core.servpod` — the Servpod abstraction and deployment,
- :mod:`repro.core.contribution` — tail-latency contribution analysis
  (Equations 1–5, including critical-path scaling for fan-out),
- :mod:`repro.core.loadlimit` — the CoV-crossing loadlimit rule (Fig. 8),
- :mod:`repro.core.slacklimit` — Algorithm 1 (findSlacklimit),
- :mod:`repro.core.actions` — the five BE control actions,
- :mod:`repro.core.top_controller` — Algorithm 2's decision loop,
- :mod:`repro.core.subcontrollers` — CPU/LLC, frequency, memory and
  network subcontrollers,
- :mod:`repro.core.profiler` — offline solo-run profiling,
- :mod:`repro.core.rhythm` — the facade wiring everything together.
"""

from repro.core.servpod import Servpod, ServpodDeployment, deploy_service
from repro.core.contribution import (
    ContributionAnalyzer,
    ContributionResult,
    ServpodContribution,
)
from repro.core.loadlimit import derive_loadlimit
from repro.core.slacklimit import find_slacklimits
from repro.core.actions import BeAction
from repro.core.top_controller import ControllerThresholds, TopController
from repro.core.subcontrollers import (
    CpuLlcSubcontroller,
    FrequencySubcontroller,
    MemorySubcontroller,
    NetworkSubcontroller,
)
from repro.core.profiler import ProfilingResult, ServiceProfiler
from repro.core.rhythm import Rhythm, RhythmConfig

__all__ = [
    "Servpod",
    "ServpodDeployment",
    "deploy_service",
    "ContributionAnalyzer",
    "ContributionResult",
    "ServpodContribution",
    "derive_loadlimit",
    "find_slacklimits",
    "BeAction",
    "ControllerThresholds",
    "TopController",
    "CpuLlcSubcontroller",
    "FrequencySubcontroller",
    "MemorySubcontroller",
    "NetworkSubcontroller",
    "ProfilingResult",
    "ServiceProfiler",
    "Rhythm",
    "RhythmConfig",
]
