"""The Servpod abstraction (§3.1).

A Servpod is the set of one LC service's components deployed together on
one physical machine — the unit at which Rhythm differentiates BE
deployment. :class:`Servpod` binds a
:class:`~repro.workloads.spec.ServpodSpec` to a
:class:`~repro.cluster.machine.Machine`; :func:`deploy_service` builds
the one-Servpod-per-machine deployment the paper uses (the number of
Servpods equals the number of deployed machines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine, MachineSpec
from repro.errors import ConfigurationError
from repro.interference.model import InterferenceModel, Pressure
from repro.interference.sensitivity import SensitivityVector
from repro.workloads.spec import ServiceSpec, ServpodSpec


@dataclass
class Servpod:
    """One Servpod bound to its machine."""

    spec: ServpodSpec
    machine: Machine

    @property
    def name(self) -> str:
        """The Servpod's name."""
        return self.spec.name

    def reserve(self) -> None:
        """Pin the Servpod's cores, LLC partition and memory."""
        self.machine.reserve_lc(
            cores=self.spec.cores,
            llc_ways=self.spec.llc_ways,
            memory_gb=self.spec.memory_gb,
        )

    def effective_sensitivity(self) -> SensitivityVector:
        """Base-latency-weighted mean sensitivity of member components.

        Components sharing a machine see the same pressure; their
        slowdowns combine in proportion to how much latency each
        contributes, which the base medians approximate.
        """
        total = sum(c.base_ms for c in self.spec.components)
        if total <= 0:
            raise ConfigurationError(f"Servpod {self.name!r} has zero base latency")
        acc = {"cpu": 0.0, "llc": 0.0, "membw": 0.0, "net": 0.0, "freq": 0.0}
        for comp in self.spec.components:
            weight = comp.base_ms / total
            for kind in acc:
                acc[kind] += weight * comp.sensitivity.coefficient(kind)
        return SensitivityVector(**acc)

    def slowdown(
        self, pressure: Pressure, load: float, model: InterferenceModel
    ) -> float:
        """This Servpod's sojourn slowdown under ``pressure`` at ``load``."""
        return model.slowdown(self.effective_sensitivity(), pressure, load)


@dataclass
class ServpodDeployment:
    """An LC service deployed one-Servpod-per-machine on a cluster."""

    service: ServiceSpec
    cluster: Cluster
    servpods: Dict[str, Servpod]

    def servpod(self, name: str) -> Servpod:
        """Look up a deployed Servpod by name."""
        try:
            return self.servpods[name]
        except KeyError:
            raise ConfigurationError(
                f"{self.service.name}: no deployed Servpod {name!r}"
            ) from None

    def machines(self) -> List[Machine]:
        """The deployment's machines, in Servpod declaration order."""
        return [self.servpods[name].machine for name in self.service.servpod_names]


def deploy_service(
    service: ServiceSpec,
    base_machine: Optional[MachineSpec] = None,
) -> ServpodDeployment:
    """Deploy ``service`` with one Servpod per (fresh) machine.

    Machines are named after their Servpod, matching how the evaluation
    figures label panels ("Tomcat/E-commerce" = the Tomcat machine of the
    E-commerce deployment).
    """
    base = base_machine or MachineSpec()
    machines = []
    servpods: Dict[str, Servpod] = {}
    for pod_spec in service.servpods:
        spec = MachineSpec(
            name=pod_spec.name,
            cores=base.cores,
            llc_mb=base.llc_mb,
            llc_ways=base.llc_ways,
            membw_gbps=base.membw_gbps,
            memory_gb=base.memory_gb,
            link_gbps=base.link_gbps,
            tdp_watts=base.tdp_watts,
            min_mhz=base.min_mhz,
            max_mhz=base.max_mhz,
        )
        machine = Machine(spec)
        pod = Servpod(spec=pod_spec, machine=machine)
        pod.reserve()
        machines.append(machine)
        servpods[pod_spec.name] = pod
    return ServpodDeployment(
        service=service, cluster=Cluster(machines), servpods=servpods
    )
