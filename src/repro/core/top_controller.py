"""The per-machine top controller — Algorithm 2.

Every machine hosting a Servpod runs one top controller. Each control
period (2 seconds in the paper) it computes the latency slack::

    slack = (T_SLA − T_tail) / T_SLA

and picks one of the five actions::

    slack < 0                         -> StopBE
    load  > loadlimit                 -> SuspendBE
    0 < slack < slacklimit/2          -> CutBE
    slacklimit/2 < slack < slacklimit -> DisallowBEGrowth
    otherwise                         -> AllowBEGrowth

Controllers never talk to each other after thresholding, which is what
makes Rhythm scale with the number of Servpods.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actions import BeAction
from repro.core.controller import ColocationController
from repro.errors import ControlError

#: The paper's control period in seconds.
CONTROL_PERIOD_S = 2.0


@dataclass(frozen=True)
class ControllerThresholds:
    """The two per-Servpod thresholds the controller runs on."""

    loadlimit: float
    slacklimit: float

    def __post_init__(self) -> None:
        if not (0.0 < self.loadlimit <= 1.0):
            raise ControlError(f"loadlimit must be in (0,1], got {self.loadlimit!r}")
        if not (0.0 < self.slacklimit <= 1.0):
            raise ControlError(f"slacklimit must be in (0,1], got {self.slacklimit!r}")


class TopController(ColocationController):
    """Algorithm 2's decision loop for one machine.

    Parameters
    ----------
    servpod:
        Name of the Servpod this controller manages (for reporting).
    thresholds:
        The machine's loadlimit and slacklimit.
    sla_ms:
        Tail-latency target from the SLA.
    suspend_on_load_at_or_above:
        When ``True`` the load check uses ``load >= loadlimit`` instead
        of the paper's strict ``>``. Heracles' description ("disables BE
        jobs whenever the load exceeds 85%") is reproduced with 0.85 and
        this flag set, so BE co-location is zero at the 85% grid point of
        Figures 9-11 exactly as in the paper.
    """

    def __init__(
        self,
        servpod: str,
        thresholds: ControllerThresholds,
        sla_ms: float,
        suspend_on_load_at_or_above: bool = False,
    ) -> None:
        super().__init__(servpod, sla_ms)
        self.thresholds = thresholds
        self.suspend_on_load_at_or_above = suspend_on_load_at_or_above

    # -- the decision function (Algorithm 2) ------------------------------------

    def _decide(self, load: float, tail_ms: float) -> BeAction:
        """One Algorithm-2 decision given the monitored load and tail."""
        slack = self.slack(tail_ms)
        limit = self.thresholds
        if slack < 0:
            return BeAction.STOP_BE
        if self._load_exceeds(load):
            return BeAction.SUSPEND_BE
        if 0 <= slack < limit.slacklimit / 2.0:
            return BeAction.CUT_BE
        if slack < limit.slacklimit:
            return BeAction.DISALLOW_BE_GROWTH
        return BeAction.ALLOW_BE_GROWTH

    def _load_exceeds(self, load: float) -> bool:
        if self.suspend_on_load_at_or_above:
            return load >= self.thresholds.loadlimit
        return load > self.thresholds.loadlimit
