"""Loadlimit derivation (§3.5.1, Figure 8).

The loadlimit of a Servpod is the request-load "switch" above which no BE
jobs may run on its machine. The paper derives it from the solo-run CoV
of sojourn times across requests at each load level: *the first load
point whose fluctuation (CoV) is greater than the average CoV across all
load points* (MySQL ≈ 0.76, Tomcat ≈ 0.87 in the E-commerce website).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ProfilingError


def sojourn_mean_cov(values: Sequence[float]) -> tuple:
    """``(mean, CoV)`` of one Servpod's sojourn samples at one load.

    The CoV uses the sample standard deviation (ddof=1) — the statistic
    the Figure 8 rule thresholds on — and degenerates to 0 for a single
    sample or a zero mean. Shared by the serial profiler sweep and the
    parallel per-load-point tasks so both compute the exact same curve.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ProfilingError("cannot compute a CoV from zero sojourn samples")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return mean, (std / mean if mean > 0 else 0.0)


def derive_loadlimit(
    loads: Sequence[float],
    covs: Sequence[float],
    smoothing_window: int = 3,
) -> float:
    """The first load whose CoV exceeds the average CoV.

    Parameters
    ----------
    loads:
        Load fractions of the profiling sweep, strictly increasing.
    covs:
        Measured sojourn-time CoV at each load.
    smoothing_window:
        Odd moving-average window applied to the CoV curve before
        thresholding, to keep finite-sample noise from triggering an
        early crossing. 1 disables smoothing.

    Returns
    -------
    float
        The loadlimit. Falls back to the last load point if the curve
        never crosses its mean (a pathologically flat Servpod tolerates
        BE jobs at any load).
    """
    if len(loads) != len(covs):
        raise ProfilingError(f"length mismatch: {len(loads)} loads, {len(covs)} covs")
    if len(loads) < 3:
        raise ProfilingError("loadlimit derivation needs >= 3 load points")
    loads_arr = np.asarray(loads, dtype=float)
    if np.any(np.diff(loads_arr) <= 0):
        raise ProfilingError("loads must be strictly increasing")
    covs_arr = np.asarray(covs, dtype=float)
    if np.any(covs_arr < 0):
        raise ProfilingError("CoV values must be >= 0")
    smooth = _moving_average(covs_arr, smoothing_window)
    mean_cov = float(smooth.mean())
    above = np.nonzero(smooth > mean_cov)[0]
    if len(above) == 0:
        return float(loads_arr[-1])
    return float(loads_arr[above[0]])


def _moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge truncation."""
    if window <= 1:
        return values
    if window % 2 == 0:
        raise ProfilingError(f"smoothing window must be odd, got {window}")
    half = window // 2
    out = np.empty_like(values, dtype=float)
    n = len(values)
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        out[i] = values[lo:hi].mean()
    return out


def loadlimit_table(
    loads: Sequence[float],
    covs_by_servpod: dict,
    smoothing_window: int = 3,
) -> dict:
    """Derive loadlimits for several Servpods at once."""
    return {
        pod: derive_loadlimit(loads, covs, smoothing_window)
        for pod, covs in covs_by_servpod.items()
    }
