"""The Rhythm facade: "profiling LC once, feedback control BE".

:class:`Rhythm` wires the whole §3 pipeline for one LC service:

1. profile the solo run (request tracer → sojourn statistics),
2. analyze contributions (Eq. 1–5),
3. derive per-Servpod thresholds — loadlimit from the CoV rule and
   slacklimit from Algorithm 1 (with a pluggable SLA probe; without one,
   the analytic first-step values, i.e. normalized contributions, are
   used — see :func:`repro.core.slacklimit.expected_first_step`),
4. hand out one configured :class:`~repro.core.top_controller.TopController`
   per machine.

The runtime co-location loop that drives these controllers lives in
:mod:`repro.experiments.colocation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.contribution import ContributionResult
from repro.core.profiler import DEFAULT_LOADS, ProfilingResult, ServiceProfiler
from repro.core.slacklimit import (
    MIN_SLACKLIMIT,
    SlaProbe,
    find_slacklimits_independent,
    violation_free_fixed_point,
)
from repro.core.top_controller import ControllerThresholds, TopController
from repro.errors import ProfilingError
from repro.sim.rng import RandomStreams
from repro.workloads.spec import ServiceSpec


@dataclass
class RhythmConfig:
    """Tunables of the Rhythm pipeline."""

    #: Profiling load grid.
    loads: Sequence[float] = DEFAULT_LOADS
    #: Requests traced per load level.
    requests_per_load: int = 300
    #: Samples used for each load level's tail estimate.
    tail_samples: int = 2500
    #: Profiling collection mode: "tracer", "jaeger" or "direct".
    profiling_mode: str = "tracer"
    #: Maximum BE instances per machine.
    max_be_instances: int = 16
    #: Floor applied to derived slacklimits.
    min_slacklimit: float = MIN_SLACKLIMIT


class Rhythm:
    """Profile-once / feedback-control pipeline for one LC service."""

    def __init__(
        self,
        service: ServiceSpec,
        streams: Optional[RandomStreams] = None,
        config: Optional[RhythmConfig] = None,
    ) -> None:
        self.spec = service
        self.streams = streams or RandomStreams(0)
        self.config = config or RhythmConfig()
        self._profiler = ServiceProfiler(
            service,
            streams=self.streams,
            loads=self.config.loads,
            requests_per_load=self.config.requests_per_load,
            tail_samples=self.config.tail_samples,
            mode=self.config.profiling_mode,
        )
        self._profile: Optional[ProfilingResult] = None
        self._contributions: Optional[ContributionResult] = None
        self._loadlimits: Optional[Dict[str, float]] = None
        self._slacklimits: Optional[Dict[str, float]] = None

    # -- pipeline stages -------------------------------------------------

    def profile(self) -> ProfilingResult:
        """Stage 1: the (cached) solo-run profiling sweep."""
        if self._profile is None:
            self._profile = self._profiler.profile()
        return self._profile

    def contributions(self) -> ContributionResult:
        """Stage 2: (cached) contribution analysis."""
        if self._contributions is None:
            self._contributions = self._profiler.contributions(self.profile())
        return self._contributions

    def loadlimits(self) -> Dict[str, float]:
        """Stage 3a: (cached) per-Servpod loadlimits."""
        if self._loadlimits is None:
            self._loadlimits = self._profiler.loadlimits(self.profile())
        return self._loadlimits

    def slacklimits(self, sla_probe: Optional[SlaProbe] = None) -> Dict[str, float]:
        """Stage 3b: per-Servpod slacklimits.

        With a probe, runs Algorithm 1 against it (one walk per Servpod,
        others conservative); without, uses the analytic violation-free
        fixed point, which equals Algorithm 1's outcome whenever the
        probe never reports a violation.
        """
        if self._slacklimits is None:
            contributions = {
                pod: c.contribution
                for pod, c in self.contributions().contributions.items()
            }
            if sla_probe is not None:
                limits = find_slacklimits_independent(contributions, sla_probe)
            else:
                limits = violation_free_fixed_point(contributions)
            floor = self.config.min_slacklimit
            self._slacklimits = {
                pod: max(floor, min(1.0, value)) for pod, value in limits.items()
            }
        return self._slacklimits

    # -- controller construction ---------------------------------------------

    def thresholds(self, servpod: str) -> ControllerThresholds:
        """The derived thresholds of one Servpod."""
        loadlimits = self.loadlimits()
        slacklimits = self.slacklimits()
        if servpod not in loadlimits or servpod not in slacklimits:
            raise ProfilingError(f"{self.spec.name}: unknown Servpod {servpod!r}")
        return ControllerThresholds(
            loadlimit=loadlimits[servpod], slacklimit=slacklimits[servpod]
        )

    def controllers(self) -> Dict[str, TopController]:
        """Stage 4: one configured top controller per Servpod machine."""
        return {
            pod: TopController(
                servpod=pod,
                thresholds=self.thresholds(pod),
                sla_ms=self.spec.sla_ms,
            )
            for pod in self.spec.servpod_names
        }

    def set_slacklimits(self, limits: Dict[str, float]) -> None:
        """Override derived slacklimits (used by the Figure 18 sweeps)."""
        unknown = set(limits) - set(self.spec.servpod_names)
        if unknown:
            raise ProfilingError(f"unknown Servpods {sorted(unknown)}")
        merged = dict(self.slacklimits())
        merged.update(limits)
        self._slacklimits = merged

    def set_loadlimits(self, limits: Dict[str, float]) -> None:
        """Override derived loadlimits (used by the Figure 18 sweeps)."""
        unknown = set(limits) - set(self.spec.servpod_names)
        if unknown:
            raise ProfilingError(f"unknown Servpods {sorted(unknown)}")
        merged = dict(self.loadlimits())
        merged.update(limits)
        self._loadlimits = merged
