"""Offline solo-run profiling (§3.2: "profiling LC once").

The profiler drives the LC service alone (no BE jobs) across a load
sweep, collecting per-Servpod sojourn statistics and end-to-end tail
latencies — everything the contribution analyzer and both thresholding
rules need. Per the paper this happens once per service, alongside the
pre-launch stress test, so its cost is linear in the number of Servpods.

Three collection modes:

- ``"tracer"`` — the full non-intrusive pipeline: emit kernel events for
  every profiled request, filter, match causality, reconstruct CPGs and
  read sojourns off them (the default, and what the paper's prototype
  does with SystemTap);
- ``"jaeger"`` — application-level tracing for microservice workloads
  that ship their own tracer (SNMS);
- ``"direct"`` — sample sojourns straight from the generative model
  (fast path for large benchmark grids; statistically identical).

Each load point of the sweep is profiled by :func:`profile_load_point`,
a pure function of ``(spec, load, root seed, sampling parameters)``
whose randomness comes from a child stream registry derived from those
coordinates alone. Load points are therefore mutually independent —
re-running one load re-draws exactly its own samples — which is what
lets :mod:`repro.parallel.profile` fan the sweep out across a process
pool and cache it at load-point granularity while staying bit-identical
to this serial sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.contribution import ContributionAnalyzer, ContributionResult
from repro.core.loadlimit import loadlimit_table, sojourn_mean_cov
from repro.errors import ProfilingError
from repro.sim.rng import RandomStreams
from repro.tracing.causality import CausalityMatcher
from repro.tracing.emitter import EmitterConfig, TraceEmitter, default_endpoints
from repro.tracing.jaeger import JaegerTracer
from repro.tracing.sojourn import SojournExtractor
from repro.workloads.service import Service
from repro.workloads.spec import ServiceSpec

#: Default profiling load grid: 2%..100% in 2% steps (the paper sweeps a
#: "broad spectrum of access loads"; Figure 8's crossings are at 1% grain).
DEFAULT_LOADS = tuple(round(0.02 * i, 2) for i in range(1, 51))

_MODES = ("tracer", "jaeger", "direct")


@dataclass
class ProfilingResult:
    """Solo-run sweep statistics for one LC service."""

    service: str
    loads: List[float]
    #: {servpod: [mean sojourn (ms) at each load]}
    mean_sojourns: Dict[str, List[float]] = field(default_factory=dict)
    #: {servpod: [sojourn CoV across requests at each load]}
    covs: Dict[str, List[float]] = field(default_factory=dict)
    #: tail latency (ms) at each load
    tails: List[float] = field(default_factory=list)

    def mean_sojourn(self, servpod: str, load_index: int) -> float:
        """T_i^j for one Servpod and load index."""
        return self.mean_sojourns[servpod][load_index]

    @classmethod
    def from_points(
        cls, service: str, points: Sequence["LoadPointProfile"]
    ) -> "ProfilingResult":
        """Assemble a sweep result from independent load-point profiles.

        ``points`` must be in ascending-load (sweep) order; this is the
        inverse of running :func:`profile_load_point` per load.
        """
        result = cls(service=service, loads=[p.load for p in points])
        if not points:
            return result
        pods = [pod for pod, _ in points[0].mean_sojourns]
        result.mean_sojourns = {pod: [] for pod in pods}
        result.covs = {pod: [] for pod in pods}
        for point in points:
            means = dict(point.mean_sojourns)
            covs = dict(point.covs)
            for pod in pods:
                result.mean_sojourns[pod].append(means[pod])
                result.covs[pod].append(covs[pod])
            result.tails.append(point.tail_ms)
        return result


@dataclass(frozen=True)
class LoadPointProfile:
    """One load point's sweep statistics (the unit of sub-profile caching).

    Mappings are sorted ``(servpod, value)`` tuples so the profile is
    hashable, picklable and deterministic to serialise — the same
    conventions as :class:`~repro.parallel.artifact.RhythmArtifact`.
    """

    service: str
    load: float
    mean_sojourns: Tuple[Tuple[str, float], ...]
    covs: Tuple[Tuple[str, float], ...]
    tail_ms: float


def load_point_streams(spec_name: str, load: float, root_seed: int) -> RandomStreams:
    """The stream registry of one ``(service, load, seed)`` sweep point.

    Derived from the coordinates alone, so any process (or cached
    re-run) profiling this point draws exactly the same samples.
    """
    return RandomStreams(root_seed).spawn(f"profile:{spec_name}:{load!r}")


def profile_load_point(
    spec: ServiceSpec,
    load: float,
    root_seed: int = 0,
    requests_per_load: int = 300,
    tail_samples: int = 2500,
    mode: str = "tracer",
    noise_per_request: float = 2.0,
) -> LoadPointProfile:
    """Profile one load point of the solo-run sweep (pure, independent).

    Collects per-Servpod sojourn statistics (via the chosen collection
    mode) and the end-to-end tail at ``load``, drawing only from this
    point's own :func:`load_point_streams` registry.
    """
    if mode not in _MODES:
        raise ProfilingError(f"unknown profiling mode {mode!r}; pick from {_MODES}")
    streams = load_point_streams(spec.name, load, root_seed)
    service = Service(spec, streams)
    per_pod = _collect_sojourns(
        spec, service, streams, load, requests_per_load, mode, noise_per_request
    )
    means: List[Tuple[str, float]] = []
    covs: List[Tuple[str, float]] = []
    for pod in spec.servpod_names:
        values = per_pod.get(pod, [])
        if not values:
            raise ProfilingError(
                f"{spec.name}: no sojourns observed at {pod!r} (load {load})"
            )
        mean, cov = sojourn_mean_cov(values)
        means.append((pod, mean))
        covs.append((pod, cov))
    tail = service.tail_latency(load, tail_samples)
    return LoadPointProfile(
        service=spec.name,
        load=float(load),
        mean_sojourns=tuple(means),
        covs=tuple(covs),
        tail_ms=tail,
    )


def _collect_sojourns(
    spec: ServiceSpec,
    service: Service,
    streams: RandomStreams,
    load: float,
    requests_per_load: int,
    mode: str,
    noise_per_request: float,
) -> Dict[str, List[float]]:
    """Per-request sojourn samples per Servpod at one load level."""
    if mode == "direct":
        sampled = service.sample_sojourns(load, requests_per_load)
        out: Dict[str, List[float]] = {}
        for pod in spec.servpod_names:
            arr = sampled[pod]
            out[pod] = arr[arr > 0].tolist()
        return out

    records = service.build_request_records(load, requests_per_load)
    if mode == "jaeger":
        tracer = JaegerTracer()
        tracer.record(records)
        return tracer.per_request()

    endpoints = default_endpoints(spec.servpod_names)
    emitter = TraceEmitter(
        endpoints,
        EmitterConfig(
            blocking=True,
            persistent_connections=False,
            noise_per_request=noise_per_request,
            seed=streams.stream("profiler:emitter-seed").integers(0, 2**31),
        ),
    )
    events = emitter.emit(records)
    extractor = SojournExtractor(CausalityMatcher(endpoints))
    return extractor.per_request(events)


class ServiceProfiler:
    """Runs the solo-run profiling sweep for one LC service."""

    def __init__(
        self,
        service: ServiceSpec,
        streams: Optional[RandomStreams] = None,
        loads: Sequence[float] = DEFAULT_LOADS,
        requests_per_load: int = 300,
        tail_samples: int = 2500,
        mode: str = "tracer",
        noise_per_request: float = 2.0,
    ) -> None:
        if mode not in _MODES:
            raise ProfilingError(f"unknown profiling mode {mode!r}; pick from {_MODES}")
        if len(loads) < 3:
            raise ProfilingError("profiling needs >= 3 load levels")
        if requests_per_load < 10 or tail_samples < 100:
            raise ProfilingError(
                f"too few samples: requests={requests_per_load}, tail={tail_samples}"
            )
        self.spec = service
        self.streams = streams or RandomStreams(0)
        self.loads = [float(u) for u in loads]
        self.requests_per_load = int(requests_per_load)
        self.tail_samples = int(tail_samples)
        self.mode = mode
        self.noise_per_request = float(noise_per_request)

    # -- the sweep ----------------------------------------------------------

    def profile(self) -> ProfilingResult:
        """Run the sweep and return the collected statistics.

        Each load point is an independent :func:`profile_load_point`
        call, so this serial sweep is bit-identical to the fanned-out
        pipeline in :mod:`repro.parallel.profile` by construction.
        """
        points = [self.profile_point(load) for load in self.loads]
        return ProfilingResult.from_points(self.spec.name, points)

    def profile_point(self, load: float) -> LoadPointProfile:
        """Profile one load point with this profiler's parameters."""
        return profile_load_point(
            self.spec,
            load,
            root_seed=self.streams.seed,
            requests_per_load=self.requests_per_load,
            tail_samples=self.tail_samples,
            mode=self.mode,
            noise_per_request=self.noise_per_request,
        )

    # -- derived analyses ------------------------------------------------

    def contributions(self, result: Optional[ProfilingResult] = None) -> ContributionResult:
        """Equations 1–5 over the sweep."""
        result = result or self.profile()
        analyzer = ContributionAnalyzer(self.spec)
        return analyzer.analyze(result.mean_sojourns, result.tails)

    def loadlimits(self, result: Optional[ProfilingResult] = None) -> Dict[str, float]:
        """Per-Servpod loadlimits from the CoV curves (Figure 8 rule)."""
        result = result or self.profile()
        return loadlimit_table(result.loads, result.covs)
