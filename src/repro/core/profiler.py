"""Offline solo-run profiling (§3.2: "profiling LC once").

The profiler drives the LC service alone (no BE jobs) across a load
sweep, collecting per-Servpod sojourn statistics and end-to-end tail
latencies — everything the contribution analyzer and both thresholding
rules need. Per the paper this happens once per service, alongside the
pre-launch stress test, so its cost is linear in the number of Servpods.

Three collection modes:

- ``"tracer"`` — the full non-intrusive pipeline: emit kernel events for
  every profiled request, filter, match causality, reconstruct CPGs and
  read sojourns off them (the default, and what the paper's prototype
  does with SystemTap);
- ``"jaeger"`` — application-level tracing for microservice workloads
  that ship their own tracer (SNMS);
- ``"direct"`` — sample sojourns straight from the generative model
  (fast path for large benchmark grids; statistically identical).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.contribution import ContributionAnalyzer, ContributionResult
from repro.core.loadlimit import loadlimit_table
from repro.errors import ProfilingError
from repro.sim.rng import RandomStreams
from repro.tracing.causality import CausalityMatcher
from repro.tracing.emitter import EmitterConfig, TraceEmitter, default_endpoints
from repro.tracing.jaeger import JaegerTracer
from repro.tracing.sojourn import SojournExtractor
from repro.workloads.service import Service
from repro.workloads.spec import ServiceSpec

#: Default profiling load grid: 2%..100% in 2% steps (the paper sweeps a
#: "broad spectrum of access loads"; Figure 8's crossings are at 1% grain).
DEFAULT_LOADS = tuple(round(0.02 * i, 2) for i in range(1, 51))

_MODES = ("tracer", "jaeger", "direct")


@dataclass
class ProfilingResult:
    """Solo-run sweep statistics for one LC service."""

    service: str
    loads: List[float]
    #: {servpod: [mean sojourn (ms) at each load]}
    mean_sojourns: Dict[str, List[float]] = field(default_factory=dict)
    #: {servpod: [sojourn CoV across requests at each load]}
    covs: Dict[str, List[float]] = field(default_factory=dict)
    #: tail latency (ms) at each load
    tails: List[float] = field(default_factory=list)

    def mean_sojourn(self, servpod: str, load_index: int) -> float:
        """T_i^j for one Servpod and load index."""
        return self.mean_sojourns[servpod][load_index]


class ServiceProfiler:
    """Runs the solo-run profiling sweep for one LC service."""

    def __init__(
        self,
        service: ServiceSpec,
        streams: Optional[RandomStreams] = None,
        loads: Sequence[float] = DEFAULT_LOADS,
        requests_per_load: int = 300,
        tail_samples: int = 2500,
        mode: str = "tracer",
        noise_per_request: float = 2.0,
    ) -> None:
        if mode not in _MODES:
            raise ProfilingError(f"unknown profiling mode {mode!r}; pick from {_MODES}")
        if len(loads) < 3:
            raise ProfilingError("profiling needs >= 3 load levels")
        if requests_per_load < 10 or tail_samples < 100:
            raise ProfilingError(
                f"too few samples: requests={requests_per_load}, tail={tail_samples}"
            )
        self.spec = service
        self.streams = streams or RandomStreams(0)
        self.loads = [float(u) for u in loads]
        self.requests_per_load = int(requests_per_load)
        self.tail_samples = int(tail_samples)
        self.mode = mode
        self.noise_per_request = float(noise_per_request)
        self._service = Service(service, self.streams)

    # -- the sweep ----------------------------------------------------------

    def profile(self) -> ProfilingResult:
        """Run the sweep and return the collected statistics."""
        result = ProfilingResult(service=self.spec.name, loads=list(self.loads))
        pods = self.spec.servpod_names
        result.mean_sojourns = {pod: [] for pod in pods}
        result.covs = {pod: [] for pod in pods}
        for load in self.loads:
            per_pod = self._sojourns_at(load)
            for pod in pods:
                values = per_pod.get(pod, [])
                if not values:
                    raise ProfilingError(
                        f"{self.spec.name}: no sojourns observed at {pod!r} "
                        f"(load {load})"
                    )
                arr = np.asarray(values)
                mean = float(arr.mean())
                std = float(arr.std(ddof=1)) if len(arr) > 1 else 0.0
                result.mean_sojourns[pod].append(mean)
                result.covs[pod].append(std / mean if mean > 0 else 0.0)
            result.tails.append(
                self._service.tail_latency(load, self.tail_samples)
            )
        return result

    def _sojourns_at(self, load: float) -> Dict[str, List[float]]:
        """Per-request sojourn samples per Servpod at one load level."""
        if self.mode == "direct":
            sampled = self._service.sample_sojourns(load, self.requests_per_load)
            out: Dict[str, List[float]] = {}
            for pod in self.spec.servpod_names:
                arr = sampled[pod]
                out[pod] = arr[arr > 0].tolist()
            return out

        records = self._service.build_request_records(load, self.requests_per_load)
        if self.mode == "jaeger":
            tracer = JaegerTracer()
            tracer.record(records)
            return tracer.per_request()

        endpoints = default_endpoints(self.spec.servpod_names)
        emitter = TraceEmitter(
            endpoints,
            EmitterConfig(
                blocking=True,
                persistent_connections=False,
                noise_per_request=self.noise_per_request,
                seed=self.streams.stream("profiler:emitter-seed").integers(0, 2**31),
            ),
        )
        events = emitter.emit(records)
        extractor = SojournExtractor(CausalityMatcher(endpoints))
        return extractor.per_request(events)

    # -- derived analyses ------------------------------------------------

    def contributions(self, result: Optional[ProfilingResult] = None) -> ContributionResult:
        """Equations 1–5 over the sweep."""
        result = result or self.profile()
        analyzer = ContributionAnalyzer(self.spec)
        return analyzer.analyze(result.mean_sojourns, result.tails)

    def loadlimits(self, result: Optional[ProfilingResult] = None) -> Dict[str, float]:
        """Per-Servpod loadlimits from the CoV curves (Figure 8 rule)."""
        result = result or self.profile()
        return loadlimit_table(result.loads, result.covs)
