"""The four per-machine subcontrollers (§3.5.2) and the BE job pool.

Subcontrollers execute the top controller's decision with the paper's
exact step sizes:

- **CPU/LLC**: new BE jobs start with 1 core + 10% LLC; CutBE and
  AllowBEGrowth adjust in steps of 1 core + 10% LLC (as in Heracles).
- **Frequency**: if machine power exceeds 80% of TDP, step the BE cores
  down 100 MHz (DVFS) to keep power for the LC service.
- **Memory**: new BE jobs start at 2 GB; adjust in 100 MB steps.
- **Network**: allocate ``B_link − 1.2·B_LC`` to BE traffic (qdisc).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence

from repro.bejobs.job import BeJob, BeJobState
from repro.bejobs.spec import BeJobSpec
from repro.cluster.machine import BE_DOMAIN, Machine
from repro.core.actions import BeAction
from repro.errors import ControlError


class BeJobPool:
    """The BE jobs placed (or queued) on one machine.

    An endless backlog of batch work is assumed (the datacenter always
    has BE jobs waiting); the pool instantiates jobs on demand, cycling
    through ``specs`` so a mixed-BE probe is a pool with several specs.
    """

    def __init__(
        self,
        specs: Sequence[BeJobSpec],
        machine_name: str,
        max_instances: int = 16,
    ) -> None:
        if not specs:
            raise ControlError("BE pool needs at least one job spec")
        if max_instances <= 0:
            raise ControlError(f"max_instances must be positive, got {max_instances}")
        self.specs = list(specs)
        self.machine_name = machine_name
        self.max_instances = int(max_instances)
        self._spec_cycle = itertools.cycle(self.specs)
        self._counter = 0
        self._jobs: Dict[str, BeJob] = {}
        self.total_killed = 0

    def new_job(self) -> BeJob:
        """Materialise the next queued BE job (not yet started)."""
        self._counter += 1
        spec = next(self._spec_cycle)
        job = BeJob(job_id=f"{self.machine_name}/be-{self._counter}", spec=spec)
        self._jobs[job.job_id] = job
        return job

    def jobs(self) -> List[BeJob]:
        """Every job ever placed that has not been killed."""
        return [j for j in self._jobs.values() if j.state != BeJobState.KILLED]

    def running(self) -> List[BeJob]:
        """Jobs currently in RUNNING state."""
        return [j for j in self._jobs.values() if j.state == BeJobState.RUNNING]

    def job(self, job_id: str) -> BeJob:
        """Look up a job by id."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ControlError(f"unknown BE job {job_id!r}") from None

    @property
    def active_count(self) -> int:
        """Jobs placed on the machine (running or suspended)."""
        return len(self.jobs())

    @property
    def total_normalized_work(self) -> float:
        """Sum of normalized work across all jobs, ever (incl. killed)."""
        return sum(j.normalized_work for j in self._jobs.values())

    def kill_all(self) -> int:
        """Kill every live job; returns how many died."""
        n = 0
        for job in self.jobs():
            job.kill()
            self.total_killed += 1
            n += 1
        return n


class CpuLlcSubcontroller:
    """Core + LLC allocation, one core / 10% LLC at a time.

    Parameters
    ----------
    escalate_cut:
        When ``True`` (default) CutBE escalates to pausing instances once
        footprints reach minimum; ``False`` restricts CutBE to pure
        shrinking (the ablation in ``bench_ablations.py`` shows the
        escalation is what keeps ramps violation-free).
    """

    def __init__(self, escalate_cut: bool = True) -> None:
        self.escalate_cut = escalate_cut

    def apply(self, action: BeAction, machine: Machine, pool: BeJobPool) -> None:
        """Execute ``action``'s core/LLC consequences."""
        if action == BeAction.STOP_BE:
            machine.kill_all_be()
            pool.kill_all()
            machine.dvfs.reset(BE_DOMAIN)
        elif action == BeAction.SUSPEND_BE:
            machine.suspend_all_be()
            for job in pool.running():
                job.suspend()
        elif action == BeAction.CUT_BE:
            self._cut(machine, pool, self.escalate_cut)
        elif action == BeAction.DISALLOW_BE_GROWTH:
            self._resume_some(machine, pool, count=1)
        elif action == BeAction.ALLOW_BE_GROWTH:
            self._resume_some(machine, pool, count=2)
            self._grow(machine, pool)
        else:  # pragma: no cover - exhaustive over the enum
            raise ControlError(f"unknown action {action!r}")

    @staticmethod
    def _cut(machine: Machine, pool: BeJobPool, escalate: bool = True) -> None:
        """One CutBE step: shrink every running job; once a job is at its
        minimum footprint, pause the widest one instead.

        The paper's CutBE "reduces part of their allocated resources ...
        until no more resources are available or all BE's resources have
        been released" — the escalation to pausing lets repeated CutBE
        periods shed interference all the way to zero without killing
        instances (Figure 17 shows the instance count surviving cuts).
        """
        for job in pool.running():
            machine.shrink_be(job.job_id)
        if not escalate:
            return
        running = sorted(
            pool.running(),
            key=lambda j: machine.be_allocation(j.job_id).cores,
            reverse=True,
        )
        if not running:
            return
        # Shrinking alone cannot shed cache/bandwidth pressure from jobs
        # whose demand saturates at low core counts (stream-llc needs a
        # single core to thrash the LLC), so every CutBE period also
        # pauses jobs: one while there is still core width to trim, the
        # wider half once everything is at minimum footprint.
        if any(machine.be_allocation(j.job_id).cores > machine.be_initial_cores
               for j in running):
            victims = running[:1]
        else:
            victims = running[: (len(running) + 1) // 2]
        for job in victims:
            machine.suspend_be(job.job_id)
            job.suspend()

    @staticmethod
    def _resume_some(machine: Machine, pool: BeJobPool, count: int) -> None:
        """Resume at most ``count`` suspended jobs this period.

        Gradual resumption avoids re-applying a full pool's worth of
        interference in a single control period after a SuspendBE phase
        ends — the pressure step would otherwise outrun the feedback
        loop and spike the tail straight past the SLA.
        """
        resumed = 0
        for job in pool.jobs():
            if resumed >= count:
                break
            if job.state == BeJobState.SUSPENDED:
                machine.resume_be(job.job_id)
                job.resume()
                resumed += 1

    @staticmethod
    def _grow(machine: Machine, pool: BeJobPool) -> None:
        """One growth step per period: launch a queued instance, or —
        when the instance cap or machine is full — widen the thinnest job."""
        if pool.active_count < pool.max_instances and machine.can_launch_be():
            job = pool.new_job()
            machine.launch_be(job.job_id)
            job.start(machine.spec.name)
            return
        live = pool.running()
        if live:
            thinnest = min(
                live, key=lambda j: machine.be_allocation(j.job_id).cores
            )
            machine.grow_be(thinnest.job_id)


class FrequencySubcontroller:
    """DVFS power capping: keep machine power under 80% of TDP."""

    def __init__(self, cap_fraction: float = 0.8, restore_fraction: float = 0.7) -> None:
        if not (0 < restore_fraction <= cap_fraction <= 1):
            raise ControlError(
                f"need 0 < restore <= cap <= 1, got {restore_fraction}/{cap_fraction}"
            )
        self.cap_fraction = cap_fraction
        self.restore_fraction = restore_fraction

    def apply(self, machine: Machine, lc_busy_cores: float, be_busy_cores: float) -> int:
        """Adjust the BE frequency domain; returns the new frequency (MHz)."""
        power = machine.power_watts(lc_busy_cores, be_busy_cores)
        tdp = machine.power_model.tdp_watts
        if power > self.cap_fraction * tdp:
            return machine.dvfs.step_down(BE_DOMAIN)
        if power < self.restore_fraction * tdp:
            return machine.dvfs.step_up(BE_DOMAIN)
        return machine.dvfs.frequency(BE_DOMAIN)


class MemorySubcontroller:
    """BE memory sizing in 100 MB steps toward each job's working set."""

    def apply(self, action: BeAction, machine: Machine, pool: BeJobPool) -> None:
        """Grow/shrink each BE job's memory one step, per the action."""
        if action == BeAction.ALLOW_BE_GROWTH:
            for job in pool.running():
                alloc = machine.be_allocation(job.job_id)
                if alloc is not None and alloc.memory_gb < job.spec.memory_gb:
                    machine.grow_be_memory(job.job_id)
        elif action == BeAction.CUT_BE:
            for job in pool.running():
                if machine.be_allocation(job.job_id) is not None:
                    machine.shrink_be_memory(job.job_id)


class NetworkSubcontroller:
    """qdisc shaping: BE bandwidth cap = B_link − 1.2 · B_LC."""

    def apply(self, machine: Machine, lc_net_gbps: float) -> float:
        """Update the NIC's BE cap from observed LC traffic; returns it."""
        return machine.nic.observe_lc_traffic(lc_net_gbps)
