"""Slacklimit derivation — Algorithm 1 (findSlacklimit).

The slacklimit of a Servpod is the smallest latency slack at which BE
jobs may still *grow* on its machine; it is inversely related to the
Servpod's interference tolerance. Algorithm 1 lowers every Servpod's
candidate limit from 1.0 in per-Servpod steps of ``1 − C_i/ΣC`` (so
low-contribution Servpods plunge toward small limits immediately), runs
the co-located system at each configuration, and backtracks one step on
the first SLA violation.

The paper recommends running the probe with representative mixed BE jobs
several times; :func:`find_slacklimits` takes the probe as a callback so
the caller chooses the BE mix and run length.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping

from repro.errors import ProfilingError

#: Lowest candidate slacklimit — a zero limit would let BE jobs grow even
#: with no latency headroom at all.
MIN_SLACKLIMIT = 0.01

#: A probe runs the co-located system under candidate limits and reports
#: whether the SLA was violated.
SlaProbe = Callable[[Mapping[str, float]], bool]


def find_slacklimits(
    contributions: Mapping[str, float],
    sla_probe: SlaProbe,
    max_rounds: int = 50,
) -> Dict[str, float]:
    """Algorithm 1, jointly over all Servpods of one service.

    Parameters
    ----------
    contributions:
        Raw contributions ``C_i`` per Servpod (Eq. 4/5); normalized here.
    sla_probe:
        Called with a candidate ``{servpod: slacklimit}`` configuration;
        returns ``True`` if running the system there violates the SLA.
    max_rounds:
        Safety valve on the while loop.

    Returns
    -------
    dict
        The selected slacklimit per Servpod: the last configuration that
        ran without an SLA violation (the initial all-1.0 configuration
        if even the first step violates).
    """
    if not contributions:
        raise ProfilingError("no contributions provided")
    total = sum(contributions.values())
    if total <= 0:
        raise ProfilingError("total contribution must be positive")

    step_size = {
        pod: 1.0 - c / total for pod, c in contributions.items()
    }  # Algorithm 1, line 1
    current = {pod: 1.0 for pod in contributions}  # line 2
    record: List[Dict[str, float]] = []

    for _ in range(max_rounds):
        proposal = {}
        moved = False
        for pod, limit in current.items():
            candidate = limit - step_size[pod]  # line 5
            if candidate > 0:
                # Still above zero: take the step (floored at the
                # minimum usable limit).
                proposal[pod] = max(candidate, MIN_SLACKLIMIT)
                if proposal[pod] != limit:
                    moved = True
            else:
                # This Servpod has bottomed out; hold its last value
                # (curLimit > 0 loop guard, per Servpod).
                proposal[pod] = max(limit, MIN_SLACKLIMIT)
        if not moved:
            break
        if sla_probe(proposal):  # lines 6-7
            return record[-1] if record else dict(current)  # lines 8-10
        record.append(dict(proposal))  # line 12
        current = proposal
    return dict(current)


def find_slacklimit_for_pod(
    pod: str,
    contributions: Mapping[str, float],
    sla_probe: SlaProbe,
    max_rounds: int = 50,
) -> float:
    """One Servpod's Algorithm-1 walk, every other Servpod conservative.

    This is the independent unit of work the parallel profiling pipeline
    fans out: the walk touches no state outside its own candidate
    sequence, and the probe's randomness is derived from the candidate
    configuration itself (see
    :func:`repro.experiments.colocation.make_sla_probe`), so running the
    walks serially or across processes yields bit-identical limits.
    """
    if pod not in contributions:
        raise ProfilingError(f"unknown Servpod {pod!r}")
    total = sum(contributions.values())
    if total <= 0:
        raise ProfilingError("total contribution must be positive")
    step = 1.0 - contributions[pod] / total
    if step <= 1e-6:
        return 1.0
    current = 1.0
    record: List[float] = []
    for _ in range(max_rounds):
        candidate = current - step  # line 5
        if candidate <= 0:
            break
        candidate = max(candidate, MIN_SLACKLIMIT)
        if candidate == current:
            break
        config = {other: 1.0 for other in contributions}
        config[pod] = candidate
        if sla_probe(config):  # lines 6-7
            break
        record.append(candidate)  # line 12
        current = candidate
    return record[-1] if record else 1.0  # lines 8-10


def find_slacklimits_independent(
    contributions: Mapping[str, float],
    sla_probe: SlaProbe,
    max_rounds: int = 50,
) -> Dict[str, float]:
    """Algorithm 1 run once per Servpod, others held conservative.

    The pseudocode's signature — ``findSlacklimit(C_i)`` returning "the
    slacklimit for Servpod i" — reads as a per-Servpod procedure: while
    Servpod *i*'s candidate limit walks down from 1.0 in steps of
    ``1 − C_i/ΣC``, every other Servpod keeps the conservative initial
    limit. This matches the paper's published outcomes (each Servpod's
    limit is a multiple of its own step) and is robust: one Servpod's
    violation never resets the others' limits. Delegates to
    :func:`find_slacklimit_for_pod` per Servpod — the parallel pipeline
    runs the very same walks, one task each.
    """
    if not contributions:
        raise ProfilingError("no contributions provided")
    total = sum(contributions.values())
    if total <= 0:
        raise ProfilingError("total contribution must be positive")
    return {
        pod: find_slacklimit_for_pod(pod, contributions, sla_probe, max_rounds)
        for pod in contributions
    }


def candidate_signature(slacklimits: Mapping[str, float]) -> str:
    """A canonical text signature of one candidate configuration.

    Used to derive the SLA probe's random streams from the candidate
    *itself* rather than from a call counter, so a probe evaluates any
    given configuration with the same randomness no matter which
    Servpod's walk (or which process) asked. ``float.hex`` keeps the
    encoding exact and platform-independent.
    """
    return ",".join(
        f"{pod}={float(slacklimits[pod]).hex()}" for pod in sorted(slacklimits)
    )


def expected_first_step(contributions: Mapping[str, float]) -> Dict[str, float]:
    """The candidate limits after Algorithm 1's first step.

    Equal to each Servpod's *normalized* contribution — a useful analytic
    cross-check: when no SLA violation occurs, a Servpod with normalized
    contribution below 0.5 ends up with exactly this slacklimit.
    """
    total = sum(contributions.values())
    if total <= 0:
        raise ProfilingError("total contribution must be positive")
    return {pod: c / total for pod, c in contributions.items()}


def violation_free_fixed_point(contributions: Mapping[str, float]) -> Dict[str, float]:
    """Algorithm 1's outcome when the probe never reports a violation.

    Each Servpod steps down from 1.0 by ``1 − C_i/ΣC`` until the next
    step would cross :data:`MIN_SLACKLIMIT`; the last reachable value is
    its slacklimit. For normalized contributions below 0.5 that is the
    contribution itself; above 0.5 the loop takes several steps (e.g.
    c = 0.74 → 1 − 3·0.26 = 0.22).
    """
    total = sum(contributions.values())
    if total <= 0:
        raise ProfilingError("total contribution must be positive")
    limits: Dict[str, float] = {}
    for pod, c in contributions.items():
        step = 1.0 - c / total
        if step <= 1e-6:
            # A Servpod carrying (essentially) the whole contribution
            # never moves off the conservative initial limit.
            limits[pod] = 1.0
            continue
        value = 1.0
        while value - step > 0:
            value -= step
        limits[pod] = max(value, MIN_SLACKLIMIT)
    return limits
