"""Content-addressed result caching.

The grid engine memoizes two kinds of artifacts on disk:

1. per-service profiling artifacts
   (:class:`~repro.parallel.artifact.RhythmArtifact`), and
2. individual grid-cell comparison results,

both keyed by :func:`~repro.cache.keys.stable_hash` over the fully
resolved inputs plus a code-version salt. Warm re-runs of an unchanged
grid then skip every cell; changing *anything* that affects a result —
a spec field, a config knob, the salt — changes the key and forces a
recompute. See :mod:`repro.cache.keys` and :mod:`repro.cache.store`.
"""

from repro.cache.keys import CODE_VERSION_SALT, stable_hash
from repro.cache.store import (
    CACHE_DIR_ENV_VAR,
    CACHE_MAX_BYTES_ENV_VAR,
    CACHE_TOGGLE_ENV_VAR,
    CacheStats,
    CacheStore,
    cache_enabled,
    default_store,
    resolve_cache_dir,
)

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "CACHE_MAX_BYTES_ENV_VAR",
    "CACHE_TOGGLE_ENV_VAR",
    "CODE_VERSION_SALT",
    "CacheStats",
    "CacheStore",
    "cache_enabled",
    "default_store",
    "resolve_cache_dir",
    "stable_hash",
]
