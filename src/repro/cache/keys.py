"""Stable, content-addressed cache keys.

A cache key must be a pure function of the *fully resolved* inputs of a
computation — the same cell config must hash to the same key in any
process, on any platform, under any ``PYTHONHASHSEED`` — and it must
change whenever anything that affects the result changes. Keys are
therefore built by feeding a canonical byte encoding of the input object
graph into SHA-256:

- every value is emitted with a one-byte type tag, so ``1`` and ``1.0``
  and ``"1"`` never collide,
- floats are encoded with :meth:`float.hex` (exact, round-trippable),
- dataclasses and plain objects carry their qualified class name plus
  their fields in a deterministic order,
- numpy arrays contribute dtype, shape and raw bytes.

Anything without a canonical encoding (a bare function, an open file)
raises :class:`~repro.errors.CacheKeyError`; the grid engine treats such
cells as uncacheable and recomputes them rather than guessing.

The :data:`CODE_VERSION_SALT` is mixed into every key. Bump it whenever
a change alters what simulations produce for the *same* config (new RNG
consumption order, changed physics, changed result schema): every old
entry then misses and warm runs transparently recompute.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import math
from typing import Any

import numpy as np

from repro.errors import CacheKeyError

#: Version salt mixed into every key. Bump on result-affecting changes.
#: :2 — profiling RNG restructure: per-load-point stream registries and
#: candidate-derived (repeated) SLA-probe streams changed what the same
#: config simulates, so every :1 entry must miss.
#: :3 — ColocationConfig grew a ``faults`` schedule field (fault
#: injection changes what the same-looking config simulates), so every
#: :2 entry must miss.
#: :4 — batched SoA kernel landing touched result-affecting code paths
#: (engine batch-pop loop, vectorized rate/latency/queueing math); the
#: kernels are pinned bit-identical to each other, but :3 entries
#: predate the identity pin and must miss.
#:
#: The fleet kernel did NOT bump the salt: every fleet-era optimisation
#: (row caching, sampler fast paths, memoized subcontroller applies) is
#: bit-exact by the identity tests, so :4 entries stay valid. The fleet
#: zone governor also never enters keys — it acts through the
#: ``action_filter`` hook, a post-construction runtime attribute
#: (default ``None``) on ColocationExperiment, not a config field.
#: :5 — fleet runs now ARE cached (per-zone ``fleet-zone`` entries, see
#: :func:`repro.experiments.fleet.zone_cache_key`) and the colocation
#: tick path was rewritten (small-fleet python tick, partition-based
#: percentiles, cumsum folds). The rewrite is pinned bit-identical, but
#: :4 entries predate the pin and the store now carries a new entry
#: family, so every :4 entry must miss.
#: :6 — the controller interface extraction rewired the decision path
#: of every cached simulation (TopController now routes through
#: ``ColocationController.decide``) and the store gained the
#: ``bakeoff-cell`` entry family, keyed per controller member (see
#: :func:`repro.experiments.bakeoff.bakeoff_cell_key`). The refactor is
#: pinned bit-identical, but :5 entries predate the bake-off identity
#: pin and must miss.
CODE_VERSION_SALT = "rhythm-repro-cache:6"

_PRIMITIVE_TAGS = {
    type(None): b"N",
    bool: b"B",
    int: b"I",
    str: b"S",
    bytes: b"Y",
}


def _feed(h: "hashlib._Hash", obj: Any) -> None:
    """Recursively feed the canonical encoding of ``obj`` into ``h``."""
    if obj is None:
        h.update(b"N")
        return
    if isinstance(obj, bool):  # before int: bool is an int subclass
        h.update(b"B1" if obj else b"B0")
        return
    if isinstance(obj, (int, np.integer)):
        h.update(b"I" + str(int(obj)).encode("ascii") + b";")
        return
    if isinstance(obj, (float, np.floating)):
        value = float(obj)
        if math.isnan(value):
            h.update(b"Fnan;")
        else:
            h.update(b"F" + value.hex().encode("ascii") + b";")
        return
    if isinstance(obj, str):
        data = obj.encode("utf-8")
        h.update(b"S" + str(len(data)).encode("ascii") + b":" + data)
        return
    if isinstance(obj, bytes):
        h.update(b"Y" + str(len(obj)).encode("ascii") + b":" + obj)
        return
    if isinstance(obj, enum.Enum):
        h.update(b"E" + _qualname(obj).encode("utf-8") + b":")
        _feed(h, obj.value)
        return
    if isinstance(obj, np.ndarray):
        h.update(
            b"A" + str(obj.dtype).encode("ascii")
            + str(obj.shape).encode("ascii") + b":"
        )
        h.update(np.ascontiguousarray(obj).tobytes())
        return
    if isinstance(obj, (list, tuple)):
        h.update(b"L" + str(len(obj)).encode("ascii") + b":")
        for item in obj:
            _feed(h, item)
        return
    if isinstance(obj, (set, frozenset)):
        h.update(b"T" + str(len(obj)).encode("ascii") + b":")
        for item in sorted(obj, key=repr):
            _feed(h, item)
        return
    if isinstance(obj, dict):
        h.update(b"M" + str(len(obj)).encode("ascii") + b":")
        for key in sorted(obj, key=repr):
            _feed(h, key)
            _feed(h, obj[key])
        return
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"D" + _qualname(obj).encode("utf-8") + b":")
        for field in dataclasses.fields(obj):
            h.update(field.name.encode("utf-8") + b"=")
            _feed(h, getattr(obj, field.name))
        return
    # Plain value objects (load patterns, InterferenceModel, ...): the
    # qualified class name plus every instance attribute, sorted. Bound
    # state that is itself unhashable (a wrapped callable) propagates a
    # CacheKeyError, marking the whole cell uncacheable.
    if hasattr(obj, "__dict__") and not callable(obj):
        attrs = vars(obj)
        h.update(b"O" + _qualname(obj).encode("utf-8") + b":")
        h.update(str(len(attrs)).encode("ascii") + b":")
        for name in sorted(attrs):
            h.update(name.encode("utf-8") + b"=")
            _feed(h, attrs[name])
        return
    raise CacheKeyError(
        f"cannot build a stable cache key from {type(obj).__module__}."
        f"{type(obj).__qualname__} instance {obj!r}"
    )


def _qualname(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def stable_hash(obj: Any, salt: str = CODE_VERSION_SALT) -> str:
    """The hex SHA-256 of ``obj``'s canonical encoding, mixed with ``salt``.

    Deterministic across processes, platforms and ``PYTHONHASHSEED``
    values. Raises :class:`~repro.errors.CacheKeyError` when ``obj``
    (or anything reachable from it) has no canonical encoding.
    """
    h = hashlib.sha256()
    h.update(b"salt:")
    _feed(h, salt)
    _feed(h, obj)
    return h.hexdigest()
