"""A content-addressed, disk-backed result store.

Entries live under a cache directory (``RHYTHM_CACHE_DIR``, defaulting
to ``~/.cache/rhythm-repro``) as ``<key[:2]>/<key>.pkl`` — the key *is*
the address, so concurrent writers of the same computation write the
same bytes and last-write-wins is harmless. The store is deliberately
paranoid:

- **atomic writes** — payloads land in a temp file first and are
  ``os.replace``d into place, so readers never observe a torn entry;
- **versioned envelopes** — every file wraps its payload in a
  ``{format, key, payload}`` envelope; a format bump orphans old
  entries instead of mis-deserialising them;
- **corruption tolerance** — any failure to read, unpickle or validate
  an entry counts as a miss (and deletes the bad file); the cache can
  only ever cost a recompute, never crash a run;
- **LRU size cap** — reads refresh an entry's mtime; when the store
  grows past ``max_bytes`` (``RHYTHM_CACHE_MAX_BYTES``), the
  least-recently-used entries are evicted first.

``RHYTHM_CACHE=off`` (or ``0``/``false``/``no``) disables the default
store entirely — :func:`default_store` returns ``None`` and every caller
falls back to plain recomputation.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Tuple

from repro.errors import CacheError

#: Environment variable naming the cache directory.
CACHE_DIR_ENV_VAR = "RHYTHM_CACHE_DIR"
#: Environment variable disabling the cache (``off``/``0``/``false``/``no``).
CACHE_TOGGLE_ENV_VAR = "RHYTHM_CACHE"
#: Environment variable overriding the LRU size cap (bytes).
CACHE_MAX_BYTES_ENV_VAR = "RHYTHM_CACHE_MAX_BYTES"

#: Default size cap: 512 MiB.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

#: On-disk envelope format; bump to orphan every existing entry.
ENVELOPE_FORMAT = 1

_DISABLED_VALUES = {"off", "0", "false", "no"}


def cache_enabled() -> bool:
    """Whether the environment allows the default cache."""
    value = os.environ.get(CACHE_TOGGLE_ENV_VAR, "").strip().lower()
    return value not in _DISABLED_VALUES


def resolve_cache_dir() -> Path:
    """The cache directory: ``RHYTHM_CACHE_DIR`` or the XDG-ish default."""
    env = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "rhythm-repro"


def resolve_max_bytes() -> int:
    """The LRU size cap from the environment (default 512 MiB)."""
    env = os.environ.get(CACHE_MAX_BYTES_ENV_VAR, "").strip()
    if not env:
        return DEFAULT_MAX_BYTES
    try:
        value = int(env)
    except ValueError:
        raise CacheError(
            f"{CACHE_MAX_BYTES_ENV_VAR} must be an integer, got {env!r}"
        ) from None
    if value <= 0:
        raise CacheError(
            f"{CACHE_MAX_BYTES_ENV_VAR} must be positive, got {value}"
        )
    return value


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time summary of one store (plus its session counters)."""

    directory: str
    entries: int
    total_bytes: int
    max_bytes: int
    hits: int
    misses: int
    stores: int
    evictions: int
    errors: int


class CacheStore:
    """Content-addressed pickle store with atomic writes and LRU eviction."""

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.directory = (
            Path(directory) if directory is not None else resolve_cache_dir()
        )
        self.max_bytes = int(max_bytes) if max_bytes is not None else resolve_max_bytes()
        if self.max_bytes <= 0:
            raise CacheError(f"max_bytes must be positive, got {self.max_bytes}")
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.errors = 0

    # -- paths -----------------------------------------------------------

    def _path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise CacheError(f"malformed cache key {key!r}")
        return self.directory / key[:2] / f"{key}.pkl"

    def _entries(self) -> List[Path]:
        if not self.directory.is_dir():
            return []
        return [p for p in self.directory.glob("??/*.pkl") if p.is_file()]

    # -- read / write ----------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The payload stored under ``key``, or ``None`` on a miss.

        A hit refreshes the entry's LRU clock. *Any* failure — unreadable
        file, truncated pickle, foreign envelope format, key mismatch —
        deletes the offending entry and reports a miss.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                envelope = pickle.load(fh)
            if (
                not isinstance(envelope, dict)
                or envelope.get("format") != ENVELOPE_FORMAT
                or envelope.get("key") != key
                or "payload" not in envelope
            ):
                raise CacheError(f"bad envelope in {path}")
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupted or foreign entry: drop it and recompute.
            self.errors += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        self.hits += 1
        return envelope["payload"]

    def put(self, key: str, payload: Any) -> bool:
        """Store ``payload`` under ``key`` atomically; ``False`` on failure.

        Failures (unpicklable payload, full disk) are swallowed: caching
        is an optimisation, never a correctness dependency.
        """
        path = self._path(key)
        envelope = {"format": ENVELOPE_FORMAT, "key": key, "payload": payload}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except Exception:
            self.errors += 1
            return False
        self.stores += 1
        self._evict_lru()
        return True

    def contains(self, key: str) -> bool:
        """Whether an entry file exists for ``key`` (no validation)."""
        return self._path(key).is_file()

    # -- maintenance -----------------------------------------------------

    def _evict_lru(self) -> int:
        """Evict least-recently-used entries until under ``max_bytes``."""
        sized: List[Tuple[float, int, Path]] = []
        total = 0
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            sized.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.max_bytes:
            return 0
        evicted = 0
        for _, size, path in sorted(sized):
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        self.evictions += evicted
        return evicted

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> CacheStats:
        """Entry count and byte totals plus this store's session counters."""
        entries = self._entries()
        total = 0
        for path in entries:
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return CacheStats(
            directory=str(self.directory),
            entries=len(entries),
            total_bytes=total,
            max_bytes=self.max_bytes,
            hits=self.hits,
            misses=self.misses,
            stores=self.stores,
            evictions=self.evictions,
            errors=self.errors,
        )

    def __repr__(self) -> str:
        return f"CacheStore({str(self.directory)!r}, max_bytes={self.max_bytes})"


def default_store() -> Optional[CacheStore]:
    """The environment-configured store, or ``None`` when disabled."""
    if not cache_enabled():
        return None
    return CacheStore()
