"""Table 1 — the workload catalog.

Regenerates the paper's workload table from the implemented catalogs so
readers can diff it against the original row by row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.bejobs.catalog import BE_CATALOG
from repro.workloads.catalog import LC_CATALOG
from repro.workloads.microservices import snms_service


@dataclass(frozen=True)
class LcRow:
    """One LC workload row of Table 1."""

    workload: str
    domain: str
    servpods: str
    max_load: str
    sla: str
    containers: int


@dataclass(frozen=True)
class BeRow:
    """One BE job row of Table 1."""

    workload: str
    domain: str
    intensive: str


def table1_rows() -> tuple:
    """(LC rows, BE rows) mirroring Table 1."""
    lc_rows: List[LcRow] = []
    for builder in list(LC_CATALOG.values()) + [snms_service]:
        spec = builder()
        qps = spec.max_load_qps
        max_load = f"{qps / 1000:g}K QPS" if qps >= 10000 else f"{qps:g} QPS"
        sla = f"{spec.sla_ms:g} ms"
        lc_rows.append(
            LcRow(
                workload=spec.name,
                domain=spec.domain,
                servpods=",".join(spec.servpod_names),
                max_load=max_load,
                sla=sla,
                containers=spec.containers,
            )
        )
    be_rows = [
        BeRow(workload=spec.name, domain=spec.domain, intensive=spec.intensity.value)
        for spec in BE_CATALOG.values()
    ]
    return lc_rows, be_rows
