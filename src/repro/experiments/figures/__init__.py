"""Per-figure experiment drivers.

Each module regenerates the data behind one paper figure or table (see
DESIGN.md §4 for the full index). Drivers return plain dataclass rows;
:mod:`repro.experiments.report` renders them as text tables, and the
``benchmarks/`` suite wraps each driver in a pytest-benchmark target.
"""

from repro.experiments.figures.figure2 import (
    CHARACTERIZATION_PRESSURES,
    Figure2Row,
    run_figure2,
)
from repro.experiments.figures.figure6 import Figure6Data, run_figure6
from repro.experiments.figures.figure7 import Figure7Row, run_figure7
from repro.experiments.figures.figure8 import Figure8Data, run_figure8
from repro.experiments.figures.figure9_11 import ServpodCell, run_servpod_grid
from repro.experiments.figures.figure12_14 import ServiceCell, run_service_grid
from repro.experiments.figures.figure15 import ProductionCell, run_figure15
from repro.experiments.figures.figure16 import MicroserviceCell, run_figure16
from repro.experiments.figures.figure17 import TimelineData, run_figure17
from repro.experiments.figures.figure18 import ThresholdSweepRow, run_figure18
from repro.experiments.figures.table1 import table1_rows

__all__ = [
    "CHARACTERIZATION_PRESSURES",
    "Figure2Row",
    "run_figure2",
    "Figure6Data",
    "run_figure6",
    "Figure7Row",
    "run_figure7",
    "Figure8Data",
    "run_figure8",
    "ServpodCell",
    "run_servpod_grid",
    "ServiceCell",
    "run_service_grid",
    "ProductionCell",
    "run_figure15",
    "MicroserviceCell",
    "run_figure16",
    "TimelineData",
    "run_figure17",
    "ThresholdSweepRow",
    "run_figure18",
    "table1_rows",
]
