"""Figure 6 — solo-run sojourn statistics of the E-commerce Servpods.

(a) average sojourn time per Servpod vs load, plus the service p99;
(b) coefficient of variation of the sojourn times, normalized across the
four Servpods at each load.

Expected shape: HAProxy contributes < 5% of latency but > 20% of the
normalized variance; Amoeba is small and the most stable; MySQL's mean
overtakes Tomcat's past mid load and its CoV stays above Tomcat's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.profiler import ProfilingResult, ServiceProfiler
from repro.sim.rng import RandomStreams
from repro.workloads.catalog import ecommerce_service
from repro.workloads.spec import ServiceSpec

#: Figure 6's x-axis: 1%..85% of max load.
FIGURE6_LOADS = tuple(round(0.01 + 0.04 * i, 2) for i in range(0, 22))


@dataclass
class Figure6Data:
    """The two panels' series."""

    service: str
    loads: List[float]
    mean_sojourns: Dict[str, List[float]] = field(default_factory=dict)
    p99: List[float] = field(default_factory=list)
    #: CoV per Servpod, normalized so the four Servpods sum to 1 per load.
    normalized_cov: Dict[str, List[float]] = field(default_factory=dict)

    def latency_share(self, servpod: str) -> float:
        """Average share of summed mean sojourn contributed by a Servpod."""
        totals = [
            sum(self.mean_sojourns[p][j] for p in self.mean_sojourns)
            for j in range(len(self.loads))
        ]
        shares = [
            self.mean_sojourns[servpod][j] / totals[j]
            for j in range(len(self.loads))
            if totals[j] > 0
        ]
        return sum(shares) / len(shares)

    def variance_share(self, servpod: str) -> float:
        """Average normalized-CoV share of a Servpod."""
        series = self.normalized_cov[servpod]
        return sum(series) / len(series)


def run_figure6(
    service: Optional[ServiceSpec] = None,
    loads: Sequence[float] = FIGURE6_LOADS,
    requests_per_load: int = 400,
    seed: int = 0,
    mode: str = "direct",
) -> Figure6Data:
    """Profile the service and assemble Figure 6's series."""
    spec = service or ecommerce_service()
    profiler = ServiceProfiler(
        spec,
        streams=RandomStreams(seed),
        loads=loads,
        requests_per_load=requests_per_load,
        mode=mode,
    )
    result: ProfilingResult = profiler.profile()
    data = Figure6Data(
        service=spec.name,
        loads=list(result.loads),
        mean_sojourns={pod: list(vals) for pod, vals in result.mean_sojourns.items()},
        p99=list(result.tails),
    )
    pods = spec.servpod_names
    for pod in pods:
        data.normalized_cov[pod] = []
    for j in range(len(result.loads)):
        total = sum(result.covs[pod][j] for pod in pods)
        for pod in pods:
            share = result.covs[pod][j] / total if total > 0 else 0.0
            data.normalized_cov[pod].append(share)
    return data
