"""Figure 17 — the runtime timeline (§5.4.1).

Tomcat and MySQL of E-commerce co-located with Wordcount under the
production load; the panels plot, per control tick: load vs loadlimit,
slack vs slacklimit, CPU utilisation, BE LLC ways, BE cores, BE
instances, and BE throughput.

Expected dynamics (the paper's narrative): BE state grows while slack is
ample, SuspendBE fires when the load crosses the loadlimit (throughput
freezes, CPU drops, allocations retained), growth resumes when the load
recedes, and CutBE claws back LLC/cores on a slack drop without reducing
the instance count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bejobs.catalog import WORDCOUNT
from repro.bejobs.spec import BeJobSpec
from repro.experiments.colocation import ColocationConfig, ColocationExperiment
from repro.experiments.runner import build_rhythm_controllers, get_rhythm
from repro.loadgen.clarknet import clarknet_production_load
from repro.loadgen.patterns import LoadPattern
from repro.metrics.collector import TickSample
from repro.sim.rng import RandomStreams
from repro.workloads.catalog import ecommerce_service
from repro.workloads.spec import ServiceSpec


@dataclass
class TimelineData:
    """Per-tick samples and thresholds for the plotted Servpods."""

    service: str
    servpods: List[str]
    loadlimit: Dict[str, float] = field(default_factory=dict)
    slacklimit: Dict[str, float] = field(default_factory=dict)
    samples: Dict[str, List[TickSample]] = field(default_factory=dict)

    def actions(self, servpod: str) -> List[str]:
        """The action taken at each tick on one machine."""
        return [s.action for s in self.samples[servpod]]


def run_figure17(
    service: Optional[ServiceSpec] = None,
    servpods: Sequence[str] = ("tomcat", "mysql"),
    be_spec: BeJobSpec = WORDCOUNT,
    duration_s: float = 600.0,
    seed: int = 0,
    pattern: Optional[LoadPattern] = None,
    config: Optional[ColocationConfig] = None,
) -> TimelineData:
    """Run the timeline experiment and collect every tick sample."""
    spec = service or ecommerce_service()
    pattern = pattern or clarknet_production_load(duration_s=duration_s, seed=seed + 1, days=1)
    config = config or ColocationConfig(duration_s=duration_s)
    controllers = build_rhythm_controllers(spec, seed=seed)
    rhythm = get_rhythm(spec, seed=seed)
    experiment = ColocationExperiment(
        spec,
        controllers,
        [be_spec],
        pattern,
        streams=RandomStreams(seed),
        config=config,
    )
    result = experiment.run()
    data = TimelineData(service=spec.name, servpods=list(servpods))
    loadlimits = rhythm.loadlimits()
    slacklimits = rhythm.slacklimits()
    for pod in servpods:
        data.loadlimit[pod] = loadlimits[pod]
        data.slacklimit[pod] = slacklimits[pod]
        data.samples[pod] = list(result.machine(pod).samples)
    return data
