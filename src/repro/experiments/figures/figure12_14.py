"""Figures 12–14 — service-level improvements under constant load.

One comparison per (LC service, BE job, load) cell; the three figures
read different relative improvements from the same grid:

- Fig. 12: EMU improvement ``(EMU_R − EMU_H) / EMU_H``,
- Fig. 13: CPU-utilisation improvement,
- Fig. 14: memory-bandwidth-utilisation improvement.

Paper headline averages (the shape to hold): EMU +11.6/18.4/24.6/14/12.7%
for E-commerce/Redis/Solr/Elgg/Elasticsearch, gains increasing with load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.bejobs.catalog import evaluation_be_jobs
from repro.bejobs.spec import BeJobSpec
from repro.experiments.colocation import ColocationConfig
from repro.parallel.grid import GridCell, run_comparison_grid
from repro.workloads.catalog import LC_CATALOG
from repro.workloads.spec import ServiceSpec

from repro.experiments.figures.figure9_11 import GRID_LOADS


@dataclass(frozen=True)
class ServiceCell:
    """One (service, BE, load) cell with both systems' outcomes."""

    service: str
    be_job: str
    load: float
    emu_rhythm: float
    emu_heracles: float
    cpu_rhythm: float
    cpu_heracles: float
    membw_rhythm: float
    membw_heracles: float
    rhythm_violations: int
    heracles_violations: int

    @staticmethod
    def _rel(new: float, old: float) -> float:
        return (new - old) / old if old > 1e-9 else new

    @property
    def emu_improvement(self) -> float:
        """Figure 12's quantity."""
        return self._rel(self.emu_rhythm, self.emu_heracles)

    @property
    def cpu_improvement(self) -> float:
        """Figure 13's quantity."""
        return self._rel(self.cpu_rhythm, self.cpu_heracles)

    @property
    def membw_improvement(self) -> float:
        """Figure 14's quantity."""
        return self._rel(self.membw_rhythm, self.membw_heracles)


def run_service_grid(
    services: Optional[Sequence[str]] = None,
    be_specs: Optional[Sequence[BeJobSpec]] = None,
    loads: Sequence[float] = GRID_LOADS,
    seed: int = 0,
    config: Optional[ColocationConfig] = None,
    service_builder: Optional[Callable[[str], ServiceSpec]] = None,
    workers: Optional[int] = None,
    cache=None,
    cache_stats=None,
    profile_workers: Optional[int] = None,
) -> List[ServiceCell]:
    """Run the Figures 12-14 grid; one row per (service, BE, load).

    Cells run on the parallel grid engine (``workers`` as in
    :func:`repro.parallel.pool.resolve_workers`; ``profile_workers``
    sets the profiling fan-out, sharing the same pool); results are
    identical for any worker count. ``cache``/``cache_stats`` pass
    through to :func:`repro.parallel.grid.run_comparison_grid` for
    incremental re-execution.
    """
    service_names = list(services) if services is not None else list(LC_CATALOG)
    be_specs = list(be_specs) if be_specs is not None else evaluation_be_jobs()
    builder = service_builder or (lambda name: LC_CATALOG[name]())
    config = config or ColocationConfig(duration_s=60.0)
    cells: List[GridCell] = []
    for service_name in service_names:
        spec = builder(service_name)
        for be in be_specs:
            for load in loads:
                cells.append(GridCell(spec, be, load, seed=seed))
    comparisons = run_comparison_grid(
        cells, config=config, workers=workers, cache=cache,
        cache_stats=cache_stats, profile_workers=profile_workers,
    )
    return [
        ServiceCell(
            service=cell.service.name,
            be_job=cell.be_spec.name,
            load=cell.load,
            emu_rhythm=cmp.rhythm.emu,
            emu_heracles=cmp.heracles.emu,
            cpu_rhythm=cmp.rhythm.cpu_utilisation,
            cpu_heracles=cmp.heracles.cpu_utilisation,
            membw_rhythm=cmp.rhythm.membw_utilisation,
            membw_heracles=cmp.heracles.membw_utilisation,
            rhythm_violations=cmp.rhythm.sla_violations,
            heracles_violations=cmp.heracles.sla_violations,
        )
        for cell, cmp in zip(cells, comparisons)
    ]


def average_improvement(
    rows: Sequence[ServiceCell], service: str, column: str
) -> float:
    """Average one improvement column over a service's cells.

    ``column``: ``emu_improvement`` (Fig. 12), ``cpu_improvement``
    (Fig. 13) or ``membw_improvement`` (Fig. 14).
    """
    values = [getattr(r, column) for r in rows if r.service == service]
    if not values:
        return 0.0
    return sum(values) / len(values)


def improvement_table(rows: Sequence[ServiceCell], column: str) -> Dict[str, float]:
    """Per-service average of one improvement column."""
    services = sorted({r.service for r in rows})
    return {s: average_improvement(rows, s, column) for s in services}
