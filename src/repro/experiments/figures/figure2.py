"""Figure 2 — inconsistent interference tolerance of LC components (§2).

The characterization co-locates each LC component with one
microbenchmark at a time and measures the increase of the service's p99
latency over the solo run, across request loads 20–80%. The §2 setup
deliberately bypasses isolation (CPU-stress is pinned to the *same*
socket cores), so each interference kind is represented by the canonical
raw pressure it exerts.

Expected shape (checked in EXPERIMENTS.md):

- degradation grows with load in every group,
- Redis Master ≫ Slave for stream-llc(big) (the paper reports > 28×),
- MySQL ≫ Tomcat for stream-dram(big); Tomcat ≫ MySQL for DVFS,
- big stream variants ≫ small variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.interference.model import InterferenceModel, Pressure
from repro.metrics.percentile import percentile
from repro.sim.rng import RandomStreams
from repro.workloads.catalog import ecommerce_service, redis_service
from repro.workloads.service import Service, ServiceState
from repro.workloads.spec import ServiceSpec

#: Canonical raw pressures of the seven §2 interference kinds. "big"
#: saturates the resource; "small" occupies half of it (Table 1 text).
CHARACTERIZATION_PRESSURES: Dict[str, Pressure] = {
    "stream_dram(big)": Pressure(membw=1.0, llc=0.30, cpu=0.10),
    "stream_dram(small)": Pressure(membw=0.5, llc=0.15, cpu=0.06),
    "stream_llc(big)": Pressure(llc=1.0, membw=0.35, cpu=0.08),
    "stream_llc(small)": Pressure(llc=0.5, membw=0.20, cpu=0.05),
    "DVFS": Pressure(freq=0.40),
    "iperf": Pressure(net=0.90, cpu=0.04),
    "CPU_stress": Pressure(cpu=0.80),
}

#: Load grid of Figure 2's x-axis.
FIGURE2_LOADS = (0.2, 0.4, 0.6, 0.8)


@dataclass(frozen=True)
class Figure2Row:
    """One bar of Figure 2."""

    service: str
    component: str
    interference: str
    load: float
    p99_solo_ms: float
    p99_interfered_ms: float

    @property
    def increase_pct(self) -> float:
        """p99 latency increase over solo, in percent (the y-axis)."""
        if self.p99_solo_ms <= 0:
            return 0.0
        return 100.0 * (self.p99_interfered_ms - self.p99_solo_ms) / self.p99_solo_ms


def run_figure2(
    services: Optional[Sequence[ServiceSpec]] = None,
    loads: Sequence[float] = FIGURE2_LOADS,
    samples: int = 4000,
    seed: int = 0,
    model: Optional[InterferenceModel] = None,
) -> List[Figure2Row]:
    """Run the §2 characterization grid.

    For each (service, component, interference, load) the target
    component's Servpod gets the canonical pressure while every other
    Servpod runs clean, and the service-level p99 is compared to solo.
    """
    if services is None:
        services = [redis_service(), ecommerce_service()]
    model = model or InterferenceModel()
    rows: List[Figure2Row] = []
    for spec in services:
        for load in loads:
            solo_svc = Service(spec, RandomStreams(seed))
            solo_p99 = float(
                percentile(solo_svc.sample_e2e(load, samples), spec.tail_percentile)
            )
            for pod in spec.servpods:
                comp_names = ",".join(c.name for c in pod.components)
                for kind, pressure in CHARACTERIZATION_PRESSURES.items():
                    slowdowns = {}
                    inflations = {}
                    # §2 measures raw component sensitivity: weight the
                    # member components as the Servpod abstraction does.
                    from repro.core.servpod import Servpod
                    from repro.cluster.machine import Machine

                    servpod = Servpod(spec=pod, machine=Machine())
                    slowdown = servpod.slowdown(pressure, load, model)
                    slowdowns[pod.name] = slowdown
                    inflations[pod.name] = model.sigma_inflation(slowdown)
                    svc = Service(spec, RandomStreams(seed))
                    p99 = float(
                        percentile(
                            svc.sample_e2e(
                                load,
                                samples,
                                ServiceState(slowdowns, inflations),
                            ),
                            spec.tail_percentile,
                        )
                    )
                    rows.append(
                        Figure2Row(
                            service=spec.name,
                            component=comp_names,
                            interference=kind,
                            load=load,
                            p99_solo_ms=solo_p99,
                            p99_interfered_ms=p99,
                        )
                    )
    return rows


def increase_matrix(rows: Sequence[Figure2Row], service: str) -> Dict[str, Dict[str, float]]:
    """Average increase (%) per component × interference for one service."""
    acc: Dict[str, Dict[str, List[float]]] = {}
    for row in rows:
        if row.service != service:
            continue
        acc.setdefault(row.component, {}).setdefault(row.interference, []).append(
            row.increase_pct
        )
    return {
        comp: {kind: sum(v) / len(v) for kind, v in kinds.items()}
        for comp, kinds in acc.items()
    }
