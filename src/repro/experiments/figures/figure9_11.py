"""Figures 9–11 — per-Servpod BE throughput / CPU / MemBW under load.

One co-location run per (Servpod's service, BE job, load, system) cell;
the three figures read different columns of the same grid:

- Fig. 9: normalized BE throughput at the showcased Servpod's machine,
- Fig. 10: that machine's CPU utilisation,
- Fig. 11: that machine's memory-bandwidth utilisation.

Showcased Servpods (paper §5.2.1): Tomcat/E-commerce, Slave/Redis,
Zookeeper/Solr, Memcached/Elgg, Kibana/Elasticsearch. Expected shape:
Rhythm ≥ Heracles with the gap opening past 65% load, and Heracles at
exactly zero co-location at the 85% point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bejobs.catalog import evaluation_be_jobs
from repro.bejobs.spec import BeJobSpec
from repro.experiments.colocation import ColocationConfig
from repro.parallel.grid import GridCell, run_comparison_grid
from repro.workloads.catalog import LC_CATALOG
from repro.workloads.spec import ServiceSpec

#: The five showcased (service, Servpod) pairs of Figures 9-11.
SHOWCASED_SERVPODS: Tuple[Tuple[str, str], ...] = (
    ("E-commerce", "tomcat"),
    ("Redis", "slave"),
    ("Solr", "zookeeper"),
    ("Elgg", "memcached"),
    ("Elasticsearch", "kibana"),
)

#: Figure 9-11's x-axis loads.
GRID_LOADS = (0.05, 0.25, 0.45, 0.65, 0.85)


@dataclass(frozen=True)
class ServpodCell:
    """One grid cell, carrying all three figures' quantities."""

    service: str
    servpod: str
    be_job: str
    load: float
    system: str  # "Rhythm" | "Heracles"
    be_throughput: float
    cpu_utilisation: float
    membw_utilisation: float


def run_servpod_grid(
    servpods: Sequence[Tuple[str, str]] = SHOWCASED_SERVPODS,
    be_specs: Optional[Sequence[BeJobSpec]] = None,
    loads: Sequence[float] = GRID_LOADS,
    seed: int = 0,
    config: Optional[ColocationConfig] = None,
    service_builder: Optional[Callable[[str], ServiceSpec]] = None,
    workers: Optional[int] = None,
    cache=None,
    cache_stats=None,
    profile_workers: Optional[int] = None,
) -> List[ServpodCell]:
    """Run the full Figures 9-11 grid; returns one row per cell/system.

    Cells fan out to the parallel grid engine; ``workers`` resolves via
    :func:`repro.parallel.pool.resolve_workers` (``RHYTHM_WORKERS`` env
    var, then CPU count) and ``profile_workers`` sets the profiling
    fan-out width (``RHYTHM_PROFILE_WORKERS``, falling back to the grid
    resolution) — both phases share one persistent pool. Results are
    identical for any worker count. ``cache``/``cache_stats`` pass
    through to :func:`repro.parallel.grid.run_comparison_grid` for
    incremental re-execution.
    """
    be_specs = list(be_specs) if be_specs is not None else evaluation_be_jobs()
    builder = service_builder or (lambda name: LC_CATALOG[name]())
    config = config or ColocationConfig(duration_s=60.0)
    specs: Dict[str, ServiceSpec] = {}
    cells: List[GridCell] = []
    coords: List[Tuple[str, str]] = []
    for service_name, pod in servpods:
        spec = specs.setdefault(service_name, builder(service_name))
        for be in be_specs:
            for load in loads:
                cells.append(GridCell(spec, be, load, seed=seed))
                coords.append((service_name, pod))
    comparisons = run_comparison_grid(
        cells, config=config, workers=workers, cache=cache,
        cache_stats=cache_stats, profile_workers=profile_workers,
    )
    rows: List[ServpodCell] = []
    for (service_name, pod), cell, cmp in zip(coords, cells, comparisons):
        for system, result in (
            ("Rhythm", cmp.rhythm),
            ("Heracles", cmp.heracles),
        ):
            metrics = result.machine(pod)
            rows.append(
                ServpodCell(
                    service=service_name,
                    servpod=pod,
                    be_job=cell.be_spec.name,
                    load=cell.load,
                    system=system,
                    be_throughput=metrics.avg_be_throughput,
                    cpu_utilisation=metrics.avg_cpu_utilisation,
                    membw_utilisation=metrics.avg_membw_utilisation,
                )
            )
    return rows


def average_gain(
    rows: Sequence[ServpodCell], servpod: str, column: str
) -> float:
    """Average Rhythm−Heracles gain of one column at one Servpod.

    ``column`` is one of ``be_throughput``, ``cpu_utilisation``,
    ``membw_utilisation`` — the quantities of Figures 9, 10, 11.
    """
    pairs: Dict[Tuple[str, float], Dict[str, float]] = {}
    for row in rows:
        if row.servpod != servpod:
            continue
        pairs.setdefault((row.be_job, row.load), {})[row.system] = getattr(row, column)
    gains = [
        cell["Rhythm"] - cell["Heracles"]
        for cell in pairs.values()
        if "Rhythm" in cell and "Heracles" in cell
    ]
    return sum(gains) / len(gains) if gains else 0.0
