"""Figure 15 — production-load heatmaps (§5.3.1).

Under the ClarkNet production trace, the four panels show per
(LC service, BE job) cell:

(a) average EMU improvement of Rhythm over Heracles (%),
(b) average CPU-utilisation improvement (%),
(c) average memory-bandwidth-utilisation improvement (%),
(d) Rhythm's worst p99 normalized to the SLA — the safety panel; the
    paper's worst cell is 0.99 and *no* cell violates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.bejobs.catalog import evaluation_be_jobs
from repro.bejobs.spec import BeJobSpec
from repro.experiments.colocation import ColocationConfig
from repro.loadgen.clarknet import clarknet_production_load
from repro.parallel.grid import GridCell, run_comparison_grid
from repro.loadgen.patterns import LoadPattern
from repro.workloads.catalog import LC_CATALOG
from repro.workloads.spec import ServiceSpec


@dataclass(frozen=True)
class ProductionCell:
    """One heatmap cell of Figure 15."""

    service: str
    be_job: str
    emu_improvement: float
    cpu_improvement: float
    membw_improvement: float
    worst_p99_over_sla: float
    rhythm_violations: int
    be_kills: int


def run_figure15(
    services: Optional[Sequence[str]] = None,
    be_specs: Optional[Sequence[BeJobSpec]] = None,
    duration_s: float = 600.0,
    seed: int = 0,
    pattern: Optional[LoadPattern] = None,
    config: Optional[ColocationConfig] = None,
    service_builder: Optional[Callable[[str], ServiceSpec]] = None,
    workers: Optional[int] = None,
    cache=None,
    cache_stats=None,
    profile_workers: Optional[int] = None,
) -> List[ProductionCell]:
    """Run the production-load grid; one row per (service, BE) cell.

    The production pattern compresses five synthetic ClarkNet days into
    ``duration_s`` (the paper compresses five real days into six hours).
    Cells run on the parallel grid engine (``workers`` as in
    :func:`repro.parallel.pool.resolve_workers`; ``profile_workers``
    sets the profiling fan-out, sharing the same pool); ``cache``/
    ``cache_stats`` pass through for incremental re-execution.
    """
    service_names = list(services) if services is not None else list(LC_CATALOG)
    be_specs = list(be_specs) if be_specs is not None else evaluation_be_jobs()
    builder = service_builder or (lambda name: LC_CATALOG[name]())
    pattern = pattern or clarknet_production_load(duration_s=duration_s, days=1)
    config = config or ColocationConfig(duration_s=duration_s)
    cells: List[GridCell] = []
    sla_by_service: dict = {}
    for service_name in service_names:
        spec = builder(service_name)
        sla_by_service[service_name] = spec.sla_ms
        for be in be_specs:
            cells.append(GridCell(spec, be, load=0.5, seed=seed, pattern=pattern))
    comparisons = run_comparison_grid(
        cells, config=config, workers=workers, cache=cache,
        cache_stats=cache_stats, profile_workers=profile_workers,
    )
    return [
        ProductionCell(
            service=cell.service.name,
            be_job=cell.be_spec.name,
            emu_improvement=cmp.emu_improvement,
            cpu_improvement=cmp.cpu_improvement,
            membw_improvement=cmp.membw_improvement,
            worst_p99_over_sla=cmp.rhythm.worst_tail_ms
            / sla_by_service[cell.service.name],
            rhythm_violations=cmp.rhythm.sla_violations,
            be_kills=cmp.rhythm.be_kills,
        )
        for cell, cmp in zip(cells, comparisons)
    ]


def worst_safety_cell(rows: Sequence[ProductionCell]) -> ProductionCell:
    """The cell with the largest worst-p99/SLA ratio (panel d's maximum)."""
    return max(rows, key=lambda r: r.worst_p99_over_sla)
