"""Figure 18 + Table 2 — threshold sensitivity (§5.4.2).

Fixing the other Servpods' thresholds, MySQL's slacklimit (respectively
loadlimit) is varied over 70–130% of its derived value; each setting
runs the production load with a DRAM-intensive BE (the stressor that
makes MySQL's thresholds bind) and reports normalized BE throughput,
SLA violations and BE kills.

Expected shape (Table 2): lowering the slacklimit below the derived
value buys BE throughput at the cost of SLA violations and BE kills;
raising it wastes throughput at zero violations. For the loadlimit the
derived value (and slightly below) is violation-free while higher
settings start violating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bejobs.catalog import STREAM_DRAM
from repro.bejobs.spec import BeJobSpec
from repro.core.top_controller import ControllerThresholds, TopController
from repro.experiments.colocation import ColocationConfig, ColocationExperiment
from repro.loadgen.clarknet import clarknet_production_load
from repro.loadgen.patterns import LoadPattern
from repro.sim.rng import RandomStreams
from repro.workloads.catalog import ecommerce_service
from repro.workloads.spec import ServiceSpec

#: The sweep levels, as fractions of the derived threshold value.
SWEEP_LEVELS = (0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3)


@dataclass(frozen=True)
class ThresholdSweepRow:
    """One point of Figure 18 / one row of Table 2."""

    varied: str  # "slacklimit" | "loadlimit"
    level: float  # fraction of the derived value
    value: float  # the actual threshold used
    be_throughput: float
    sla_violations: int
    be_kills: int


def run_figure18(
    service: Optional[ServiceSpec] = None,
    target_servpod: str = "mysql",
    be_spec: BeJobSpec = STREAM_DRAM,
    levels: Sequence[float] = SWEEP_LEVELS,
    duration_s: float = 600.0,
    seed: int = 0,
    pattern: Optional[LoadPattern] = None,
    config: Optional[ColocationConfig] = None,
) -> List[ThresholdSweepRow]:
    """Sweep the target Servpod's slacklimit and loadlimit levels."""
    spec = service or ecommerce_service()
    pattern = pattern or clarknet_production_load(duration_s=duration_s, seed=seed + 1, days=1)
    config = config or ColocationConfig(duration_s=duration_s)
    from repro.experiments.runner import get_rhythm

    rhythm = get_rhythm(spec, seed=seed)
    base_loadlimits = rhythm.loadlimits()
    base_slacklimits = rhythm.slacklimits()

    rows: List[ThresholdSweepRow] = []
    for varied in ("slacklimit", "loadlimit"):
        derived = (
            base_slacklimits[target_servpod]
            if varied == "slacklimit"
            else base_loadlimits[target_servpod]
        )
        for level in levels:
            value = derived * level
            if not (0.0 < value <= 1.0):
                continue  # the paper's "-" cells (loadlimit 130% > 1)
            controllers = {}
            for pod in spec.servpod_names:
                loadlimit = base_loadlimits[pod]
                slacklimit = base_slacklimits[pod]
                if pod == target_servpod:
                    if varied == "slacklimit":
                        slacklimit = value
                    else:
                        loadlimit = value
                controllers[pod] = TopController(
                    servpod=pod,
                    thresholds=ControllerThresholds(
                        loadlimit=min(1.0, loadlimit),
                        slacklimit=min(1.0, max(0.01, slacklimit)),
                    ),
                    sla_ms=spec.sla_ms,
                )
            experiment = ColocationExperiment(
                spec,
                controllers,
                [be_spec],
                pattern,
                streams=RandomStreams(seed),
                config=config,
            )
            result = experiment.run()
            rows.append(
                ThresholdSweepRow(
                    varied=varied,
                    level=level,
                    value=value,
                    be_throughput=result.be_throughput,
                    sla_violations=result.sla_violations,
                    be_kills=result.be_kills,
                )
            )
    return rows


def normalized_throughput(rows: Sequence[ThresholdSweepRow], varied: str) -> dict:
    """BE throughput per level, normalized to the 100% level's value."""
    subset = {r.level: r.be_throughput for r in rows if r.varied == varied}
    base = subset.get(1.0)
    if not base:
        return {level: 0.0 for level in subset}
    return {level: tput / base for level, tput in subset.items()}
