"""Figure 16 — Rhythm on microservices (SNMS, §5.3.2).

For each BE job and load (20–100%), three stacked levels per metric:

- the LC service running solo (no co-location),
- the additional EMU/CPU/MemBW Heracles' co-location achieves,
- the further improvement Rhythm achieves on top.

SNMS uses its built-in jaeger tracer for profiling, not Rhythm's request
tracer. Paper averages: Rhythm beats Heracles by 14.3% EMU, 30.2% CPU
and 45.8% MemBW utilisation on SNMS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.baselines.static import LcSoloPolicy
from repro.bejobs.catalog import evaluation_be_jobs
from repro.bejobs.spec import BeJobSpec
from repro.experiments.colocation import ColocationConfig
from repro.experiments.runner import compare_systems, run_cell
from repro.loadgen.patterns import ConstantLoad
from repro.workloads.microservices import snms_service
from repro.workloads.spec import ServiceSpec

#: Figure 16's x-axis loads.
FIGURE16_LOADS = (0.2, 0.4, 0.6, 0.8, 1.0)


@dataclass(frozen=True)
class MicroserviceCell:
    """One (BE, load) cell with the three stacked levels per metric."""

    be_job: str
    load: float
    emu_solo: float
    emu_heracles: float
    emu_rhythm: float
    cpu_solo: float
    cpu_heracles: float
    cpu_rhythm: float
    membw_solo: float
    membw_heracles: float
    membw_rhythm: float


def run_figure16(
    be_specs: Optional[Sequence[BeJobSpec]] = None,
    loads: Sequence[float] = FIGURE16_LOADS,
    seed: int = 0,
    config: Optional[ColocationConfig] = None,
    service: Optional[ServiceSpec] = None,
) -> List[MicroserviceCell]:
    """Run the SNMS grid: solo vs Heracles vs Rhythm per (BE, load)."""
    spec = service or snms_service()
    be_specs = list(be_specs) if be_specs is not None else evaluation_be_jobs()
    config = config or ColocationConfig(duration_s=60.0)
    solo_policy = LcSoloPolicy()
    rows: List[MicroserviceCell] = []
    for be in be_specs:
        for load in loads:
            pattern = ConstantLoad(min(1.0, load))
            solo = run_cell(
                spec,
                solo_policy.controllers(spec),
                be,
                pattern,
                seed=seed,
                config=config,
            )
            cmp = compare_systems(
                spec,
                be,
                load=min(1.0, load),
                seed=seed,
                config=config,
                profiling_mode="jaeger",
            )
            rows.append(
                MicroserviceCell(
                    be_job=be.name,
                    load=load,
                    emu_solo=solo.emu,
                    emu_heracles=cmp.heracles.emu,
                    emu_rhythm=cmp.rhythm.emu,
                    cpu_solo=solo.cpu_utilisation,
                    cpu_heracles=cmp.heracles.cpu_utilisation,
                    cpu_rhythm=cmp.rhythm.cpu_utilisation,
                    membw_solo=solo.membw_utilisation,
                    membw_heracles=cmp.heracles.membw_utilisation,
                    membw_rhythm=cmp.rhythm.membw_utilisation,
                )
            )
    return rows


def average_rhythm_gain_over_heracles(
    rows: Sequence[MicroserviceCell], metric: str
) -> float:
    """Relative average gain of Rhythm over Heracles for one metric.

    ``metric`` is ``"emu"``, ``"cpu"`` or ``"membw"``.
    """
    gains = []
    for row in rows:
        heracles = getattr(row, f"{metric}_heracles")
        rhythm = getattr(row, f"{metric}_rhythm")
        if heracles > 1e-9:
            gains.append((rhythm - heracles) / heracles)
    return sum(gains) / len(gains) if gains else 0.0
