"""Figure 8 — deriving loadlimit from the CoV-vs-load curve (§3.5.1).

For each Servpod the panel shows the solo-run CoV of sojourn times over
the request load, its sweep average, and the derived loadlimit — the
first load point whose CoV exceeds the average. The paper's values for
E-commerce: MySQL ≈ 0.76, Tomcat ≈ 0.87.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.loadlimit import derive_loadlimit
from repro.core.profiler import DEFAULT_LOADS, ServiceProfiler
from repro.sim.rng import RandomStreams
from repro.workloads.catalog import ecommerce_service
from repro.workloads.spec import ServiceSpec


@dataclass
class Figure8Data:
    """CoV curves, averages and loadlimits for every Servpod."""

    service: str
    loads: List[float]
    covs: Dict[str, List[float]] = field(default_factory=dict)
    mean_cov: Dict[str, float] = field(default_factory=dict)
    loadlimit: Dict[str, float] = field(default_factory=dict)


def run_figure8(
    service: Optional[ServiceSpec] = None,
    loads: Sequence[float] = DEFAULT_LOADS,
    requests_per_load: int = 500,
    seed: int = 0,
    mode: str = "direct",
) -> Figure8Data:
    """Profile the service and derive every Servpod's loadlimit."""
    spec = service or ecommerce_service()
    profiler = ServiceProfiler(
        spec,
        streams=RandomStreams(seed),
        loads=loads,
        requests_per_load=requests_per_load,
        mode=mode,
    )
    result = profiler.profile()
    data = Figure8Data(service=spec.name, loads=list(result.loads))
    for pod in spec.servpod_names:
        covs = result.covs[pod]
        data.covs[pod] = list(covs)
        data.mean_cov[pod] = sum(covs) / len(covs)
        data.loadlimit[pod] = derive_loadlimit(result.loads, covs)
    return data
