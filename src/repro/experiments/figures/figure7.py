"""Figure 7 — Servpod sensitivity vs contribution (§3.4 validation).

For each of the four E-commerce Servpods, the x-axis is the derived
contribution C_i and the y-axis the measured *sensitivity*: the increase
in the service's p99 when only that Servpod is interfered, under four BE
choices (mixed, stream-dram, CPU-stress, stream-llc). The paper's claim,
which this driver validates: sensitivity is positively correlated with
contribution no matter which BE generates the interference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.figures.figure2 import CHARACTERIZATION_PRESSURES
from repro.core.contribution import pearson
from repro.core.rhythm import Rhythm, RhythmConfig
from repro.interference.model import InterferenceModel, Pressure
from repro.metrics.percentile import percentile
from repro.sim.rng import RandomStreams
from repro.workloads.catalog import ecommerce_service
from repro.workloads.service import Service, ServiceState
from repro.workloads.spec import ServiceSpec

#: Figure 7's four interference panels. "mixed" averages the pressure of
#: a representative blend of the six evaluation BEs.
FIGURE7_PRESSURES: Dict[str, Pressure] = {
    "mixed": Pressure(cpu=0.45, llc=0.45, membw=0.55, net=0.25, freq=0.10),
    "stream-dram": CHARACTERIZATION_PRESSURES["stream_dram(big)"],
    "CPU-stress": CHARACTERIZATION_PRESSURES["CPU_stress"],
    "stream-llc": CHARACTERIZATION_PRESSURES["stream_llc(big)"],
}


@dataclass(frozen=True)
class Figure7Row:
    """One scatter point of Figure 7."""

    servpod: str
    be_kind: str
    contribution: float
    sensitivity: float  # relative p99 increase under interference


def run_figure7(
    service: Optional[ServiceSpec] = None,
    load: float = 0.7,
    samples: int = 5000,
    seed: int = 0,
    model: Optional[InterferenceModel] = None,
) -> List[Figure7Row]:
    """Generate the sensitivity-vs-contribution scatter."""
    spec = service or ecommerce_service()
    model = model or InterferenceModel()
    rhythm = Rhythm(spec, RandomStreams(seed), RhythmConfig(profiling_mode="direct"))
    contributions = {
        pod: c.contribution for pod, c in rhythm.contributions().contributions.items()
    }
    solo = Service(spec, RandomStreams(seed))
    p99_solo = float(percentile(solo.sample_e2e(load, samples), spec.tail_percentile))

    from repro.cluster.machine import Machine
    from repro.core.servpod import Servpod

    rows: List[Figure7Row] = []
    for be_kind, pressure in FIGURE7_PRESSURES.items():
        for pod_spec in spec.servpods:
            servpod = Servpod(spec=pod_spec, machine=Machine())
            slowdown = servpod.slowdown(pressure, load, model)
            state = ServiceState(
                slowdowns={pod_spec.name: slowdown},
                sigma_inflations={pod_spec.name: model.sigma_inflation(slowdown)},
            )
            svc = Service(spec, RandomStreams(seed))
            p99 = float(
                percentile(svc.sample_e2e(load, samples, state), spec.tail_percentile)
            )
            rows.append(
                Figure7Row(
                    servpod=pod_spec.name,
                    be_kind=be_kind,
                    contribution=contributions[pod_spec.name],
                    sensitivity=(p99 - p99_solo) / p99_solo,
                )
            )
    return rows


def correlation_by_be(rows: Sequence[Figure7Row]) -> Dict[str, float]:
    """Pearson correlation of sensitivity vs contribution, per BE panel."""
    out: Dict[str, float] = {}
    kinds = sorted({row.be_kind for row in rows})
    for kind in kinds:
        xs = [r.contribution for r in rows if r.be_kind == kind]
        ys = [r.sensitivity for r in rows if r.be_kind == kind]
        out[kind] = pearson(xs, ys)
    return out
