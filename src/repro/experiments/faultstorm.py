"""The fault-storm experiment: Rhythm vs Heracles under machine failures.

The paper evaluates both systems on healthy machines; real clusters are
not healthy. This driver generates one seeded
:class:`~repro.faults.spec.FaultSchedule` over the service's machines
(cores offlining mid-run, DVFS caps sticking low, LLC ways dying, NIC
rates collapsing, transient stalls) and runs the *same* storm under
Rhythm's per-Servpod controllers and the Heracles uniform baseline with
matched seeds — the only difference between the two runs is the control
policy, so the SLA-violation and EMU gap is attributable to it.

The hypothesis this measures: Rhythm's component-distinguishable
thresholds react to a *single* degraded Servpod (its own slack
collapses, its own controller acts) while Heracles' uniform thresholds
only react once the service-level tail is already violated.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.baselines.heracles import HeraclesPolicy, heracles_controllers
from repro.bejobs.spec import BeJobSpec
from repro.errors import ExperimentError
from repro.experiments.colocation import ColocationConfig, ColocationResult
from repro.experiments.runner import build_rhythm_controllers, run_cell
from repro.faults.spec import FaultKind, FaultSchedule
from repro.workloads.spec import ServiceSpec


@dataclass
class FaultStormResult:
    """Both systems' outcomes under one identical fault storm."""

    service: str
    be_job: str
    load: float
    duration_s: float
    schedule: FaultSchedule
    rhythm: ColocationResult
    heracles: ColocationResult

    @property
    def faults_injected(self) -> int:
        """How many fault windows the storm contained."""
        return len(self.schedule)

    @property
    def violation_gap(self) -> int:
        """Heracles' SLA violations minus Rhythm's (positive favours Rhythm)."""
        return self.heracles.sla_violations - self.rhythm.sla_violations

    @property
    def emu_gap(self) -> float:
        """Rhythm's EMU minus Heracles' under the storm."""
        return self.rhythm.emu - self.heracles.emu

    def summary_rows(self) -> Sequence[Tuple[str, ColocationResult]]:
        """(system name, result) pairs for tabular reports."""
        return (("rhythm", self.rhythm), ("heracles", self.heracles))


def run_fault_storm(
    service: ServiceSpec,
    be_spec: BeJobSpec,
    load: float = 0.5,
    duration_s: float = 240.0,
    seed: int = 0,
    storm_seed: int = 1,
    faults_per_minute: float = 3.0,
    kinds: Optional[Sequence[FaultKind]] = None,
    config: Optional[ColocationConfig] = None,
    probe_slacklimits: bool = False,
) -> FaultStormResult:
    """Run one (service, BE, load) cell under a fault storm, both systems.

    ``seed`` drives the workload randomness (arrivals, latency draws) and
    ``storm_seed`` the fault schedule, independently — so one can hold
    the storm fixed while varying traffic, or sweep storms over fixed
    traffic. Machines are named after their Servpods by
    :func:`~repro.core.servpod.deploy_service`, so the schedule targets
    the service's Servpod names directly.
    """
    if not (0.0 <= load <= 1.0):
        raise ExperimentError(f"load must be in [0,1], got {load!r}")
    if duration_s <= 0:
        raise ExperimentError(f"duration_s must be positive, got {duration_s}")
    from repro.loadgen.patterns import ConstantLoad

    schedule = FaultSchedule.generate(
        storm_seed,
        duration_s,
        targets=tuple(service.servpod_names),
        faults_per_minute=faults_per_minute,
        kinds=kinds,
    )
    base = config or ColocationConfig()
    storm_config = replace(base, duration_s=duration_s, faults=schedule)
    pattern = ConstantLoad(load)
    rhythm_controllers: Dict = build_rhythm_controllers(
        service, seed, probe_slacklimits=probe_slacklimits
    )
    rhythm_result = run_cell(
        service, rhythm_controllers, be_spec, pattern, seed=seed, config=storm_config
    )
    heracles_result = run_cell(
        service,
        heracles_controllers(service, HeraclesPolicy()),
        be_spec,
        pattern,
        seed=seed,
        config=storm_config,
    )
    return FaultStormResult(
        service=service.name,
        be_job=be_spec.name,
        load=load,
        duration_s=duration_s,
        schedule=schedule,
        rhythm=rhythm_result,
        heracles=heracles_result,
    )
