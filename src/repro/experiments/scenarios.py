"""Production-ops scenario drivers: storms, canary, drift, capacity.

Four seeded scenarios on top of the fleet layer, each reusing the
existing machinery unchanged:

- :func:`storm_fleet` / :func:`run_fleet_storm` — overlay a
  :class:`~repro.faults.topology.CorrelatedFaultSchedule` (rack power,
  AZ cooling, ToR degrade) on a fleet and run it under multiple
  policies. The storm expands into per-instance
  :class:`~repro.faults.spec.FaultSchedule`\\ s riding inside
  :class:`~repro.experiments.fleet.FleetInstanceSpec.faults`, so the
  injector, the fleet kernel, sharding, and the zone cache all work
  unchanged — and a storm invalidates exactly its blast-radius zones'
  cache entries.
- :func:`run_canary` — rolling-release canary: one instance per zone
  runs a "new version" with a shifted latency distribution (a
  whole-run low-magnitude machine stall); regression is detected from
  the canary's tail contribution relative to its zone's controls.
- :func:`run_drift` — slow workload drift: the profiling sweep grid
  slides epoch by epoch, and the load-point-granular profile cache
  makes re-profiling incremental (only the newly-entered load points
  simulate).
- :func:`run_capacity` — capacity-planning what-if: for each demand
  multiplier, the minimum fleet size whose SLA-violation rate stays
  under target. The search resumes from the previous multiplier's
  answer, so the reported curve is non-decreasing by construction
  (capacity is only ever added, as in a real planning exercise).

Every driver is a pure function of its seeds: all randomness flows
through :func:`~repro.faults.spec._derived_rng`-style generators or the
fleet's own seeded builders.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cache import CacheStore
from repro.core.rhythm import RhythmConfig
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.fleet import (
    _BE_MIXES,
    _DEFAULT_SERVICES,
    FleetConfig,
    FleetExperiment,
    FleetInstanceSpec,
    FleetResult,
    alibaba_fleet,
    heracles_fleet_policies,
    rhythm_fleet_policies,
)
from repro.faults.spec import FaultKind, FaultSchedule, FaultSpec, _derived_rng
from repro.faults.topology import (
    CorrelatedFaultSchedule,
    FleetTopology,
    merge_schedules,
)
from repro.loadgen.patterns import ConstantLoad
from repro.parallel.profile import (
    ProfileStats,
    profile_service_parallel,
    resolve_store,
)
from repro.workloads.catalog import lc_service_spec

# -- correlated storms over a fleet ---------------------------------------


def storm_fleet(
    experiment: FleetExperiment, storm: CorrelatedFaultSchedule
) -> FleetExperiment:
    """A new fleet with the storm's faults overlaid on its instances.

    The storm's topology must match the fleet's shape (instance count
    and ``zone_size``) — that alignment is what makes the blast radius
    a set of whole zones and keeps the zone-cache contract exact.
    Instances outside every blast radius keep their spec object
    *untouched* (same cache key); instances inside get their existing
    fault schedule merged with the storm's expansion.
    """
    topo = storm.topology
    if topo.n_instances != len(experiment.instances):
        raise ExperimentError(
            f"storm topology covers {topo.n_instances} instances but the "
            f"fleet has {len(experiment.instances)}"
        )
    if topo.zone_size != experiment.config.zone_size:
        raise ExperimentError(
            f"storm topology zone_size {topo.zone_size} disagrees with "
            f"fleet zone_size {experiment.config.zone_size}"
        )
    expanded = storm.per_instance_schedules()
    instances = list(experiment.instances)
    for index, schedule in expanded.items():
        instances[index] = replace(
            instances[index],
            faults=merge_schedules(instances[index].faults, schedule),
        )
    return FleetExperiment(instances, experiment.config)


@dataclass
class FleetStormReport:
    """One correlated storm run under one or more fleet policies."""

    storm: CorrelatedFaultSchedule
    duration_s: float
    #: (policy name, stormed-fleet result), in run order.
    results: List[Tuple[str, FleetResult]] = field(default_factory=list)
    #: (policy name, healthy baseline result) when requested.
    baselines: List[Tuple[str, FleetResult]] = field(default_factory=list)

    @property
    def topology(self) -> FleetTopology:
        return self.storm.topology

    def result(self, policy: str) -> FleetResult:
        for name, res in self.results:
            if name == policy:
                return res
        raise ExperimentError(f"no stormed result for policy {policy!r}")

    def baseline(self, policy: str) -> FleetResult:
        for name, res in self.baselines:
            if name == policy:
                return res
        raise ExperimentError(f"no baseline result for policy {policy!r}")


def run_fleet_storm(
    n_machines: int = 64,
    policies: Sequence[str] = ("rhythm", "heracles"),
    duration_s: float = 120.0,
    seed: int = 0,
    storm_seed: int = 1,
    events_per_minute: float = 1.0,
    services: Sequence[str] = _DEFAULT_SERVICES,
    load: str = "diurnal",
    config: Optional[FleetConfig] = None,
    cache: Union[None, bool, CacheStore] = None,
    with_baseline: bool = False,
) -> FleetStormReport:
    """One seeded storm, same domain events, run under each policy.

    The topology is generated from ``storm_seed`` over the fleet's
    actual shape, so every policy faces the *identical* blast radii
    and event windows — the fleet analogue of the single-machine
    ``chaos`` command. ``with_baseline`` also runs each policy's
    healthy (storm-free) fleet for side-by-side degradation numbers.
    """
    report: Optional[FleetStormReport] = None
    for policy in policies:
        fleet = alibaba_fleet(
            n_machines,
            policy=policy,
            duration_s=duration_s,
            seed=seed,
            services=services,
            config=config,
            load=load,
        )
        if report is None:
            topology = FleetTopology.generate(
                storm_seed,
                n_instances=len(fleet.instances),
                zone_size=fleet.config.zone_size,
            )
            storm = CorrelatedFaultSchedule.generate(
                storm_seed,
                topology,
                duration_s,
                events_per_minute=events_per_minute,
            )
            report = FleetStormReport(storm=storm, duration_s=duration_s)
        else:
            if len(fleet.instances) != report.topology.n_instances:
                raise ExperimentError(
                    f"policy {policy!r} built {len(fleet.instances)} "
                    f"instances; {report.topology.n_instances} expected — "
                    "policies must shape the fleet identically"
                )
        if with_baseline:
            report.baselines.append((policy, fleet.run(cache=cache)))
        stormed = storm_fleet(fleet, report.storm)
        report.results.append((policy, stormed.run(cache=cache)))
    if report is None:
        raise ConfigurationError("need at least one policy to run a storm")
    return report


def storm_identity_probe(
    mode: str = "fleet",
    n_instances: int = 6,
    duration_s: float = 60.0,
    seed: int = 3,
    storm_seed: int = 7,
    shards: int = 1,
) -> str:
    """Digest of a small stormed fleet under ``mode``.

    Module-level and importable by reference (spawn-safe), mirroring
    :func:`~repro.experiments.fleet.fleet_identity_probe`: identity
    tests run it in fork- and spawn-started children and across shard
    counts, and equal digests mean the stormed fleet is bit-identical
    to the sequential scalar reference.
    """
    if mode not in ("fleet", "reference"):
        raise ExperimentError(
            f"mode must be 'fleet' or 'reference', got {mode!r}"
        )
    config = FleetConfig(
        duration_s=duration_s, shards=shards, workers=1, zone_size=2
    )
    fleet = alibaba_fleet(
        2 * n_instances,
        policy="heracles",
        duration_s=duration_s,
        seed=seed,
        config=config,
    )
    topology = FleetTopology.generate(
        storm_seed, n_instances=len(fleet.instances), zone_size=2
    )
    storm = CorrelatedFaultSchedule.generate(
        storm_seed, topology, duration_s, events_per_minute=2.0
    )
    stormed = storm_fleet(fleet, storm)
    result = stormed.run() if mode == "fleet" else stormed.run_reference()
    return result.digest


def storm_schedule_probe(
    seed: int = 0,
    n_instances: int = 32,
    zone_size: int = 4,
    duration_s: float = 300.0,
    events_per_minute: float = 1.0,
) -> str:
    """Canonical repr of a generated storm and its full expansion.

    Importable by reference so the property tests can assert the
    expansion is a pure function of ``(seed, topology)`` across fork-
    and spawn-started processes: equal strings mean byte-identical
    topology, events, and per-instance fault streams.
    """
    topology = FleetTopology.generate(
        seed, n_instances=n_instances, zone_size=zone_size
    )
    storm = CorrelatedFaultSchedule.generate(
        seed, topology, duration_s, events_per_minute=events_per_minute
    )
    expansion = sorted(storm.per_instance_schedules().items())
    return repr((topology, storm.events, expansion))


# -- rolling-release canary ------------------------------------------------

#: The canary's "new version": a whole-run machine stall whose
#: magnitude shifts the latency distribution of every request on the
#: canary instance (see ``repro.faults.cluster.STALL_SLOWDOWN_SPAN``).
CANARY_FAULT_KIND = FaultKind.MACHINE_STALL


@dataclass(frozen=True)
class CanaryZoneVerdict:
    """One zone's canary A/B comparison: new version vs old, same traffic."""

    zone: int
    canary_index: int
    canary_tail_ms: float
    #: The same instance's worst tail in the healthy baseline run.
    baseline_tail_ms: float
    #: canary / baseline tail ratio (inf when the baseline saw no tail).
    tail_ratio: float
    regressed: bool


@dataclass
class CanaryReport:
    """Outcome of one rolling-release canary run."""

    result: FleetResult
    baseline: FleetResult
    verdicts: List[CanaryZoneVerdict]
    threshold: float
    slowdown: float

    @property
    def regressed_zones(self) -> Tuple[int, ...]:
        return tuple(v.zone for v in self.verdicts if v.regressed)

    @property
    def detection_rate(self) -> float:
        """Fraction of zones whose canary was flagged."""
        if not self.verdicts:
            return 0.0
        return len(self.regressed_zones) / len(self.verdicts)


def canary_indices(
    n_instances: int, zone_size: int, canary_seed: int
) -> Tuple[int, ...]:
    """The seeded per-zone canary picks (one instance per zone).

    Pure function of its arguments: picks derive from a dedicated RNG
    (salt ``"canary-roll"``), one draw per zone in zone order.
    """
    rng = _derived_rng(canary_seed, "canary-roll")
    picks = []
    for zid in range(math.ceil(n_instances / zone_size)):
        start = zid * zone_size
        width = min(n_instances, start + zone_size) - start
        picks.append(start + int(rng.integers(width)))
    return tuple(picks)


def run_canary(
    n_machines: int = 32,
    policy: str = "heracles",
    duration_s: float = 120.0,
    seed: int = 0,
    canary_seed: int = 1,
    slowdown: float = 0.08,
    threshold: float = 1.10,
    services: Sequence[str] = _DEFAULT_SERVICES,
    config: Optional[FleetConfig] = None,
    cache: Union[None, bool, CacheStore] = None,
) -> CanaryReport:
    """Roll a shifted-latency "new version" onto one instance per zone.

    Each zone's canary gets a whole-run :data:`CANARY_FAULT_KIND` fault
    of magnitude ``slowdown`` — every request on that instance runs on
    a stalled machine, shifting its latency distribution exactly the
    way a bad release would. Detection is an A/B against the *same
    instance* in a healthy baseline run of the identical fleet (same
    seeds, same traffic): a canary/baseline worst-tail ratio above
    ``threshold`` flags the zone as regressed. Comparing an instance
    to itself — not to its zone neighbours, whose seeds and load
    phases differ — is what makes detection deterministic, and both
    runs are plain fleets, so the zone cache serves repeats.

    With ``slowdown`` at 0.08 the stall is ~1.7× (see
    ``STALL_SLOWDOWN_SPAN``), well clear of the default 1.10 ratio
    threshold. Detection is still a measurement, not an axiom: the
    stall also feeds back through the controller (higher tails throttle
    BE jobs, removing interference), which can partially mask a small
    regression over a short window — larger ``slowdown`` values detect
    unconditionally (pinned by ``tests/test_scenarios.py``).
    """
    if not (0.0 < slowdown <= 1.0):
        raise ConfigurationError(
            f"canary slowdown must be in (0, 1], got {slowdown}"
        )
    if threshold <= 0:
        raise ConfigurationError(
            f"canary threshold must be > 0, got {threshold}"
        )
    fleet = alibaba_fleet(
        n_machines,
        policy=policy,
        duration_s=duration_s,
        seed=seed,
        services=services,
        config=config,
    )
    zone_size = fleet.config.zone_size
    picks = canary_indices(len(fleet.instances), zone_size, canary_seed)
    shift = FaultSpec(
        kind=CANARY_FAULT_KIND,
        at_s=0.0,
        duration_s=duration_s,
        magnitude=slowdown,
    )
    instances = list(fleet.instances)
    for index in picks:
        canary_schedule = FaultSchedule(seed=canary_seed, faults=(shift,))
        instances[index] = replace(
            instances[index],
            faults=merge_schedules(instances[index].faults, canary_schedule),
        )
    baseline = fleet.run(cache=cache)
    result = FleetExperiment(instances, fleet.config).run(cache=cache)
    by_index = {s.index: s for s in result.instances}
    healthy = {s.index: s for s in baseline.instances}
    verdicts: List[CanaryZoneVerdict] = []
    for zid, canary_index in enumerate(picks):
        canary_tail = by_index[canary_index].worst_tail_ms
        baseline_tail = healthy[canary_index].worst_tail_ms
        ratio = (
            canary_tail / baseline_tail if baseline_tail > 0 else float("inf")
        )
        verdicts.append(
            CanaryZoneVerdict(
                zone=zid,
                canary_index=canary_index,
                canary_tail_ms=canary_tail,
                baseline_tail_ms=baseline_tail,
                tail_ratio=ratio,
                regressed=ratio > threshold,
            )
        )
    return CanaryReport(
        result=result,
        baseline=baseline,
        verdicts=verdicts,
        threshold=threshold,
        slowdown=slowdown,
    )


# -- slow workload drift ---------------------------------------------------


@dataclass(frozen=True)
class DriftEpochReport:
    """One drift epoch's profiling work accounting."""

    epoch: int
    loads: Tuple[float, ...]
    sweep_points: int
    sweep_executed: int
    sweep_cache_hits: int
    artifact_cache_hits: int
    #: The epoch's derived per-pod loadlimits, sorted by pod.
    loadlimits: Tuple[Tuple[str, float], ...]


@dataclass
class DriftReport:
    """Outcome of one workload-drift re-profiling run."""

    service: str
    epochs: List[DriftEpochReport]

    @property
    def total_executed(self) -> int:
        return sum(e.sweep_executed for e in self.epochs)

    @property
    def total_cached(self) -> int:
        return sum(e.sweep_cache_hits for e in self.epochs)


def drift_grid(
    epoch: int,
    start: float = 0.20,
    step: float = 0.10,
    window: int = 5,
    drift_per_epoch: float = 0.10,
) -> Tuple[float, ...]:
    """Epoch ``epoch``'s profiling grid: the base window, slid right.

    Points are rounded to 4 decimals so the same nominal level hashes
    to the same :func:`~repro.parallel.profile.load_point_cache_key`
    in every epoch — that exactness is what makes overlapping windows
    hit the cache.
    """
    return tuple(
        round(start + epoch * drift_per_epoch + j * step, 4)
        for j in range(window)
    )


def run_drift(
    service: str = "Redis",
    epochs: int = 3,
    seed: int = 0,
    start: float = 0.20,
    step: float = 0.10,
    window: int = 5,
    drift_per_epoch: float = 0.10,
    requests_per_load: int = 120,
    tail_samples: int = 800,
    probe_slacklimits: bool = False,
    cache: Union[None, bool, CacheStore] = None,
) -> DriftReport:
    """Re-profile a service as its operating load range slowly drifts.

    Each epoch's sweep grid is the previous epoch's slid right by
    ``drift_per_epoch``; with ``drift_per_epoch == step`` (the default)
    consecutive grids share ``window - 1`` points, so with a cache the
    first epoch simulates the whole window and every later epoch
    simulates *only the newly-entered points* — the load-point-granular
    profile cache doing incremental re-profiling. The per-epoch
    :class:`DriftEpochReport` carries the executed/cached split plus
    the re-derived loadlimits, the signal a production controller
    would redeploy on.
    """
    if epochs < 1:
        raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
    if window < 3:
        raise ConfigurationError(
            f"window must be >= 3 (profiling needs 3 levels), got {window}"
        )
    if step <= 0 or drift_per_epoch < 0:
        raise ConfigurationError(
            f"step must be > 0 and drift >= 0, got {step}/{drift_per_epoch}"
        )
    top = start + (epochs - 1) * drift_per_epoch + (window - 1) * step
    if not (0.0 < start and top < 1.0):
        raise ConfigurationError(
            f"drift grid escapes (0, 1): starts {start}, tops out {top:.4f}"
        )
    spec = lc_service_spec(service)
    store = resolve_store(cache)
    reports: List[DriftEpochReport] = []
    for epoch in range(epochs):
        loads = drift_grid(epoch, start, step, window, drift_per_epoch)
        stats = ProfileStats()
        artifact = profile_service_parallel(
            spec,
            seed=seed,
            probe_slacklimits=probe_slacklimits,
            cache=store,
            config=RhythmConfig(
                loads=loads,
                requests_per_load=requests_per_load,
                tail_samples=tail_samples,
                profiling_mode="direct",
            ),
            stats=stats,
        )
        reports.append(
            DriftEpochReport(
                epoch=epoch,
                loads=loads,
                sweep_points=stats.sweep_points,
                sweep_executed=stats.sweep_executed,
                sweep_cache_hits=stats.sweep_cache_hits,
                artifact_cache_hits=stats.artifact_cache_hits,
                loadlimits=tuple(artifact.loadlimits),
            )
        )
    return DriftReport(service=spec.name, epochs=reports)


# -- capacity planning -----------------------------------------------------


@dataclass(frozen=True)
class CapacityRow:
    """One demand multiplier's sizing answer."""

    multiplier: float
    #: Aggregate demand in load units (sum of per-instance fractions).
    demand: float
    instances: int
    machines: int
    per_instance_load: float
    violation_rate: float


@dataclass
class CapacityReport:
    """Outcome of one capacity-planning what-if sweep."""

    service: str
    policy: str
    max_violation_rate: float
    rows: List[CapacityRow]

    def machines_needed(self) -> Tuple[Tuple[float, int], ...]:
        """(multiplier, machines) pairs, the headline planning curve."""
        return tuple((r.multiplier, r.machines) for r in self.rows)


def constant_fleet(
    n_instances: int,
    level: float,
    policy: str = "heracles",
    duration_s: float = 120.0,
    seed: int = 0,
    service: str = "Redis",
    config: Optional[FleetConfig] = None,
) -> FleetExperiment:
    """A uniform fleet: ``n_instances`` instances at constant ``level``.

    The capacity sweep's building block — per-instance seeds follow the
    ``alibaba_fleet`` convention (``seed * 1000 + k``) and BE mixes
    rotate through the catalog, so sizing runs exercise the same mix
    diversity as the synthetic trace fleet.
    """
    if n_instances < 1:
        raise ConfigurationError(
            f"n_instances must be >= 1, got {n_instances}"
        )
    if not (0.0 < level <= 1.0):
        raise ConfigurationError(
            f"per-instance load must be in (0, 1], got {level}"
        )
    policies = (
        rhythm_fleet_policies(service, seed=0)
        if policy == "rhythm"
        else heracles_fleet_policies(service)
    )
    instances = [
        FleetInstanceSpec(
            service=service,
            policies=tuple(sorted(policies.items())),
            be_jobs=_BE_MIXES[k % len(_BE_MIXES)],
            pattern=ConstantLoad(level),
            seed=seed * 1_000 + k,
        )
        for k in range(n_instances)
    ]
    return FleetExperiment(instances, config or FleetConfig(duration_s=duration_s))


def run_capacity(
    multipliers: Sequence[float] = (1.0, 1.5, 2.0),
    base_demand: float = 3.0,
    policy: str = "heracles",
    service: str = "Redis",
    duration_s: float = 120.0,
    seed: int = 0,
    max_violation_rate: float = 0.05,
    max_per_instance_load: float = 0.85,
    search_limit: int = 64,
    config: Optional[FleetConfig] = None,
    cache: Union[None, bool, CacheStore] = None,
) -> CapacityReport:
    """How many machines to serve N× the base demand at SLA.

    For each multiplier (ascending), spreads the aggregate demand
    ``base_demand * multiplier`` evenly over ``m`` instances
    (``ConstantLoad(demand / m)``) and grows ``m`` until the fleet's
    SLA-violation rate is at or under ``max_violation_rate``. The
    search starts from the previous multiplier's answer (never below
    the ``max_per_instance_load`` feasibility floor), so the curve is
    non-decreasing by construction and later multipliers reuse the
    earlier answer as their floor — exactly how an operator grows a
    fleet. With a cache, repeated sweeps (and shared fleet sizes across
    what-if variants) are served from the store.
    """
    if base_demand <= 0:
        raise ConfigurationError(
            f"base_demand must be > 0, got {base_demand}"
        )
    if not (0.0 <= max_violation_rate <= 1.0):
        raise ConfigurationError(
            f"max_violation_rate {max_violation_rate!r} out of [0, 1]"
        )
    if not (0.0 < max_per_instance_load <= 1.0):
        raise ConfigurationError(
            f"max_per_instance_load must be in (0, 1], got "
            f"{max_per_instance_load}"
        )
    ordered = sorted(float(m) for m in multipliers)
    if not ordered or ordered[0] <= 0:
        raise ConfigurationError("multipliers must be positive and non-empty")
    pods = len(lc_service_spec(service).servpod_names)
    rows: List[CapacityRow] = []
    floor = 1
    for multiplier in ordered:
        demand = base_demand * multiplier
        m = max(floor, math.ceil(demand / max_per_instance_load))
        answer: Optional[CapacityRow] = None
        while m <= search_limit:
            level = round(demand / m, 6)
            if level <= max_per_instance_load:
                fleet = constant_fleet(
                    m,
                    level,
                    policy=policy,
                    duration_s=duration_s,
                    seed=seed,
                    service=service,
                    config=config,
                )
                result = fleet.run(cache=cache)
                if result.sla_violation_rate <= max_violation_rate:
                    answer = CapacityRow(
                        multiplier=multiplier,
                        demand=demand,
                        instances=m,
                        machines=m * pods,
                        per_instance_load=level,
                        violation_rate=result.sla_violation_rate,
                    )
                    break
            m += 1
        if answer is None:
            raise ExperimentError(
                f"capacity search exhausted at {search_limit} instances for "
                f"multiplier {multiplier} (demand {demand:.2f})"
            )
        rows.append(answer)
        floor = answer.instances
    return CapacityReport(
        service=service,
        policy=policy,
        max_violation_rate=max_violation_rate,
        rows=rows,
    )
