"""The runtime co-location loop.

One :class:`ColocationExperiment` deploys an LC service one-Servpod-per-
machine, attaches a controller (Rhythm's per-Servpod thresholds, the
Heracles uniform baseline, or the LC-solo reference) plus the four
subcontrollers to every machine, and advances simulated time in control
periods. Each period it:

1. reads the load pattern and the Servpods' solo resource usage,
2. computes BE progress rates and the resulting residual pressure,
3. samples end-to-end request latencies under that pressure and closes a
   tail-latency window,
4. lets every machine's top controller decide (Algorithm 2) and its
   subcontrollers act, and
5. records per-machine metrics (EMU, utilisations, BE state — everything
   Figures 9-17 plot).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Mapping, Optional, Sequence

import numpy as np

from repro.bejobs.job import BeResourceSnapshot, LcUsage, compute_be_rates
from repro.bejobs.spec import BeJobSpec
from repro.cluster.machine import LC_DOMAIN, MachineSpec
from repro.core.actions import BeAction
from repro.core.servpod import ServpodDeployment, deploy_service
from repro.core.subcontrollers import (
    BeJobPool,
    CpuLlcSubcontroller,
    FrequencySubcontroller,
    MemorySubcontroller,
    NetworkSubcontroller,
)
from repro.core.top_controller import CONTROL_PERIOD_S, TopController
from repro.errors import ExperimentError
from repro.faults.cluster import ClusterFaultInjector
from repro.faults.spec import FaultSchedule
from repro.interference.isolation import IsolationConfig
from repro.interference.model import InterferenceModel, Pressure
from repro.loadgen.generator import WindowLoadGenerator
from repro.loadgen.patterns import LoadPattern
from repro.metrics.collector import MachineMetrics
from repro.metrics.percentile import HistogramTailTracker, percentile
from repro.sim.engine import Engine
from repro.sim.kernel import (
    BatchedColocationKernel,
    percentile_linear,
    resolve_kernel,
)
from repro.sim.rng import RandomStreams
from repro.workloads.service import Service, ServiceState
from repro.workloads.spec import ServiceSpec


@dataclass
class ColocationConfig:
    """Tunables of one co-location run."""

    duration_s: float = 120.0
    control_period_s: float = CONTROL_PERIOD_S
    #: Latency samples per control period (cap; see WindowLoadGenerator).
    sample_cap: int = 800
    min_samples: int = 100
    #: Sub-control-period traffic burstiness (lognormal sigma on the
    #: window's realised load).
    burst_sigma: float = 0.02
    max_be_instances: int = 16
    isolation: IsolationConfig = field(default_factory=IsolationConfig)
    interference: InterferenceModel = field(default_factory=InterferenceModel)
    base_machine: Optional[MachineSpec] = None
    #: CutBE escalation toggle (see CpuLlcSubcontroller; ablation knob).
    cut_escalation: bool = True
    #: Per-window tail estimator: "exact" sorts the window's samples
    #: (np.percentile); "histogram" streams them through a fixed-bin
    #: :class:`~repro.metrics.percentile.HistogramTailTracker` (O(1) per
    #: sample, bounded relative error — see its docstring).
    tail_estimator: str = "exact"
    #: Cluster-layer fault schedule injected mid-run (None = healthy run).
    faults: Optional[FaultSchedule] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tail_estimator not in ("exact", "histogram"):
            raise ExperimentError(
                f"tail_estimator must be 'exact' or 'histogram', "
                f"got {self.tail_estimator!r}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultSchedule):
            raise ExperimentError(
                f"faults must be a FaultSchedule, got "
                f"{type(self.faults).__name__}"
            )


@dataclass
class MachineRun:
    """Mutable per-machine state during a run."""

    servpod: str
    controller: TopController
    pool: BeJobPool
    metrics: MachineMetrics
    last_snapshot: BeResourceSnapshot = field(default_factory=BeResourceSnapshot)
    last_action: BeAction = BeAction.ALLOW_BE_GROWTH


@dataclass
class ColocationResult:
    """Outcome of one co-location run."""

    service: str
    duration_s: float
    lc_load_mean: float
    machines: Dict[str, MachineMetrics]
    be_kills: int
    be_suspensions: int
    sla_violations: int
    worst_tail_ms: float
    #: Simulation-kernel events executed during the run (throughput
    #: denominator for the parallel-engine benchmarks).
    events_fired: int = 0

    @property
    def be_throughput(self) -> float:
        """Average normalized BE throughput per machine."""
        if not self.machines:
            return 0.0
        return float(
            np.mean([m.avg_be_throughput for m in self.machines.values()])
        )

    @property
    def emu(self) -> float:
        """Service-level EMU: LC load + per-machine-average BE throughput."""
        return self.lc_load_mean + self.be_throughput

    @property
    def cpu_utilisation(self) -> float:
        """Average CPU utilisation across the service's machines."""
        return float(
            np.mean([m.avg_cpu_utilisation for m in self.machines.values()])
        )

    @property
    def membw_utilisation(self) -> float:
        """Average memory-bandwidth utilisation across machines."""
        return float(
            np.mean([m.avg_membw_utilisation for m in self.machines.values()])
        )

    def machine(self, servpod: str) -> MachineMetrics:
        """Metrics of one Servpod's machine."""
        try:
            return self.machines[servpod]
        except KeyError:
            raise ExperimentError(f"no machine for Servpod {servpod!r}") from None


class ColocationExperiment:
    """Runs one LC service co-located with BE jobs under a controller set."""

    def __init__(
        self,
        service: ServiceSpec,
        controllers: Mapping[str, TopController],
        be_specs: Sequence[BeJobSpec],
        pattern: LoadPattern,
        streams: Optional[RandomStreams] = None,
        config: Optional[ColocationConfig] = None,
        kernel: Optional[str] = None,
    ) -> None:
        missing = set(service.servpod_names) - set(controllers)
        if missing:
            raise ExperimentError(f"no controller for Servpods {sorted(missing)}")
        if not be_specs:
            raise ExperimentError("need at least one BE job spec")
        self.spec = service
        self.controllers = dict(controllers)
        self.be_specs = list(be_specs)
        self.pattern = pattern
        self.config = config or ColocationConfig()
        self.streams = streams or RandomStreams(self.config.seed)
        self.service = Service(service, self.streams)
        self.deployment: ServpodDeployment = deploy_service(
            service, self.config.base_machine
        )
        self._generator = WindowLoadGenerator(
            pattern,
            service.max_load_qps,
            self.streams.stream("colocation:arrivals"),
            sample_cap=self.config.sample_cap,
            min_samples=self.config.min_samples,
            burst_sigma=self.config.burst_sigma,
        )
        self._tail_estimator = (
            HistogramTailTracker(service.tail_percentile)
            if self.config.tail_estimator == "histogram"
            else None
        )
        self._fault_injector: Optional[ClusterFaultInjector] = None
        if self.config.faults is not None and len(self.config.faults) > 0:
            self._fault_injector = ClusterFaultInjector(
                self.deployment.cluster, self.config.faults
            )
        self._cpu_llc = CpuLlcSubcontroller(escalate_cut=self.config.cut_escalation)
        self._frequency = FrequencySubcontroller()
        self._memory = MemorySubcontroller()
        self._network = NetworkSubcontroller()
        self._runs: Dict[str, MachineRun] = {}
        for pod in service.servpod_names:
            machine = self.deployment.servpod(pod).machine
            self._runs[pod] = MachineRun(
                servpod=pod,
                controller=self.controllers[pod],
                pool=BeJobPool(
                    self.be_specs, machine.spec.name, self.config.max_be_instances
                ),
                metrics=MachineMetrics(
                    machine_name=machine.spec.name,
                    servpod=pod,
                    total_cores=machine.spec.cores,
                    sla_ms=service.sla_ms,
                    tail_pct=service.tail_percentile,
                ),
            )
        # Kernel selection is deliberately *not* part of the config:
        # both kernels are pinned bit-identical, so cached results are
        # shared across them (tests prove the identity that justifies
        # this — see tests/test_kernel_identity.py).
        self.kernel = resolve_kernel(kernel)
        self._batched: Optional[BatchedColocationKernel] = (
            BatchedColocationKernel(self) if self.kernel == "batched" else None
        )
        # Optional post-decision hook ``(pod, action) -> action``. Not a
        # config field (it is runtime wiring, like ``kernel``), so cache
        # keys are untouched. The fleet zone governor uses it to clamp
        # ALLOW decisions in SLA-violating zones.
        self.action_filter: Optional[Callable[[str, BeAction], BeAction]] = None

    # -- the control loop ----------------------------------------------------

    def run(self) -> ColocationResult:
        """Advance the full experiment and return its result."""
        cfg = self.config
        if (
            self._batched is not None
            and self._fault_injector is None
            and self._tail_estimator is None
        ):
            # Healthy batched runs take the fleet SoA tick path — the
            # same vectorized phases a fleet shard uses, degenerate at
            # one instance. Bit-identical to the engine-driven loop
            # (tests/test_kernel_identity.py pins it), and the tick
            # schedule reproduces the engine's float accumulation, so
            # events_fired matches too. Faulted or histogram-estimator
            # runs keep the per-instance kernel: the fleet path
            # delegates those whole-tick anyway.
            from repro.sim.kernel import FleetColocationKernel

            return FleetColocationKernel([self]).run()[0]
        engine = Engine()
        load_sum = [0.0]
        ticks = [0]

        def tick(t: float) -> None:
            self._tick(t, cfg.control_period_s)
            load_sum[0] += min(1.0, max(0.0, self.pattern.load_at(t)))
            ticks[0] += 1

        engine.every(
            cfg.control_period_s,
            tick,
            priority=Engine.PRIORITY_CONTROL,
            first_at=cfg.control_period_s,
            until=cfg.duration_s,
        )
        engine.run(until=cfg.duration_s)
        return self._result(
            load_sum[0] / max(1, ticks[0]), events_fired=engine.events_fired
        )

    def _tick(self, t: float, dt: float) -> None:
        if self._batched is not None:
            self._batched.tick(t, dt)
            return
        window = self._begin_tick(t, dt)
        load = window.load
        realized = window.realized_load

        # Phase 1: physics — BE rates, pressure, Servpod slowdowns. The
        # realised (bursty) load drives resource usage and queueing.
        slowdowns: Dict[str, float] = {}
        inflations: Dict[str, float] = {}
        snapshots: Dict[str, BeResourceSnapshot] = {}
        usages: Dict[str, LcUsage] = {}
        for pod, run in self._runs.items():
            servpod = self.deployment.servpod(pod)
            machine = servpod.machine
            usage = usages[pod] = self.service.lc_usage(pod, realized)
            self._network.apply(machine, usage.net_gbps)
            snapshot = compute_be_rates(machine, run.pool.jobs(), usage)
            snapshots[pod] = snapshot
            pressure = Pressure.from_be_snapshot(
                snapshot,
                machine.spec.cores,
                self.config.isolation,
                lc_freq_ratio=machine.dvfs.ratio(LC_DOMAIN),
            )
            if self._fault_injector is not None:
                pressure = self._fault_injector.adjust_pressure(machine, pressure)
            slowdown = servpod.slowdown(pressure, realized, self.config.interference)
            if self._fault_injector is not None:
                slowdown *= self._fault_injector.stall_factor(machine.spec.name)
            slowdowns[pod] = slowdown
            inflations[pod] = self.config.interference.sigma_inflation(slowdown)

        # Phase 2: observe latency under the current interference. The
        # window tail is computed once here and shared by the controllers
        # and every machine's metrics — re-sorting the same samples per
        # machine was the old hot path.
        state = ServiceState(slowdowns=slowdowns, sigma_inflations=inflations)
        if window.n_samples > 0:
            latencies = self.service.sample_e2e(realized, window.n_samples, state)
            tail_ms = self._window_tail(latencies)
            window_closed = True
        else:
            tail_ms = 0.0
            window_closed = False

        self._advance_be(dt, snapshots)
        self._control_phase(t, dt, load, tail_ms, window_closed, snapshots, usages)

    # -- shared tick phases (used by both kernels) ----------------------------

    def _begin_tick(self, t: float, dt: float):
        """Phase 0: the world degrades before anyone observes it — fault
        windows open/close on machine state the controllers then see
        only through their ordinary knobs (DVFS ratios, NIC shortfall,
        shrunken cpusets, inflated tails). Returns the load window."""
        if self._fault_injector is not None:
            self._fault_injector.advance(t)
        return self._generator.window(t - dt, dt)

    def _window_tail(self, latencies: np.ndarray) -> float:
        """The window tail estimate from this tick's latency samples."""
        if self._tail_estimator is not None:
            self._tail_estimator.add_samples(latencies)
            return float(self._tail_estimator.roll_window() or 0.0)
        lat = np.asarray(latencies, dtype=np.float64)
        if lat.ndim == 1 and lat.size:
            # percentile_linear is pinned bitwise to np.percentile.
            return percentile_linear(lat, self.spec.tail_percentile)
        return float(percentile(latencies, self.spec.tail_percentile))

    def _advance_be(
        self, dt: float, snapshots: Mapping[str, BeResourceSnapshot]
    ) -> None:
        """Phase 3: BE progress over this period."""
        for pod, run in self._runs.items():
            snapshot = snapshots[pod]
            for job in run.pool.running():
                job.advance(dt, snapshot.rates.get(job.job_id, 0.0))

    def _control_phase(
        self,
        t: float,
        dt: float,
        load: float,
        tail_ms: float,
        window_closed: bool,
        snapshots: Mapping[str, BeResourceSnapshot],
        usages: Mapping[str, LcUsage],
    ) -> None:
        """Phase 4: control decisions + metrics. The per-pod usage was
        computed in phase 1 (same pod, same realized load) — reuse it."""
        for pod, run in self._runs.items():
            servpod = self.deployment.servpod(pod)
            machine = servpod.machine
            snapshot = snapshots[pod]
            usage = usages[pod]
            action = run.controller.decide(load, tail_ms, t=t)
            if self.action_filter is not None:
                action = self.action_filter(pod, action)
            run.last_action = action
            run.last_snapshot = snapshot
            if window_closed:
                run.metrics.tail.record_window_tail(tail_ms)
            run.metrics.record_tick(
                t=t,
                dt=dt,
                load=load,
                tail_ms=tail_ms,
                busy_cores=usage.busy_cores + snapshot.busy_cores,
                membw_fraction=min(1.0, usage.membw_fraction + snapshot.membw_fraction),
                be_instances=machine.be_instance_count,
                be_cores=machine.be_total_cores,
                be_llc_ways=machine.be_total_llc_ways,
                be_rate=snapshot.total_rate,
                action=action.value,
            )
            self._cpu_llc.apply(action, machine, run.pool)
            self._memory.apply(action, machine, run.pool)
            self._frequency.apply(
                machine, usage.busy_cores, machine.be_total_cores
            )

    def _result(
        self, lc_load_mean: float, events_fired: int = 0
    ) -> ColocationResult:
        machines = {pod: run.metrics for pod, run in self._runs.items()}
        for pod, run in self._runs.items():
            # Finished-work throughput: kills already clawed back their
            # in-flight units inside BeJob.kill().
            run.metrics.completed_be_throughput = (
                run.pool.total_normalized_work / self.config.duration_s
            )
        violations = sum(m.sla_violations for m in machines.values())
        # Every machine sees the same e2e tail, so count one machine's
        # windows for service-level violations.
        first = next(iter(machines.values()))
        return ColocationResult(
            service=self.spec.name,
            duration_s=self.config.duration_s,
            lc_load_mean=lc_load_mean,
            machines=machines,
            be_kills=self.deployment.cluster.total_be_kills,
            be_suspensions=sum(
                m.counters.be_suspensions for m in self.deployment.cluster
            ),
            sla_violations=first.sla_violations,
            worst_tail_ms=max(m.worst_tail_ms for m in machines.values()),
            events_fired=events_fired,
        )


def make_sla_probe(
    service: ServiceSpec,
    loadlimits: Mapping[str, float],
    be_specs: Sequence[BeJobSpec],
    pattern: LoadPattern,
    streams: RandomStreams,
    config: Optional[ColocationConfig] = None,
    repeats: int = 2,
):
    """Build Algorithm 1's ``run_system`` probe.

    The probe runs short co-located simulations with the candidate
    slacklimits under a production-like (ramping) load and reports
    whether any control window violated the SLA. Per the paper's
    recommendation ("run the algorithm with representative,
    mixed-intensive BEs and run multiple times to increase its
    accuracy"), each candidate is tried ``repeats`` times against the
    whole BE mix and against each individual BE job, so the derived
    limits are safe for every BE the operator expects to co-locate and a
    borderline candidate (one that only violates under some traffic
    realisations) is reliably rejected rather than slipping through on a
    lucky draw. Trials stop early once the candidate is rejected.

    Each trial's random streams are derived from the *candidate
    configuration* (via
    :func:`repro.core.slacklimit.candidate_signature`) and the trial's
    mix index — never from a call counter — so probing a given candidate
    consumes the same randomness whether the per-Servpod walks run
    serially in one process or fan out across the profiling pool.
    """
    from repro.core.slacklimit import candidate_signature

    base_config = config or ColocationConfig(duration_s=400.0)
    # One trial with the whole mix, plus one per *memory-system* stressor
    # — the stressors that actually reject candidates. CPU-/network-bound
    # BEs never produce tail violations under core/qdisc isolation.
    harsh = [
        be
        for be in be_specs
        if be.usage("membw") >= 0.5 or be.usage("llc") >= 0.5
    ]
    trial_mixes = [list(be_specs)] + [[be] for be in (harsh or be_specs)]

    def probe(slacklimits: Mapping[str, float]) -> bool:
        signature = candidate_signature(slacklimits)
        violating_windows = 0
        for mix_index, mix in enumerate(trial_mixes):
            for repeat in range(max(1, repeats)):
                controllers = {}
                for pod in service.servpod_names:
                    from repro.core.top_controller import ControllerThresholds

                    controllers[pod] = TopController(
                        servpod=pod,
                        thresholds=ControllerThresholds(
                            loadlimit=loadlimits[pod],
                            slacklimit=max(0.01, min(1.0, slacklimits[pod])),
                        ),
                        sla_ms=service.sla_ms,
                    )
                experiment = ColocationExperiment(
                    service,
                    controllers,
                    mix,
                    pattern,
                    streams=streams.spawn(
                        f"slacklimit-probe:{mix_index}:{repeat}:{signature}"
                    ),
                    config=replace(base_config),
                )
                violating_windows += experiment.run().sla_violations
                # One violating window across the whole candidate's
                # trials is within measurement noise ("run multiple times
                # to increase its accuracy"); a repeat offender is
                # rejected.
                if violating_windows >= 2:
                    return True
        return False

    return probe
