"""Ablation studies on Rhythm's design choices.

The paper motivates several design decisions without isolating their
individual value; these experiments quantify each one at simulation
scale (see DESIGN.md §5 and ``benchmarks/bench_ablations.py``):

1. **Component-distinguishability** (§1's thesis). A component-blind
   controller must protect its most sensitive Servpod, so the fair
   "uniform Rhythm" ablation gives *every* machine the most conservative
   of the derived thresholds. The throughput gap to full Rhythm is the
   value of distinguishing components.
2. **Contribution definition** (§3.4: "Equation 5 may not be the only
   way"). Compares C = P, C = P·V, C = ρ·P·V against measured
   interference sensitivity, Figure-7 style.
3. **Isolation mechanisms** (§4). Disables CAT or cpuset isolation and
   measures the SLA damage under identical co-location pressure.
4. **CutBE escalation** (an implementation refinement within the paper's
   action vocabulary). Disables the pause-at-minimum ladder and measures
   production-ramp safety.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bejobs.catalog import STREAM_DRAM
from repro.bejobs.spec import BeJobSpec
from repro.core.contribution import pearson
from repro.core.top_controller import ControllerThresholds, TopController
from repro.experiments.colocation import ColocationConfig, ColocationExperiment
from repro.experiments.runner import get_rhythm, run_cell
from repro.interference.isolation import IsolationConfig
from repro.loadgen.clarknet import clarknet_production_load
from repro.loadgen.patterns import LoadPattern
from repro.sim.rng import RandomStreams
from repro.workloads.catalog import ecommerce_service
from repro.workloads.spec import ServiceSpec


# ---------------------------------------------------------------------------
# 1. Component-distinguishability
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DistinguishabilityResult:
    """Full Rhythm vs its component-blind twin on one scenario."""

    service: str
    be_job: str
    rhythm_emu: float
    uniform_emu: float
    rhythm_be_throughput: float
    uniform_be_throughput: float
    rhythm_violations: int
    uniform_violations: int

    @property
    def emu_gain(self) -> float:
        """What distinguishing components is worth, in relative EMU."""
        if self.uniform_emu <= 1e-9:
            return self.rhythm_emu
        return (self.rhythm_emu - self.uniform_emu) / self.uniform_emu


def uniform_rhythm_controllers(
    service: ServiceSpec, seed: int = 0
) -> Dict[str, TopController]:
    """The component-blind twin: every machine gets the *most
    conservative* of Rhythm's derived thresholds.

    Without per-component knowledge a safe controller must assume every
    machine hosts the worst component, which is exactly the paper's
    "Law of the Minimum" framing (§2).
    """
    rhythm = get_rhythm(service, seed=seed)
    min_loadlimit = min(rhythm.loadlimits().values())
    max_slacklimit = max(rhythm.slacklimits().values())
    thresholds = ControllerThresholds(
        loadlimit=min_loadlimit, slacklimit=max_slacklimit
    )
    return {
        pod: TopController(servpod=pod, thresholds=thresholds, sla_ms=service.sla_ms)
        for pod in service.servpod_names
    }


def run_distinguishability_ablation(
    service: Optional[ServiceSpec] = None,
    be_spec: BeJobSpec = STREAM_DRAM,
    duration_s: float = 600.0,
    seed: int = 0,
    pattern: Optional[LoadPattern] = None,
) -> DistinguishabilityResult:
    """Rhythm vs uniform-Rhythm under a production day."""
    spec = service or ecommerce_service()
    pattern = pattern or clarknet_production_load(duration_s=duration_s, days=1)
    config = ColocationConfig(duration_s=duration_s)
    rhythm_result = run_cell(
        spec, get_rhythm(spec, seed=seed).controllers(), be_spec, pattern,
        seed=seed, config=config,
    )
    uniform_result = run_cell(
        spec, uniform_rhythm_controllers(spec, seed), be_spec, pattern,
        seed=seed, config=config,
    )
    return DistinguishabilityResult(
        service=spec.name,
        be_job=be_spec.name,
        rhythm_emu=rhythm_result.emu,
        uniform_emu=uniform_result.emu,
        rhythm_be_throughput=rhythm_result.be_throughput,
        uniform_be_throughput=uniform_result.be_throughput,
        rhythm_violations=rhythm_result.sla_violations,
        uniform_violations=uniform_result.sla_violations,
    )


# ---------------------------------------------------------------------------
# 2. Contribution definition
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ContributionDefinitionResult:
    """Correlation of each candidate C_i definition with sensitivity."""

    service: str
    #: Pearson r between the definition's C_i and the measured p99
    #: increase when only that Servpod is interfered (Figure-7 style).
    correlations: Dict[str, float]

    @property
    def best(self) -> str:
        """The definition most predictive of interference sensitivity."""
        return max(self.correlations, key=self.correlations.get)


def run_contribution_definition_ablation(
    service: Optional[ServiceSpec] = None,
    load: float = 0.7,
    samples: int = 5000,
    seed: int = 0,
) -> ContributionDefinitionResult:
    """Compare C = P, C = P·V, and C = ρ·P·V (Eq. 4)."""
    from repro.experiments.figures.figure7 import FIGURE7_PRESSURES
    from repro.cluster.machine import Machine
    from repro.core.servpod import Servpod
    from repro.interference.model import InterferenceModel
    from repro.metrics.percentile import percentile
    from repro.workloads.service import Service, ServiceState

    spec = service or ecommerce_service()
    rhythm = get_rhythm(spec, seed=seed, probe_slacklimits=False)
    contributions = rhythm.contributions().contributions

    definitions: Dict[str, Dict[str, float]] = {
        "P": {pod: c.mean_weight for pod, c in contributions.items()},
        "P*V": {pod: c.mean_weight * c.variation for pod, c in contributions.items()},
        "rho*P*V (Eq.4)": {
            pod: c.contribution for pod, c in contributions.items()
        },
    }

    # Measured sensitivity per Servpod under the mixed-pressure panel.
    model = InterferenceModel()
    pressure = FIGURE7_PRESSURES["mixed"]
    solo = Service(spec, RandomStreams(seed))
    p99_solo = float(percentile(solo.sample_e2e(load, samples), spec.tail_percentile))
    sensitivity: Dict[str, float] = {}
    for pod_spec in spec.servpods:
        servpod = Servpod(spec=pod_spec, machine=Machine())
        slowdown = servpod.slowdown(pressure, load, model)
        state = ServiceState(
            slowdowns={pod_spec.name: slowdown},
            sigma_inflations={pod_spec.name: model.sigma_inflation(slowdown)},
        )
        svc = Service(spec, RandomStreams(seed))
        p99 = float(
            percentile(svc.sample_e2e(load, samples, state), spec.tail_percentile)
        )
        sensitivity[pod_spec.name] = (p99 - p99_solo) / p99_solo

    pods = spec.servpod_names
    correlations = {
        name: pearson([values[p] for p in pods], [sensitivity[p] for p in pods])
        for name, values in definitions.items()
    }
    return ContributionDefinitionResult(service=spec.name, correlations=correlations)


# ---------------------------------------------------------------------------
# 3. Isolation mechanisms
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IsolationAblationRow:
    """One isolation configuration's outcome."""

    label: str
    worst_tail_over_sla: float
    sla_violations: int
    be_throughput: float


def run_isolation_ablation(
    service: Optional[ServiceSpec] = None,
    be_spec: BeJobSpec = STREAM_DRAM,
    load: float = 0.65,
    duration_s: float = 120.0,
    seed: int = 0,
) -> List[IsolationAblationRow]:
    """Disable CAT / cpuset isolation and measure the SLA damage."""
    from repro.loadgen.patterns import ConstantLoad

    spec = service or ecommerce_service()
    controllers = get_rhythm(spec, seed=seed).controllers
    configs = [
        ("full isolation", IsolationConfig()),
        ("no CAT", IsolationConfig(cat=False)),
        ("no cpuset", IsolationConfig(cpuset=False)),
        ("no CAT, no cpuset", IsolationConfig(cat=False, cpuset=False)),
    ]
    rows: List[IsolationAblationRow] = []
    for label, isolation in configs:
        experiment = ColocationExperiment(
            spec,
            controllers(),
            [be_spec],
            ConstantLoad(load),
            streams=RandomStreams(seed),
            config=ColocationConfig(duration_s=duration_s, isolation=isolation),
        )
        result = experiment.run()
        rows.append(
            IsolationAblationRow(
                label=label,
                worst_tail_over_sla=result.worst_tail_ms / spec.sla_ms,
                sla_violations=result.sla_violations,
                be_throughput=result.be_throughput,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# 4. CutBE escalation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CutLadderResult:
    """Production-day safety with and without CutBE's pause escalation."""

    with_escalation_violations: int
    without_escalation_violations: int
    with_escalation_worst: float
    without_escalation_worst: float


def run_cut_escalation_ablation(
    service: Optional[ServiceSpec] = None,
    be_spec: BeJobSpec = STREAM_DRAM,
    duration_s: float = 600.0,
    seed: int = 0,
) -> CutLadderResult:
    """Run the same production day with CutBE escalation on and off."""
    spec = service or ecommerce_service()
    pattern = clarknet_production_load(duration_s=duration_s, days=1)
    outcomes = {}
    for escalate in (True, False):
        experiment = ColocationExperiment(
            spec,
            get_rhythm(spec, seed=seed).controllers(),
            [be_spec],
            pattern,
            streams=RandomStreams(seed),
            config=ColocationConfig(duration_s=duration_s, cut_escalation=escalate),
        )
        outcomes[escalate] = experiment.run()
    return CutLadderResult(
        with_escalation_violations=outcomes[True].sla_violations,
        without_escalation_violations=outcomes[False].sla_violations,
        with_escalation_worst=outcomes[True].worst_tail_ms / spec.sla_ms,
        without_escalation_worst=outcomes[False].worst_tail_ms / spec.sla_ms,
    )
