"""Experiment harness: co-location runs, sweeps, and per-figure drivers.

- :mod:`repro.experiments.colocation` — the runtime loop co-locating one
  LC service with BE jobs under a controller policy,
- :mod:`repro.experiments.runner` — Rhythm-vs-Heracles comparisons and
  grid sweeps,
- :mod:`repro.experiments.figures` — one driver per paper figure/table
  (see DESIGN.md's experiment index),
- :mod:`repro.experiments.report` — plain-text table rendering.
"""

from repro.experiments.colocation import (
    ColocationConfig,
    ColocationExperiment,
    ColocationResult,
    make_sla_probe,
)
from repro.experiments.runner import (
    ComparisonResult,
    build_rhythm_controllers,
    compare_systems,
    run_cell,
)

__all__ = [
    "ColocationConfig",
    "ColocationExperiment",
    "ColocationResult",
    "make_sla_probe",
    "ComparisonResult",
    "build_rhythm_controllers",
    "compare_systems",
    "run_cell",
]
