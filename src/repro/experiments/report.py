"""Plain-text table rendering for experiment results.

Benchmarks and examples print the same rows/series the paper reports;
this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_heatmap(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: dict,
    title: str = "",
    fmt: str = "{:6.1f}",
) -> str:
    """Render a labelled matrix (Figure 15-style heatmap) as text.

    ``values`` maps ``(row_label, col_label)`` to a number.
    """
    width = max([len(c) for c in col_labels] + [8])
    label_w = max(len(r) for r in row_labels) if row_labels else 4
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" " * label_w + " " + " ".join(c.rjust(width) for c in col_labels))
    for r in row_labels:
        cells = []
        for c in col_labels:
            v = values.get((r, c))
            cells.append(("-" * 3).rjust(width) if v is None else fmt.format(v).rjust(width))
        lines.append(r.ljust(label_w) + " " + " ".join(cells))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
