"""Rhythm-vs-Heracles comparison machinery.

The evaluation grids (Figures 9–14) run the same (LC service, BE job,
load) cell once under each system and report relative improvements. This
module provides the cell runner and a per-service cache of Rhythm's
profiling artifacts so a 5×6×5 grid profiles each service once, exactly
as the paper's "profile once" design intends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.baselines.heracles import HeraclesPolicy, heracles_controllers
from repro.bejobs.spec import BeJobSpec
from repro.core.rhythm import Rhythm, RhythmConfig
from repro.core.top_controller import TopController
from repro.errors import ExperimentError
from repro.experiments.colocation import (
    ColocationConfig,
    ColocationExperiment,
    ColocationResult,
)
from repro.loadgen.patterns import ConstantLoad, LoadPattern
from repro.sim.rng import RandomStreams
from repro.workloads.spec import ServiceSpec

#: Cache of Rhythm pipelines keyed by
#: (service name, seed, profiling mode, probe_slacklimits).
_RHYTHM_CACHE: Dict[Tuple[str, int, str, bool], Rhythm] = {}


def sla_probe_for(
    service: ServiceSpec,
    loadlimits: Mapping[str, float],
    seed: int = 0,
    probe_duration_s: float = 600.0,
):
    """Algorithm 1's SLA probe, exactly as ``get_rhythm`` builds it.

    Factored out so the parallel profiling pipeline
    (:mod:`repro.parallel.profile`) can rebuild an identical probe
    inside a worker process: same evaluation BE mix, same
    production-load pattern (peaking at 85% of MaxLoad — co-location is
    suspended above the loadlimits anyway, so probing beyond only
    measures solo-run peak tails, which graze the SLA by design and
    would mask BE-induced risk), same probe stream registry.
    """
    from repro.bejobs.catalog import evaluation_be_jobs
    from repro.experiments.colocation import ColocationConfig, make_sla_probe
    from repro.loadgen.clarknet import clarknet_production_load

    return make_sla_probe(
        service,
        dict(loadlimits),
        evaluation_be_jobs(),
        clarknet_production_load(
            duration_s=probe_duration_s,
            peak_fraction=0.85,
            seed=seed + 17,
            days=1,
        ),
        RandomStreams(seed + 1),
        config=ColocationConfig(duration_s=probe_duration_s),
    )


def get_rhythm(
    service: ServiceSpec,
    seed: int = 0,
    profiling_mode: str = "direct",
    config: Optional[RhythmConfig] = None,
    probe_slacklimits: bool = True,
    probe_duration_s: float = 600.0,
) -> Rhythm:
    """A cached, already-profiled Rhythm pipeline for ``service``.

    With ``probe_slacklimits`` (the default, matching the paper's
    methodology) Algorithm 1 runs against a production-load SLA probe
    with mixed BE jobs; otherwise the analytic violation-free fixed
    point is used.
    """
    key = (service.name, seed, profiling_mode, probe_slacklimits)
    rhythm = _RHYTHM_CACHE.get(key)
    if rhythm is None:
        cfg = config or RhythmConfig(profiling_mode=profiling_mode)
        rhythm = Rhythm(service, RandomStreams(seed), cfg)
        rhythm.profile()
        if probe_slacklimits:
            rhythm.slacklimits(
                sla_probe_for(
                    service,
                    rhythm.loadlimits(),
                    seed=seed,
                    probe_duration_s=probe_duration_s,
                )
            )
        _RHYTHM_CACHE[key] = rhythm
    return rhythm


def clear_rhythm_cache() -> None:
    """Drop all cached pipelines (tests use this for isolation)."""
    _RHYTHM_CACHE.clear()


def build_rhythm_controllers(
    service: ServiceSpec,
    seed: int = 0,
    profiling_mode: str = "direct",
    probe_slacklimits: bool = True,
) -> Dict[str, TopController]:
    """Profile (cached) and construct Rhythm's per-Servpod controllers."""
    return get_rhythm(
        service, seed, profiling_mode, probe_slacklimits=probe_slacklimits
    ).controllers()


def run_cell(
    service: ServiceSpec,
    controllers: Mapping[str, TopController],
    be_spec: BeJobSpec,
    pattern: LoadPattern,
    seed: int = 0,
    config: Optional[ColocationConfig] = None,
    kernel: Optional[str] = None,
) -> ColocationResult:
    """Run one (service, BE, load pattern) cell under one controller set.

    ``kernel`` selects the simulation kernel for this cell (default:
    the ``RHYTHM_KERNEL`` environment variable, else scalar). Results
    are bit-identical across kernels, so cached cells are shared.
    """
    experiment = ColocationExperiment(
        service,
        controllers,
        [be_spec],
        pattern,
        streams=RandomStreams(seed),
        config=config,
        kernel=kernel,
    )
    return experiment.run()


def kernel_identity_probe(
    kernel: str,
    seed: int = 0,
    pattern_name: str = "constant",
    with_faults: bool = False,
    duration_s: float = 60.0,
) -> Tuple:
    """Run one small colocation cell under ``kernel`` and fingerprint it.

    Importable by reference (spawn-safe), so the kernel-identity tests
    and benchmark can execute it in fork- and spawn-started subprocesses
    and compare full result fingerprints plus the final state of every
    RNG stream across kernels. Uses the Heracles controller set — the
    probe exercises the simulation kernel, not the profiling pipeline.
    """
    from repro.baselines.heracles import heracles_controllers
    from repro.bejobs.catalog import evaluation_be_jobs
    from repro.faults.spec import FaultSchedule
    from repro.loadgen.patterns import ConstantLoad, DiurnalLoad, StepLoad, SweepLoad
    from repro.parallel.grid import colocation_fingerprint
    from repro.workloads.catalog import redis_service

    patterns = {
        "constant": lambda: ConstantLoad(0.55),
        "step": lambda: StepLoad([(0.0, 0.3), (duration_s / 3, 0.8), (2 * duration_s / 3, 0.5)]),
        "sweep": lambda: SweepLoad(0.2, 0.9, duration_s),
        "diurnal": lambda: DiurnalLoad(base=0.5, amplitude=0.3, period_s=duration_s),
    }
    if pattern_name not in patterns:
        raise ExperimentError(f"unknown probe pattern {pattern_name!r}")
    service = redis_service()
    faults = (
        FaultSchedule.generate(seed + 1, duration_s, faults_per_minute=4.0)
        if with_faults
        else None
    )
    experiment = ColocationExperiment(
        service,
        heracles_controllers(service),
        [evaluation_be_jobs()[0]],
        patterns[pattern_name](),
        streams=RandomStreams(seed),
        config=ColocationConfig(duration_s=duration_s, faults=faults),
        kernel=kernel,
    )
    fingerprint = colocation_fingerprint(experiment.run())
    rng_states = tuple(
        (name, repr(experiment.streams._streams[name].bit_generator.state))
        for name in sorted(experiment.streams._streams)
    )
    return fingerprint, rng_states


@dataclass
class ComparisonResult:
    """One grid cell under both systems, with relative improvements."""

    service: str
    be_job: str
    load: float
    rhythm: ColocationResult
    heracles: ColocationResult

    @staticmethod
    def _improvement(new: float, old: float) -> float:
        """(new − old) / old, with a 0-denominator convention.

        When the baseline is zero (e.g. Heracles at 85% load) the paper
        plots the absolute Rhythm value; we return ``new`` directly,
        which preserves "Rhythm wins" ordering.
        """
        if old <= 1e-9:
            return new
        return (new - old) / old

    @property
    def emu_improvement(self) -> float:
        """Relative EMU gain of Rhythm over Heracles."""
        return self._improvement(self.rhythm.emu, self.heracles.emu)

    @property
    def be_throughput_gain(self) -> float:
        """Absolute BE-throughput gain (the Figure 9 quantity)."""
        return self.rhythm.be_throughput - self.heracles.be_throughput

    @property
    def cpu_improvement(self) -> float:
        """Relative CPU-utilisation gain."""
        return self._improvement(
            self.rhythm.cpu_utilisation, self.heracles.cpu_utilisation
        )

    @property
    def membw_improvement(self) -> float:
        """Relative memory-bandwidth-utilisation gain."""
        return self._improvement(
            self.rhythm.membw_utilisation, self.heracles.membw_utilisation
        )


def compare_systems(
    service: ServiceSpec,
    be_spec: BeJobSpec,
    load: float,
    seed: int = 0,
    config: Optional[ColocationConfig] = None,
    pattern: Optional[LoadPattern] = None,
    heracles_policy: HeraclesPolicy = HeraclesPolicy(),
    profiling_mode: str = "direct",
) -> ComparisonResult:
    """Run one cell under Rhythm and Heracles with matched seeds."""
    if pattern is None:
        if not (0.0 <= load <= 1.0):
            raise ExperimentError(f"load must be in [0,1], got {load!r}")
        pattern = ConstantLoad(load)
    rhythm_result = run_cell(
        service,
        build_rhythm_controllers(service, seed, profiling_mode),
        be_spec,
        pattern,
        seed=seed,
        config=config,
    )
    heracles_result = run_cell(
        service,
        heracles_controllers(service, heracles_policy),
        be_spec,
        pattern,
        seed=seed,
        config=config,
    )
    return ComparisonResult(
        service=service.name,
        be_job=be_spec.name,
        load=load,
        rhythm=rhythm_result,
        heracles=heracles_result,
    )
