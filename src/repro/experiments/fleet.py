"""Fleet-scale colocation: sharded thousand-machine simulation.

This module scales the single-service :class:`ColocationExperiment` to
a *fleet*: hundreds of LC service instances (thousands of machines),
partitioned into contiguous shards, each shard driven by one
:class:`~repro.sim.kernel.FleetColocationKernel` on a worker of the
persistent process pool.

Identity contract (the repo-wide pattern, one level up): the fleet
path is bit-identical to running every instance's experiment
sequentially under the scalar reference kernel — same result
fingerprints, same final RNG stream states — and the shard *count*
never changes results. The latter holds by construction:

- instances are fully independent (own :class:`RandomStreams`, own
  cluster, own controllers), so per-instance results cannot depend on
  which shard ran them;
- the zone governor (the only cross-instance coupling) operates on
  *zones* — contiguous blocks of ``zone_size`` instances — and shards
  are always split **at zone boundaries**, so every zone is wholly
  inside one shard and sees the same signals regardless of sharding.

With ``violation_threshold=None`` (the default) the governor is off
and the fleet is exactly the sequential reference, which is what the
identity tests pin.

**Incremental runs.** :meth:`FleetExperiment.run` memoizes per *zone*
— the shard-count-invariant unit of work — in the content-addressed
:class:`~repro.cache.store.CacheStore`. Each zone's entry is keyed by
:func:`zone_cache_key` over exactly the inputs that determine its
results (the zone's instance specs and the result-affecting
``FleetConfig`` fields); ``shards``, ``workers`` and the kernel choice
are deliberately NOT coordinates. A warm re-run of an unchanged fleet
therefore executes zero simulations under any sharding, and editing
one zone (a spec tweak, an added instance) re-simulates only the
zones whose keys changed. :class:`FleetCacheStats` on the returned
:class:`FleetResult` reports the hit/miss/skipped split.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cache import CacheStore, stable_hash
from repro.core.actions import BeAction
from repro.core.top_controller import (
    CONTROL_PERIOD_S,
    ControllerThresholds,
    TopController,
)
from repro.errors import CacheKeyError, ConfigurationError, ExperimentError
from repro.experiments.colocation import (
    ColocationConfig,
    ColocationExperiment,
    ColocationResult,
)
from repro.faults.spec import FaultSchedule
from repro.loadgen.patterns import DiurnalLoad, FlashCrowdLoad, LoadPattern
from repro.parallel.pool import (
    Envelope,
    broadcast,
    resolve_ref,
    resolve_workers,
    run_envelopes,
    shard_task_key,
)
from repro.parallel.profile import resolve_store
from repro.sim.kernel import FleetColocationKernel
from repro.sim.rng import RandomStreams
from repro.workloads.catalog import lc_service_spec


# -- policy and fleet specification --------------------------------------


@dataclass(frozen=True)
class PodPolicy:
    """One Servpod's controller thresholds, in shippable form.

    Workers rebuild :class:`TopController` objects from these rather
    than unpickling live controllers (controllers carry decision
    history, and Rhythm's are produced by the cached profiling
    pipeline, which only the parent should run).
    """

    loadlimit: float
    slacklimit: float
    suspend_on_load_at_or_above: bool = False

    def build(self, servpod: str, sla_ms: float) -> TopController:
        """A fresh controller enforcing this policy on ``servpod``."""
        return TopController(
            servpod=servpod,
            thresholds=ControllerThresholds(
                loadlimit=self.loadlimit, slacklimit=self.slacklimit
            ),
            sla_ms=sla_ms,
            suspend_on_load_at_or_above=self.suspend_on_load_at_or_above,
        )


def policies_from_controllers(
    controllers: Mapping[str, TopController],
) -> Dict[str, PodPolicy]:
    """Strip live controllers (e.g. Rhythm's) down to shippable policies."""
    return {
        pod: PodPolicy(
            loadlimit=c.thresholds.loadlimit,
            slacklimit=c.thresholds.slacklimit,
            suspend_on_load_at_or_above=c.suspend_on_load_at_or_above,
        )
        for pod, c in controllers.items()
    }


@dataclass(frozen=True)
class FleetInstanceSpec:
    """One LC service instance (a Servpod group of machines) in the fleet.

    Everything here is a value or a picklable pattern object, so the
    whole fleet description broadcasts to pool workers in one blob.
    """

    #: LC service catalog key (see ``repro.workloads.catalog.LC_CATALOG``).
    service: str
    #: Per-Servpod controller policies; must cover every pod.
    policies: Tuple[Tuple[str, PodPolicy], ...]
    #: BE job catalog names co-located on this instance.
    be_jobs: Tuple[str, ...]
    #: The instance's request-load trace.
    pattern: LoadPattern
    #: Root seed of the instance's private RNG streams.
    seed: int = 0
    #: Optional per-instance fault schedule (delegated tick path).
    faults: Optional[FaultSchedule] = None


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-level tunables (per-instance knobs ride on ColocationConfig)."""

    duration_s: float = 600.0
    control_period_s: float = CONTROL_PERIOD_S
    #: Event-engine shards the fleet is partitioned into. Results are
    #: invariant to this knob (see module docstring); it only trades
    #: wall-clock for cores.
    shards: int = 1
    #: Pool workers running the shards (None -> RHYTHM_WORKERS / cpus).
    workers: Optional[int] = None
    #: Zone width in *instances*; shards always split at zone edges.
    zone_size: int = 4
    #: Governor epoch length in control ticks.
    epoch_ticks: int = 30
    #: Zone SLA-violation fraction above which the governor clamps BE
    #: growth zone-wide for the next epoch. None disables the governor
    #: entirely (the identity-pinned configuration).
    violation_threshold: Optional[float] = None
    sample_cap: int = 800
    min_samples: int = 100
    max_be_instances: int = 16

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.control_period_s <= 0:
            raise ConfigurationError("fleet duration/period must be positive")
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.zone_size < 1:
            raise ConfigurationError(
                f"zone_size must be >= 1, got {self.zone_size}"
            )
        if self.epoch_ticks < 1:
            raise ConfigurationError(
                f"epoch_ticks must be >= 1, got {self.epoch_ticks}"
            )
        if self.violation_threshold is not None and not (
            0.0 <= self.violation_threshold <= 1.0
        ):
            raise ConfigurationError(
                f"violation_threshold {self.violation_threshold!r} out of [0,1]"
            )

    def colocation_config(self, spec: FleetInstanceSpec) -> ColocationConfig:
        """The per-instance run config this fleet config induces."""
        return ColocationConfig(
            duration_s=self.duration_s,
            control_period_s=self.control_period_s,
            sample_cap=self.sample_cap,
            min_samples=self.min_samples,
            max_be_instances=self.max_be_instances,
            faults=spec.faults,
            seed=spec.seed,
        )


# -- results --------------------------------------------------------------


@dataclass(frozen=True)
class FleetInstanceSummary:
    """The reported slice of one instance's ColocationResult."""

    index: int
    service: str
    machines: int
    lc_load_mean: float
    be_throughput: float
    emu: float
    cpu_utilisation: float
    sla_violations: int
    worst_tail_ms: float
    be_kills: int
    be_suspensions: int
    events_fired: int
    #: sha256 over (result fingerprint, final RNG states) — the
    #: bit-identity coordinate used by the fleet identity tests and the
    #: shard-invariance checks.
    digest: str


@dataclass(frozen=True)
class ZoneEpochRecord:
    """One governor observation: a zone's epoch violation fraction."""

    zone: int
    epoch: int
    t: float
    violation_fraction: float
    clamped: bool


@dataclass
class FleetCacheStats:
    """Cache outcome counts of one :meth:`FleetExperiment.run`.

    The unit is a *zone* (the shard-count-invariant slice of the
    fleet): ``hits`` zones were served from the store without
    simulating, ``misses`` were simulated and stored, ``skipped`` were
    simulated but not cached (no store, or an uncacheable spec such as
    a load pattern wrapping a bare callable).
    """

    hits: int = 0
    misses: int = 0
    skipped: int = 0

    @property
    def total(self) -> int:
        """Total zones the run covered."""
        return self.hits + self.misses + self.skipped

    @property
    def simulated(self) -> int:
        """Zones that actually ran the kernel (everything but hits)."""
        return self.misses + self.skipped

    def merge(self, other: "FleetCacheStats") -> None:
        """Accumulate another run's counts into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.skipped += other.skipped


@dataclass
class FleetResult:
    """Outcome of one fleet run."""

    duration_s: float
    instances: List[FleetInstanceSummary]
    zone_records: List[ZoneEpochRecord] = field(default_factory=list)
    #: Zone-level cache accounting, or None when the run was uncached.
    cache: Optional[FleetCacheStats] = None

    @property
    def n_instances(self) -> int:
        return len(self.instances)

    @property
    def n_machines(self) -> int:
        return sum(s.machines for s in self.instances)

    @property
    def events_fired(self) -> int:
        return sum(s.events_fired for s in self.instances)

    @property
    def be_throughput(self) -> float:
        """Fleet-mean normalized BE throughput per machine."""
        if not self.instances:
            return 0.0
        total = sum(s.be_throughput * s.machines for s in self.instances)
        return total / self.n_machines

    @property
    def emu(self) -> float:
        """Machine-weighted fleet EMU."""
        if not self.instances:
            return 0.0
        total = sum(s.emu * s.machines for s in self.instances)
        return total / self.n_machines

    @property
    def sla_violations(self) -> int:
        return sum(s.sla_violations for s in self.instances)

    @property
    def sla_violation_rate(self) -> float:
        """Violating control windows per instance-tick across the fleet."""
        events = self.events_fired
        return self.sla_violations / events if events else 0.0

    @property
    def digest(self) -> str:
        """Order-sensitive fold of every instance digest.

        Equal digests mean bit-identical fleets: same per-instance
        fingerprints and final RNG states, in the same global order.
        The shard-invariance tests assert this across shard counts.
        """
        h = hashlib.sha256()
        for s in self.instances:
            h.update(s.digest.encode("ascii"))
        return h.hexdigest()


# -- per-shard execution (module-level: importable by spawn workers) ------


@dataclass(frozen=True)
class _FleetPayload:
    """The broadcast blob: the whole fleet description plus shard plan."""

    instances: Tuple[FleetInstanceSpec, ...]
    config: FleetConfig
    #: Per shard: (first instance index, count) spans to simulate.
    #: Always zone-aligned; an incremental run's spans skip cached
    #: zones, so a shard's spans need not be contiguous or cover the
    #: fleet.
    shard_plan: Tuple[Tuple[Tuple[int, int], ...], ...]


def zone_cache_key(
    specs: Sequence[FleetInstanceSpec], config: FleetConfig
) -> str:
    """The content address of one zone's fleet results.

    Hashes exactly what a zone's instance summaries and epoch records
    depend on: the zone's instance specs (service, policies, BE jobs,
    load pattern, seed, fault schedule) and the result-affecting
    :class:`FleetConfig` fields. Deliberately NOT key coordinates:

    - ``shards`` / ``workers`` — pure wall-clock knobs; 1/2/4/8-way
      shardings of the same fleet must hit the same per-zone entries;
    - ``zone_size`` — zone *membership* is already captured by which
      specs are hashed together, and the governor (the only
      cross-instance coupling) acts on exactly that member set;
    - the kernel choice (``RHYTHM_KERNEL``) — pinned bit-identical to
      the scalar reference, same policy as grid-cell keys;
    - ``epoch_ticks`` when the governor is off — with
      ``violation_threshold=None`` no epoch boundary can affect
      results, so retuning it must not invalidate entries.

    Raises :class:`~repro.errors.CacheKeyError` for unhashable specs
    (e.g. a load pattern wrapping a bare callable); such zones simply
    run uncached.
    """
    governed = config.violation_threshold is not None
    return stable_hash(
        (
            "fleet-zone",
            tuple(specs),
            config.duration_s,
            config.control_period_s,
            config.sample_cap,
            config.min_samples,
            config.max_be_instances,
            config.violation_threshold,
            config.epoch_ticks if governed else None,
        )
    )


def _build_experiment(
    spec: FleetInstanceSpec, config: FleetConfig
) -> ColocationExperiment:
    """Rebuild one instance's experiment from its shippable spec."""
    service = lc_service_spec(spec.service)
    policies = dict(spec.policies)
    missing = set(service.servpod_names) - set(policies)
    if missing:
        raise ExperimentError(
            f"instance {spec.service!r}: no policy for Servpods {sorted(missing)}"
        )
    from repro.bejobs.catalog import be_job_spec

    controllers = {
        pod: policies[pod].build(pod, service.sla_ms)
        for pod in service.servpod_names
    }
    return ColocationExperiment(
        service,
        controllers,
        [be_job_spec(name) for name in spec.be_jobs],
        spec.pattern,
        streams=RandomStreams(spec.seed),
        config=config.colocation_config(spec),
    )


def instance_digest(experiment: ColocationExperiment, result: ColocationResult) -> str:
    """sha256 over (result fingerprint, final RNG stream states)."""
    from repro.parallel.grid import colocation_fingerprint

    streams = experiment.streams
    rng_states = tuple(
        (name, repr(streams._streams[name].bit_generator.state))
        for name in sorted(streams._streams)
    )
    blob = repr((colocation_fingerprint(result), rng_states))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _summarise(
    index: int,
    spec: FleetInstanceSpec,
    experiment: ColocationExperiment,
    result: ColocationResult,
) -> FleetInstanceSummary:
    return FleetInstanceSummary(
        index=index,
        service=spec.service,
        machines=len(result.machines),
        lc_load_mean=result.lc_load_mean,
        be_throughput=result.be_throughput,
        emu=result.emu,
        cpu_utilisation=result.cpu_utilisation,
        sla_violations=result.sla_violations,
        worst_tail_ms=result.worst_tail_ms,
        be_kills=result.be_kills,
        be_suspensions=result.be_suspensions,
        events_fired=result.events_fired,
        digest=instance_digest(experiment, result),
    )


def make_growth_clamp(pod_actions: Optional[dict] = None):
    """An ``action_filter`` demoting ALLOW_BE_GROWTH to DISALLOW.

    The governor installs this on every experiment of a violating zone
    for one epoch: existing BE jobs keep running at their current
    allocation, but the zone stops admitting growth until its SLA
    behaviour recovers. ``pod_actions`` (optional) records the clamps
    actually applied, keyed by pod name.
    """

    def clamp(pod: str, action: BeAction) -> BeAction:
        if action is BeAction.ALLOW_BE_GROWTH:
            if pod_actions is not None:
                pod_actions[pod] = pod_actions.get(pod, 0) + 1
            return BeAction.DISALLOW_BE_GROWTH
        return action

    return clamp


class _ZoneGovernor:
    """Epoch-based zone clamp riding the fleet kernel's ``on_tick`` hook.

    Tracks, per zone, the fraction of (instance, tick) observations in
    the current epoch whose window tail violated the instance's SLA.
    At each epoch boundary, zones above ``threshold`` get every
    experiment's ``action_filter`` set to the growth clamp for the next
    epoch; recovering zones get it cleared. The clamp only demotes
    ALLOW decisions, so it composes with (never overrides) the
    per-machine controllers.
    """

    def __init__(
        self,
        experiments: Sequence[ColocationExperiment],
        zones: Sequence[Tuple[int, Sequence[int]]],
        epoch_ticks: int,
        threshold: float,
        period_s: float,
    ) -> None:
        self._exps = list(experiments)
        self._zones = [(zid, list(members)) for zid, members in zones]
        self._sla = [exp.spec.sla_ms for exp in self._exps]
        self._epoch_ticks = int(epoch_ticks)
        self._threshold = float(threshold)
        self._period_s = period_s
        self._violations = {zid: 0 for zid, _ in self._zones}
        self._epoch = 0
        self._tick_in_epoch = 0
        self.records: List[ZoneEpochRecord] = []

    def observe(self, tick_index, t, loads, closed, tails, be_rates) -> None:
        del tick_index, loads, closed, be_rates
        sla = self._sla
        for zid, members in self._zones:
            count = 0
            for i in members:
                if tails[i] > sla[i]:
                    count += 1
            self._violations[zid] += count
        self._tick_in_epoch += 1
        if self._tick_in_epoch < self._epoch_ticks:
            return
        for zid, members in self._zones:
            denom = len(members) * self._epoch_ticks
            frac = self._violations[zid] / denom if denom else 0.0
            clamp = frac > self._threshold
            for i in members:
                self._exps[i].action_filter = make_growth_clamp() if clamp else None
            self.records.append(
                ZoneEpochRecord(
                    zone=zid,
                    epoch=self._epoch,
                    t=t,
                    violation_fraction=frac,
                    clamped=clamp,
                )
            )
            self._violations[zid] = 0
        self._epoch += 1
        self._tick_in_epoch = 0


def _shard_zones(
    start: int, count: int, zone_size: int
) -> List[Tuple[int, List[int]]]:
    """A shard's zones as (global zone id, local experiment indices)."""
    zones: List[Tuple[int, List[int]]] = []
    for local in range(count):
        glob = start + local
        zid = glob // zone_size
        if not zones or zones[-1][0] != zid:
            zones.append((zid, []))
        zones[-1][1].append(local)
    return zones


def _run_fleet_shard(ref, shard_index: int) -> List[
    Tuple[int, List[FleetInstanceSummary], List[ZoneEpochRecord]]
]:
    """Run one shard's zone spans through the fleet kernel (pool task).

    Module-level and driven purely by the broadcast payload, so it is
    picklable by reference and bit-identical under fork, spawn, and the
    inline (workers<=1) path. Returns the results *grouped by zone* —
    ``(zone id, summaries, epoch records)`` per zone — so the parent
    can store each zone under its own cache key.
    """
    payload: _FleetPayload = resolve_ref(ref)
    config = payload.config
    specs: List[FleetInstanceSpec] = []
    indexes: List[int] = []
    zones: List[Tuple[int, List[int]]] = []
    for start, count in payload.shard_plan[shard_index]:
        base = len(specs)
        specs.extend(payload.instances[start : start + count])
        indexes.extend(range(start, start + count))
        for zid, members in _shard_zones(start, count, config.zone_size):
            zones.append((zid, [base + m for m in members]))
    experiments = [_build_experiment(spec, config) for spec in specs]
    governor: Optional[_ZoneGovernor] = None
    if config.violation_threshold is not None:
        governor = _ZoneGovernor(
            experiments,
            zones,
            config.epoch_ticks,
            config.violation_threshold,
            config.control_period_s,
        )
    kernel = FleetColocationKernel(
        experiments, on_tick=governor.observe if governor else None
    )
    results = kernel.run()
    summaries = [
        _summarise(indexes[j], specs[j], experiments[j], results[j])
        for j in range(len(specs))
    ]
    records = governor.records if governor else []
    return [
        (
            zid,
            [summaries[m] for m in members],
            [r for r in records if r.zone == zid],
        )
        for zid, members in zones
    ]


# -- the fleet experiment -------------------------------------------------


class FleetExperiment:
    """Partitions a fleet into zone-aligned shards and runs them."""

    def __init__(
        self,
        instances: Sequence[FleetInstanceSpec],
        config: Optional[FleetConfig] = None,
    ) -> None:
        if not instances:
            raise ConfigurationError("fleet needs at least one instance")
        self.instances: List[FleetInstanceSpec] = list(instances)
        self.config = config or FleetConfig()

    def shard_plan(self) -> List[Tuple[int, int]]:
        """(start, count) per shard; contiguous, zone-aligned, complete.

        Zones are blocks of ``zone_size`` consecutive instances; shards
        receive whole zones, spread as evenly as possible. Requesting
        more shards than zones yields one shard per zone.
        """
        cfg = self.config
        n = len(self.instances)
        n_zones = math.ceil(n / cfg.zone_size)
        shards = min(cfg.shards, n_zones)
        base, extra = divmod(n_zones, shards)
        plan: List[Tuple[int, int]] = []
        zone_start = 0
        for k in range(shards):
            z = base + (1 if k < extra else 0)
            first = zone_start * cfg.zone_size
            last = min(n, (zone_start + z) * cfg.zone_size)
            plan.append((first, last - first))
            zone_start += z
        return plan

    def zone_plan(self) -> List[Tuple[int, int, int]]:
        """(zone id, first instance index, count) per zone, complete."""
        cfg = self.config
        n = len(self.instances)
        plan: List[Tuple[int, int, int]] = []
        for zid in range(math.ceil(n / cfg.zone_size)):
            start = zid * cfg.zone_size
            plan.append((zid, start, min(n, start + cfg.zone_size) - start))
        return plan

    def _zone_key(self, start: int, count: int) -> Optional[str]:
        """One zone's cache key, or None when its specs are unhashable."""
        try:
            return zone_cache_key(
                self.instances[start : start + count], self.config
            )
        except CacheKeyError:
            return None

    def _load_zone(
        self, store: CacheStore, key: str, zid: int, start: int, count: int
    ) -> Optional[Tuple[List[FleetInstanceSummary], List[ZoneEpochRecord]]]:
        """Fetch one zone from the store, rebased to its current slot.

        Entries hold summaries with zone-*local* indices and epoch
        records with the zone id stripped, so the same entry serves the
        zone wherever it currently sits in the fleet. Rebasing cannot
        perturb digests: :func:`instance_digest` folds only the result
        fingerprint and RNG states, never the global index.
        """
        cached = store.get(key)
        if (
            not isinstance(cached, tuple)
            or len(cached) != 2
            or len(cached[0]) != count
        ):
            return None
        summaries = [
            replace(s, index=start + j) for j, s in enumerate(cached[0])
        ]
        records = [
            ZoneEpochRecord(
                zone=zid, epoch=e, t=t, violation_fraction=f, clamped=c
            )
            for e, t, f, c in cached[1]
        ]
        return summaries, records

    def _pending_shard_plan(
        self, pending: Sequence[Tuple[int, int, int, Optional[str]]]
    ) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
        """Distribute the pending zones over at most ``config.shards``.

        Zones spread as evenly as the full-fleet :meth:`shard_plan`
        does; adjacent zones inside one shard merge into a single span.
        On a cold run with every zone pending this reproduces the
        historical contiguous plan exactly.
        """
        shards = min(self.config.shards, len(pending))
        base, extra = divmod(len(pending), shards)
        plan: List[Tuple[Tuple[int, int], ...]] = []
        pos = 0
        for k in range(shards):
            group = pending[pos : pos + base + (1 if k < extra else 0)]
            pos += len(group)
            spans: List[Tuple[int, int]] = []
            for _zid, start, count, _key in group:
                if spans and spans[-1][0] + spans[-1][1] == start:
                    spans[-1] = (spans[-1][0], spans[-1][1] + count)
                else:
                    spans.append((start, count))
            plan.append(tuple(spans))
        return tuple(plan)

    def run(
        self, cache: Union[None, bool, CacheStore] = None
    ) -> FleetResult:
        """Run the fleet, serving cached zones and simulating the rest.

        ``cache`` follows the grid convention: ``None``/``False`` run
        uncached, ``True`` uses the environment-default store
        (``RHYTHM_CACHE{,_DIR,_MAX_BYTES}``), a :class:`CacheStore` is
        used as given. Pending zones are distributed over at most
        ``config.shards`` pool shards; a fully warm run executes zero
        simulations and reproduces the cold digest bit-identically.
        """
        store = resolve_store(cache)
        stats = FleetCacheStats() if store is not None else None
        summaries: List[FleetInstanceSummary] = []
        zone_records: List[ZoneEpochRecord] = []
        pending: List[Tuple[int, int, int, Optional[str]]] = []
        for zid, start, count in self.zone_plan():
            key = self._zone_key(start, count) if store is not None else None
            hit = (
                self._load_zone(store, key, zid, start, count)
                if store is not None and key is not None
                else None
            )
            if hit is not None:
                summaries.extend(hit[0])
                zone_records.extend(hit[1])
                stats.hits += 1
            else:
                pending.append((zid, start, count, key))
        if pending:
            plan = self._pending_shard_plan(pending)
            payload = _FleetPayload(
                instances=tuple(self.instances),
                config=self.config,
                shard_plan=plan,
            )
            ref = broadcast(payload)
            envelopes = [
                Envelope(
                    fn=_run_fleet_shard,
                    args=(ref, k),
                    refs=(ref,),
                    task_key=shard_task_key("fleet-shard", ref, plan[k]),
                )
                for k in range(len(plan))
            ]
            workers = min(resolve_workers(self.config.workers), len(plan))
            shard_results = run_envelopes(envelopes, workers=workers)
            keys = {zid: key for zid, _s, _c, key in pending}
            starts = {zid: start for zid, start, _c, _key in pending}
            for by_zone in shard_results:
                for zid, zone_summaries, records in by_zone:
                    summaries.extend(zone_summaries)
                    zone_records.extend(records)
                    key = keys[zid]
                    if stats is not None:
                        if key is None:
                            stats.skipped += 1
                        else:
                            stats.misses += 1
                    if store is not None and key is not None:
                        start = starts[zid]
                        store.put(
                            key,
                            (
                                tuple(
                                    replace(s, index=s.index - start)
                                    for s in zone_summaries
                                ),
                                tuple(
                                    (
                                        r.epoch,
                                        r.t,
                                        r.violation_fraction,
                                        r.clamped,
                                    )
                                    for r in records
                                ),
                            ),
                        )
        summaries.sort(key=lambda s: s.index)
        zone_records.sort(key=lambda r: (r.epoch, r.zone))
        return FleetResult(
            duration_s=self.config.duration_s,
            instances=summaries,
            zone_records=zone_records,
            cache=stats,
        )

    def run_reference(self) -> FleetResult:
        """The scalar sequential reference: one experiment at a time.

        Only defined for governor-off fleets — the governor is a
        cross-instance control loop that the sequential scalar world
        has no equivalent for.
        """
        if self.config.violation_threshold is not None:
            raise ExperimentError(
                "run_reference() requires violation_threshold=None "
                "(the governor has no sequential-scalar equivalent)"
            )
        summaries: List[FleetInstanceSummary] = []
        for index, spec in enumerate(self.instances):
            experiment = _build_experiment(spec, self.config)
            experiment.kernel = "scalar"
            experiment._batched = None
            result = experiment.run()
            summaries.append(_summarise(index, spec, experiment, result))
        return FleetResult(
            duration_s=self.config.duration_s, instances=summaries
        )


def fleet_identity_probe(
    mode: str = "fleet",
    n_instances: int = 4,
    duration_s: float = 60.0,
    seed: int = 3,
    shards: int = 1,
    with_faults: bool = False,
) -> str:
    """Digest of a small fleet under ``mode`` ("fleet" or "reference").

    Importable by reference (spawn-safe), so identity tests and the
    fleet benchmark can run it in fork- and spawn-started children and
    compare against the parent's sequential scalar digest. The returned
    digest folds every instance's result fingerprint and final RNG
    stream states, so equality means bit-identity.
    """
    if mode not in ("fleet", "reference"):
        raise ExperimentError(f"mode must be 'fleet' or 'reference', got {mode!r}")
    config = FleetConfig(
        duration_s=duration_s, shards=shards, workers=1, zone_size=2
    )
    experiment = alibaba_fleet(
        2 * n_instances,
        policy="heracles",
        duration_s=duration_s,
        seed=seed,
        config=config,
    )
    if with_faults and len(experiment.instances) > 1:
        import dataclasses

        experiment.instances[1] = dataclasses.replace(
            experiment.instances[1],
            faults=FaultSchedule.generate(seed + 1, duration_s, faults_per_minute=4.0),
        )
    result = (
        experiment.run() if mode == "fleet" else experiment.run_reference()
    )
    return result.digest


# -- the synthetic Alibaba-shaped fleet trace -----------------------------

#: BE mixes cycled across instances (names from the BE catalog).
_BE_MIXES: Tuple[Tuple[str, ...], ...] = (
    ("stream-llc", "wordcount"),
    ("stream-dram", "imageClassify"),
    ("CPU-stress", "LSTM"),
    ("wordcount", "stream-dram"),
)

#: LC services cycled across instances (catalog keys).
_DEFAULT_SERVICES: Tuple[str, ...] = ("Redis",)


def heracles_fleet_policies(service_name: str) -> Dict[str, PodPolicy]:
    """Heracles' uniform policy for every pod of ``service_name``."""
    from repro.baselines.heracles import HeraclesPolicy

    policy = HeraclesPolicy()
    service = lc_service_spec(service_name)
    return {
        pod: PodPolicy(
            loadlimit=policy.loadlimit,
            slacklimit=policy.slacklimit,
            suspend_on_load_at_or_above=True,
        )
        for pod in service.servpod_names
    }


def rhythm_fleet_policies(service_name: str, seed: int = 0) -> Dict[str, PodPolicy]:
    """Rhythm's profiled per-pod policies (cached profiling pipeline).

    Runs in the parent only; workers receive the distilled
    :class:`PodPolicy` values. ``probe_slacklimits=False`` keeps the
    (cached) profiling pass cheap at fleet scale.
    """
    from repro.experiments.runner import build_rhythm_controllers

    controllers = build_rhythm_controllers(
        lc_service_spec(service_name), seed=seed, probe_slacklimits=False
    )
    return policies_from_controllers(controllers)


def alibaba_fleet(
    n_machines: int,
    policy: str = "rhythm",
    duration_s: float = 600.0,
    seed: int = 0,
    services: Sequence[str] = _DEFAULT_SERVICES,
    flash_crowd_fraction: float = 0.2,
    config: Optional[FleetConfig] = None,
    load: str = "diurnal",
    trace_path: Optional[str] = None,
) -> FleetExperiment:
    """A synthetic Alibaba-shaped fleet of at least ``n_machines`` machines.

    Mimics the trace shape of the paper's motivating datacenter data:
    every instance runs a diurnal load cycle with per-instance phase and
    amplitude jitter, a ``flash_crowd_fraction`` of instances receive a
    superimposed flash-crowd spike, and BE job mixes rotate through the
    catalog. All jitter derives from ``seed`` via a dedicated PRNG, so
    the same arguments always build the same fleet.

    ``policy`` selects ``"rhythm"`` (profiled per-pod thresholds) or
    ``"heracles"`` (uniform 0.85/0.10 with suspend-at-limit).

    ``load="alibaba"`` replays cluster-trace-v2018 machine days (cycled
    across instances) instead of the parametric diurnal cycle; the
    flash-crowd superimposition still applies. The jitter PRNG draws
    identically in both modes, so switching the load mode never
    perturbs which instances get crowds, seeds, or BE mixes.
    ``trace_path`` points replay at an external ``machine_usage`` CSV
    (:func:`~repro.loadgen.alibaba.read_machine_usage` parses both the
    bundled 3-column format and the raw v2018 rows); without it the
    bundled sample is replayed.
    """
    if n_machines < 1:
        raise ConfigurationError(f"n_machines must be >= 1, got {n_machines}")
    if policy not in ("rhythm", "heracles"):
        raise ConfigurationError(
            f"policy must be 'rhythm' or 'heracles', got {policy!r}"
        )
    if load not in ("diurnal", "alibaba"):
        raise ConfigurationError(
            f"load must be 'diurnal' or 'alibaba', got {load!r}"
        )
    if trace_path is not None and load != "alibaba":
        raise ConfigurationError(
            "trace_path requires load='alibaba' (diurnal fleets are "
            "parametric, not replayed)"
        )
    if not services:
        raise ConfigurationError("need at least one LC service name")
    trace_ids: Tuple[str, ...] = ()
    trace = None
    if load == "alibaba":
        if trace_path is not None:
            from repro.loadgen.alibaba import read_machine_usage

            trace = read_machine_usage(trace_path)
            trace_ids = trace.machine_ids()
        else:
            from repro.loadgen.alibaba import alibaba_machine_ids

            trace_ids = alibaba_machine_ids()
    policy_cache: Dict[str, Dict[str, PodPolicy]] = {}
    pods_per_service: Dict[str, int] = {}
    for name in services:
        policy_cache[name] = (
            rhythm_fleet_policies(name, seed=0)
            if policy == "rhythm"
            else heracles_fleet_policies(name)
        )
        pods_per_service[name] = len(lc_service_spec(name).servpod_names)
    jitter = random.Random(1_000_003 * seed + 17)
    instances: List[FleetInstanceSpec] = []
    machines = 0
    k = 0
    while machines < n_machines:
        name = services[k % len(services)]
        # Drawn in both load modes (unused under "alibaba") so the
        # jitter stream stays mode-invariant past this point.
        base = 0.45 + jitter.uniform(-0.05, 0.10)
        amplitude = 0.20 + jitter.uniform(0.0, 0.10)
        phase = jitter.uniform(0.0, duration_s)
        if load == "alibaba":
            from repro.loadgen.alibaba import alibaba_machine_load

            machine_id = trace_ids[k % len(trace_ids)]
            pattern: LoadPattern = (
                trace.load(machine_id)
                if trace is not None
                else alibaba_machine_load(machine_id)
            )
        else:
            pattern = DiurnalLoad(
                base=base, amplitude=amplitude, period_s=duration_s, phase_s=phase
            )
        crowd_roll = jitter.random()
        crowd_start = jitter.uniform(0.2, 0.7) * duration_s
        crowd_peak = jitter.uniform(0.15, 0.35)
        if crowd_roll < flash_crowd_fraction:
            pattern = FlashCrowdLoad(
                pattern,
                [
                    (
                        crowd_start,
                        crowd_peak,
                        max(1.0, duration_s / 40.0),
                        max(1.0, duration_s / 15.0),
                    )
                ],
            )
        instances.append(
            FleetInstanceSpec(
                service=name,
                policies=tuple(sorted(policy_cache[name].items())),
                be_jobs=_BE_MIXES[k % len(_BE_MIXES)],
                pattern=pattern,
                seed=seed * 1_000 + k,
            )
        )
        machines += pods_per_service[name]
        k += 1
    cfg = config or FleetConfig(duration_s=duration_s)
    if cfg.duration_s != duration_s:
        raise ConfigurationError(
            "config.duration_s disagrees with the duration_s argument"
        )
    return FleetExperiment(instances, cfg)
