"""CSV export of experiment results.

Users who want to plot the reproduced figures (matplotlib, gnuplot, R)
can dump every driver's rows to CSV. Dataclass rows are flattened with
computed properties included, so e.g. Figure 12's ``emu_improvement``
lands in the file alongside the raw EMU columns.

Example::

    from repro.experiments.figures import run_service_grid
    from repro.experiments.export import rows_to_csv

    rows_to_csv(run_service_grid(), "figure12_14.csv")
"""

from __future__ import annotations

import csv
import dataclasses
from pathlib import Path
from typing import List, Sequence, Union

from repro.errors import ExperimentError


def _row_fields(row: object, include_properties: bool) -> List[str]:
    """Column names for one dataclass row."""
    if not dataclasses.is_dataclass(row):
        raise ExperimentError(f"expected a dataclass row, got {type(row).__name__}")
    names = [f.name for f in dataclasses.fields(row)]
    if include_properties:
        for name in dir(type(row)):
            if name.startswith("_") or name in names:
                continue
            if isinstance(getattr(type(row), name, None), property):
                names.append(name)
    return names


def _cell(value: object) -> object:
    """Flatten one cell into something CSV-friendly."""
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return str(value)


def rows_to_csv(
    rows: Sequence[object],
    path: Union[str, Path],
    include_properties: bool = True,
) -> Path:
    """Write a sequence of dataclass rows to ``path``; returns the path.

    All rows must be of the same dataclass type. Computed ``@property``
    attributes (improvements, ratios) are exported as extra columns when
    ``include_properties`` is set.
    """
    if not rows:
        raise ExperimentError("no rows to export")
    first_type = type(rows[0])
    if any(type(r) is not first_type for r in rows):
        raise ExperimentError("rows must all be of the same type")
    names = _row_fields(rows[0], include_properties)
    out = Path(path)
    with out.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(names)
        for row in rows:
            writer.writerow([_cell(getattr(row, name)) for name in names])
    return out


def timeline_to_csv(data, path: Union[str, Path]) -> Path:
    """Export a Figure-17 :class:`TimelineData` to a long-format CSV."""
    out = Path(path)
    with out.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([
            "servpod", "t", "load", "slack", "tail_ms", "cpu_utilisation",
            "membw_utilisation", "be_instances", "be_cores", "be_llc_ways",
            "be_rate", "action", "loadlimit", "slacklimit",
        ])
        for pod in data.servpods:
            for s in data.samples[pod]:
                writer.writerow([
                    pod, s.t, round(s.load, 4), round(s.slack, 4),
                    round(s.tail_ms, 4), round(s.cpu_utilisation, 4),
                    round(s.membw_utilisation, 4), s.be_instances, s.be_cores,
                    s.be_llc_ways, round(s.be_rate, 4), s.action,
                    round(data.loadlimit[pod], 4), round(data.slacklimit[pod], 4),
                ])
    return out
