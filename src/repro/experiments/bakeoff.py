"""Single-pass controller bake-off over a seeded scenario grid.

This module turns the :class:`~repro.sim.kernel.BakeoffKernel` into an
experiment: N *members* (controller families — Rhythm's profiled
thresholds, Heracles' uniform ones, the interference-scoring and
PCS-style predictive baselines) run over the same seeded scenarios in a
single shared-physics pass per scenario, and the per-(scenario, member)
summaries fold into a league table.

Identity contract (the repo-wide pattern): every member's summary —
result fingerprint *and* final RNG stream states — is bit-identical to
running that member alone through a fresh
:class:`~repro.experiments.colocation.ColocationExperiment`
(:func:`run_member_reference`); ``tests/test_bakeoff.py`` pins this
in-process, across fork/spawn, and under fault schedules.

**Incremental runs.** :func:`run_bakeoff` memoizes per *cell* — one
(scenario, member) pair — in the content-addressed
:class:`~repro.cache.store.CacheStore`, keyed by
:func:`bakeoff_cell_key`. The member (the controller identity and every
threshold inside it) IS a key coordinate; a scenario's shared pass then
runs only the members that missed, which is safe precisely because of
the identity contract: a member's results cannot depend on who else
shared the pass. A fully warm league table executes zero simulations.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.baselines.interference import (
    InterferencePolicy,
    interference_controllers,
)
from repro.baselines.predictive import PredictivePolicy, predictive_controllers
from repro.cache import CacheStore, stable_hash
from repro.core.controller import ColocationController
from repro.core.top_controller import CONTROL_PERIOD_S
from repro.errors import CacheKeyError, ConfigurationError, ExperimentError
from repro.experiments.colocation import (
    ColocationConfig,
    ColocationExperiment,
    ColocationResult,
)
from repro.experiments.fleet import PodPolicy
from repro.faults.spec import FaultSchedule
from repro.loadgen.patterns import DiurnalLoad, LoadPattern
from repro.parallel.profile import resolve_store
from repro.sim.kernel import BakeoffKernel
from repro.sim.rng import RandomStreams
from repro.workloads.catalog import lc_service_spec
from repro.workloads.spec import ServiceSpec


# -- members --------------------------------------------------------------

_MEMBER_KINDS = ("policies", "interference", "predictive")


@dataclass(frozen=True)
class BakeoffMember:
    """One controller family in shippable, cache-keyable form.

    ``kind`` selects how controllers are rebuilt: ``"policies"`` plays
    distilled per-pod :class:`~repro.experiments.fleet.PodPolicy`
    thresholds (Rhythm's profiled ones, Heracles' uniform ones) through
    :class:`~repro.core.top_controller.TopController`;
    ``"interference"`` and ``"predictive"`` build the scoring baselines
    from their frozen policy dataclasses. Everything here is a value,
    so the member hashes into :func:`bakeoff_cell_key` — two members
    with the same name but different thresholds get different keys.
    """

    name: str
    kind: str
    policies: Optional[Tuple[Tuple[str, PodPolicy], ...]] = None
    interference: Optional[InterferencePolicy] = None
    predictive: Optional[PredictivePolicy] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("bake-off member needs a name")
        if self.kind not in _MEMBER_KINDS:
            raise ConfigurationError(
                f"member kind must be one of {_MEMBER_KINDS}, got {self.kind!r}"
            )
        if self.kind == "policies" and not self.policies:
            raise ConfigurationError(
                f"member {self.name!r}: kind 'policies' needs per-pod policies"
            )

    def build_controllers(
        self, service: ServiceSpec
    ) -> Dict[str, ColocationController]:
        """Fresh (history-free) controllers for every pod of ``service``."""
        if self.kind == "policies":
            policies = dict(self.policies)
            missing = set(service.servpod_names) - set(policies)
            if missing:
                raise ExperimentError(
                    f"member {self.name!r}: no policy for Servpods "
                    f"{sorted(missing)}"
                )
            return {
                pod: policies[pod].build(pod, service.sla_ms)
                for pod in service.servpod_names
            }
        if self.kind == "interference":
            return interference_controllers(
                service, self.interference or InterferencePolicy()
            )
        return predictive_controllers(
            service, self.predictive or PredictivePolicy()
        )


def rhythm_member(
    service_name: str, seed: int = 0, name: str = "rhythm"
) -> BakeoffMember:
    """Rhythm's profiled per-pod thresholds as a bake-off member.

    Runs the (cached) profiling pipeline once, in the caller, and ships
    the distilled policies — the fleet convention, so the member's key
    captures the actual thresholds, not the profiling recipe.
    """
    from repro.experiments.fleet import rhythm_fleet_policies

    return BakeoffMember(
        name=name,
        kind="policies",
        policies=tuple(sorted(rhythm_fleet_policies(service_name, seed=seed).items())),
    )


def heracles_member(service_name: str, name: str = "heracles") -> BakeoffMember:
    """Heracles' uniform thresholds as a bake-off member."""
    from repro.experiments.fleet import heracles_fleet_policies

    return BakeoffMember(
        name=name,
        kind="policies",
        policies=tuple(sorted(heracles_fleet_policies(service_name).items())),
    )


def interference_member(
    policy: Optional[InterferencePolicy] = None, name: str = "interference"
) -> BakeoffMember:
    """The Alibaba-style interference-scoring baseline as a member."""
    return BakeoffMember(
        name=name, kind="interference", interference=policy or InterferencePolicy()
    )


def predictive_member(
    policy: Optional[PredictivePolicy] = None, name: str = "predictive"
) -> BakeoffMember:
    """The PCS-style predicted-slack baseline as a member."""
    return BakeoffMember(
        name=name, kind="predictive", predictive=policy or PredictivePolicy()
    )


def default_members(service_name: str, seed: int = 0) -> List[BakeoffMember]:
    """The standard four-way bake-off roster for ``service_name``."""
    return [
        rhythm_member(service_name, seed=seed),
        heracles_member(service_name),
        interference_member(),
        predictive_member(),
    ]


# -- scenarios ------------------------------------------------------------


@dataclass(frozen=True)
class BakeoffScenario:
    """One seeded co-location scenario every member runs through."""

    #: LC service catalog key.
    service: str
    #: BE job catalog names co-located on the machines.
    be_jobs: Tuple[str, ...]
    #: The scenario's request-load trace.
    pattern: LoadPattern
    #: Root seed of the scenario's RNG streams (shared by all members).
    seed: int = 0
    #: Optional fault schedule injected mid-run.
    faults: Optional[FaultSchedule] = None
    #: Display label (league table rows); NOT a cache-key coordinate.
    label: str = ""


@dataclass(frozen=True)
class BakeoffConfig:
    """Bake-off-level tunables (per-run knobs ride on ColocationConfig)."""

    duration_s: float = 120.0
    control_period_s: float = CONTROL_PERIOD_S
    sample_cap: int = 800
    min_samples: int = 100
    max_be_instances: int = 16

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.control_period_s <= 0:
            raise ConfigurationError("bake-off duration/period must be positive")

    def colocation_config(self, scenario: BakeoffScenario) -> ColocationConfig:
        """The per-run config this bake-off config induces."""
        return ColocationConfig(
            duration_s=self.duration_s,
            control_period_s=self.control_period_s,
            sample_cap=self.sample_cap,
            min_samples=self.min_samples,
            max_be_instances=self.max_be_instances,
            faults=scenario.faults,
            seed=scenario.seed,
        )


def bakeoff_scenario_grid(
    service: str = "Redis",
    loads: Sequence[float] = (0.25, 0.45, 0.65),
    be_jobs: Sequence[str] = ("stream-llc", "wordcount"),
    duration_s: float = 120.0,
    seed: int = 0,
    faults_per_minute: float = 0.0,
) -> List[BakeoffScenario]:
    """A seeded scenario grid: one diurnal cycle per load point.

    Every scenario gets its own RNG seed (``seed * 1_000 + index``, the
    fleet convention) and, with ``faults_per_minute > 0``, its own
    seeded fault schedule — so the same arguments always build the same
    grid, byte for byte.
    """
    if not loads:
        raise ConfigurationError("need at least one load point")
    scenarios: List[BakeoffScenario] = []
    for i, load in enumerate(loads):
        faults = (
            FaultSchedule.generate(
                seed * 1_000 + i + 1, duration_s, faults_per_minute=faults_per_minute
            )
            if faults_per_minute > 0
            else None
        )
        scenarios.append(
            BakeoffScenario(
                service=service,
                be_jobs=tuple(be_jobs),
                pattern=DiurnalLoad(
                    base=load, amplitude=0.10, period_s=duration_s
                ),
                seed=seed * 1_000 + i,
                faults=faults,
                label=f"{service}@{load:.2f}" + ("+faults" if faults else ""),
            )
        )
    return scenarios


# -- cache keys and summaries ---------------------------------------------


def bakeoff_cell_key(
    scenario: BakeoffScenario, member: BakeoffMember, config: BakeoffConfig
) -> str:
    """The content address of one (scenario, member) bake-off cell.

    The **member is a key coordinate** — the controller's identity and
    every threshold inside it determine the cell's results, so a
    retuned policy misses cleanly. Deliberately NOT coordinates:

    - the scenario ``label`` — cosmetic; entries are stored label-free
      and rebased on load, so renaming a row cannot force a re-run;
    - the *roster* — who else shares the scenario's pass; the identity
      contract makes a member's results roster-independent;
    - worker/shard counts and the kernel choice — the repo-wide policy
      for pure wall-clock knobs (cf. ``zone_cache_key``).

    Raises :class:`~repro.errors.CacheKeyError` for unhashable
    scenarios (e.g. a pattern wrapping a bare callable); such cells
    simply run uncached.
    """
    return stable_hash(
        (
            "bakeoff-cell",
            scenario.service,
            scenario.be_jobs,
            scenario.pattern,
            scenario.seed,
            scenario.faults,
            member,
            config.duration_s,
            config.control_period_s,
            config.sample_cap,
            config.min_samples,
            config.max_be_instances,
        )
    )


@dataclass(frozen=True)
class BakeoffCellSummary:
    """The reported slice of one member's result on one scenario."""

    scenario: str
    member: str
    service: str
    sla_ms: float
    sla_violations: int
    worst_tail_ms: float
    be_throughput: float
    emu: float
    cpu_utilisation: float
    be_kills: int
    be_suspensions: int
    events_fired: int
    #: sha256 over (result fingerprint, final RNG states) — the
    #: bit-identity coordinate the bake-off identity tests pin against
    #: independent per-member runs.
    digest: str


def bakeoff_member_digest(
    streams: RandomStreams, result: ColocationResult
) -> str:
    """sha256 over (result fingerprint, final RNG stream states).

    Pins the same values as ``repr``-ing the full
    :func:`~repro.parallel.grid.colocation_fingerprint` blob — floats
    enter as raw IEEE-754 bytes, so a single changed bit anywhere in
    the sample series changes the digest — but streams the per-tick
    sample columns through one ``struct.pack`` per machine instead of
    materialising a ~100 KB repr string (this digest runs once per
    member per bake-off cell; it is on the benchmark's hot path).
    """
    h = hashlib.sha256()
    head = (
        result.service,
        result.duration_s,
        result.lc_load_mean,
        result.be_kills,
        result.be_suspensions,
        result.sla_violations,
        result.worst_tail_ms,
        result.events_fired,
    )
    h.update(repr(head).encode("utf-8"))
    for pod in sorted(result.machines):
        metrics = result.machines[pod]
        meta = (
            pod,
            metrics.machine_name,
            metrics.completed_be_throughput,
            metrics.avg_emu,
            metrics.avg_cpu_utilisation,
            metrics.avg_membw_utilisation,
        )
        h.update(repr(meta).encode("utf-8"))
        tails = (
            tuple(metrics.tail.window_tails) if metrics.tail is not None else ()
        )
        h.update(struct.pack(f"<q{len(tails)}d", len(tails), *tails))
        samples = metrics.samples
        columns = [
            value
            for s in samples
            for value in (
                s.t,
                s.load,
                s.slack,
                s.tail_ms,
                s.cpu_utilisation,
                s.membw_utilisation,
                float(s.be_instances),
                float(s.be_cores),
                float(s.be_llc_ways),
                s.be_rate,
            )
        ]
        h.update(struct.pack(f"<{len(columns)}d", *columns))
        h.update("\x1f".join(s.action for s in samples).encode("utf-8"))
    for name in sorted(streams._streams):
        h.update(name.encode("utf-8"))
        h.update(repr(streams._streams[name].bit_generator.state).encode("utf-8"))
    return h.hexdigest()


def _summarise(
    scenario: BakeoffScenario,
    member_name: str,
    service: ServiceSpec,
    streams: RandomStreams,
    result: ColocationResult,
) -> BakeoffCellSummary:
    return BakeoffCellSummary(
        scenario=scenario.label,
        member=member_name,
        service=scenario.service,
        sla_ms=service.sla_ms,
        sla_violations=result.sla_violations,
        worst_tail_ms=result.worst_tail_ms,
        be_throughput=result.be_throughput,
        emu=result.emu,
        cpu_utilisation=result.cpu_utilisation,
        be_kills=result.be_kills,
        be_suspensions=result.be_suspensions,
        events_fired=result.events_fired,
        digest=bakeoff_member_digest(streams, result),
    )


# -- results --------------------------------------------------------------


@dataclass
class BakeoffCacheStats:
    """Cache outcome counts, one unit per (scenario, member) cell."""

    hits: int = 0
    misses: int = 0
    skipped: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses + self.skipped

    @property
    def simulated(self) -> int:
        """Cells that actually ran a member (everything but hits)."""
        return self.misses + self.skipped


@dataclass(frozen=True)
class LeagueRow:
    """One member's aggregate line across every scenario."""

    rank: int
    member: str
    scenarios: int
    sla_violations: int
    worst_tail_over_sla: float
    be_throughput: float
    emu: float
    be_kills: int


@dataclass
class BakeoffResult:
    """Outcome of one bake-off: cells in (scenario, member) order."""

    duration_s: float
    members: List[str]
    cells: List[BakeoffCellSummary]
    #: Cell-level cache accounting, or None when the run was uncached.
    cache: Optional[BakeoffCacheStats] = None
    #: Shared physics passes actually executed (0 on a fully warm run).
    passes: int = 0
    #: Divergence forks / re-merges across executed passes.
    forks: int = 0
    merges: int = 0
    #: Branch-ticks actually simulated vs. the member-ticks an
    #: independent-runs sweep of the same pending cells would cost.
    branch_ticks: int = 0
    member_ticks: int = 0

    @property
    def shared_fraction(self) -> float:
        """Fraction of independent-equivalent physics shared away."""
        if not self.member_ticks:
            return 0.0
        return 1.0 - self.branch_ticks / self.member_ticks

    @property
    def digest(self) -> str:
        """Order-sensitive fold of every cell digest (bit-identity)."""
        h = hashlib.sha256()
        for cell in self.cells:
            h.update(cell.digest.encode("ascii"))
        return h.hexdigest()

    def league(self) -> List[LeagueRow]:
        """Aggregate rows ranked by SLA violations, then EMU.

        Violations total across scenarios; throughput/EMU average;
        ``worst_tail_over_sla`` is the worst ratio seen anywhere.
        """
        rows = []
        for name in self.members:
            cells = [c for c in self.cells if c.member == name]
            if not cells:
                continue
            rows.append(
                (
                    sum(c.sla_violations for c in cells),
                    -sum(c.emu for c in cells) / len(cells),
                    name,
                    cells,
                )
            )
        rows.sort(key=lambda r: (r[0], r[1], r[2]))
        return [
            LeagueRow(
                rank=i + 1,
                member=name,
                scenarios=len(cells),
                sla_violations=violations,
                worst_tail_over_sla=max(
                    c.worst_tail_ms / c.sla_ms for c in cells
                ),
                be_throughput=sum(c.be_throughput for c in cells) / len(cells),
                emu=-neg_emu,
                be_kills=sum(c.be_kills for c in cells),
            )
            for i, (violations, neg_emu, name, cells) in enumerate(rows)
        ]


# -- the bake-off driver --------------------------------------------------


def _build_root(
    scenario: BakeoffScenario,
    member: BakeoffMember,
    service: ServiceSpec,
    config: BakeoffConfig,
) -> ColocationExperiment:
    from repro.bejobs.catalog import be_job_spec

    return ColocationExperiment(
        service,
        member.build_controllers(service),
        [be_job_spec(name) for name in scenario.be_jobs],
        scenario.pattern,
        streams=RandomStreams(scenario.seed),
        config=config.colocation_config(scenario),
    )


def run_member_reference(
    scenario: BakeoffScenario,
    member: BakeoffMember,
    config: Optional[BakeoffConfig] = None,
) -> BakeoffCellSummary:
    """One member alone through a fresh experiment — the identity oracle."""
    config = config or BakeoffConfig()
    service = lc_service_spec(scenario.service)
    experiment = _build_root(scenario, member, service, config)
    result = experiment.run()
    return _summarise(scenario, member.name, service, experiment.streams, result)


def run_bakeoff(
    scenarios: Sequence[BakeoffScenario],
    members: Sequence[BakeoffMember],
    config: Optional[BakeoffConfig] = None,
    cache: Union[None, bool, CacheStore] = None,
) -> BakeoffResult:
    """Run every member over every scenario, one shared pass per scenario.

    ``cache`` follows the grid convention: ``None``/``False`` run
    uncached, ``True`` uses the environment-default store, a
    :class:`CacheStore` is used as given. Cached cells are served
    without simulating; each scenario's shared pass covers exactly the
    members that missed (safe by the identity contract — see module
    docstring). A fully warm run reports ``passes == 0`` and reproduces
    the cold digest bit-identically.
    """
    if not scenarios:
        raise ConfigurationError("bake-off needs at least one scenario")
    if not members:
        raise ConfigurationError("bake-off needs at least one member")
    names = [m.name for m in members]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate member names in {names}")
    config = config or BakeoffConfig()
    store = resolve_store(cache)
    stats = BakeoffCacheStats() if store is not None else None
    result = BakeoffResult(
        duration_s=config.duration_s, members=names, cells=[], cache=stats
    )
    for scenario in scenarios:
        service = lc_service_spec(scenario.service)
        by_member: Dict[str, BakeoffCellSummary] = {}
        keys: Dict[str, Optional[str]] = {}
        pending: List[BakeoffMember] = []
        for member in members:
            key = None
            if store is not None:
                try:
                    key = bakeoff_cell_key(scenario, member, config)
                except CacheKeyError:
                    key = None
            keys[member.name] = key
            cached = store.get(key) if store is not None and key else None
            if isinstance(cached, BakeoffCellSummary):
                by_member[member.name] = replace(cached, scenario=scenario.label)
                stats.hits += 1
            else:
                pending.append(member)
        if pending:
            root = _build_root(scenario, pending[0], service, config)
            kernel = BakeoffKernel(
                root,
                {m.name: m.build_controllers(service) for m in pending},
            )
            run_results = kernel.run()
            result.passes += 1
            result.forks += kernel.stats.forks
            result.merges += kernel.stats.merges
            result.branch_ticks += kernel.stats.branch_ticks
            result.member_ticks += kernel.stats.ticks * len(pending)
            for member in pending:
                summary = _summarise(
                    scenario,
                    member.name,
                    service,
                    kernel.member_streams(member.name),
                    run_results[member.name],
                )
                by_member[member.name] = summary
                key = keys[member.name]
                if stats is not None:
                    if key is None:
                        stats.skipped += 1
                    else:
                        stats.misses += 1
                if store is not None and key is not None:
                    # Label-free entry: the label is not a key
                    # coordinate, so it must not be baked in either.
                    store.put(key, replace(summary, scenario=""))
        result.cells.extend(by_member[name] for name in names)
    return result


def bakeoff_identity_probe(
    mode: str = "bakeoff",
    duration_s: float = 60.0,
    seed: int = 3,
    with_faults: bool = False,
) -> str:
    """Digest of a small three-member bake-off under ``mode``.

    Importable by reference (spawn-safe), so identity tests can run it
    in fork- and spawn-started children and compare against the
    parent's independent-runs digest. ``mode`` is ``"bakeoff"`` (one
    shared pass per scenario) or ``"reference"`` (every member alone);
    equal digests mean bit-identity. The roster skips Rhythm — its
    profiling pipeline would dominate a cold spawn child — which loses
    no coverage: members are interchangeable behind the interface.
    """
    if mode not in ("bakeoff", "reference"):
        raise ExperimentError(
            f"mode must be 'bakeoff' or 'reference', got {mode!r}"
        )
    scenarios = bakeoff_scenario_grid(
        loads=(0.35, 0.55),
        duration_s=duration_s,
        seed=seed,
        faults_per_minute=4.0 if with_faults else 0.0,
    )
    members = [
        heracles_member("Redis"),
        interference_member(),
        predictive_member(),
    ]
    config = BakeoffConfig(duration_s=duration_s)
    if mode == "bakeoff":
        return run_bakeoff(scenarios, members, config, cache=None).digest
    h = hashlib.sha256()
    for scenario in scenarios:
        for member in members:
            cell = run_member_reference(scenario, member, config)
            h.update(cell.digest.encode("ascii"))
    return h.hexdigest()
