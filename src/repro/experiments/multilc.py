"""Multi-tenant LC co-location — the paper's §7 future work.

"In the future, we would like to further improve the resource efficiency
through co-locating multi-tenant LCs and BEs."

This extension pairs the Servpods of *two* LC services onto shared
machines (plus BE jobs), and generalises Algorithm 2 in the obvious way:
each machine runs one top controller per resident Servpod, and the
machine executes the **harshest** decision across them — a machine must
protect whichever tenant is currently closest to its SLA.

Cross-tenant interference is modeled like BE interference under the same
isolation stack: the co-resident LC's resource usage becomes additional
pressure on each Servpod (attenuated by cpuset/CAT, since both tenants
are pinned and partitioned).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bejobs.job import BeResourceSnapshot, LcUsage, compute_be_rates
from repro.bejobs.spec import BeJobSpec
from repro.cluster.machine import LC_DOMAIN, Machine, MachineSpec
from repro.core.actions import BeAction
from repro.core.servpod import Servpod
from repro.core.subcontrollers import (
    BeJobPool,
    CpuLlcSubcontroller,
    MemorySubcontroller,
    NetworkSubcontroller,
)
from repro.core.top_controller import TopController
from repro.errors import ExperimentError
from repro.experiments.colocation import ColocationConfig
from repro.interference.model import Pressure
from repro.loadgen.generator import WindowLoadGenerator
from repro.loadgen.patterns import LoadPattern
from repro.metrics.percentile import percentile
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams
from repro.workloads.service import Service, ServiceState
from repro.workloads.spec import ServiceSpec


@dataclass(frozen=True)
class TenantPlacement:
    """Which Servpod of which tenant sits on which machine."""

    machine: str
    #: (service name, servpod name) pairs resident on this machine.
    residents: Tuple[Tuple[str, str], ...]


@dataclass
class TenantResult:
    """Per-tenant outcome of a multi-LC run."""

    service: str
    lc_load_mean: float = 0.0
    sla_violations: int = 0
    worst_tail_ms: float = 0.0


@dataclass
class MultiLcResult:
    """Outcome of one multi-tenant co-location run."""

    tenants: Dict[str, TenantResult]
    be_throughput: float
    machine_count: int

    @property
    def total_violations(self) -> int:
        """SLA violations summed over tenants."""
        return sum(t.sla_violations for t in self.tenants.values())

    @property
    def emu(self) -> float:
        """Aggregate EMU: mean tenant load + per-machine BE throughput."""
        lc = float(np.mean([t.lc_load_mean for t in self.tenants.values()]))
        return lc + self.be_throughput


def pair_servpods(
    services: Sequence[ServiceSpec],
) -> List[TenantPlacement]:
    """Zip two services' Servpods onto shared machines.

    Pods are paired by index; when one service has more Servpods, its
    tail pods get machines of their own (as in the single-tenant case).
    """
    if len(services) != 2:
        raise ExperimentError("multi-LC pairing currently supports two tenants")
    a, b = services
    placements: List[TenantPlacement] = []
    n = max(len(a.servpods), len(b.servpods))
    for i in range(n):
        residents = []
        if i < len(a.servpods):
            residents.append((a.name, a.servpods[i].name))
        if i < len(b.servpods):
            residents.append((b.name, b.servpods[i].name))
        placements.append(
            TenantPlacement(machine=f"shared{i}", residents=tuple(residents))
        )
    return placements


class MultiLcExperiment:
    """Co-locates two LC services plus BE jobs on shared machines."""

    def __init__(
        self,
        services: Sequence[ServiceSpec],
        controllers: Mapping[str, Mapping[str, TopController]],
        be_specs: Sequence[BeJobSpec],
        patterns: Mapping[str, LoadPattern],
        streams: Optional[RandomStreams] = None,
        config: Optional[ColocationConfig] = None,
        placements: Optional[Sequence[TenantPlacement]] = None,
    ) -> None:
        if len(services) != 2:
            raise ExperimentError("MultiLcExperiment takes exactly two services")
        self.services = {spec.name: spec for spec in services}
        for spec in services:
            if spec.name not in controllers or spec.name not in patterns:
                raise ExperimentError(f"missing controllers/pattern for {spec.name}")
            missing = set(spec.servpod_names) - set(controllers[spec.name])
            if missing:
                raise ExperimentError(
                    f"{spec.name}: no controller for Servpods {sorted(missing)}"
                )
        self.controllers = {s: dict(c) for s, c in controllers.items()}
        self.config = config or ColocationConfig()
        self.streams = streams or RandomStreams(self.config.seed)
        self.placements = list(placements or pair_servpods(services))
        self.runtimes = {
            name: Service(spec, self.streams.spawn(f"tenant:{name}"))
            for name, spec in self.services.items()
        }
        self.generators = {
            name: WindowLoadGenerator(
                patterns[name],
                spec.max_load_qps,
                self.streams.stream(f"arrivals:{name}"),
                sample_cap=self.config.sample_cap,
                min_samples=self.config.min_samples,
                burst_sigma=self.config.burst_sigma,
            )
            for name, spec in self.services.items()
        }
        base = self.config.base_machine or MachineSpec()
        self._machines: Dict[str, Machine] = {}
        self._pods: Dict[str, List[Tuple[str, Servpod]]] = {}
        self._pools: Dict[str, BeJobPool] = {}
        for placement in self.placements:
            spec = MachineSpec(
                name=placement.machine, cores=base.cores, llc_mb=base.llc_mb,
                llc_ways=base.llc_ways, membw_gbps=base.membw_gbps,
                memory_gb=base.memory_gb, link_gbps=base.link_gbps,
                tdp_watts=base.tdp_watts, min_mhz=base.min_mhz,
                max_mhz=base.max_mhz,
            )
            machine = Machine(spec)
            residents: List[Tuple[str, Servpod]] = []
            cores = llc = 0
            memory = 0.0
            for service_name, pod_name in placement.residents:
                pod_spec = self.services[service_name].servpod(pod_name)
                residents.append(
                    (service_name, Servpod(spec=pod_spec, machine=machine))
                )
                cores += pod_spec.cores
                llc += pod_spec.llc_ways
                memory += pod_spec.memory_gb
            if cores > spec.cores or llc > spec.llc_ways:
                raise ExperimentError(
                    f"{placement.machine}: residents need {cores} cores / "
                    f"{llc} ways, machine has {spec.cores} / {spec.llc_ways}"
                )
            machine.reserve_lc(cores=cores, llc_ways=llc,
                               memory_gb=min(memory, spec.memory_gb))
            self._machines[placement.machine] = machine
            self._pods[placement.machine] = residents
            self._pools[placement.machine] = BeJobPool(
                list(be_specs), placement.machine, self.config.max_be_instances
            )
        self._cpu_llc = CpuLlcSubcontroller(escalate_cut=self.config.cut_escalation)
        self._memory = MemorySubcontroller()
        self._network = NetworkSubcontroller()
        self._results = {
            name: TenantResult(service=name) for name in self.services
        }
        self._be_work = 0.0

    # -- run -------------------------------------------------------------

    def run(self) -> MultiLcResult:
        """Advance the experiment and summarise per-tenant outcomes."""
        cfg = self.config
        engine = Engine()
        load_sums = {name: 0.0 for name in self.services}
        ticks = [0]

        def tick(t: float) -> None:
            loads = self._tick(t, cfg.control_period_s)
            for name, load in loads.items():
                load_sums[name] += load
            ticks[0] += 1

        engine.every(
            cfg.control_period_s, tick,
            priority=Engine.PRIORITY_CONTROL,
            first_at=cfg.control_period_s, until=cfg.duration_s,
        )
        engine.run(until=cfg.duration_s)

        for name, result in self._results.items():
            result.lc_load_mean = load_sums[name] / max(1, ticks[0])
        be_throughput = sum(
            pool.total_normalized_work for pool in self._pools.values()
        ) / (cfg.duration_s * len(self._machines))
        return MultiLcResult(
            tenants=dict(self._results),
            be_throughput=be_throughput,
            machine_count=len(self._machines),
        )

    # -- one control period -------------------------------------------------

    def _tick(self, t: float, dt: float) -> Dict[str, float]:
        windows = {
            name: gen.window(t - dt, dt) for name, gen in self.generators.items()
        }

        # Phase 1: per-machine physics with cross-tenant pressure.
        slowdowns: Dict[str, Dict[str, float]] = {name: {} for name in self.services}
        inflations: Dict[str, Dict[str, float]] = {name: {} for name in self.services}
        snapshots: Dict[str, BeResourceSnapshot] = {}
        for machine_name, machine in self._machines.items():
            residents = self._pods[machine_name]
            usages = {
                svc_name: self.runtimes[svc_name].lc_usage(
                    pod.name, windows[svc_name].realized_load
                )
                for svc_name, pod in residents
            }
            combined = LcUsage(
                busy_cores=sum(u.busy_cores for u in usages.values()),
                membw_fraction=min(1.0, sum(u.membw_fraction for u in usages.values())),
                net_gbps=sum(u.net_gbps for u in usages.values()),
                llc_fraction=min(1.0, sum(u.llc_fraction for u in usages.values())),
            )
            self._network.apply(machine, combined.net_gbps)
            snapshot = compute_be_rates(
                machine, self._pools[machine_name].jobs(), combined
            )
            snapshots[machine_name] = snapshot
            be_pressure = Pressure.from_be_snapshot(
                snapshot, machine.spec.cores, self.config.isolation,
                lc_freq_ratio=machine.dvfs.ratio(LC_DOMAIN),
            )
            for svc_name, pod in residents:
                neighbour = self._neighbour_pressure(
                    machine, usages, exclude=svc_name
                )
                pressure = _combine_pressures(be_pressure, neighbour)
                load = windows[svc_name].realized_load
                slowdown = pod.slowdown(
                    pressure, load, self.config.interference
                )
                slowdowns[svc_name][pod.name] = slowdown
                inflations[svc_name][pod.name] = (
                    self.config.interference.sigma_inflation(slowdown)
                )

        # Phase 2: per-tenant tail observation.
        tails: Dict[str, float] = {}
        for svc_name, runtime in self.runtimes.items():
            window = windows[svc_name]
            if window.n_samples > 0:
                latencies = runtime.sample_e2e(
                    window.realized_load, window.n_samples,
                    ServiceState(slowdowns[svc_name], inflations[svc_name]),
                )
                spec = self.services[svc_name]
                tails[svc_name] = float(
                    percentile(latencies, spec.tail_percentile)
                )
            else:
                tails[svc_name] = 0.0
            spec = self.services[svc_name]
            result = self._results[svc_name]
            if tails[svc_name] > spec.sla_ms:
                result.sla_violations += 1
            result.worst_tail_ms = max(result.worst_tail_ms, tails[svc_name])

        # Phase 3: BE progress.
        for machine_name, pool in self._pools.items():
            snapshot = snapshots[machine_name]
            for job in pool.running():
                job.advance(dt, snapshot.rates.get(job.job_id, 0.0))

        # Phase 4: the harshest resident decision wins per machine.
        for machine_name, machine in self._machines.items():
            decision: Optional[BeAction] = None
            for svc_name, pod in self._pods[machine_name]:
                controller = self.controllers[svc_name][pod.name]
                action = controller.decide(
                    windows[svc_name].load, tails[svc_name], t=t
                )
                if decision is None or action.harsher_than(decision):
                    decision = action
            assert decision is not None
            self._cpu_llc.apply(decision, machine, self._pools[machine_name])
            self._memory.apply(decision, machine, self._pools[machine_name])

        return {name: windows[name].load for name in self.services}

    def _neighbour_pressure(
        self, machine: Machine, usages: Mapping[str, LcUsage], exclude: str
    ) -> Pressure:
        """Cross-tenant pressure on one resident from the other tenant."""
        others = [u for name, u in usages.items() if name != exclude]
        if not others:
            return Pressure.none()
        iso = self.config.isolation
        busy = sum(u.busy_cores for u in others) / machine.spec.cores
        llc = sum(u.llc_fraction for u in others)
        membw = sum(u.membw_fraction for u in others)
        net = sum(u.net_gbps for u in others) / machine.spec.link_gbps
        return Pressure(
            cpu=iso.cpu_pressure(min(1.0, busy)),
            llc=iso.llc_pressure(min(1.0, llc), min(1.0, llc)),
            membw=min(1.0, membw),
            net=min(1.0, net),
        )


def _combine_pressures(a: Pressure, b: Pressure) -> Pressure:
    """Additive pressure combination, capped at 1 per dimension."""
    return Pressure(
        cpu=min(1.0, a.cpu + b.cpu),
        llc=min(1.0, a.llc + b.llc),
        membw=min(1.0, a.membw + b.membw),
        net=min(1.0, a.net + b.net),
        freq=min(1.0, a.freq + b.freq),
    )
