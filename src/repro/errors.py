"""Exception hierarchy for the Rhythm reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """An invariant of the discrete-event simulation kernel was violated."""


class ClockError(SimulationError):
    """The simulation clock was moved backwards or misused."""


class ResourceError(ReproError):
    """A machine-resource allocation request could not be satisfied."""


class AllocationError(ResourceError):
    """An attempt to allocate more of a resource than is available."""


class ReleaseError(ResourceError):
    """An attempt to release more of a resource than was allocated."""


class ConfigurationError(ReproError):
    """A workload, machine, or controller was configured inconsistently."""


class TracingError(ReproError):
    """The request tracer could not reconstruct a causal path graph."""


class CausalityError(TracingError):
    """Event causality could not be established (unmatched SEND/RECV)."""


class ProfilingError(ReproError):
    """Offline profiling failed (e.g. insufficient load points)."""


class ControlError(ReproError):
    """The runtime controller was driven into an invalid state."""


class ExperimentError(ReproError):
    """An experiment harness was invoked with unusable parameters."""


class FaultError(ReproError):
    """A fault specification or injection schedule was invalid."""


class InjectedWorkerFault(ReproError):
    """A deliberately injected worker failure (chaos testing only).

    Raised inside a pool worker when an :class:`~repro.faults.executor.
    ExecutorFaultPlan` selects crash-mode sabotage for a task; the pool's
    retry path must absorb it without surfacing to callers.
    """


class CacheError(ReproError):
    """The result cache was misused or misconfigured."""


class CacheKeyError(CacheError):
    """A value could not be reduced to a stable cache key.

    Raised when an object reachable from a cell configuration has no
    canonical byte encoding (e.g. a bare callable). Callers treat the
    owning cell as uncacheable and simply recompute it.
    """
