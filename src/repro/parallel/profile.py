"""The parallel profiling pipeline.

``profile_services`` used to be a serial parent-side loop: for each
distinct service, run the full solo-run load sweep (50 load points) and
then Algorithm 1's SLA probe walks, all in one process. Both stages are
embarrassingly parallel once their randomness is derived from task
coordinates instead of consumption order:

- a **sweep task** profiles one ``(service, load)`` point via
  :func:`repro.core.profiler.profile_load_point`, whose streams come
  from ``(service, load, seed)`` alone;
- a **slacklimit task** runs one Servpod's Algorithm-1 walk via
  :func:`repro.core.slacklimit.find_slacklimit_for_pod`, rebuilding the
  SLA probe inside the worker from the derived loadlimits
  (:func:`repro.experiments.runner.sla_probe_for`); the probe draws from
  streams named after the *candidate configuration*, so any process
  evaluating a candidate uses the same randomness.

Tasks fan out through the persistent pool of :mod:`repro.parallel.pool`
— the same pool the grid engine uses, so a cold figure run pays pool
startup exactly once — with the :class:`~repro.workloads.spec.ServiceSpec`
broadcast once instead of pickled per task. Results are bit-identical to
the serial :meth:`repro.core.rhythm.Rhythm` pipeline by construction
(asserted in ``tests/test_parallel.py``).

Sub-profile results are content-addressed in the
:class:`~repro.cache.store.CacheStore` at load-point granularity: each
:class:`~repro.core.profiler.LoadPointProfile` and each per-Servpod
slacklimit is cached under a key of exactly its inputs. Changing the
evaluation BE mix therefore invalidates only the slacklimit searches
(their keys include the BE specs); changing one load leaves every other
load point's entry valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cache.keys import stable_hash
from repro.cache.store import CacheStore, default_store
from repro.core.contribution import ContributionAnalyzer, ContributionResult
from repro.core.loadlimit import loadlimit_table
from repro.core.profiler import LoadPointProfile, ProfilingResult, profile_load_point
from repro.core.rhythm import RhythmConfig
from repro.core.slacklimit import (
    find_slacklimit_for_pod,
    violation_free_fixed_point,
)
from repro.errors import CacheKeyError, ProfilingError
from repro.parallel.artifact import RhythmArtifact
from repro.parallel.pool import (
    BroadcastRef,
    Envelope,
    broadcast,
    resolve_profile_workers,
    resolve_ref,
    run_envelopes,
)
from repro.workloads.spec import ServiceSpec

#: Per-request trace noise of the profiling emitter — the
#: :class:`~repro.core.profiler.ServiceProfiler` default, which
#: :class:`~repro.core.rhythm.RhythmConfig` does not override.
_NOISE_PER_REQUEST = 2.0


@dataclass
class ProfileStats:
    """Work accounting of one profiling invocation.

    ``*_executed`` counts tasks that actually simulated; a warm cache
    re-run reports 0 for both (asserted in ``tests/test_parallel.py``).
    """

    #: Load points the sweep covered / simulated / served from cache.
    sweep_points: int = 0
    sweep_executed: int = 0
    sweep_cache_hits: int = 0
    #: Per-Servpod Algorithm-1 walks covered / executed / cached.
    slack_walks: int = 0
    slack_executed: int = 0
    slack_cache_hits: int = 0
    #: Whole services served from the artifact-level fast path.
    artifact_cache_hits: int = 0

    def merge(self, other: "ProfileStats") -> None:
        """Accumulate another invocation's counts into this one."""
        self.sweep_points += other.sweep_points
        self.sweep_executed += other.sweep_executed
        self.sweep_cache_hits += other.sweep_cache_hits
        self.slack_walks += other.slack_walks
        self.slack_executed += other.slack_executed
        self.slack_cache_hits += other.slack_cache_hits
        self.artifact_cache_hits += other.artifact_cache_hits


#: In-process artifact memo, the parallel analogue of the runner's
#: ``_RHYTHM_CACHE``: repeated grid invocations in one process profile
#: each (service, seed, mode, probe, profile signature) at most once
#: even without a store.
_ARTIFACT_MEMO: Dict[Tuple, RhythmArtifact] = {}


def clear_profile_memo() -> None:
    """Drop the in-process artifact memo (tests use this for isolation)."""
    _ARTIFACT_MEMO.clear()


def resolve_store(cache: Union[None, bool, CacheStore]) -> Optional[CacheStore]:
    """Normalize a ``cache`` argument to a store (or no caching).

    ``None``/``False`` disable caching; ``True`` uses the
    environment-default store (which ``RHYTHM_CACHE=off`` may veto);
    a :class:`CacheStore` is used as given.
    """
    if isinstance(cache, CacheStore):
        return cache
    if cache:
        return default_store()
    return None


# -- cache keys -----------------------------------------------------------


def _profile_signature(cfg: RhythmConfig, probe_duration_s: float) -> Tuple:
    """The result-affecting profile inputs beyond (service, seed, mode).

    A whole-artifact entry is only valid for the exact sweep grid and
    sample budget that produced it; the drift scenarios re-profile the
    same service under *shifting* grids, so these must be memo/key
    coordinates or a stale artifact would be served across epochs.
    """
    return (
        tuple(float(u) for u in cfg.loads),
        int(cfg.requests_per_load),
        int(cfg.tail_samples),
        float(cfg.min_slacklimit),
        float(probe_duration_s),
    )


#: The signature of the default pipeline configuration. Artifacts keyed
#: under it hash exactly as they did before the signature existed, so
#: default-config entries (the overwhelmingly common case) stay valid.
_DEFAULT_PROFILE_SIGNATURE = _profile_signature(RhythmConfig(), 600.0)


def artifact_cache_key(
    service: ServiceSpec,
    seed: int,
    profiling_mode: str,
    probe_slacklimits: bool,
    profile_signature: Optional[Tuple] = None,
) -> str:
    """The content address of one service's profiling artifact.

    ``profile_signature`` (see :func:`_profile_signature`) pins the
    sweep grid and sample budget; ``None`` or the default signature
    reproduces the historical key, keeping existing entries warm.
    """
    if (
        profile_signature is None
        or profile_signature == _DEFAULT_PROFILE_SIGNATURE
    ):
        return stable_hash(
            ("rhythm-artifact", service, seed, profiling_mode, probe_slacklimits)
        )
    return stable_hash(
        (
            "rhythm-artifact",
            service,
            seed,
            profiling_mode,
            probe_slacklimits,
            profile_signature,
        )
    )


def load_point_cache_key(
    service: ServiceSpec,
    load: float,
    seed: int,
    requests_per_load: int,
    tail_samples: int,
    mode: str,
    noise_per_request: float = _NOISE_PER_REQUEST,
) -> str:
    """The content address of one ``(service, load)`` sweep point.

    Keys on exactly the inputs of :func:`profile_load_point`, so editing
    one load of the sweep grid invalidates only that load's entry.
    """
    return stable_hash(
        (
            "profile-point",
            service,
            float(load),
            seed,
            requests_per_load,
            tail_samples,
            mode,
            noise_per_request,
        )
    )


def slacklimit_cache_key(
    service: ServiceSpec,
    pod: str,
    loadlimits: Mapping[str, float],
    contributions: Mapping[str, float],
    seed: int,
    probe_duration_s: float,
) -> str:
    """The content address of one Servpod's Algorithm-1 walk.

    Keys on the *derived* loadlimit and contribution values (not the raw
    sweep) plus the evaluation BE mix the probe co-locates — so a
    BE-catalog change invalidates only the slacklimit searches, while an
    unchanged derivation reuses them even if the sweep itself re-ran.
    """
    from repro.bejobs.catalog import evaluation_be_jobs

    return stable_hash(
        (
            "slacklimit-pod",
            service,
            pod,
            tuple(sorted(loadlimits.items())),
            tuple(sorted(contributions.items())),
            seed,
            float(probe_duration_s),
            tuple(evaluation_be_jobs()),
        )
    )


# -- task functions (module-level: picklable by reference) ----------------


def _sweep_task(
    spec_ref: BroadcastRef,
    load: float,
    seed: int,
    requests_per_load: int,
    tail_samples: int,
    mode: str,
) -> LoadPointProfile:
    """Worker-side sweep task: profile one load point."""
    spec = resolve_ref(spec_ref)
    return profile_load_point(
        spec,
        load,
        root_seed=seed,
        requests_per_load=requests_per_load,
        tail_samples=tail_samples,
        mode=mode,
        noise_per_request=_NOISE_PER_REQUEST,
    )


def _slack_task(
    spec_ref: BroadcastRef,
    pod: str,
    loadlimit_items: Tuple[Tuple[str, float], ...],
    contribution_items: Tuple[Tuple[str, float], ...],
    seed: int,
    probe_duration_s: float,
) -> float:
    """Worker-side slacklimit task: one Servpod's Algorithm-1 walk.

    The probe is rebuilt inside the worker from the derived loadlimits —
    identical to the parent-side probe because its randomness is derived
    from the candidate configuration, not from call order.
    """
    from repro.experiments.runner import sla_probe_for

    spec = resolve_ref(spec_ref)
    probe = sla_probe_for(
        spec,
        dict(loadlimit_items),
        seed=seed,
        probe_duration_s=probe_duration_s,
    )
    return find_slacklimit_for_pod(pod, dict(contribution_items), probe)


# -- the pipeline ---------------------------------------------------------


def profile_service_parallel(
    service: ServiceSpec,
    seed: int = 0,
    profiling_mode: str = "direct",
    probe_slacklimits: bool = True,
    probe_duration_s: float = 600.0,
    workers: Optional[int] = None,
    cache: Union[None, bool, CacheStore] = None,
    config: Optional[RhythmConfig] = None,
    stats: Optional[ProfileStats] = None,
) -> RhythmArtifact:
    """Profile one service with the sweep and probe walks fanned out.

    Bit-identical to ``artifact_for`` (the serial
    :class:`~repro.core.rhythm.Rhythm` pipeline) for the same arguments:
    the same load points draw the same samples, the same Algorithm-1
    candidates probe with the same streams, and the same clamp is
    applied. ``workers`` resolves through
    :func:`~repro.parallel.pool.resolve_profile_workers`; 1 runs inline.

    With a ``cache``, three granularities are consulted, coarsest first:
    the whole artifact, each load point, each Servpod's slacklimit walk.
    A warm re-run executes zero simulations (see ``stats``).
    """
    cfg = config or RhythmConfig(profiling_mode=profiling_mode)
    mode = cfg.profiling_mode
    stats = stats if stats is not None else ProfileStats()
    signature = _profile_signature(cfg, probe_duration_s)
    memo_key = (service.name, seed, mode, probe_slacklimits, signature)
    memo_hit = _ARTIFACT_MEMO.get(memo_key)
    if memo_hit is not None:
        stats.artifact_cache_hits += 1
        return memo_hit
    store = resolve_store(cache)

    art_key: Optional[str] = None
    if store is not None:
        try:
            art_key = artifact_cache_key(
                service, seed, mode, probe_slacklimits, signature
            )
        except CacheKeyError:
            art_key = None
        if art_key is not None:
            hit = store.get(art_key)
            if isinstance(hit, RhythmArtifact) and hit.service_name == service.name:
                stats.artifact_cache_hits += 1
                _ARTIFACT_MEMO[memo_key] = hit
                return hit

    # Mirror ServiceProfiler's up-front validation so the parallel path
    # rejects the same configurations before any fan-out.
    loads = [float(u) for u in cfg.loads]
    if len(loads) < 3:
        raise ProfilingError("profiling needs >= 3 load levels")
    if cfg.requests_per_load < 10 or cfg.tail_samples < 100:
        raise ProfilingError(
            f"too few samples: requests={cfg.requests_per_load}, "
            f"tail={cfg.tail_samples}"
        )

    n_workers = resolve_profile_workers(workers)
    spec_ref = broadcast(service)

    # -- stage 1: the solo-run sweep, one task per load point ------------
    points: List[Optional[LoadPointProfile]] = [None] * len(loads)
    point_keys: List[Optional[str]] = [None] * len(loads)
    pending: List[int] = []
    stats.sweep_points += len(loads)
    for i, load in enumerate(loads):
        key: Optional[str] = None
        if store is not None:
            try:
                key = load_point_cache_key(
                    service, load, seed, cfg.requests_per_load,
                    cfg.tail_samples, mode,
                )
            except CacheKeyError:
                key = None
        if key is not None:
            hit = store.get(key)
            if (
                isinstance(hit, LoadPointProfile)
                and hit.service == service.name
                and hit.load == load
            ):
                points[i] = hit
                stats.sweep_cache_hits += 1
                continue
        point_keys[i] = key
        pending.append(i)
    if pending:
        computed = run_envelopes(
            [
                Envelope(
                    fn=_sweep_task,
                    args=(
                        spec_ref, loads[i], seed,
                        cfg.requests_per_load, cfg.tail_samples, mode,
                    ),
                    refs=(spec_ref,),
                )
                for i in pending
            ],
            n_workers,
        )
        stats.sweep_executed += len(pending)
        for i, point in zip(pending, computed):
            points[i] = point
            if store is not None and point_keys[i] is not None:
                store.put(point_keys[i], point)

    result = ProfilingResult.from_points(service.name, points)
    contributions = ContributionAnalyzer(service).analyze(
        result.mean_sojourns, result.tails
    )
    loadlimits = loadlimit_table(result.loads, result.covs)

    # -- stage 2: slacklimits, one Algorithm-1 walk per Servpod ----------
    slacklimits = _derive_slacklimits(
        service, spec_ref, loadlimits, contributions, cfg,
        probe_slacklimits, probe_duration_s, seed, n_workers, store, stats,
    )

    artifact = RhythmArtifact(
        service_name=service.name,
        sla_ms=service.sla_ms,
        servpod_names=tuple(service.servpod_names),
        loadlimits=tuple(sorted(loadlimits.items())),
        slacklimits=tuple(sorted(slacklimits.items())),
        contributions=tuple(sorted(contributions.normalized().items())),
        seed=seed,
        profiling_mode=mode,
        probe_slacklimits=probe_slacklimits,
    )
    if store is not None and art_key is not None:
        store.put(art_key, artifact)
    _ARTIFACT_MEMO[memo_key] = artifact
    return artifact


def _derive_slacklimits(
    service: ServiceSpec,
    spec_ref: BroadcastRef,
    loadlimits: Dict[str, float],
    contributions: ContributionResult,
    cfg: RhythmConfig,
    probe_slacklimits: bool,
    probe_duration_s: float,
    seed: int,
    n_workers: int,
    store: Optional[CacheStore],
    stats: ProfileStats,
) -> Dict[str, float]:
    """Stage 2: per-Servpod slacklimits, clamped exactly as Rhythm does."""
    raw = {
        pod: c.contribution for pod, c in contributions.contributions.items()
    }
    floor = cfg.min_slacklimit
    if not probe_slacklimits:
        # The analytic fixed point is a cheap closed form; no fan-out.
        fixed = violation_free_fixed_point(raw)
        return {pod: max(floor, min(1.0, v)) for pod, v in fixed.items()}

    pods = list(raw)
    stats.slack_walks += len(pods)
    loadlimit_items = tuple(sorted(loadlimits.items()))
    contribution_items = tuple(sorted(raw.items()))
    limits: Dict[str, Optional[float]] = {pod: None for pod in pods}
    slack_keys: Dict[str, Optional[str]] = {}
    pending: List[str] = []
    for pod in pods:
        key: Optional[str] = None
        if store is not None:
            try:
                key = slacklimit_cache_key(
                    service, pod, loadlimits, raw, seed, probe_duration_s
                )
            except CacheKeyError:
                key = None
        if key is not None:
            hit = store.get(key)
            if isinstance(hit, float):
                limits[pod] = hit
                stats.slack_cache_hits += 1
                continue
        slack_keys[pod] = key
        pending.append(pod)
    if pending:
        computed = run_envelopes(
            [
                Envelope(
                    fn=_slack_task,
                    args=(
                        spec_ref, pod, loadlimit_items, contribution_items,
                        seed, probe_duration_s,
                    ),
                    refs=(spec_ref,),
                )
                for pod in pending
            ],
            n_workers,
        )
        stats.slack_executed += len(pending)
        for pod, value in zip(pending, computed):
            limits[pod] = value
            if store is not None and slack_keys[pod] is not None:
                store.put(slack_keys[pod], float(value))
    return {pod: max(floor, min(1.0, limits[pod])) for pod in pods}


def profile_services_parallel(
    cells: Sequence,
    seed_by_service: Optional[Mapping[str, int]] = None,
    profiling_mode: str = "direct",
    probe_slacklimits: bool = True,
    cache: Union[None, bool, CacheStore] = None,
    workers: Optional[int] = None,
    stats: Optional[ProfileStats] = None,
) -> Dict[str, RhythmArtifact]:
    """Profile every distinct service of a cell list, fanned out.

    The parallel drop-in for the grid engine's ``profile_services``:
    same seed resolution (each service profiles at the seed of its first
    cell unless ``seed_by_service`` overrides it), same artifact
    contract, but the sweep and the Algorithm-1 walks run through the
    shared worker pool and the cache works at sub-profile granularity.
    """
    artifacts: Dict[str, RhythmArtifact] = {}
    for cell in cells:
        name = cell.service.name
        if name in artifacts:
            continue
        seed = (
            seed_by_service[name]
            if seed_by_service is not None and name in seed_by_service
            else cell.seed
        )
        artifacts[name] = profile_service_parallel(
            cell.service,
            seed=seed,
            profiling_mode=profiling_mode,
            probe_slacklimits=probe_slacklimits,
            workers=workers,
            cache=cache,
            stats=stats,
        )
    return artifacts
