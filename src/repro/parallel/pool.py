"""The persistent worker pool with artifact broadcast.

PR 1's grid engine created a fresh ``ProcessPoolExecutor`` per
``run_comparison_grid`` call and re-pickled every artifact into every
cell submission. Now that profiling itself fans out (see
:mod:`repro.parallel.profile`), a cold figure run would pay pool startup
twice and ship the same frozen :class:`~repro.parallel.artifact.RhythmArtifact`
dozens of times. This module fixes both:

**One pool per process.** :func:`get_pool` lazily creates a module-level
``ProcessPoolExecutor`` and every later caller — the profiling pipeline,
the grid engine, repeated CLI phases — reuses it. The pool is only
recreated when the caller needs *more* workers than it has or the
multiprocessing context changed; :func:`pool_constructions` counts
creations so tests can assert a cold grid run builds exactly one pool.

**Broadcast, not re-pickle.** :func:`broadcast` registers a frozen
object (an artifact, a service spec, a run config) in a parent-side
registry and hands back a tiny digest-addressed :class:`BroadcastRef`.
Task envelopes carry refs; workers resolve them against a local object
store populated three ways, cheapest first:

1. *fork inheritance* — objects broadcast before the pool existed are in
   the forked child's memory for free,
2. *seeding* — objects broadcast later are pushed once per worker by a
   barrier-synchronised absorb round (fork) or attached to the first
   envelope batch that needs them (spawn),
3. *miss-resubmit* — a worker that still lacks a digest (e.g. it was
   respawned) reports a miss and the parent resubmits that envelope with
   the payload attached; the worker caches it for every later task.

Worker counts resolve through :func:`resolve_workers` /
:func:`resolve_profile_workers`: explicit argument, then the
``RHYTHM_PROFILE_WORKERS`` / ``RHYTHM_WORKERS`` environment variables,
then ``os.cpu_count()``. Values below 1 clamp to 1 (a safe inline run);
non-integer values raise :class:`~repro.errors.ExperimentError` up
front instead of crashing inside ``ProcessPoolExecutor``.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError

#: Environment variable overriding the default worker count.
WORKERS_ENV_VAR = "RHYTHM_WORKERS"
#: Profiling-specific override; falls back to :data:`WORKERS_ENV_VAR`.
PROFILE_WORKERS_ENV_VAR = "RHYTHM_PROFILE_WORKERS"
#: Force a multiprocessing start method ("fork", "spawn", "forkserver").
MP_CONTEXT_ENV_VAR = "RHYTHM_MP_CONTEXT"


# -- worker-count resolution ---------------------------------------------


def _coerce_workers(value: Any, source: str) -> int:
    """Validate one worker-count value; clamp sub-1 values to 1.

    ``source`` names where the value came from so the error message
    tells the user exactly what to fix.
    """
    if isinstance(value, bool):
        raise ExperimentError(
            f"{source} must be an integer worker count, got the boolean {value!r}"
        )
    if isinstance(value, float):
        if not value.is_integer():
            raise ExperimentError(
                f"{source} must be a whole number of workers, got {value!r}"
            )
        value = int(value)
    if isinstance(value, str):
        try:
            value = int(value.strip())
        except ValueError:
            raise ExperimentError(
                f"{source} must be an integer worker count "
                f"(e.g. 4), got {value!r}"
            ) from None
    if not isinstance(value, int):
        raise ExperimentError(
            f"{source} must be an integer worker count, got "
            f"{type(value).__name__} {value!r}"
        )
    # Zero or negative means "no parallelism": run inline rather than
    # handing ProcessPoolExecutor an invalid max_workers.
    return max(1, value)


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective grid worker count.

    Explicit ``workers`` wins; otherwise the ``RHYTHM_WORKERS``
    environment variable; otherwise ``os.cpu_count()``. Always >= 1.
    """
    if workers is not None:
        return _coerce_workers(workers, "workers")
    env = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if env:
        return _coerce_workers(env, WORKERS_ENV_VAR)
    return os.cpu_count() or 1


def resolve_profile_workers(workers: Optional[int] = None) -> int:
    """The effective profiling worker count.

    Explicit ``workers`` wins; then ``RHYTHM_PROFILE_WORKERS``; then
    ``RHYTHM_WORKERS`` (profiling shares the grid pool by design); then
    ``os.cpu_count()``. Always >= 1.
    """
    if workers is not None:
        return _coerce_workers(workers, "workers")
    env = os.environ.get(PROFILE_WORKERS_ENV_VAR, "").strip()
    if env:
        return _coerce_workers(env, PROFILE_WORKERS_ENV_VAR)
    return resolve_workers(None)


# -- broadcast registry ---------------------------------------------------


@dataclass(frozen=True)
class BroadcastRef:
    """A digest-addressed handle to a broadcast object (cheap to ship)."""

    digest: str


class BroadcastMissError(ExperimentError):
    """A worker lacked broadcast payloads (resolved by resubmission)."""

    def __init__(self, digests: Sequence[str]) -> None:
        super().__init__(f"missing broadcast payloads {sorted(digests)}")
        self.digests = tuple(digests)


#: Parent-side registry: digest -> live object / pickled blob.
_PARENT_OBJECTS: Dict[str, Any] = {}
_PARENT_BLOBS: Dict[str, bytes] = {}
#: Worker-side object store (also used by fork children via inheritance
#: of _PARENT_OBJECTS; this dict holds explicitly seeded payloads).
_WORKER_OBJECTS: Dict[str, Any] = {}


def broadcast(obj: Any) -> BroadcastRef:
    """Register ``obj`` for worker-side resolution; returns its ref.

    The object is pickled exactly once here, no matter how many task
    envelopes reference it afterwards.
    """
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(blob).hexdigest()
    if digest not in _PARENT_OBJECTS:
        _PARENT_OBJECTS[digest] = obj
        _PARENT_BLOBS[digest] = blob
    return BroadcastRef(digest)


def resolve_ref(ref: BroadcastRef) -> Any:
    """Look a ref up in the local object store (worker or parent).

    Resolution order: explicitly seeded worker store, then the (possibly
    fork-inherited) parent registry. Raises :class:`BroadcastMissError`
    when neither has it — the pool turns that into a resubmission with
    the payload attached.
    """
    obj = _WORKER_OBJECTS.get(ref.digest)
    if obj is not None:
        return obj
    obj = _PARENT_OBJECTS.get(ref.digest)
    if obj is not None:
        return obj
    raise BroadcastMissError([ref.digest])


def _absorb_blobs(blobs: Dict[str, bytes]) -> None:
    """Unpickle payloads into the worker-side store (idempotent)."""
    for digest, blob in blobs.items():
        if digest not in _WORKER_OBJECTS:
            _WORKER_OBJECTS[digest] = pickle.loads(blob)


def _worker_init(blobs: Dict[str, bytes]) -> None:
    """Pool initializer: seed the store with the creation-time snapshot."""
    _absorb_blobs(blobs)


def _absorb_task(blobs: Dict[str, bytes]) -> int:
    """Seeding task: absorb payloads, then rendezvous so every worker
    takes exactly one absorb task instead of a fast worker draining the
    whole round.

    The barrier reaches fork workers through module-state inheritance
    (`_STATE.barrier` was created before the worker forked); it cannot
    travel as a task argument because multiprocessing synchronisation
    primitives refuse to pickle.
    """
    _absorb_blobs(blobs)
    barrier = _STATE.barrier
    if barrier is not None:
        try:
            barrier.wait(timeout=30.0)
        except Exception:  # broken barrier: distribution was uneven;
            pass  # the miss-resubmit safety net covers any gap.
    return len(blobs)


# -- the persistent pool --------------------------------------------------


@dataclass
class _PoolState:
    executor: Optional[ProcessPoolExecutor] = None
    workers: int = 0
    method: str = ""
    #: Digests every live worker is known to hold.
    seeded: set = field(default_factory=set)
    #: Reusable rendezvous barrier (fork contexts only).
    barrier: Any = None
    constructions: int = 0


_STATE = _PoolState()


def _context_method() -> str:
    """The start method to use: env override, else fork when available."""
    forced = os.environ.get(MP_CONTEXT_ENV_VAR, "").strip()
    if forced:
        if forced not in multiprocessing.get_all_start_methods():
            raise ExperimentError(
                f"{MP_CONTEXT_ENV_VAR}={forced!r} is not a supported start "
                f"method; pick from {multiprocessing.get_all_start_methods()}"
            )
        return forced
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else multiprocessing.get_start_method()


def pool_constructions() -> int:
    """How many ProcessPoolExecutors this process has created."""
    return _STATE.constructions


def shutdown_pool() -> None:
    """Tear the persistent pool down (tests; atexit)."""
    if _STATE.executor is not None:
        _STATE.executor.shutdown(wait=True, cancel_futures=True)
    _STATE.executor = None
    _STATE.workers = 0
    _STATE.method = ""
    _STATE.seeded = set()
    _STATE.barrier = None


def reset_pool_state_for_tests() -> None:
    """Shut the pool down and zero the construction counter."""
    shutdown_pool()
    _STATE.constructions = 0


atexit.register(shutdown_pool)


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared pool, created once per process.

    An existing pool is reused whenever it is at least ``workers`` wide
    and was built with the current start method; it only grows, so a
    profiling phase followed by a wider grid phase still pays startup
    once (the profiling call already asks for the full width via
    :func:`resolve_profile_workers`).
    """
    workers = max(2, int(workers))
    method = _context_method()
    if (
        _STATE.executor is not None
        and _STATE.method == method
        and _STATE.workers >= workers
    ):
        return _STATE.executor
    shutdown_pool()
    ctx = multiprocessing.get_context(method)
    # The rendezvous barrier must exist before the workers so fork
    # children inherit it; spawn contexts cannot inherit synchronisation
    # primitives and fall back to envelope-attached payloads.
    barrier = ctx.Barrier(workers) if method == "fork" else None
    snapshot = dict(_PARENT_BLOBS)
    executor = ProcessPoolExecutor(
        max_workers=workers,
        mp_context=ctx,
        initializer=_worker_init,
        initargs=(snapshot,),
    )
    _STATE.executor = executor
    _STATE.workers = workers
    _STATE.method = method
    _STATE.seeded = set(snapshot)
    _STATE.barrier = barrier
    _STATE.constructions += 1
    return executor


# -- envelopes ------------------------------------------------------------


@dataclass(frozen=True)
class Envelope:
    """One shipped unit of work: a task function plus its payload.

    ``fn`` must be a module-level callable (picklable by reference).
    ``refs`` declares every :class:`BroadcastRef` the task resolves, so
    the pool can seed workers before the batch runs. ``blobs`` carries
    inline payloads on the resubmission path only.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...]
    refs: Tuple[BroadcastRef, ...] = ()
    blobs: Optional[Tuple[Tuple[str, bytes], ...]] = None


def _run_envelope(env: Envelope) -> Tuple[str, Any]:
    """Worker-side envelope execution: absorb, resolve, run."""
    if env.blobs:
        _absorb_blobs(dict(env.blobs))
    try:
        return ("ok", env.fn(*env.args))
    except BroadcastMissError as miss:
        return ("miss", miss.digests)


def _seed_workers(pool: ProcessPoolExecutor, digests: Iterable[str]) -> None:
    """Push not-yet-seeded payloads to every worker (fork contexts).

    Submits one barrier-synchronised absorb task per worker; the barrier
    guarantees no worker takes two, so after the round every worker
    holds the payloads. On spawn contexts (no inheritable barrier) this
    is a no-op and payloads ride along with the envelopes instead.
    """
    missing = [d for d in digests if d not in _STATE.seeded]
    if not missing:
        return
    if _STATE.barrier is None:
        return
    blobs = {d: _PARENT_BLOBS[d] for d in missing if d in _PARENT_BLOBS}
    if not blobs:
        return
    futures = [
        pool.submit(_absorb_task, blobs) for _ in range(_STATE.workers)
    ]
    for future in futures:
        future.result()
    _STATE.seeded.update(blobs)


def _attach_blobs(env: Envelope, digests: Iterable[str]) -> Envelope:
    """A copy of ``env`` carrying payloads for ``digests`` inline."""
    blobs = tuple(
        (d, _PARENT_BLOBS[d]) for d in sorted(set(digests)) if d in _PARENT_BLOBS
    )
    return Envelope(fn=env.fn, args=env.args, refs=env.refs, blobs=blobs)


def run_envelopes(
    envelopes: Sequence[Envelope],
    workers: int,
    chunksize: Optional[int] = None,
) -> List[Any]:
    """Run envelopes, results in input order.

    ``workers <= 1`` (or a single envelope) runs inline in this process
    — bit-identical to the pooled path since every task function is a
    pure function of its (broadcast-resolved) arguments.
    """
    envelopes = list(envelopes)
    if not envelopes:
        return []
    n_workers = min(int(workers), len(envelopes))
    if n_workers <= 1:
        return [env.fn(*env.args) for env in envelopes]
    pool = get_pool(n_workers)
    referenced = {ref.digest for env in envelopes for ref in env.refs}
    _seed_workers(pool, referenced)
    unseeded = referenced - _STATE.seeded
    if unseeded:
        # Spawn context (or a broken seeding round): payloads travel with
        # the envelopes that need them.
        envelopes = [
            _attach_blobs(env, [r.digest for r in env.refs if r.digest in unseeded])
            if any(r.digest in unseeded for r in env.refs)
            else env
            for env in envelopes
        ]
    if chunksize is None:
        chunksize = max(1, len(envelopes) // (_STATE.workers * 4))
    outcomes = list(pool.map(_run_envelope, envelopes, chunksize=chunksize))
    if unseeded:
        # The batch delivered the payloads; later batches can drop them.
        _STATE.seeded.update(d for d in unseeded if d in _PARENT_BLOBS)
    # Safety net: a worker without the payload (respawned, missed seeding)
    # reports a miss; resubmit just those envelopes with payloads inline.
    results: List[Any] = [None] * len(outcomes)
    retry: List[int] = []
    for i, (status, value) in enumerate(outcomes):
        if status == "ok":
            results[i] = value
        else:
            retry.append(i)
    if retry:
        retried = pool.map(
            _run_envelope,
            [
                _attach_blobs(envelopes[i], [r.digest for r in envelopes[i].refs])
                for i in retry
            ],
        )
        for i, (status, value) in zip(retry, retried):
            if status != "ok":
                raise ExperimentError(
                    f"worker could not resolve broadcast payloads {value!r} "
                    f"even with inline blobs attached"
                )
            results[i] = value
    return results
