"""The persistent worker pool with artifact broadcast.

PR 1's grid engine created a fresh ``ProcessPoolExecutor`` per
``run_comparison_grid`` call and re-pickled every artifact into every
cell submission. Now that profiling itself fans out (see
:mod:`repro.parallel.profile`), a cold figure run would pay pool startup
twice and ship the same frozen :class:`~repro.parallel.artifact.RhythmArtifact`
dozens of times. This module fixes both:

**One pool per process.** :func:`get_pool` lazily creates a module-level
``ProcessPoolExecutor`` and every later caller — the profiling pipeline,
the grid engine, repeated CLI phases — reuses it. The pool is only
recreated when the caller needs *more* workers than it has or the
multiprocessing context changed; :func:`pool_constructions` counts
creations so tests can assert a cold grid run builds exactly one pool.

**Broadcast, not re-pickle.** :func:`broadcast` registers a frozen
object (an artifact, a service spec, a run config) in a parent-side
registry and hands back a tiny digest-addressed :class:`BroadcastRef`.
Task envelopes carry refs; workers resolve them against a local object
store populated three ways, cheapest first:

1. *fork inheritance* — objects broadcast before the pool existed are in
   the forked child's memory for free,
2. *seeding* — objects broadcast later are pushed once per worker by a
   barrier-synchronised absorb round (fork) or attached to the first
   envelope batch that needs them (spawn),
3. *miss-resubmit* — a worker that still lacks a digest (e.g. it was
   respawned) reports a miss and the parent resubmits that envelope with
   the payload attached; the worker caches it for every later task.

Worker counts resolve through :func:`resolve_workers` /
:func:`resolve_profile_workers`: explicit argument, then the
``RHYTHM_PROFILE_WORKERS`` / ``RHYTHM_WORKERS`` environment variables,
then ``os.cpu_count()``. Values below 1 clamp to 1 (a safe inline run);
non-integer values raise :class:`~repro.errors.ExperimentError` up
front instead of crashing inside ``ProcessPoolExecutor``.

**Chaos hardening.** Real worker processes crash, wedge and get OOM-
killed; :func:`run_envelopes` survives all three. Every envelope is
submitted individually with a per-task deadline
(:func:`resolve_task_timeout`, ``RHYTHM_TASK_TIMEOUT_S``); a failed or
expired attempt is retried up to ``max_retries`` times with the
payloads attached inline, and a task that exhausts its retries falls
back to running inline in the parent — so a transient fault costs a
retry while a genuinely buggy task surfaces its real traceback.
:class:`PoolStats` counts every recovery action. Fault *injection* for
tests rides the same envelopes: an
:class:`~repro.faults.executor.ExecutorFaultPlan` installed via
:func:`set_executor_fault_plan` sabotages first attempts
deterministically (see :mod:`repro.faults.executor`); because task
functions are pure and retries always run clean, executor-only faults
leave results bit-identical to a fault-free inline run.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
import pickle
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait as _wait_futures,
)
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError, InjectedWorkerFault

#: Environment variable overriding the default worker count.
WORKERS_ENV_VAR = "RHYTHM_WORKERS"
#: Profiling-specific override; falls back to :data:`WORKERS_ENV_VAR`.
PROFILE_WORKERS_ENV_VAR = "RHYTHM_PROFILE_WORKERS"
#: Force a multiprocessing start method ("fork", "spawn", "forkserver").
MP_CONTEXT_ENV_VAR = "RHYTHM_MP_CONTEXT"
#: Per-task wall-clock deadline (seconds); <= 0 disables the timeout.
TASK_TIMEOUT_ENV_VAR = "RHYTHM_TASK_TIMEOUT_S"
#: Generous default: no legitimate cell/profile task takes 10 minutes.
DEFAULT_TASK_TIMEOUT_S = 600.0


# -- worker-count resolution ---------------------------------------------


def _coerce_workers(value: Any, source: str) -> int:
    """Validate one worker-count value; clamp sub-1 values to 1.

    ``source`` names where the value came from so the error message
    tells the user exactly what to fix.
    """
    if isinstance(value, bool):
        raise ExperimentError(
            f"{source} must be an integer worker count, got the boolean {value!r}"
        )
    if isinstance(value, float):
        if not value.is_integer():
            raise ExperimentError(
                f"{source} must be a whole number of workers, got {value!r}"
            )
        value = int(value)
    if isinstance(value, str):
        try:
            value = int(value.strip())
        except ValueError:
            raise ExperimentError(
                f"{source} must be an integer worker count "
                f"(e.g. 4), got {value!r}"
            ) from None
    if not isinstance(value, int):
        raise ExperimentError(
            f"{source} must be an integer worker count, got "
            f"{type(value).__name__} {value!r}"
        )
    # Zero or negative means "no parallelism": run inline rather than
    # handing ProcessPoolExecutor an invalid max_workers.
    return max(1, value)


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective grid worker count.

    Explicit ``workers`` wins; otherwise the ``RHYTHM_WORKERS``
    environment variable; otherwise ``os.cpu_count()``. Always >= 1.
    """
    if workers is not None:
        return _coerce_workers(workers, "workers")
    env = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if env:
        return _coerce_workers(env, WORKERS_ENV_VAR)
    return os.cpu_count() or 1


def resolve_profile_workers(workers: Optional[int] = None) -> int:
    """The effective profiling worker count.

    Explicit ``workers`` wins; then ``RHYTHM_PROFILE_WORKERS``; then
    ``RHYTHM_WORKERS`` (profiling shares the grid pool by design); then
    ``os.cpu_count()``. Always >= 1.
    """
    if workers is not None:
        return _coerce_workers(workers, "workers")
    env = os.environ.get(PROFILE_WORKERS_ENV_VAR, "").strip()
    if env:
        return _coerce_workers(env, PROFILE_WORKERS_ENV_VAR)
    return resolve_workers(None)


def resolve_task_timeout(timeout: Optional[float] = None) -> Optional[float]:
    """The effective per-task deadline in seconds, or None for no limit.

    Explicit ``timeout`` wins; otherwise ``RHYTHM_TASK_TIMEOUT_S``;
    otherwise :data:`DEFAULT_TASK_TIMEOUT_S`. A value <= 0 disables the
    timeout entirely.
    """
    if timeout is not None:
        value = float(timeout)
    else:
        env = os.environ.get(TASK_TIMEOUT_ENV_VAR, "").strip()
        if env:
            try:
                value = float(env)
            except ValueError:
                raise ExperimentError(
                    f"{TASK_TIMEOUT_ENV_VAR} must be a number of seconds, "
                    f"got {env!r}"
                ) from None
        else:
            value = DEFAULT_TASK_TIMEOUT_S
    return value if value > 0 else None


# -- recovery accounting and fault-plan installation ----------------------


@dataclass
class PoolStats:
    """Counters for every submission and recovery action the pool took.

    ``retries`` counts re-queued attempts after a failure or timeout;
    ``inline_fallbacks`` counts tasks that exhausted their retries and
    ran in the parent instead. Under a crash-only
    :class:`~repro.faults.executor.ExecutorFaultPlan` the invariant
    ``task_failures == retries == plan-predicted crashes`` holds exactly
    (the CI chaos gate asserts it).
    """

    #: Envelope attempts handed to the executor.
    submitted: int = 0
    #: Attempts that returned a result from a worker.
    completed: int = 0
    #: Attempts re-queued after any kind of failure.
    retries: int = 0
    #: Futures that died with the executor (process killed / pool broken).
    worker_crashes: int = 0
    #: Futures that raised an ordinary exception (incl. injected crashes).
    task_failures: int = 0
    #: Attempts abandoned because their deadline expired.
    timeouts: int = 0
    #: Tasks that ran in the parent after exhausting their retries.
    inline_fallbacks: int = 0
    #: Worker-side broadcast misses (resolved by blob-attached resubmit).
    broadcast_misses: int = 0
    #: Forced executor teardowns (timeout expiry or broken pool).
    pool_rebuilds: int = 0

    def as_dict(self) -> Dict[str, int]:
        """A plain-dict snapshot (stable key order for reports)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "task_failures": self.task_failures,
            "timeouts": self.timeouts,
            "inline_fallbacks": self.inline_fallbacks,
            "broadcast_misses": self.broadcast_misses,
            "pool_rebuilds": self.pool_rebuilds,
        }


_POOL_STATS = PoolStats()

#: The installed executor fault plan (chaos testing only; None = no chaos).
_FAULT_PLAN: Any = None


def pool_stats() -> PoolStats:
    """The live counter object for this process's pool."""
    return _POOL_STATS


def reset_pool_stats() -> None:
    """Zero every pool counter (tests / fresh experiment phases)."""
    global _POOL_STATS
    _POOL_STATS = PoolStats()


def set_executor_fault_plan(plan: Any) -> None:
    """Install (or with None, remove) a sabotage plan for pooled tasks.

    The plan travels inside each envelope, so it works for fork and
    spawn contexts alike and never outlives the batch that shipped it.
    The inline path (``workers <= 1``) deliberately ignores it — the
    serial run is the fault-free reference the chaos tests compare
    against.
    """
    global _FAULT_PLAN
    _FAULT_PLAN = plan


def executor_fault_plan() -> Any:
    """The currently installed sabotage plan (None when chaos is off)."""
    return _FAULT_PLAN


# -- broadcast registry ---------------------------------------------------


@dataclass(frozen=True)
class BroadcastRef:
    """A digest-addressed handle to a broadcast object (cheap to ship)."""

    digest: str


class BroadcastMissError(ExperimentError):
    """A worker lacked broadcast payloads (resolved by resubmission)."""

    def __init__(self, digests: Sequence[str]) -> None:
        super().__init__(f"missing broadcast payloads {sorted(digests)}")
        self.digests = tuple(digests)


#: Parent-side registry: digest -> live object / pickled blob.
_PARENT_OBJECTS: Dict[str, Any] = {}
_PARENT_BLOBS: Dict[str, bytes] = {}
#: Worker-side object store (also used by fork children via inheritance
#: of _PARENT_OBJECTS; this dict holds explicitly seeded payloads).
_WORKER_OBJECTS: Dict[str, Any] = {}


def broadcast(obj: Any) -> BroadcastRef:
    """Register ``obj`` for worker-side resolution; returns its ref.

    The object is pickled exactly once here, no matter how many task
    envelopes reference it afterwards.
    """
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(blob).hexdigest()
    if digest not in _PARENT_OBJECTS:
        _PARENT_OBJECTS[digest] = obj
        _PARENT_BLOBS[digest] = blob
    return BroadcastRef(digest)


def resolve_ref(ref: BroadcastRef) -> Any:
    """Look a ref up in the local object store (worker or parent).

    Resolution order: explicitly seeded worker store, then the (possibly
    fork-inherited) parent registry. Raises :class:`BroadcastMissError`
    when neither has it — the pool turns that into a resubmission with
    the payload attached.
    """
    obj = _WORKER_OBJECTS.get(ref.digest)
    if obj is not None:
        return obj
    obj = _PARENT_OBJECTS.get(ref.digest)
    if obj is not None:
        return obj
    raise BroadcastMissError([ref.digest])


def _absorb_blobs(blobs: Dict[str, bytes]) -> None:
    """Unpickle payloads into the worker-side store (idempotent)."""
    for digest, blob in blobs.items():
        if digest not in _WORKER_OBJECTS:
            _WORKER_OBJECTS[digest] = pickle.loads(blob)


def _worker_init(blobs: Dict[str, bytes]) -> None:
    """Pool initializer: seed the store with the creation-time snapshot."""
    _absorb_blobs(blobs)


def _absorb_task(blobs: Dict[str, bytes]) -> int:
    """Seeding task: absorb payloads, then rendezvous so every worker
    takes exactly one absorb task instead of a fast worker draining the
    whole round.

    The barrier reaches fork workers through module-state inheritance
    (`_STATE.barrier` was created before the worker forked); it cannot
    travel as a task argument because multiprocessing synchronisation
    primitives refuse to pickle.
    """
    _absorb_blobs(blobs)
    barrier = _STATE.barrier
    if barrier is not None:
        try:
            barrier.wait(timeout=30.0)
        except Exception:  # broken barrier: distribution was uneven;
            pass  # the miss-resubmit safety net covers any gap.
    return len(blobs)


# -- the persistent pool --------------------------------------------------


@dataclass
class _PoolState:
    executor: Optional[ProcessPoolExecutor] = None
    workers: int = 0
    method: str = ""
    #: Digests every live worker is known to hold.
    seeded: set = field(default_factory=set)
    #: Reusable rendezvous barrier (fork contexts only).
    barrier: Any = None
    constructions: int = 0


_STATE = _PoolState()


def _context_method() -> str:
    """The start method to use: env override, else fork when available."""
    forced = os.environ.get(MP_CONTEXT_ENV_VAR, "").strip()
    if forced:
        if forced not in multiprocessing.get_all_start_methods():
            raise ExperimentError(
                f"{MP_CONTEXT_ENV_VAR}={forced!r} is not a supported start "
                f"method; pick from {multiprocessing.get_all_start_methods()}"
            )
        return forced
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else multiprocessing.get_start_method()


def pool_constructions() -> int:
    """How many ProcessPoolExecutors this process has created."""
    return _STATE.constructions


def shutdown_pool() -> None:
    """Tear the persistent pool down (tests; atexit)."""
    if _STATE.executor is not None:
        _STATE.executor.shutdown(wait=True, cancel_futures=True)
    _STATE.executor = None
    _STATE.workers = 0
    _STATE.method = ""
    _STATE.seeded = set()
    _STATE.barrier = None


def reset_pool_state_for_tests() -> None:
    """Shut the pool down and zero the construction counter."""
    shutdown_pool()
    _STATE.constructions = 0


atexit.register(shutdown_pool)


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared pool, created once per process.

    An existing pool is reused whenever it is at least ``workers`` wide
    and was built with the current start method; it only grows, so a
    profiling phase followed by a wider grid phase still pays startup
    once (the profiling call already asks for the full width via
    :func:`resolve_profile_workers`).
    """
    workers = max(2, int(workers))
    method = _context_method()
    if (
        _STATE.executor is not None
        and _STATE.method == method
        and _STATE.workers >= workers
    ):
        return _STATE.executor
    shutdown_pool()
    ctx = multiprocessing.get_context(method)
    # The rendezvous barrier must exist before the workers so fork
    # children inherit it; spawn contexts cannot inherit synchronisation
    # primitives and fall back to envelope-attached payloads.
    barrier = ctx.Barrier(workers) if method == "fork" else None
    snapshot = dict(_PARENT_BLOBS)
    executor = ProcessPoolExecutor(
        max_workers=workers,
        mp_context=ctx,
        initializer=_worker_init,
        initargs=(snapshot,),
    )
    _STATE.executor = executor
    _STATE.workers = workers
    _STATE.method = method
    _STATE.seeded = set(snapshot)
    _STATE.barrier = barrier
    _STATE.constructions += 1
    return executor


# -- envelopes ------------------------------------------------------------


@dataclass(frozen=True)
class Envelope:
    """One shipped unit of work: a task function plus its payload.

    ``fn`` must be a module-level callable (picklable by reference).
    ``refs`` declares every :class:`BroadcastRef` the task resolves, so
    the pool can seed workers before the batch runs. ``blobs`` carries
    inline payloads on the resubmission path only. ``task_key`` is a
    content hash of (fn, args) stamped by :func:`run_envelopes`;
    ``attempt`` counts resubmissions of this task; ``chaos`` is the
    installed :class:`~repro.faults.executor.ExecutorFaultPlan` (or
    None), consulted worker-side before the task runs.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...]
    refs: Tuple[BroadcastRef, ...] = ()
    blobs: Optional[Tuple[Tuple[str, bytes], ...]] = None
    task_key: str = ""
    attempt: int = 0
    chaos: Any = None


def envelope_task_key(env: Envelope) -> str:
    """Content-address one task: hash of (module, qualname, args).

    Stable across runs, workers and submission order, so a fault plan
    keyed on it sabotages the same tasks every time.
    """
    payload = pickle.dumps(
        (env.fn.__module__, env.fn.__qualname__, env.args),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return hashlib.sha256(payload).hexdigest()


def shard_task_key(tag: str, ref: BroadcastRef, coords: Any) -> str:
    """A content-stable task key for one shard of a broadcast fan-out.

    Derived from the broadcast payload's digest plus the shard's
    coordinate tuple (e.g. its zone spans) rather than its positional
    shard index, so a shard keeps the same key whenever it covers the
    same slice of the same payload — no matter how many other shards
    run alongside it. Incremental fleet runs re-shard around cached
    zones; with coordinate-derived keys, chaos fault plans (which
    target task keys) still land on the same work.
    """
    blob = repr(coords).encode("utf-8")
    return f"{tag}:{ref.digest[:12]}:{hashlib.sha256(blob).hexdigest()[:16]}"


def _run_envelope(env: Envelope) -> Tuple[str, Any]:
    """Worker-side envelope execution: absorb, sabotage?, resolve, run."""
    if env.blobs:
        _absorb_blobs(dict(env.blobs))
    if env.chaos is not None:
        action = env.chaos.action_for(env.task_key, env.attempt)
        if action == "kill":
            os._exit(17)  # hard worker death: breaks the whole pool
        if action == "crash":
            raise InjectedWorkerFault(
                f"injected worker crash (task {env.task_key[:12]})"
            )
        if action == "hang":
            # A wedged worker: sleep through the deadline, then behave.
            time.sleep(env.chaos.hang_s)
    try:
        return ("ok", env.fn(*env.args))
    except BroadcastMissError as miss:
        return ("miss", miss.digests)


def _seed_workers(pool: ProcessPoolExecutor, digests: Iterable[str]) -> None:
    """Push not-yet-seeded payloads to every worker (fork contexts).

    Submits one barrier-synchronised absorb task per worker; the barrier
    guarantees no worker takes two, so after the round every worker
    holds the payloads. On spawn contexts (no inheritable barrier) this
    is a no-op and payloads ride along with the envelopes instead.
    """
    missing = [d for d in digests if d not in _STATE.seeded]
    if not missing:
        return
    if _STATE.barrier is None:
        return
    blobs = {d: _PARENT_BLOBS[d] for d in missing if d in _PARENT_BLOBS}
    if not blobs:
        return
    futures = [
        pool.submit(_absorb_task, blobs) for _ in range(_STATE.workers)
    ]
    for future in futures:
        future.result()
    _STATE.seeded.update(blobs)


def _attach_blobs(env: Envelope, digests: Iterable[str]) -> Envelope:
    """A copy of ``env`` carrying payloads for ``digests`` inline."""
    blobs = tuple(
        (d, _PARENT_BLOBS[d]) for d in sorted(set(digests)) if d in _PARENT_BLOBS
    )
    return replace(env, blobs=blobs)


def _force_pool_rebuild() -> None:
    """Kill the executor's processes and discard it (hung/broken pool).

    ``ProcessPoolExecutor`` cannot cancel a *running* task, so the only
    way to reclaim a worker stuck past its deadline is to terminate the
    processes and rebuild. The next :func:`get_pool` call starts fresh;
    its initializer snapshot re-seeds every broadcast payload, so no
    seeding state is lost.
    """
    executor = _STATE.executor
    if executor is not None:
        processes = getattr(executor, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:
                pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
    _STATE.executor = None
    _STATE.workers = 0
    _STATE.method = ""
    _STATE.seeded = set()
    _STATE.barrier = None
    _POOL_STATS.pool_rebuilds += 1


def run_envelopes(
    envelopes: Sequence[Envelope],
    workers: int,
    chunksize: Optional[int] = None,
    timeout: Optional[float] = None,
    max_retries: int = 2,
) -> List[Any]:
    """Run envelopes, results in input order, surviving worker failures.

    ``workers <= 1`` (or a single envelope) runs inline in this process
    — bit-identical to the pooled path since every task function is a
    pure function of its (broadcast-resolved) arguments; the inline path
    also ignores any installed fault plan, making it the fault-free
    reference run.

    The pooled path submits each envelope individually under a deadline
    (:func:`resolve_task_timeout`). A failed attempt — worker exception,
    pool break, deadline expiry — is re-queued up to ``max_retries``
    times with every referenced payload attached inline; past that the
    task runs in the parent (``inline_fallbacks``), where a genuine bug
    raises its real traceback. Retried attempts carry ``attempt > 0``,
    which disarms any installed fault plan, so chaos runs converge.

    ``chunksize`` is accepted for backward compatibility and ignored
    (per-task submission replaced batched ``pool.map``).
    """
    del chunksize  # retained in the signature for old call sites
    envelopes = list(envelopes)
    if not envelopes:
        return []
    n_workers = min(int(workers), len(envelopes))
    if n_workers <= 1:
        return [env.fn(*env.args) for env in envelopes]
    limit = resolve_task_timeout(timeout)
    stats = _POOL_STATS
    plan = _FAULT_PLAN
    base = [
        replace(env, task_key=env.task_key or envelope_task_key(env), chaos=plan)
        for env in envelopes
    ]
    pool = get_pool(n_workers)
    referenced = {ref.digest for env in base for ref in env.refs}
    _seed_workers(pool, referenced)
    unseeded = referenced - _STATE.seeded
    if unseeded:
        # Spawn context (or a broken seeding round): payloads travel with
        # the envelopes that need them.
        base = [
            _attach_blobs(env, [r.digest for r in env.refs if r.digest in unseeded])
            if any(r.digest in unseeded for r in env.refs)
            else env
            for env in base
        ]

    n = len(base)
    results: List[Any] = [None] * n
    attempts = [0] * n
    missed = [False] * n
    needs_blobs = [False] * n
    pending: deque = deque(range(n))
    in_flight: Dict[Any, int] = {}
    deadlines: Dict[Any, float] = {}

    def ship(i: int) -> Envelope:
        env = base[i]
        if attempts[i] > 0 or needs_blobs[i]:
            env = _attach_blobs(env, [r.digest for r in env.refs])
        if attempts[i] > 0:
            env = replace(env, attempt=attempts[i])
        return env

    def record_failure(i: int) -> None:
        attempts[i] += 1
        if attempts[i] > max_retries:
            # Last resort: run in the parent. Injected faults never fire
            # here; a genuinely broken task raises its real error.
            stats.inline_fallbacks += 1
            results[i] = base[i].fn(*base[i].args)
        else:
            stats.retries += 1
            pending.append(i)

    def handle_broken_pool() -> None:
        nonlocal pool
        for fut, j in list(in_flight.items()):
            stats.worker_crashes += 1
            record_failure(j)
        in_flight.clear()
        deadlines.clear()
        _force_pool_rebuild()
        pool = get_pool(n_workers)

    while pending or in_flight:
        while pending:
            i = pending[0]
            try:
                fut = pool.submit(_run_envelope, ship(i))
            except BrokenExecutor:
                handle_broken_pool()  # i stays queued; retry on fresh pool
                continue
            pending.popleft()
            stats.submitted += 1
            in_flight[fut] = i
            if limit is not None:
                deadlines[fut] = time.monotonic() + limit
        if not in_flight:
            continue
        wait_timeout = None
        if deadlines:
            wait_timeout = max(0.0, min(deadlines.values()) - time.monotonic())
        done, _ = _wait_futures(
            set(in_flight), timeout=wait_timeout, return_when=FIRST_COMPLETED
        )
        if not done:
            now = time.monotonic()
            expired = [f for f, dl in deadlines.items() if dl <= now]
            if not expired:
                continue
            # A worker blew its deadline. Running tasks cannot be
            # cancelled, so tear the pool down; every in-flight task
            # (expired and collateral alike) is retried on a fresh pool.
            stats.timeouts += len(expired)
            for fut, j in list(in_flight.items()):
                record_failure(j)
            in_flight.clear()
            deadlines.clear()
            _force_pool_rebuild()
            pool = get_pool(n_workers)
            continue
        broken = False
        for fut in done:
            i = in_flight.pop(fut)
            deadlines.pop(fut, None)
            try:
                status, value = fut.result()
            except BrokenExecutor:
                stats.worker_crashes += 1
                record_failure(i)
                broken = True
                continue
            except Exception:
                stats.task_failures += 1
                record_failure(i)
                continue
            if status == "ok":
                stats.completed += 1
                results[i] = value
            else:
                stats.broadcast_misses += 1
                if missed[i]:
                    raise ExperimentError(
                        f"worker could not resolve broadcast payloads "
                        f"{value!r} even with inline blobs attached"
                    )
                missed[i] = True
                needs_blobs[i] = True
                pending.append(i)
        if broken:
            handle_broken_pool()
    if unseeded:
        # The batch delivered the payloads; later batches can drop them.
        _STATE.seeded.update(d for d in unseeded if d in _PARENT_BLOBS)
    return results
