"""Frozen, picklable Rhythm profiling artifacts.

The in-process ``_RHYTHM_CACHE`` in :mod:`repro.experiments.runner` holds
live :class:`~repro.core.rhythm.Rhythm` pipelines — profiler, traces,
RNG registries and all — which makes them expensive to ship to worker
processes. A :class:`RhythmArtifact` is the distillation the paper's
"profile once" design actually needs at runtime: the per-Servpod
loadlimits, slacklimits and contribution scores plus enough metadata to
rebuild the per-machine top controllers anywhere. The parent process
profiles each service once, extracts the artifact, and the grid engine
ships only artifacts across the pool boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.core.top_controller import ControllerThresholds, TopController
from repro.errors import ProfilingError
from repro.workloads.spec import ServiceSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.rhythm import Rhythm, RhythmConfig


@dataclass(frozen=True)
class RhythmArtifact:
    """Everything a worker needs to run Rhythm's controllers for one service.

    Mappings are stored as sorted ``(servpod, value)`` tuples so the
    artifact is hashable, deterministic to serialise, and immutable.
    """

    service_name: str
    sla_ms: float
    servpod_names: Tuple[str, ...]
    loadlimits: Tuple[Tuple[str, float], ...]
    slacklimits: Tuple[Tuple[str, float], ...]
    #: Normalized contribution scores C_i (Eq. 5) — carried for
    #: reporting/analysis; the controllers only need the two limits.
    contributions: Tuple[Tuple[str, float], ...]
    #: Provenance: how the artifact was profiled.
    seed: int = 0
    profiling_mode: str = "direct"
    probe_slacklimits: bool = True

    def __post_init__(self) -> None:
        pods = set(self.servpod_names)
        for label, table in (
            ("loadlimits", self.loadlimits),
            ("slacklimits", self.slacklimits),
        ):
            covered = {pod for pod, _ in table}
            if covered != pods:
                raise ProfilingError(
                    f"{self.service_name}: {label} cover {sorted(covered)} "
                    f"but the service has Servpods {sorted(pods)}"
                )

    # -- mapping views ---------------------------------------------------

    def loadlimit_map(self) -> Dict[str, float]:
        """Per-Servpod loadlimits as a dict."""
        return dict(self.loadlimits)

    def slacklimit_map(self) -> Dict[str, float]:
        """Per-Servpod slacklimits as a dict."""
        return dict(self.slacklimits)

    def contribution_map(self) -> Dict[str, float]:
        """Normalized contribution scores as a dict."""
        return dict(self.contributions)

    # -- controller construction ----------------------------------------

    def thresholds(self, servpod: str) -> ControllerThresholds:
        """The derived thresholds of one Servpod."""
        loadlimits = self.loadlimit_map()
        slacklimits = self.slacklimit_map()
        if servpod not in loadlimits:
            raise ProfilingError(
                f"{self.service_name}: unknown Servpod {servpod!r}"
            )
        return ControllerThresholds(
            loadlimit=loadlimits[servpod], slacklimit=slacklimits[servpod]
        )

    def controllers(self) -> Dict[str, TopController]:
        """Fresh per-Servpod top controllers (same construction as
        :meth:`repro.core.rhythm.Rhythm.controllers`)."""
        return {
            pod: TopController(
                servpod=pod,
                thresholds=self.thresholds(pod),
                sla_ms=self.sla_ms,
            )
            for pod in self.servpod_names
        }

    # -- extraction ------------------------------------------------------

    @classmethod
    def from_rhythm(
        cls,
        rhythm: "Rhythm",
        seed: int = 0,
        profiling_mode: str = "direct",
        probe_slacklimits: bool = True,
    ) -> "RhythmArtifact":
        """Distill a profiled :class:`Rhythm` pipeline into an artifact.

        Triggers any missing pipeline stages (profile → contributions →
        limits) on the live object, then freezes the outcome.
        """
        normalized = rhythm.contributions().normalized()
        return cls(
            service_name=rhythm.spec.name,
            sla_ms=rhythm.spec.sla_ms,
            servpod_names=tuple(rhythm.spec.servpod_names),
            loadlimits=tuple(sorted(rhythm.loadlimits().items())),
            slacklimits=tuple(sorted(rhythm.slacklimits().items())),
            contributions=tuple(sorted(normalized.items())),
            seed=seed,
            profiling_mode=profiling_mode,
            probe_slacklimits=probe_slacklimits,
        )


def artifact_for(
    service: ServiceSpec,
    seed: int = 0,
    profiling_mode: str = "direct",
    probe_slacklimits: bool = True,
    config: Optional["RhythmConfig"] = None,
) -> RhythmArtifact:
    """Profile ``service`` (via the parent-process cache) and freeze it.

    Delegates to :func:`repro.experiments.runner.get_rhythm`, so repeated
    calls for the same key reuse the cached pipeline — the expensive SLA
    probe runs at most once per (service, seed, mode, probe) in the
    parent, never in a worker.
    """
    from repro.experiments.runner import get_rhythm

    rhythm = get_rhythm(
        service,
        seed=seed,
        profiling_mode=profiling_mode,
        config=config,
        probe_slacklimits=probe_slacklimits,
    )
    return RhythmArtifact.from_rhythm(
        rhythm,
        seed=seed,
        profiling_mode=profiling_mode,
        probe_slacklimits=probe_slacklimits,
    )
