"""The parallel grid execution engine.

The paper's evaluation is dominated by grids: Figures 9–11 alone are
5 Servpods × 6 BE jobs × 5 loads, each cell simulated once under Rhythm
and once under Heracles. Cells are mutually independent by construction
(each builds its own engine, RNG registry and machines from a cell seed),
so the grid is embarrassingly parallel — *provided* the profiling
artifacts can cross a process boundary. The flow is:

1. the parent profiles every distinct service once (reusing the
   in-process Rhythm cache) and freezes a picklable
   :class:`~repro.parallel.artifact.RhythmArtifact` per service,
2. cells fan out to a process pool as :class:`GridCell` tasks carrying
   only specs, artifacts and seeds,
3. each worker rebuilds the controllers from the artifact and runs the
   cell exactly as the serial path would.

Determinism: a cell's simulation consumes only its own
``RandomStreams(cell.seed)``, so results are bit-identical no matter
which worker runs the cell or in which order cells complete —
``run_comparison_grid(cells, workers=1)`` and ``workers=N`` return
identical results (asserted in ``tests/test_parallel.py``).

Worker count resolves from the ``RHYTHM_WORKERS`` environment variable,
falling back to ``os.cpu_count()``. ``workers=1`` (or a single cell)
runs inline without a pool.

Incremental re-execution: pass ``cache=True`` (the environment-default
store) or an explicit :class:`~repro.cache.store.CacheStore` and the
grid becomes content-addressed — profiling artifacts and finished cell
results are memoized on disk keyed by a stable hash of the fully
resolved cell config (see :mod:`repro.cache.keys`), so a warm re-run of
an unchanged grid executes zero simulations. Hit/miss/skip counts are
reported through :class:`GridCacheStats`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.baselines.heracles import HeraclesPolicy, heracles_controllers
from repro.bejobs.spec import BeJobSpec
from repro.cache.keys import stable_hash
from repro.cache.store import CacheStore
from repro.errors import CacheKeyError, ExperimentError
from repro.experiments.colocation import ColocationConfig, ColocationResult
from repro.experiments.runner import ComparisonResult, run_cell
from repro.loadgen.patterns import ConstantLoad, LoadPattern
from repro.parallel.artifact import RhythmArtifact
from repro.parallel.pool import (
    WORKERS_ENV_VAR,
    BroadcastRef,
    Envelope,
    broadcast,
    resolve_ref,
    resolve_workers,
    run_envelopes,
)
from repro.parallel.profile import (
    ProfileStats,
    artifact_cache_key,
    profile_services_parallel,
    resolve_store as _resolve_store,
)
from repro.workloads.spec import ServiceSpec

__all__ = [
    "WORKERS_ENV_VAR",
    "GridCacheStats",
    "GridCell",
    "artifact_cache_key",
    "cell_cache_key",
    "colocation_fingerprint",
    "comparison_fingerprint",
    "derive_cell_seed",
    "profile_services",
    "resolve_workers",
    "run_comparison_grid",
]


def derive_cell_seed(
    root_seed: int, service: str, be_job: str, load: float, salt: str = "cell"
) -> int:
    """A deterministic, collision-resistant per-cell seed.

    Hashes the cell coordinates so every (service, BE, load) cell gets an
    independent seed derived from one root — the parallel analogue of
    :meth:`repro.sim.rng.RandomStreams.spawn`. Grids that want the
    paper's paired-seed variance reduction (every cell reuses the root
    seed) simply skip this derivation.
    """
    digest = hashlib.sha256(
        f"{salt}:{root_seed}:{service}:{be_job}:{load!r}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "little") >> 1  # 63-bit, non-negative


@dataclass(frozen=True)
class GridCell:
    """One grid cell: a (service, BE job, load) point at one seed."""

    service: ServiceSpec
    be_spec: BeJobSpec
    load: float
    seed: int = 0
    #: Optional load pattern; ``None`` means ``ConstantLoad(load)``.
    pattern: Optional[LoadPattern] = None


@dataclass(frozen=True)
class _CellTask:
    """A shipped unit of work: the cell plus everything it needs."""

    cell: GridCell
    artifact: RhythmArtifact
    heracles_policy: HeraclesPolicy
    config: Optional[ColocationConfig]


def _execute_task(task: _CellTask) -> ComparisonResult:
    """Run one cell under both systems (worker side, also used inline).

    Mirrors :func:`repro.experiments.runner.compare_systems` exactly,
    except Rhythm's controllers come from the shipped artifact instead of
    the in-process profiling cache.
    """
    cell = task.cell
    pattern = cell.pattern if cell.pattern is not None else ConstantLoad(cell.load)
    rhythm_result = run_cell(
        cell.service,
        task.artifact.controllers(),
        cell.be_spec,
        pattern,
        seed=cell.seed,
        config=task.config,
    )
    heracles_result = run_cell(
        cell.service,
        heracles_controllers(cell.service, task.heracles_policy),
        cell.be_spec,
        pattern,
        seed=cell.seed,
        config=task.config,
    )
    return ComparisonResult(
        service=cell.service.name,
        be_job=cell.be_spec.name,
        load=cell.load,
        rhythm=rhythm_result,
        heracles=heracles_result,
    )


def _execute_cell(
    cell: GridCell,
    artifact_ref: BroadcastRef,
    heracles_policy: HeraclesPolicy,
    config: Optional[ColocationConfig],
) -> ComparisonResult:
    """Worker-side cell execution against a broadcast artifact.

    The artifact travels as a digest-addressed ref (pickled once per
    broadcast, not once per cell); everything else in the envelope is
    cell-specific anyway.
    """
    return _execute_task(
        _CellTask(
            cell=cell,
            artifact=resolve_ref(artifact_ref),
            heracles_policy=heracles_policy,
            config=config,
        )
    )


# -- content-addressed caching -------------------------------------------


@dataclass
class GridCacheStats:
    """Cache outcome counts of one ``run_comparison_grid`` invocation.

    ``hits`` cells were served from the store without simulating,
    ``misses`` were computed and stored, ``skipped`` were computed but
    not cached (no store, or an uncacheable cell config).
    """

    hits: int = 0
    misses: int = 0
    skipped: int = 0

    @property
    def total(self) -> int:
        """Total cells the invocation covered."""
        return self.hits + self.misses + self.skipped

    def merge(self, other: "GridCacheStats") -> None:
        """Accumulate another invocation's counts into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.skipped += other.skipped


def cell_cache_key(task: _CellTask) -> str:
    """The content address of one grid cell's comparison result.

    Hashes everything a cell result depends on: the resolved service and
    BE specs, load pattern, seed, the *profiled* artifact (so a changed
    profiling outcome invalidates dependent cells), the Heracles policy
    and the fully defaulted run config. Raises
    :class:`~repro.errors.CacheKeyError` for unhashable configs (e.g. a
    pattern wrapping a bare callable); such cells simply run uncached.
    """
    cell = task.cell
    pattern = cell.pattern if cell.pattern is not None else ConstantLoad(cell.load)
    config = task.config if task.config is not None else ColocationConfig()
    return stable_hash(
        (
            "grid-cell",
            cell.service,
            cell.be_spec,
            cell.load,
            cell.seed,
            pattern,
            task.artifact,
            task.heracles_policy,
            config,
        )
    )


def profile_services(
    cells: Sequence[GridCell],
    seed_by_service: Optional[Mapping[str, int]] = None,
    profiling_mode: str = "direct",
    probe_slacklimits: bool = True,
    cache: Union[None, bool, CacheStore] = None,
    workers: Optional[int] = None,
    stats: Optional[ProfileStats] = None,
) -> Dict[str, RhythmArtifact]:
    """Profile every distinct service of ``cells``, fanned out.

    ``seed_by_service`` overrides the profiling seed per service; by
    default each service profiles at the seed of its first cell, which is
    what the serial ``compare_systems`` path does. The sweep and
    Algorithm-1 walks run through the shared worker pool (``workers``
    resolves via :func:`~repro.parallel.pool.resolve_profile_workers`);
    with a ``cache``, artifacts and their sub-profiles are memoized on
    disk, so a warm process skips every sweep simulation (pass a
    :class:`~repro.parallel.profile.ProfileStats` to see the counts).
    """
    return profile_services_parallel(
        cells,
        seed_by_service=seed_by_service,
        profiling_mode=profiling_mode,
        probe_slacklimits=probe_slacklimits,
        cache=cache,
        workers=workers,
        stats=stats,
    )


def run_comparison_grid(
    cells: Sequence[GridCell],
    config: Optional[ColocationConfig] = None,
    workers: Optional[int] = None,
    heracles_policy: HeraclesPolicy = HeraclesPolicy(),
    profiling_mode: str = "direct",
    probe_slacklimits: bool = True,
    artifacts: Optional[Mapping[str, RhythmArtifact]] = None,
    cache: Union[None, bool, CacheStore] = None,
    cache_stats: Optional[GridCacheStats] = None,
    profile_workers: Optional[int] = None,
    profile_stats: Optional[ProfileStats] = None,
) -> List[ComparisonResult]:
    """Run every cell under Rhythm and Heracles; results in input order.

    Profiling happens once per distinct service (unless pre-built
    ``artifacts`` are supplied) with its sweep and Algorithm-1 walks
    fanned out through the shared worker pool; the cell phase then
    reuses that same pool — a cold figure run pays pool startup exactly
    once. Artifacts cross the pool boundary as broadcast refs, pickled
    once per grid instead of once per cell. With ``workers=1`` (or one
    cell) everything runs inline in this process — the pool path
    produces bit-identical results. ``profile_workers`` overrides the
    profiling fan-out width (default: ``RHYTHM_PROFILE_WORKERS``, then
    the grid's own worker resolution).

    With a ``cache`` (``True`` for the environment default, or an
    explicit :class:`~repro.cache.store.CacheStore`), each cell's result
    is looked up by its content address before any simulation runs: hits
    are returned as-is (bit-identical to a cold run — the stored object
    *is* the cold result), misses are computed and stored. Pass a
    :class:`GridCacheStats` as ``cache_stats`` to receive the
    hit/miss/skip counts of this invocation (and a
    :class:`~repro.parallel.profile.ProfileStats` as ``profile_stats``
    for the profiling-phase counts).
    """
    cells = list(cells)
    if not cells:
        return []
    store = _resolve_store(cache)
    stats = cache_stats if cache_stats is not None else GridCacheStats()
    if artifacts is None:
        artifacts = profile_services(
            cells,
            profiling_mode=profiling_mode,
            probe_slacklimits=probe_slacklimits,
            cache=store,
            workers=profile_workers,
            stats=profile_stats,
        )
    missing = {c.service.name for c in cells} - set(artifacts)
    if missing:
        raise ExperimentError(f"no artifacts for services {sorted(missing)}")
    tasks = [
        _CellTask(
            cell=cell,
            artifact=artifacts[cell.service.name],
            heracles_policy=heracles_policy,
            config=config,
        )
        for cell in cells
    ]

    # Cache lookup pass: resolve every cell to a hit or a pending slot.
    results: List[Optional[ComparisonResult]] = [None] * len(tasks)
    keys: List[Optional[str]] = [None] * len(tasks)
    pending: List[int] = []
    for i, task in enumerate(tasks):
        if store is None:
            stats.skipped += 1
            pending.append(i)
            continue
        try:
            keys[i] = cell_cache_key(task)
        except CacheKeyError:
            stats.skipped += 1
            pending.append(i)
            continue
        hit = store.get(keys[i])
        if isinstance(hit, ComparisonResult):
            stats.hits += 1
            results[i] = hit
        else:
            stats.misses += 1
            pending.append(i)

    # Execution pass: only the unresolved cells run (inline or pooled).
    pending_tasks = [tasks[i] for i in pending]
    if pending_tasks:
        n_workers = min(resolve_workers(workers), len(pending_tasks))
        if n_workers <= 1:
            computed = [_execute_task(task) for task in pending_tasks]
        else:
            artifact_refs = {
                name: broadcast(artifact)
                for name, artifact in artifacts.items()
            }
            computed = run_envelopes(
                [
                    Envelope(
                        fn=_execute_cell,
                        args=(
                            task.cell,
                            artifact_refs[task.cell.service.name],
                            task.heracles_policy,
                            task.config,
                        ),
                        refs=(artifact_refs[task.cell.service.name],),
                    )
                    for task in pending_tasks
                ],
                n_workers,
            )
        for i, result in zip(pending, computed):
            results[i] = result
            if store is not None and keys[i] is not None:
                store.put(keys[i], result)
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


# -- result fingerprints -------------------------------------------------
#
# ColocationResult nests accumulators without __eq__; these fingerprints
# reduce a result to plain tuples covering every reported quantity down
# to individual tick samples, so "bit-identical" is checkable with ==.


def colocation_fingerprint(result: ColocationResult) -> Tuple:
    """A deep, hashable fingerprint of one co-location result."""
    machines = []
    for pod in sorted(result.machines):
        metrics = result.machines[pod]
        machines.append(
            (
                pod,
                metrics.machine_name,
                metrics.completed_be_throughput,
                metrics.avg_emu,
                metrics.avg_cpu_utilisation,
                metrics.avg_membw_utilisation,
                metrics.tail.window_tails if metrics.tail is not None else (),
                tuple(
                    (
                        s.t,
                        s.load,
                        s.slack,
                        s.tail_ms,
                        s.cpu_utilisation,
                        s.membw_utilisation,
                        s.be_instances,
                        s.be_cores,
                        s.be_llc_ways,
                        s.be_rate,
                        s.action,
                    )
                    for s in metrics.samples
                ),
            )
        )
    return (
        result.service,
        result.duration_s,
        result.lc_load_mean,
        result.be_kills,
        result.be_suspensions,
        result.sla_violations,
        result.worst_tail_ms,
        result.events_fired,
        tuple(machines),
    )


def comparison_fingerprint(result: ComparisonResult) -> Tuple:
    """A deep fingerprint of one Rhythm-vs-Heracles comparison."""
    return (
        result.service,
        result.be_job,
        result.load,
        colocation_fingerprint(result.rhythm),
        colocation_fingerprint(result.heracles),
    )
