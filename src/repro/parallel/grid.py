"""The parallel grid execution engine.

The paper's evaluation is dominated by grids: Figures 9–11 alone are
5 Servpods × 6 BE jobs × 5 loads, each cell simulated once under Rhythm
and once under Heracles. Cells are mutually independent by construction
(each builds its own engine, RNG registry and machines from a cell seed),
so the grid is embarrassingly parallel — *provided* the profiling
artifacts can cross a process boundary. The flow is:

1. the parent profiles every distinct service once (reusing the
   in-process Rhythm cache) and freezes a picklable
   :class:`~repro.parallel.artifact.RhythmArtifact` per service,
2. cells fan out to a process pool as :class:`GridCell` tasks carrying
   only specs, artifacts and seeds,
3. each worker rebuilds the controllers from the artifact and runs the
   cell exactly as the serial path would.

Determinism: a cell's simulation consumes only its own
``RandomStreams(cell.seed)``, so results are bit-identical no matter
which worker runs the cell or in which order cells complete —
``run_comparison_grid(cells, workers=1)`` and ``workers=N`` return
identical results (asserted in ``tests/test_parallel.py``).

Worker count resolves from the ``RHYTHM_WORKERS`` environment variable,
falling back to ``os.cpu_count()``. ``workers=1`` (or a single cell)
runs inline without a pool.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.baselines.heracles import HeraclesPolicy, heracles_controllers
from repro.bejobs.spec import BeJobSpec
from repro.errors import ExperimentError
from repro.experiments.colocation import ColocationConfig, ColocationResult
from repro.experiments.runner import ComparisonResult, run_cell
from repro.loadgen.patterns import ConstantLoad, LoadPattern
from repro.parallel.artifact import RhythmArtifact, artifact_for
from repro.workloads.spec import ServiceSpec

#: Environment variable overriding the default worker count.
WORKERS_ENV_VAR = "RHYTHM_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count.

    Explicit ``workers`` wins; otherwise the ``RHYTHM_WORKERS``
    environment variable; otherwise ``os.cpu_count()``. Always >= 1.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ExperimentError(
                    f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        else:
            workers = os.cpu_count() or 1
    return max(1, int(workers))


def derive_cell_seed(
    root_seed: int, service: str, be_job: str, load: float, salt: str = "cell"
) -> int:
    """A deterministic, collision-resistant per-cell seed.

    Hashes the cell coordinates so every (service, BE, load) cell gets an
    independent seed derived from one root — the parallel analogue of
    :meth:`repro.sim.rng.RandomStreams.spawn`. Grids that want the
    paper's paired-seed variance reduction (every cell reuses the root
    seed) simply skip this derivation.
    """
    digest = hashlib.sha256(
        f"{salt}:{root_seed}:{service}:{be_job}:{load!r}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "little") >> 1  # 63-bit, non-negative


@dataclass(frozen=True)
class GridCell:
    """One grid cell: a (service, BE job, load) point at one seed."""

    service: ServiceSpec
    be_spec: BeJobSpec
    load: float
    seed: int = 0
    #: Optional load pattern; ``None`` means ``ConstantLoad(load)``.
    pattern: Optional[LoadPattern] = None


@dataclass(frozen=True)
class _CellTask:
    """A shipped unit of work: the cell plus everything it needs."""

    cell: GridCell
    artifact: RhythmArtifact
    heracles_policy: HeraclesPolicy
    config: Optional[ColocationConfig]


def _execute_task(task: _CellTask) -> ComparisonResult:
    """Run one cell under both systems (worker side, also used inline).

    Mirrors :func:`repro.experiments.runner.compare_systems` exactly,
    except Rhythm's controllers come from the shipped artifact instead of
    the in-process profiling cache.
    """
    cell = task.cell
    pattern = cell.pattern if cell.pattern is not None else ConstantLoad(cell.load)
    rhythm_result = run_cell(
        cell.service,
        task.artifact.controllers(),
        cell.be_spec,
        pattern,
        seed=cell.seed,
        config=task.config,
    )
    heracles_result = run_cell(
        cell.service,
        heracles_controllers(cell.service, task.heracles_policy),
        cell.be_spec,
        pattern,
        seed=cell.seed,
        config=task.config,
    )
    return ComparisonResult(
        service=cell.service.name,
        be_job=cell.be_spec.name,
        load=cell.load,
        rhythm=rhythm_result,
        heracles=heracles_result,
    )


def _pool_context():
    """Prefer fork (cheap, inherits sys.path) when the platform has it."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def profile_services(
    cells: Sequence[GridCell],
    seed_by_service: Optional[Mapping[str, int]] = None,
    profiling_mode: str = "direct",
    probe_slacklimits: bool = True,
) -> Dict[str, RhythmArtifact]:
    """Profile every distinct service of ``cells`` once, in the parent.

    ``seed_by_service`` overrides the profiling seed per service; by
    default each service profiles at the seed of its first cell, which is
    what the serial ``compare_systems`` path does.
    """
    artifacts: Dict[str, RhythmArtifact] = {}
    for cell in cells:
        name = cell.service.name
        if name in artifacts:
            continue
        seed = (
            seed_by_service[name]
            if seed_by_service is not None and name in seed_by_service
            else cell.seed
        )
        artifacts[name] = artifact_for(
            cell.service,
            seed=seed,
            profiling_mode=profiling_mode,
            probe_slacklimits=probe_slacklimits,
        )
    return artifacts


def run_comparison_grid(
    cells: Sequence[GridCell],
    config: Optional[ColocationConfig] = None,
    workers: Optional[int] = None,
    heracles_policy: HeraclesPolicy = HeraclesPolicy(),
    profiling_mode: str = "direct",
    probe_slacklimits: bool = True,
    artifacts: Optional[Mapping[str, RhythmArtifact]] = None,
) -> List[ComparisonResult]:
    """Run every cell under Rhythm and Heracles; results in input order.

    Profiling happens once per distinct service in the parent (unless
    pre-built ``artifacts`` are supplied); only frozen artifacts travel
    to the pool. With ``workers=1`` (or one cell) everything runs inline
    in this process — the pool path produces bit-identical results.
    """
    cells = list(cells)
    if not cells:
        return []
    if artifacts is None:
        artifacts = profile_services(
            cells,
            profiling_mode=profiling_mode,
            probe_slacklimits=probe_slacklimits,
        )
    missing = {c.service.name for c in cells} - set(artifacts)
    if missing:
        raise ExperimentError(f"no artifacts for services {sorted(missing)}")
    tasks = [
        _CellTask(
            cell=cell,
            artifact=artifacts[cell.service.name],
            heracles_policy=heracles_policy,
            config=config,
        )
        for cell in cells
    ]
    n_workers = min(resolve_workers(workers), len(tasks))
    if n_workers <= 1:
        return [_execute_task(task) for task in tasks]
    chunksize = max(1, len(tasks) // (n_workers * 4))
    with ProcessPoolExecutor(
        max_workers=n_workers, mp_context=_pool_context()
    ) as pool:
        return list(pool.map(_execute_task, tasks, chunksize=chunksize))


# -- result fingerprints -------------------------------------------------
#
# ColocationResult nests accumulators without __eq__; these fingerprints
# reduce a result to plain tuples covering every reported quantity down
# to individual tick samples, so "bit-identical" is checkable with ==.


def colocation_fingerprint(result: ColocationResult) -> Tuple:
    """A deep, hashable fingerprint of one co-location result."""
    machines = []
    for pod in sorted(result.machines):
        metrics = result.machines[pod]
        machines.append(
            (
                pod,
                metrics.machine_name,
                metrics.completed_be_throughput,
                metrics.avg_emu,
                metrics.avg_cpu_utilisation,
                metrics.avg_membw_utilisation,
                metrics.tail.window_tails if metrics.tail is not None else (),
                tuple(
                    (
                        s.t,
                        s.load,
                        s.slack,
                        s.tail_ms,
                        s.cpu_utilisation,
                        s.membw_utilisation,
                        s.be_instances,
                        s.be_cores,
                        s.be_llc_ways,
                        s.be_rate,
                        s.action,
                    )
                    for s in metrics.samples
                ),
            )
        )
    return (
        result.service,
        result.duration_s,
        result.lc_load_mean,
        result.be_kills,
        result.be_suspensions,
        result.sla_violations,
        result.worst_tail_ms,
        result.events_fired,
        tuple(machines),
    )


def comparison_fingerprint(result: ComparisonResult) -> Tuple:
    """A deep fingerprint of one Rhythm-vs-Heracles comparison."""
    return (
        result.service,
        result.be_job,
        result.load,
        colocation_fingerprint(result.rhythm),
        colocation_fingerprint(result.heracles),
    )
