"""Parallel grid execution: profile once, fan cells out to a pool.

- :mod:`repro.parallel.artifact` — frozen, picklable
  :class:`~repro.parallel.artifact.RhythmArtifact` profiling artifacts,
- :mod:`repro.parallel.grid` — the process-pool grid engine with
  deterministic per-cell seeding and result fingerprints.
"""

from repro.parallel.artifact import RhythmArtifact, artifact_for
from repro.parallel.grid import (
    WORKERS_ENV_VAR,
    GridCacheStats,
    GridCell,
    artifact_cache_key,
    colocation_fingerprint,
    comparison_fingerprint,
    derive_cell_seed,
    profile_services,
    resolve_workers,
    run_comparison_grid,
)

__all__ = [
    "WORKERS_ENV_VAR",
    "GridCacheStats",
    "GridCell",
    "RhythmArtifact",
    "artifact_cache_key",
    "artifact_for",
    "colocation_fingerprint",
    "comparison_fingerprint",
    "derive_cell_seed",
    "profile_services",
    "resolve_workers",
    "run_comparison_grid",
]
