"""Parallel execution: profile and fan out through one persistent pool.

- :mod:`repro.parallel.artifact` — frozen, picklable
  :class:`~repro.parallel.artifact.RhythmArtifact` profiling artifacts,
- :mod:`repro.parallel.pool` — the process-wide persistent worker pool
  with digest-addressed broadcast of frozen inputs,
- :mod:`repro.parallel.profile` — the parallel profiling pipeline
  (per-load-point sweep tasks, per-Servpod Algorithm-1 walks,
  sub-profile caching),
- :mod:`repro.parallel.grid` — the grid engine with deterministic
  per-cell seeding and result fingerprints, sharing the pool above.
"""

from repro.parallel.artifact import RhythmArtifact, artifact_for
from repro.parallel.grid import (
    GridCacheStats,
    GridCell,
    cell_cache_key,
    colocation_fingerprint,
    comparison_fingerprint,
    derive_cell_seed,
    profile_services,
    run_comparison_grid,
)
from repro.parallel.pool import (
    MP_CONTEXT_ENV_VAR,
    PROFILE_WORKERS_ENV_VAR,
    WORKERS_ENV_VAR,
    BroadcastRef,
    Envelope,
    broadcast,
    get_pool,
    pool_constructions,
    reset_pool_state_for_tests,
    resolve_profile_workers,
    resolve_ref,
    resolve_workers,
    run_envelopes,
    shutdown_pool,
)
from repro.parallel.profile import (
    ProfileStats,
    artifact_cache_key,
    clear_profile_memo,
    load_point_cache_key,
    profile_service_parallel,
    profile_services_parallel,
    slacklimit_cache_key,
)

__all__ = [
    "MP_CONTEXT_ENV_VAR",
    "PROFILE_WORKERS_ENV_VAR",
    "WORKERS_ENV_VAR",
    "BroadcastRef",
    "Envelope",
    "GridCacheStats",
    "GridCell",
    "ProfileStats",
    "RhythmArtifact",
    "artifact_cache_key",
    "artifact_for",
    "broadcast",
    "cell_cache_key",
    "clear_profile_memo",
    "colocation_fingerprint",
    "comparison_fingerprint",
    "derive_cell_seed",
    "get_pool",
    "load_point_cache_key",
    "pool_constructions",
    "profile_service_parallel",
    "profile_services",
    "profile_services_parallel",
    "reset_pool_state_for_tests",
    "resolve_profile_workers",
    "resolve_ref",
    "resolve_workers",
    "run_comparison_grid",
    "run_envelopes",
    "shutdown_pool",
    "slacklimit_cache_key",
]
