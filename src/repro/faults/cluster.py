"""Cluster-layer fault injection: mid-run machine degradation.

A :class:`ClusterFaultInjector` walks a :class:`~repro.faults.spec.
FaultSchedule` against a live :class:`~repro.cluster.cluster.Cluster`.
The co-location loop calls :meth:`ClusterFaultInjector.advance` at each
control tick; faults whose window opened are applied through the
machines' *existing* mechanisms (cpuset, CAT, DVFS caps, link scaling)
and reverted when their window closes. Nothing tells the top controller
a fault happened — it only sees the consequences through the knobs it
already reads (tail latency, frequency ratio, free cores), exactly as a
production controller would.

How each kind lands:

- ``CORE_OFFLINE`` — ``magnitude × cores`` cores move to the fault
  owner via :meth:`Machine.offline_cores` (BE jobs shrink to make room;
  the LC reservation survives). BE growth stalls, BE rates drop.
- ``DVFS_CAP`` — a hardware ceiling on both frequency domains at
  ``max - magnitude × (max - min)`` MHz (step-snapped). The controller
  observes it as frequency pressure (``1 - lc_freq_ratio``) and lower
  BE throughput; the frequency subcontroller's resets cannot lift it.
- ``LLC_WAY_LOSS`` — ``magnitude × ways`` ways fenced from the free
  pool, and the *lost fraction* added as LLC pressure on the LC.
- ``NIC_DEGRADE`` — the link scaled to ``1 - magnitude`` (floored at
  5%); the LC's unservable traffic fraction becomes network pressure.
- ``MACHINE_STALL`` — a transient whole-machine slowdown factor of
  ``1 + STALL_SLOWDOWN_SPAN × magnitude`` multiplying the Servpod's
  interference slowdown for the window.

Effective NIC/DVFS state is *recomputed from the active-fault set* at
every transition (min cap, product of scales), so overlapping faults
compose deterministically regardless of apply/revert order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.machine import BE_DOMAIN, LC_DOMAIN, Machine
from repro.faults.spec import FaultKind, FaultSchedule, FaultSpec
from repro.interference.model import Pressure

#: A magnitude-1.0 stall multiplies the Servpod slowdown by 1 + this.
STALL_SLOWDOWN_SPAN = 9.0

#: The degraded link never drops below this fraction of capacity (a
#: fully dead NIC would zero the denominator of every share computation).
MIN_LINK_SCALE = 0.05


@dataclass(frozen=True)
class FaultEvent:
    """One applied/reverted transition, for logs and drivers."""

    t: float
    phase: str  # "apply" | "revert"
    machine: str
    spec: FaultSpec


class ClusterFaultInjector:
    """Applies a schedule's cluster faults to machines as time advances."""

    def __init__(self, cluster: Cluster, schedule: FaultSchedule) -> None:
        self.cluster = cluster
        self.schedule = schedule
        names = cluster.names()
        # Expand "*" targets to every machine: one (machine, spec) pair
        # per concrete application, so apply/revert bookkeeping is local.
        expanded: List[Tuple[str, FaultSpec]] = []
        for spec in schedule:
            for name in names:
                if spec.applies_to(name):
                    expanded.append((name, spec))
        expanded.sort(key=lambda p: (p[1].at_s, p[1].kind.value, p[0]))
        self._pending = expanded
        self._next = 0
        #: (machine, spec) -> units physically taken (cores or ways).
        self._taken: Dict[Tuple[str, int], int] = {}
        self._active: List[Tuple[str, FaultSpec]] = []
        self.events: List[FaultEvent] = []

    # -- time advance ------------------------------------------------------

    def advance(self, t: float) -> int:
        """Apply/revert every transition due by time ``t``.

        Returns the number of transitions performed. Idempotent for a
        given ``t``: calling twice with the same time does nothing new.
        """
        transitions = 0
        # Revert first so a machine's resources free up before a new
        # fault (possibly on the same resource) takes its share.
        still_active = []
        for name, spec in self._active:
            if t >= spec.end_s:
                self._revert(name, spec, t)
                transitions += 1
            else:
                still_active.append((name, spec))
        self._active = still_active
        while self._next < len(self._pending):
            name, spec = self._pending[self._next]
            if spec.at_s > t:
                break
            self._next += 1
            if t >= spec.end_s:
                continue  # whole window fell between ticks: no-op
            self._apply(name, spec, t)
            self._active.append((name, spec))
            transitions += 1
        if transitions:
            self._recompute_derived()
        return transitions

    # -- observation hooks (read by the co-location loop) ------------------

    def stall_factor(self, machine_name: str) -> float:
        """Product of active stall slowdowns on ``machine_name`` (>= 1)."""
        factor = 1.0
        for name, spec in self._active:
            if name == machine_name and spec.kind is FaultKind.MACHINE_STALL:
                factor *= 1.0 + STALL_SLOWDOWN_SPAN * spec.magnitude
        return factor

    def adjust_pressure(self, machine: Machine, pressure: Pressure) -> Pressure:
        """Fold active fault effects into the LC's residual pressure.

        Lost LLC capacity and NIC shortfall are disturbances the
        controller can only see through the interference they cause —
        this is where they enter the latency model.
        """
        name = machine.spec.name
        extra_llc = 0.0
        has_nic_fault = False
        for active_name, spec in self._active:
            if active_name != name:
                continue
            if spec.kind is FaultKind.LLC_WAY_LOSS:
                extra_llc += spec.magnitude
            elif spec.kind is FaultKind.NIC_DEGRADE:
                has_nic_fault = True
        if extra_llc <= 0 and not has_nic_fault:
            return pressure
        llc = min(1.0, pressure.llc + extra_llc)
        net = pressure.net
        if has_nic_fault:
            net = min(1.0, max(net, machine.nic.lc_shortfall_fraction()))
        return replace(pressure, llc=llc, net=net)

    @property
    def active_faults(self) -> Tuple[Tuple[str, FaultSpec], ...]:
        """The currently applied (machine, fault) pairs."""
        return tuple(self._active)

    @property
    def applied_count(self) -> int:
        """How many apply transitions have happened so far."""
        return sum(1 for e in self.events if e.phase == "apply")

    # -- apply / revert ----------------------------------------------------

    def _apply(self, name: str, spec: FaultSpec, t: float) -> None:
        machine = self.cluster[name]
        key = (name, id(spec))
        if spec.kind is FaultKind.CORE_OFFLINE:
            want = max(1, round(spec.magnitude * machine.spec.cores))
            self._taken[key] = machine.offline_cores(want)
        elif spec.kind is FaultKind.LLC_WAY_LOSS:
            want = max(1, round(spec.magnitude * machine.llc.n_ways))
            self._taken[key] = machine.fault_llc_ways(want)
        # DVFS_CAP / NIC_DEGRADE / MACHINE_STALL are derived from the
        # active set in _recompute_derived / stall_factor.
        self.events.append(FaultEvent(t=t, phase="apply", machine=name, spec=spec))

    def _revert(self, name: str, spec: FaultSpec, t: float) -> None:
        machine = self.cluster[name]
        key = (name, id(spec))
        taken = self._taken.pop(key, 0)
        if spec.kind is FaultKind.CORE_OFFLINE:
            machine.restore_offlined_cores(taken)
        elif spec.kind is FaultKind.LLC_WAY_LOSS:
            machine.restore_fault_llc_ways(taken)
        self.events.append(FaultEvent(t=t, phase="revert", machine=name, spec=spec))

    def _recompute_derived(self) -> None:
        """Rebuild each machine's DVFS cap and link scale from the active set."""
        caps: Dict[str, int] = {}
        scales: Dict[str, float] = {}
        for name, spec in self._active:
            machine = self.cluster[name]
            if spec.kind is FaultKind.DVFS_CAP:
                mhz = self._cap_mhz(machine, spec.magnitude)
                caps[name] = min(caps.get(name, mhz), mhz)
            elif spec.kind is FaultKind.NIC_DEGRADE:
                scales[name] = scales.get(name, 1.0) * (1.0 - spec.magnitude)
        for machine in self.cluster:
            name = machine.spec.name
            cap = caps.get(name)
            if cap is None:
                machine.dvfs.clear_cap(LC_DOMAIN)
                machine.dvfs.clear_cap(BE_DOMAIN)
            else:
                machine.dvfs.set_cap(LC_DOMAIN, cap)
                machine.dvfs.set_cap(BE_DOMAIN, cap)
            machine.nic.set_link_scale(max(MIN_LINK_SCALE, scales.get(name, 1.0)))

    @staticmethod
    def _cap_mhz(machine: Machine, magnitude: float) -> int:
        """Map a severity onto a step-snapped frequency ceiling."""
        dvfs = machine.dvfs
        span = dvfs.max_mhz - dvfs.min_mhz
        steps = round(magnitude * span / dvfs.step_mhz)
        return max(dvfs.min_mhz, dvfs.max_mhz - int(steps) * dvfs.step_mhz)
