"""Tracing-layer fault injection: drop, duplicate and late-deliver events.

The emitter's built-in noise model covers *benign* imperfections
(unrelated processes, thread interleaving). Real kernel-event pipelines
also lose and mangle data: per-CPU ring buffers overflow under load and
drop events, retransmitted batches duplicate them, and delayed flushes
stamp events visibly late so the globally sorted stream reorders. This
module applies those corruptions deterministically so the tolerant
extraction paths (:meth:`repro.tracing.sojourn.SojournExtractor.
robust_stats`) can be regression-tested against a *known* degradation.

Determinism: every event consumes exactly three uniform draws from a
seed-derived generator (drop, duplicate, reorder decisions) plus one
more when reorder fires — the schedule of corruptions is a pure
function of ``(config.seed, stream order)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List

from repro.errors import FaultError
from repro.faults.spec import _derived_rng
from repro.tracing.events import SysEvent


@dataclass(frozen=True)
class TraceFaultConfig:
    """Corruption rates for one event stream."""

    seed: int = 0
    #: Probability an event is lost (ring-buffer overflow).
    drop_rate: float = 0.0
    #: Probability an event is delivered twice (retransmitted batch).
    duplicate_rate: float = 0.0
    #: Probability an event's timestamp slips late (delayed flush) —
    #: this is what reorders the time-sorted stream.
    reorder_rate: float = 0.0
    #: Maximum lateness added to a reordered event's timestamp.
    reorder_jitter_ms: float = 5.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "reorder_rate"):
            value = getattr(self, name)
            if not (0.0 <= value < 1.0):
                raise FaultError(f"{name} must be in [0, 1), got {value}")
        if self.reorder_jitter_ms < 0:
            raise FaultError(
                f"reorder_jitter_ms must be >= 0, got {self.reorder_jitter_ms}"
            )

    @property
    def any_corruption(self) -> bool:
        """True when at least one rate is non-zero."""
        return bool(self.drop_rate or self.duplicate_rate or self.reorder_rate)


def corrupt_events(
    events: Iterable[SysEvent], config: TraceFaultConfig
) -> List[SysEvent]:
    """Apply the configured corruptions to an event stream.

    Order of operations per event: drop decision first (a dropped event
    is gone, it cannot be duplicated), then late-delivery jitter, then
    duplication (the duplicate carries the jittered timestamp — a
    re-flushed batch re-sends what it recorded).
    """
    events = list(events)
    if not config.any_corruption:
        return events
    rng = _derived_rng(config.seed, "trace-faults")
    out: List[SysEvent] = []
    for event in events:
        u_drop, u_dup, u_reorder = rng.random(3)
        if u_drop < config.drop_rate:
            continue
        if u_reorder < config.reorder_rate and config.reorder_jitter_ms > 0:
            lateness = float(rng.random()) * config.reorder_jitter_ms
            event = replace(event, timestamp=event.timestamp + lateness)
        out.append(event)
        if u_dup < config.duplicate_rate:
            out.append(event)
    return out
