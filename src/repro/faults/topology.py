"""Hierarchical failure domains: region / AZ / rack over fleet zones.

Real incidents are correlated: a rack power feed browns out every
machine in the rack, an availability-zone cooling event forces a
DVFS cap across the whole AZ, a top-of-rack switch renegotiates every
link below it. This module overlays a seeded region → AZ → rack
topology on the existing fleet *zone* structure and expands
domain-level events into the per-machine :class:`FaultSpec` stream the
rest of the system already understands — the injector, the fleet
kernel, and the zone cache all run unchanged.

The load-bearing alignment decision: **racks are made of whole
zones**. A zone (``zone_size`` consecutive fleet instances) is the
repo's shard-count-invariant unit of caching and governor coupling, so
by building every failure domain out of whole zones, a domain event's
blast radius is always a set of zones. Storm faults ride inside
:class:`~repro.experiments.fleet.FleetInstanceSpec.faults`, which
:func:`~repro.experiments.fleet.zone_cache_key` already hashes —
therefore a storm invalidates *exactly* the cache entries of the zones
it touches, with no new cache machinery. The blast-radius tests in
``tests/test_topology.py`` and ``tests/test_fleet_cache.py`` pin this
contract.

Determinism contract (same as :meth:`FaultSchedule.generate`): every
random choice in :meth:`FleetTopology.generate` and
:meth:`CorrelatedFaultSchedule.generate` derives from a SHA-256 of the
seed, so the same ``(seed, arguments)`` produce byte-identical
topologies, event schedules, and per-instance expansions on any
platform, process start method, or ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import FaultError
from repro.faults.spec import (
    ALL_TARGETS,
    FaultKind,
    FaultSchedule,
    FaultSpec,
    _derived_rng,
)


class DomainKind(enum.Enum):
    """The correlated, domain-level incidents a storm can contain.

    Each expands into one machine-level :class:`FaultKind` applied to
    every instance in the domain's blast radius (see
    :data:`DOMAIN_FAULT_KINDS`).
    """

    RACK_POWER = "rack_power"    # feed brownout: cores drop rack-wide
    AZ_COOLING = "az_cooling"    # thermal event: DVFS cap AZ-wide
    TOR_DEGRADE = "tor_degrade"  # top-of-rack switch: NIC rates collapse


#: Domain incident → the machine-level fault it expands into.
DOMAIN_FAULT_KINDS: Dict[DomainKind, FaultKind] = {
    DomainKind.RACK_POWER: FaultKind.CORE_OFFLINE,
    DomainKind.AZ_COOLING: FaultKind.DVFS_CAP,
    DomainKind.TOR_DEGRADE: FaultKind.NIC_DEGRADE,
}

#: Domain incident → the topology level whose id it names.
DOMAIN_LEVELS: Dict[DomainKind, str] = {
    DomainKind.RACK_POWER: "rack",
    DomainKind.AZ_COOLING: "az",
    DomainKind.TOR_DEGRADE: "rack",
}

#: Default kind mix for generated storms (uniform over all kinds).
DEFAULT_DOMAIN_KINDS: Tuple[DomainKind, ...] = tuple(DomainKind)


def _check_contiguous(name: str, parents: Sequence[int]) -> int:
    """Validate a child→parent map is contiguous blocks 0,1,2,…

    Returns the parent count. Contiguity (non-decreasing ids, starting
    at 0, stepping by at most 1) is what keeps every failure domain a
    run of consecutive zones — the same shape shards and the governor
    already use.
    """
    if not parents:
        raise FaultError(f"topology {name} map must not be empty")
    if parents[0] != 0:
        raise FaultError(f"topology {name} ids must start at 0, got {parents[0]}")
    for k in range(1, len(parents)):
        step = parents[k] - parents[k - 1]
        if step not in (0, 1):
            raise FaultError(
                f"topology {name} ids must be contiguous non-decreasing "
                f"blocks; {name}[{k}] jumps {parents[k - 1]} -> {parents[k]}"
            )
    return parents[-1] + 1


@dataclass(frozen=True)
class FleetTopology:
    """A region → AZ → rack hierarchy over a fleet's zones.

    Zones are the fleet's native blocks of ``zone_size`` consecutive
    instances (instance ``i`` is in zone ``i // zone_size``); a rack is
    one or more consecutive zones, an AZ one or more consecutive racks,
    a region one or more consecutive AZs. All maps are plain tuples, so
    a topology is hashable by :func:`~repro.cache.keys.stable_hash` and
    ships to pool workers in one blob.
    """

    #: Fleet width in instances (must match the fleet being stormed).
    n_instances: int
    #: Zone width in instances (must match ``FleetConfig.zone_size``).
    zone_size: int
    #: Zone id → rack id (contiguous blocks starting at 0).
    rack_of_zone: Tuple[int, ...]
    #: Rack id → AZ id (contiguous blocks starting at 0).
    az_of_rack: Tuple[int, ...]
    #: AZ id → region id (contiguous blocks starting at 0).
    region_of_az: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.n_instances < 1:
            raise FaultError(f"n_instances must be >= 1, got {self.n_instances}")
        if self.zone_size < 1:
            raise FaultError(f"zone_size must be >= 1, got {self.zone_size}")
        n_zones = math.ceil(self.n_instances / self.zone_size)
        if len(self.rack_of_zone) != n_zones:
            raise FaultError(
                f"rack_of_zone covers {len(self.rack_of_zone)} zones but "
                f"{self.n_instances} instances at zone_size {self.zone_size} "
                f"form {n_zones}"
            )
        n_racks = _check_contiguous("rack_of_zone", self.rack_of_zone)
        if len(self.az_of_rack) != n_racks:
            raise FaultError(
                f"az_of_rack covers {len(self.az_of_rack)} racks but "
                f"rack_of_zone names {n_racks}"
            )
        n_azs = _check_contiguous("az_of_rack", self.az_of_rack)
        if len(self.region_of_az) != n_azs:
            raise FaultError(
                f"region_of_az covers {len(self.region_of_az)} AZs but "
                f"az_of_rack names {n_azs}"
            )
        _check_contiguous("region_of_az", self.region_of_az)

    # -- shape -------------------------------------------------------------

    @property
    def n_zones(self) -> int:
        return len(self.rack_of_zone)

    @property
    def n_racks(self) -> int:
        return len(self.az_of_rack)

    @property
    def n_azs(self) -> int:
        return len(self.region_of_az)

    @property
    def n_regions(self) -> int:
        return self.region_of_az[-1] + 1

    # -- queries -----------------------------------------------------------

    def zone_of_instance(self, index: int) -> int:
        """The fleet zone instance ``index`` belongs to."""
        if not (0 <= index < self.n_instances):
            raise FaultError(
                f"instance {index} outside fleet of {self.n_instances}"
            )
        return index // self.zone_size

    def instances_of_zone(self, zone: int) -> Tuple[int, ...]:
        """The instance indices zone ``zone`` contains."""
        if not (0 <= zone < self.n_zones):
            raise FaultError(f"zone {zone} outside topology of {self.n_zones}")
        start = zone * self.zone_size
        return tuple(range(start, min(self.n_instances, start + self.zone_size)))

    def zones_of_rack(self, rack: int) -> Tuple[int, ...]:
        """The zone ids rack ``rack`` contains."""
        if not (0 <= rack < self.n_racks):
            raise FaultError(f"rack {rack} outside topology of {self.n_racks}")
        return tuple(
            z for z, r in enumerate(self.rack_of_zone) if r == rack
        )

    def zones_of_az(self, az: int) -> Tuple[int, ...]:
        """The zone ids AZ ``az`` contains."""
        if not (0 <= az < self.n_azs):
            raise FaultError(f"AZ {az} outside topology of {self.n_azs}")
        return tuple(
            z
            for z, r in enumerate(self.rack_of_zone)
            if self.az_of_rack[r] == az
        )

    def zones_of_region(self, region: int) -> Tuple[int, ...]:
        """The zone ids region ``region`` contains."""
        if not (0 <= region < self.n_regions):
            raise FaultError(
                f"region {region} outside topology of {self.n_regions}"
            )
        return tuple(
            z
            for z, r in enumerate(self.rack_of_zone)
            if self.region_of_az[self.az_of_rack[r]] == region
        )

    def zones_of_domain(self, level: str, domain: int) -> Tuple[int, ...]:
        """The zone ids of one named failure domain."""
        if level == "rack":
            return self.zones_of_rack(domain)
        if level == "az":
            return self.zones_of_az(domain)
        if level == "region":
            return self.zones_of_region(domain)
        raise FaultError(f"unknown domain level {level!r}")

    def describe(self) -> str:
        """One-line shape summary for reports and CLI headers."""
        return (
            f"{self.n_regions} region(s) / {self.n_azs} AZ(s) / "
            f"{self.n_racks} rack(s) / {self.n_zones} zone(s) / "
            f"{self.n_instances} instance(s)"
        )

    # -- seeded construction ----------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        n_instances: int,
        zone_size: int = 4,
        min_zones_per_rack: int = 1,
        max_zones_per_rack: int = 3,
        min_racks_per_az: int = 2,
        max_racks_per_az: int = 4,
        azs_per_region: int = 2,
    ) -> "FleetTopology":
        """A seeded topology: same arguments, same hierarchy, bit for bit.

        Rack and AZ widths are drawn uniformly from their ranges with a
        dedicated seed-derived RNG (salt ``"fleet-topology"``), so two
        seeds give different rack boundaries over the same fleet while
        one seed is perfectly reproducible across processes.
        """
        if n_instances < 1:
            raise FaultError(f"n_instances must be >= 1, got {n_instances}")
        if zone_size < 1:
            raise FaultError(f"zone_size must be >= 1, got {zone_size}")
        if not (1 <= min_zones_per_rack <= max_zones_per_rack):
            raise FaultError(
                f"zones-per-rack range [{min_zones_per_rack}, "
                f"{max_zones_per_rack}] invalid"
            )
        if not (1 <= min_racks_per_az <= max_racks_per_az):
            raise FaultError(
                f"racks-per-AZ range [{min_racks_per_az}, "
                f"{max_racks_per_az}] invalid"
            )
        if azs_per_region < 1:
            raise FaultError(
                f"azs_per_region must be >= 1, got {azs_per_region}"
            )
        rng = _derived_rng(seed, "fleet-topology")
        n_zones = math.ceil(n_instances / zone_size)
        rack_of_zone: List[int] = []
        rack = 0
        while len(rack_of_zone) < n_zones:
            width = int(rng.integers(min_zones_per_rack, max_zones_per_rack + 1))
            rack_of_zone.extend([rack] * min(width, n_zones - len(rack_of_zone)))
            rack += 1
        az_of_rack: List[int] = []
        az = 0
        while len(az_of_rack) < rack:
            width = int(rng.integers(min_racks_per_az, max_racks_per_az + 1))
            az_of_rack.extend([az] * min(width, rack - len(az_of_rack)))
            az += 1
        region_of_az = [k // azs_per_region for k in range(az)]
        return cls(
            n_instances=n_instances,
            zone_size=zone_size,
            rack_of_zone=tuple(rack_of_zone),
            az_of_rack=tuple(az_of_rack),
            region_of_az=tuple(region_of_az),
        )


@dataclass(frozen=True)
class DomainEvent:
    """One correlated incident: kind, failure domain, window, severity.

    ``domain`` names a rack id for :attr:`DomainKind.RACK_POWER` and
    :attr:`DomainKind.TOR_DEGRADE`, an AZ id for
    :attr:`DomainKind.AZ_COOLING` (see :data:`DOMAIN_LEVELS`).
    """

    kind: DomainKind
    domain: int
    at_s: float = 0.0
    duration_s: float = 60.0
    magnitude: float = 0.5

    def __post_init__(self) -> None:
        if not isinstance(self.kind, DomainKind):
            raise FaultError(f"kind must be a DomainKind, got {self.kind!r}")
        if self.domain < 0:
            raise FaultError(f"domain id must be >= 0, got {self.domain}")
        if self.at_s < 0:
            raise FaultError(f"event start must be >= 0, got {self.at_s}")
        if self.duration_s <= 0:
            raise FaultError(
                f"event duration must be > 0, got {self.duration_s}"
            )
        if not (0.0 < self.magnitude <= 1.0):
            raise FaultError(
                f"event magnitude must be in (0, 1], got {self.magnitude}"
            )

    @property
    def level(self) -> str:
        """The topology level this event's domain id names."""
        return DOMAIN_LEVELS[self.kind]

    @property
    def fault_kind(self) -> FaultKind:
        """The machine-level fault this event expands into."""
        return DOMAIN_FAULT_KINDS[self.kind]

    @property
    def end_s(self) -> float:
        return self.at_s + self.duration_s


@dataclass(frozen=True)
class CorrelatedFaultSchedule:
    """A seeded storm of domain-level events over one topology.

    The expansion (:meth:`per_instance_schedules`) is a *pure function*
    of ``(topology, events)`` — no RNG is consulted after generation —
    so the property tests can assert byte-identical expansions across
    fork- and spawn-started processes and any shard count.
    """

    topology: FleetTopology
    seed: int = 0
    events: Tuple[DomainEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.events,
                key=lambda e: (e.at_s, e.kind.value, e.domain, e.magnitude),
            )
        )
        object.__setattr__(self, "events", ordered)
        counts = {
            "rack": self.topology.n_racks,
            "az": self.topology.n_azs,
            "region": self.topology.n_regions,
        }
        for event in ordered:
            if event.domain >= counts[event.level]:
                raise FaultError(
                    f"{event.kind.value} event names {event.level} "
                    f"{event.domain}, but the topology has only "
                    f"{counts[event.level]}"
                )

    @classmethod
    def generate(
        cls,
        seed: int,
        topology: FleetTopology,
        duration_s: float,
        events_per_minute: float = 0.5,
        kinds: Optional[Sequence[DomainKind]] = None,
        min_duration_s: float = 20.0,
        max_duration_s: float = 120.0,
        min_magnitude: float = 0.3,
        max_magnitude: float = 0.8,
    ) -> "CorrelatedFaultSchedule":
        """A seeded domain-event storm: same seed, same schedule.

        Mirrors :meth:`FaultSchedule.generate`: draws
        ``round(events_per_minute * duration_s / 60)`` events with
        kind, domain, start, duration and magnitude all taken from one
        seed-derived RNG (salt ``"correlated-fault-schedule"``), clips
        windows to end by ``duration_s``, and freezes them time-sorted.
        """
        if duration_s <= 0:
            raise FaultError(f"storm duration must be > 0, got {duration_s}")
        if events_per_minute < 0:
            raise FaultError(
                f"events_per_minute must be >= 0, got {events_per_minute}"
            )
        if not (0.0 < min_magnitude <= max_magnitude <= 1.0):
            raise FaultError(
                f"magnitude range ({min_magnitude}, {max_magnitude}] invalid"
            )
        if not (0.0 < min_duration_s <= max_duration_s):
            raise FaultError(
                f"duration range [{min_duration_s}, {max_duration_s}] invalid"
            )
        kind_pool = DEFAULT_DOMAIN_KINDS if kinds is None else tuple(kinds)
        if not kind_pool:
            raise FaultError("need at least one domain event kind")
        domain_counts = {
            "rack": topology.n_racks,
            "az": topology.n_azs,
            "region": topology.n_regions,
        }
        count = int(round(events_per_minute * duration_s / 60.0))
        rng = _derived_rng(seed, "correlated-fault-schedule")
        events = []
        for _ in range(count):
            kind = kind_pool[int(rng.integers(len(kind_pool)))]
            domain = int(rng.integers(domain_counts[DOMAIN_LEVELS[kind]]))
            at_s = float(rng.uniform(0.0, duration_s))
            window = float(rng.uniform(min_duration_s, max_duration_s))
            duration = max(min_duration_s, min(window, duration_s - at_s))
            magnitude = float(rng.uniform(min_magnitude, max_magnitude))
            events.append(
                DomainEvent(
                    kind=kind,
                    domain=domain,
                    at_s=at_s,
                    duration_s=duration,
                    magnitude=magnitude,
                )
            )
        return cls(topology=topology, seed=seed, events=tuple(events))

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[DomainEvent]:
        return iter(self.events)

    def blast_zones(self, event: DomainEvent) -> Tuple[int, ...]:
        """The zone ids one event's expansion touches."""
        return self.topology.zones_of_domain(event.level, event.domain)

    def affected_zones(self) -> Tuple[int, ...]:
        """The union of every event's blast radius, sorted."""
        zones = set()
        for event in self.events:
            zones.update(self.blast_zones(event))
        return tuple(sorted(zones))

    def affected_instances(self) -> Tuple[int, ...]:
        """The instance indices the storm's expansion reaches, sorted."""
        indices = set()
        for zone in self.affected_zones():
            indices.update(self.topology.instances_of_zone(zone))
        return tuple(sorted(indices))

    def counts_by_kind(self) -> Dict[str, int]:
        """How many events of each domain kind the storm holds."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        return counts

    # -- expansion ---------------------------------------------------------

    def per_instance_schedules(self) -> Dict[int, FaultSchedule]:
        """Expand domain events into per-instance machine fault streams.

        Pure function of ``(topology, events)``: each event contributes
        one :class:`FaultSpec` (kind per :data:`DOMAIN_FAULT_KINDS`,
        ``target='*'`` — every machine of the instance's cluster, the
        correlated-failure wildcard the injector already honors) to
        every instance in its blast radius. Instances outside every
        blast radius are absent from the mapping, so a storm leaves
        untouched zones' specs — and therefore their cache keys —
        byte-identical.
        """
        per_instance: Dict[int, List[FaultSpec]] = {}
        for event in self.events:
            spec = FaultSpec(
                kind=event.fault_kind,
                target=ALL_TARGETS,
                at_s=event.at_s,
                duration_s=event.duration_s,
                magnitude=event.magnitude,
            )
            for zone in self.blast_zones(event):
                for index in self.topology.instances_of_zone(zone):
                    per_instance.setdefault(index, []).append(spec)
        return {
            index: FaultSchedule(seed=self.seed, faults=tuple(specs))
            for index, specs in sorted(per_instance.items())
        }


def merge_schedules(
    base: Optional[FaultSchedule], extra: FaultSchedule
) -> FaultSchedule:
    """Overlay ``extra``'s faults on an instance's existing schedule.

    Keeps ``extra``'s seed (the storm seed) as the merged schedule's
    provenance marker; :class:`FaultSchedule` re-sorts the union by
    time, so merging is order-insensitive in effect.
    """
    if base is None or not base.faults:
        return extra
    return FaultSchedule(
        seed=extra.seed, faults=tuple(base.faults) + tuple(extra.faults)
    )
