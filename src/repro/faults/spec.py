"""Declarative, seeded fault specifications.

A :class:`FaultSpec` names one disturbance — what kind, which machine,
when, for how long, how severe. A :class:`FaultSchedule` is an immutable,
time-sorted collection of specs, either hand-built or drawn from a seeded
generator: :meth:`FaultSchedule.generate` derives every random choice
from a SHA-256 of the seed, so the same seed always produces the *same*
schedule — byte-for-byte identical ``repr`` — no matter the platform,
process, or ``PYTHONHASHSEED``. That reproducibility is what makes a
chaos run a regression test instead of a dice roll.

Magnitudes are normalized severities in ``(0, 1]``; each injector maps
them onto its resource's units (cores, MHz steps, cache ways, link
scale, stall factor) — see :mod:`repro.faults.cluster`.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FaultError

#: Matches every machine in the cluster (a correlated failure).
ALL_TARGETS = "*"


class FaultKind(enum.Enum):
    """The cluster-layer disturbances the injector can apply.

    Each models a real degradation mode the controller must survive;
    DESIGN.md maps every kind to the production failure it stands for.
    """

    CORE_OFFLINE = "core_offline"      # cores removed from the schedulable set
    DVFS_CAP = "dvfs_cap"              # frequency stuck below max
    LLC_WAY_LOSS = "llc_way_loss"      # cache ways lost to faulty SRAM
    NIC_DEGRADE = "nic_degrade"        # link renegotiated to a lower rate
    MACHINE_STALL = "machine_stall"    # transient whole-machine slowdown


#: Default kind mix for generated schedules (uniform over all kinds).
DEFAULT_KINDS: Tuple[FaultKind, ...] = tuple(FaultKind)


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: kind, target machine, window, severity."""

    kind: FaultKind
    target: str = ALL_TARGETS
    at_s: float = 0.0
    duration_s: float = 30.0
    magnitude: float = 0.5

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            raise FaultError(f"kind must be a FaultKind, got {self.kind!r}")
        if not self.target:
            raise FaultError("fault target must be a machine name or '*'")
        if self.at_s < 0:
            raise FaultError(f"fault start must be >= 0, got {self.at_s}")
        if self.duration_s <= 0:
            raise FaultError(f"fault duration must be > 0, got {self.duration_s}")
        if not (0.0 < self.magnitude <= 1.0):
            raise FaultError(
                f"fault magnitude must be in (0, 1], got {self.magnitude}"
            )

    @property
    def end_s(self) -> float:
        """First instant the fault is no longer active."""
        return self.at_s + self.duration_s

    def active_at(self, t: float) -> bool:
        """True while the fault is applied (start inclusive, end exclusive)."""
        return self.at_s <= t < self.end_s

    def applies_to(self, machine_name: str) -> bool:
        """True when this fault targets ``machine_name``."""
        return self.target == ALL_TARGETS or self.target == machine_name


def _derived_rng(seed: int, salt: str) -> np.random.Generator:
    """A generator whose state is a pure function of ``(seed, salt)``."""
    digest = hashlib.sha256(f"{salt}:{seed}".encode("utf-8")).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-sorted set of faults plus the seed that made it."""

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.faults,
                key=lambda f: (f.at_s, f.kind.value, f.target, f.magnitude),
            )
        )
        object.__setattr__(self, "faults", ordered)

    @classmethod
    def generate(
        cls,
        seed: int,
        duration_s: float,
        targets: Sequence[str] = (ALL_TARGETS,),
        faults_per_minute: float = 2.0,
        kinds: Optional[Sequence[FaultKind]] = None,
        min_duration_s: float = 10.0,
        max_duration_s: float = 60.0,
        min_magnitude: float = 0.2,
        max_magnitude: float = 0.9,
    ) -> "FaultSchedule":
        """A seeded storm: same seed, same schedule, bit-for-bit.

        Draws ``round(faults_per_minute * duration_s / 60)`` faults with
        kind, target, start, duration and magnitude all taken from one
        seed-derived RNG, then freezes them time-sorted. Start times are
        drawn over ``[0, duration_s)`` and windows are clipped to end by
        ``duration_s`` (a fault that outlives the run is just active to
        the end).
        """
        if duration_s <= 0:
            raise FaultError(f"storm duration must be > 0, got {duration_s}")
        if faults_per_minute < 0:
            raise FaultError(
                f"faults_per_minute must be >= 0, got {faults_per_minute}"
            )
        if not targets:
            raise FaultError("need at least one fault target")
        if not (0.0 < min_magnitude <= max_magnitude <= 1.0):
            raise FaultError(
                f"magnitude range ({min_magnitude}, {max_magnitude}] invalid"
            )
        if not (0.0 < min_duration_s <= max_duration_s):
            raise FaultError(
                f"duration range [{min_duration_s}, {max_duration_s}] invalid"
            )
        kind_pool = tuple(kinds) if kinds else DEFAULT_KINDS
        if not kind_pool:
            raise FaultError("need at least one fault kind")
        count = int(round(faults_per_minute * duration_s / 60.0))
        rng = _derived_rng(seed, "fault-schedule")
        faults = []
        for _ in range(count):
            kind = kind_pool[int(rng.integers(len(kind_pool)))]
            target = targets[int(rng.integers(len(targets)))]
            at_s = float(rng.uniform(0.0, duration_s))
            window = float(rng.uniform(min_duration_s, max_duration_s))
            duration = max(min_duration_s, min(window, duration_s - at_s))
            magnitude = float(rng.uniform(min_magnitude, max_magnitude))
            faults.append(
                FaultSpec(
                    kind=kind,
                    target=str(target),
                    at_s=at_s,
                    duration_s=duration,
                    magnitude=magnitude,
                )
            )
        return cls(seed=seed, faults=tuple(faults))

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def for_target(self, machine_name: str) -> Tuple[FaultSpec, ...]:
        """Every fault that applies to ``machine_name``."""
        return tuple(f for f in self.faults if f.applies_to(machine_name))

    def active_at(self, t: float) -> Tuple[FaultSpec, ...]:
        """Every fault whose window covers instant ``t``."""
        return tuple(f for f in self.faults if f.active_at(t))

    def starting_in(self, t0: float, t1: float) -> Tuple[FaultSpec, ...]:
        """Faults whose start falls in ``[t0, t1)``."""
        return tuple(f for f in self.faults if t0 <= f.at_s < t1)

    def counts_by_kind(self) -> Dict[str, int]:
        """How many faults of each kind the schedule holds."""
        counts: Dict[str, int] = {}
        for f in self.faults:
            counts[f.kind.value] = counts.get(f.kind.value, 0) + 1
        return counts
