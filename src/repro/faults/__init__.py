"""Deterministic fault injection across the reproduction's three layers.

- :mod:`repro.faults.spec` — declarative, seeded fault schedules
  (same seed ⇒ identical schedule, bit for bit).
- :mod:`repro.faults.cluster` — mid-run machine degradation applied to a
  live :class:`~repro.cluster.cluster.Cluster` (core offlining, stuck
  DVFS caps, LLC way loss, NIC rate collapse, transient stalls).
- :mod:`repro.faults.tracing` — event drop/duplication/late delivery for
  exercising the tolerant trace-extraction paths.
- :mod:`repro.faults.executor` — worker crash/hang sabotage for the
  shared process pool, with the guarantee that executor-only faults
  leave experiment results bit-identical.
- :mod:`repro.faults.topology` — hierarchical failure domains
  (region/AZ/rack over fleet zones) and correlated storms that expand
  deterministically into the per-machine fault stream.
"""

from repro.faults.cluster import ClusterFaultInjector, FaultEvent
from repro.faults.executor import ExecutorFaultPlan, executor_chaos
from repro.faults.spec import (
    ALL_TARGETS,
    DEFAULT_KINDS,
    FaultKind,
    FaultSchedule,
    FaultSpec,
)
from repro.faults.topology import (
    DEFAULT_DOMAIN_KINDS,
    DOMAIN_FAULT_KINDS,
    DOMAIN_LEVELS,
    CorrelatedFaultSchedule,
    DomainEvent,
    DomainKind,
    FleetTopology,
    merge_schedules,
)
from repro.faults.tracing import TraceFaultConfig, corrupt_events

__all__ = [
    "ALL_TARGETS",
    "DEFAULT_DOMAIN_KINDS",
    "DEFAULT_KINDS",
    "DOMAIN_FAULT_KINDS",
    "DOMAIN_LEVELS",
    "ClusterFaultInjector",
    "CorrelatedFaultSchedule",
    "DomainEvent",
    "DomainKind",
    "ExecutorFaultPlan",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "FaultSpec",
    "FleetTopology",
    "TraceFaultConfig",
    "corrupt_events",
    "executor_chaos",
    "merge_schedules",
]
