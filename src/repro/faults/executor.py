"""Execution-layer fault injection: worker crash/hang sabotage plans.

An :class:`ExecutorFaultPlan` rides along inside every task envelope the
pool ships (see :func:`repro.parallel.pool.set_executor_fault_plan`).
Worker-side, the pool asks the plan what to do with each task; the
decision is a pure function of ``(plan.seed, task_key)`` — the task key
is a content hash of the task function and its arguments — so the same
plan sabotages the same tasks in every run, on any worker, in any order.

Three sabotage modes:

- ``crash`` — raise :class:`~repro.errors.InjectedWorkerFault` inside
  the task (a worker that dies with a clean traceback: OOM-killed
  library call, segfault caught by a wrapper). The parent sees one
  failed future, retries exactly once — counters match the plan.
- ``kill`` — ``os._exit`` the worker process (a hard crash). The whole
  ``ProcessPoolExecutor`` breaks; the parent must rebuild the pool and
  resubmit everything that was in flight.
- ``hang`` — sleep ``hang_s`` before running (a wedged worker). With a
  per-task timeout below ``hang_s`` the parent abandons the attempt and
  the pool is rebuilt; with a generous timeout the task completes
  normally. Either way the final result is unchanged.

Sabotage fires only on a task's *first* attempt (``attempt == 0``), so
retried work — including innocent tasks collaterally killed by a pool
break — always runs clean. Combined with task functions being pure,
this guarantees executor-only faults produce bit-identical results to a
fault-free run (asserted in ``tests/test_faults.py``).
"""

from __future__ import annotations

import contextlib
import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional

from repro.errors import FaultError


def _unit_draw(seed: int, task_key: str) -> float:
    """A uniform [0, 1) value that is a pure function of (seed, key)."""
    digest = hashlib.sha256(
        f"executor-fault:{seed}:{task_key}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class ExecutorFaultPlan:
    """A deterministic sabotage rule for pool tasks."""

    seed: int = 0
    #: Probability a task's first attempt raises an injected exception.
    crash_rate: float = 0.0
    #: Probability a task's first attempt hard-kills its worker process.
    kill_rate: float = 0.0
    #: Probability a task's first attempt sleeps ``hang_s`` first.
    hang_rate: float = 0.0
    #: How long a hang-sabotaged task sleeps before running.
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "kill_rate", "hang_rate"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise FaultError(f"{name} must be in [0, 1], got {value}")
        if self.crash_rate + self.kill_rate + self.hang_rate > 1.0 + 1e-12:
            raise FaultError(
                "crash_rate + kill_rate + hang_rate must be <= 1 "
                "(one draw decides the action)"
            )
        if self.hang_s <= 0:
            raise FaultError(f"hang_s must be > 0, got {self.hang_s}")

    def action_for(self, task_key: str, attempt: int) -> Optional[str]:
        """The sabotage for one task attempt: crash/kill/hang or None.

        Only first attempts are sabotaged — a retry (or a task re-run
        after a pool break) always executes clean, which is what makes
        the retry path converge and results bit-identical.
        """
        if attempt > 0:
            return None
        u = _unit_draw(self.seed, task_key)
        if u < self.crash_rate:
            return "crash"
        if u < self.crash_rate + self.kill_rate:
            return "kill"
        if u < self.crash_rate + self.kill_rate + self.hang_rate:
            return "hang"
        return None

    def expected_actions(self, task_keys: Iterable[str]) -> Dict[str, int]:
        """Parent-side prediction: sabotage counts over ``task_keys``.

        Because the decision is content-addressed, the parent can compute
        exactly which tasks will be sabotaged before submitting anything
        — the CI chaos gate uses this to assert the pool's retry
        counters match the injected faults.
        """
        counts = {"crash": 0, "kill": 0, "hang": 0}
        for key in task_keys:
            action = self.action_for(key, 0)
            if action is not None:
                counts[action] += 1
        return counts


@contextlib.contextmanager
def executor_chaos(plan: ExecutorFaultPlan) -> Iterator[ExecutorFaultPlan]:
    """Install ``plan`` on the shared pool for the duration of a block."""
    from repro.parallel.pool import set_executor_fault_plan

    set_executor_fault_plan(plan)
    try:
        yield plan
    finally:
        set_executor_fault_plan(None)
