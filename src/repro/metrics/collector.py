"""Per-machine runtime metric collection.

:class:`MachineMetrics` is the bookkeeping object the experiment harness
attaches to every (machine, Servpod) pair. It records one
:class:`TickSample` per control interval — everything Figure 17 plots —
and exposes the averages the evaluation figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.metrics.emu import EmuAccumulator, UtilisationAccumulator
from repro.metrics.percentile import WindowedTailTracker


@dataclass(frozen=True)
class TickSample:
    """One control-interval snapshot of a machine (Figure 17 rows)."""

    t: float
    load: float
    slack: float
    tail_ms: float
    cpu_utilisation: float
    membw_utilisation: float
    be_instances: int
    be_cores: int
    be_llc_ways: int
    be_rate: float
    action: str


@dataclass
class MachineMetrics:
    """Accumulated metrics for one machine over one experiment run."""

    machine_name: str
    servpod: str
    total_cores: float
    sla_ms: float
    tail_pct: float = 99.0
    samples: List[TickSample] = field(default_factory=list)
    emu: EmuAccumulator = field(default_factory=EmuAccumulator)
    utilisation: Optional[UtilisationAccumulator] = None
    tail: Optional[WindowedTailTracker] = None

    def __post_init__(self) -> None:
        if self.utilisation is None:
            self.utilisation = UtilisationAccumulator(self.total_cores)
        if self.tail is None:
            self.tail = WindowedTailTracker(self.tail_pct)

    def record_tick(
        self,
        t: float,
        dt: float,
        load: float,
        tail_ms: float,
        busy_cores: float,
        membw_fraction: float,
        be_instances: int,
        be_cores: int,
        be_llc_ways: int,
        be_rate: float,
        action: str,
    ) -> None:
        """Record one control interval's worth of observations."""
        slack = (self.sla_ms - tail_ms) / self.sla_ms
        self.emu.observe(dt, load, be_rate)
        assert self.utilisation is not None
        self.utilisation.observe(dt, busy_cores, membw_fraction)
        self.samples.append(
            TickSample(
                t=t,
                load=load,
                slack=slack,
                tail_ms=tail_ms,
                cpu_utilisation=min(1.0, busy_cores / self.total_cores),
                membw_utilisation=membw_fraction,
                be_instances=be_instances,
                be_cores=be_cores,
                be_llc_ways=be_llc_ways,
                be_rate=be_rate,
                action=action,
            )
        )

    def record_shared_tick(
        self, dt: float, sample: TickSample, busy_cores: float
    ) -> None:
        """Record one interval from a prebuilt (possibly shared) sample.

        Bit-identical to :meth:`record_tick` with the same field values:
        the EMU and utilisation folds read them straight off the sample.
        ``TickSample`` is frozen, so several collectors appending the
        same instance cannot observe each other. ``busy_cores`` rides
        alongside because the sample only keeps the capped utilisation
        ratio, and the utilisation integral needs the raw value.
        """
        self.emu.observe(dt, sample.load, sample.be_rate)
        assert self.utilisation is not None
        self.utilisation.observe(dt, busy_cores, sample.membw_utilisation)
        self.samples.append(sample)

    #: When set (by the experiment harness at teardown), BE throughput in
    #: terms of *successfully finished* work only — kills lose the
    #: in-flight unit, matching the paper's EMU definition.
    completed_be_throughput: Optional[float] = None

    # -- summaries ------------------------------------------------------------

    @property
    def avg_be_throughput(self) -> float:
        """Normalized BE throughput (completed work when available)."""
        if self.completed_be_throughput is not None:
            return self.completed_be_throughput
        return self.emu.be_throughput

    @property
    def avg_emu(self) -> float:
        """Time-averaged EMU."""
        return self.emu.emu

    @property
    def avg_cpu_utilisation(self) -> float:
        """Time-averaged CPU utilisation."""
        assert self.utilisation is not None
        return self.utilisation.cpu_utilisation

    @property
    def avg_membw_utilisation(self) -> float:
        """Time-averaged memory-bandwidth utilisation."""
        assert self.utilisation is not None
        return self.utilisation.membw_utilisation

    @property
    def worst_tail_ms(self) -> float:
        """Worst per-window tail latency (ms)."""
        assert self.tail is not None
        worst = self.tail.worst_tail
        if worst is None:
            worst = max((s.tail_ms for s in self.samples), default=0.0)
        return worst

    @property
    def sla_violations(self) -> int:
        """Control intervals whose tail exceeded the SLA."""
        return sum(1 for s in self.samples if s.tail_ms > self.sla_ms)
