"""A minimal timestamped series with the summaries experiments need."""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import ConfigurationError


class TimeSeries:
    """Append-only (time, value) series; times must be non-decreasing."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def append(self, t: float, value: float) -> None:
        """Record ``value`` at time ``t`` (>= the previous time)."""
        if self._times and t < self._times[-1]:
            raise ConfigurationError(
                f"{self.name or 'series'}: time went backwards "
                f"({self._times[-1]} -> {t})"
            )
        self._times.append(float(t))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> np.ndarray:
        """Timestamps as an array."""
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        """Values as an array."""
        return np.asarray(self._values)

    def mean(self) -> float:
        """Unweighted mean of the values."""
        if not self._values:
            raise ConfigurationError(f"{self.name or 'series'}: empty")
        return float(np.mean(self._values))

    def max(self) -> float:
        """Maximum value."""
        if not self._values:
            raise ConfigurationError(f"{self.name or 'series'}: empty")
        return float(np.max(self._values))

    def time_weighted_mean(self) -> float:
        """Mean weighted by holding time (value held until the next stamp)."""
        if len(self._times) < 2:
            return self.mean()
        times = self.times
        values = self.values
        dt = np.diff(times)
        return float(np.sum(values[:-1] * dt) / np.sum(dt))

    def last(self) -> float:
        """The most recent value."""
        if not self._values:
            raise ConfigurationError(f"{self.name or 'series'}: empty")
        return self._values[-1]
