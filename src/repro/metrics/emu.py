"""EMU — effective machine utilisation (§5.1).

``EMU = LC_throughput + BE_throughput`` where LC throughput is the
request load normalized to MaxLoad and BE throughput is the BE completion
rate normalized to a solo machine run. EMU may exceed 1 thanks to
resource sharing.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class EmuAccumulator:
    """Time-integrates LC load and BE progress into an average EMU."""

    def __init__(self) -> None:
        self._lc_integral = 0.0
        self._be_integral = 0.0
        self._elapsed = 0.0

    def observe(self, dt: float, lc_load: float, be_rate: float) -> None:
        """Record ``dt`` seconds at the given LC load and total BE rate."""
        if dt < 0:
            raise ConfigurationError(f"negative interval {dt}")
        if lc_load < 0 or be_rate < 0:
            raise ConfigurationError(
                f"negative throughput lc={lc_load} be={be_rate}"
            )
        self._lc_integral += lc_load * dt
        self._be_integral += be_rate * dt
        self._elapsed += dt

    @property
    def elapsed(self) -> float:
        """Total observed seconds."""
        return self._elapsed

    @property
    def lc_throughput(self) -> float:
        """Time-averaged LC throughput (load fraction)."""
        return self._lc_integral / self._elapsed if self._elapsed > 0 else 0.0

    @property
    def be_throughput(self) -> float:
        """Time-averaged normalized BE throughput."""
        return self._be_integral / self._elapsed if self._elapsed > 0 else 0.0

    @property
    def emu(self) -> float:
        """Average EMU over the observation period."""
        return self.lc_throughput + self.be_throughput


class UtilisationAccumulator:
    """Time-averaged CPU and memory-bandwidth utilisation of a machine."""

    def __init__(self, total_cores: float, total_membw_fraction: float = 1.0) -> None:
        if total_cores <= 0:
            raise ConfigurationError(f"total_cores must be positive, got {total_cores}")
        self.total_cores = float(total_cores)
        self.total_membw = float(total_membw_fraction)
        self._cpu_integral = 0.0
        self._membw_integral = 0.0
        self._elapsed = 0.0

    def observe(self, dt: float, busy_cores: float, membw_fraction: float) -> None:
        """Record ``dt`` seconds of resource usage."""
        if dt < 0:
            raise ConfigurationError(f"negative interval {dt}")
        self._cpu_integral += min(busy_cores, self.total_cores) * dt
        self._membw_integral += min(membw_fraction, self.total_membw) * dt
        self._elapsed += dt

    @property
    def cpu_utilisation(self) -> float:
        """Average busy-core fraction in [0, 1]."""
        if self._elapsed <= 0:
            return 0.0
        return self._cpu_integral / (self.total_cores * self._elapsed)

    @property
    def membw_utilisation(self) -> float:
        """Average DRAM-bandwidth fraction in [0, 1]."""
        if self._elapsed <= 0:
            return 0.0
        return self._membw_integral / (self.total_membw * self._elapsed)
