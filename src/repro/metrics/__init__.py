"""Measurement utilities: percentiles, time series, EMU and collectors.

- :mod:`repro.metrics.percentile` — tail-latency estimation (windowed
  percentiles, reservoir sampling for long streams),
- :mod:`repro.metrics.timeseries` — timestamped series with summaries,
- :mod:`repro.metrics.emu` — the paper's EMU (effective machine
  utilisation) metric and resource-utilisation accumulators,
- :mod:`repro.metrics.collector` — per-machine runtime metric collection
  used by the experiment harness.
"""

from repro.metrics.percentile import ReservoirSampler, WindowedTailTracker, percentile
from repro.metrics.timeseries import TimeSeries
from repro.metrics.emu import EmuAccumulator, UtilisationAccumulator
from repro.metrics.collector import MachineMetrics, TickSample

__all__ = [
    "ReservoirSampler",
    "WindowedTailTracker",
    "percentile",
    "TimeSeries",
    "EmuAccumulator",
    "UtilisationAccumulator",
    "MachineMetrics",
    "TickSample",
]
