"""Measurement utilities: percentiles, time series, EMU and collectors.

- :mod:`repro.metrics.percentile` — tail-latency estimation (windowed
  percentiles, fixed-bin streaming histograms, reservoir sampling for
  long streams),
- :mod:`repro.metrics.streaming` — single-pass Welford/Chan moment
  accumulators,
- :mod:`repro.metrics.timeseries` — timestamped series with summaries,
- :mod:`repro.metrics.emu` — the paper's EMU (effective machine
  utilisation) metric and resource-utilisation accumulators,
- :mod:`repro.metrics.collector` — per-machine runtime metric collection
  used by the experiment harness.
"""

from repro.metrics.percentile import (
    HistogramTailTracker,
    ReservoirSampler,
    WindowedTailTracker,
    percentile,
)
from repro.metrics.streaming import WelfordAccumulator
from repro.metrics.timeseries import TimeSeries
from repro.metrics.emu import EmuAccumulator, UtilisationAccumulator
from repro.metrics.collector import MachineMetrics, TickSample

__all__ = [
    "HistogramTailTracker",
    "ReservoirSampler",
    "WelfordAccumulator",
    "WindowedTailTracker",
    "percentile",
    "TimeSeries",
    "EmuAccumulator",
    "UtilisationAccumulator",
    "MachineMetrics",
    "TickSample",
]
