"""Tail-latency estimation.

The paper tracks the 99th percentile latency per second (SLA definition,
§5.1) and feeds a windowed tail estimate to the runtime controller.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


def percentile(samples: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile of ``samples`` (must be non-empty)."""
    if len(samples) == 0:
        raise ConfigurationError("cannot take a percentile of zero samples")
    if not (0.0 <= pct <= 100.0):
        raise ConfigurationError(f"percentile must be in [0,100], got {pct!r}")
    return float(np.percentile(np.asarray(samples, dtype=float), pct))


class ReservoirSampler:
    """Fixed-size uniform reservoir over an unbounded sample stream."""

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._rng = np.random.default_rng(seed)
        self._store: List[float] = []
        self._seen = 0

    def add(self, value: float) -> None:
        """Offer one sample to the reservoir."""
        self._seen += 1
        if len(self._store) < self.capacity:
            self._store.append(float(value))
        else:
            j = int(self._rng.integers(0, self._seen))
            if j < self.capacity:
                self._store[j] = float(value)

    def extend(self, values: Iterable[float]) -> None:
        """Offer many samples."""
        for value in values:
            self.add(value)

    @property
    def seen(self) -> int:
        """Total samples offered."""
        return self._seen

    def percentile(self, pct: float) -> float:
        """Percentile estimate over the retained sample."""
        return percentile(self._store, pct)

    def __len__(self) -> int:
        return len(self._store)


class WindowedTailTracker:
    """Per-window tail percentile with worst-case retention.

    Mirrors how the paper defines SLAs: record the tail percentile per
    window (per second in the paper) and keep the worst one.
    """

    def __init__(self, pct: float = 99.0) -> None:
        if not (0.0 < pct < 100.0):
            raise ConfigurationError(f"tail percentile must be in (0,100), got {pct}")
        self.pct = float(pct)
        self._window: List[float] = []
        self._per_window: List[float] = []
        self._worst: Optional[float] = None

    def add_samples(self, values: Iterable[float]) -> None:
        """Add latency samples to the current window."""
        self._window.extend(float(v) for v in values)

    def roll_window(self) -> Optional[float]:
        """Close the current window; returns its tail (None if empty)."""
        if not self._window:
            return None
        tail = percentile(self._window, self.pct)
        self._per_window.append(tail)
        if self._worst is None or tail > self._worst:
            self._worst = tail
        self._window.clear()
        return tail

    @property
    def current_tail(self) -> Optional[float]:
        """Tail of the most recently closed window."""
        return self._per_window[-1] if self._per_window else None

    @property
    def worst_tail(self) -> Optional[float]:
        """Worst per-window tail seen so far."""
        return self._worst

    @property
    def window_tails(self) -> List[float]:
        """Tails of every closed window, in order."""
        return list(self._per_window)

    def violation_count(self, sla: float) -> int:
        """Number of closed windows whose tail exceeded ``sla``."""
        return sum(1 for tail in self._per_window if tail > sla)
