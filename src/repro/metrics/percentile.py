"""Tail-latency estimation.

The paper tracks the 99th percentile latency per second (SLA definition,
§5.1) and feeds a windowed tail estimate to the runtime controller.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def percentile(samples: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile of ``samples`` (must be non-empty)."""
    if len(samples) == 0:
        raise ConfigurationError("cannot take a percentile of zero samples")
    if not (0.0 <= pct <= 100.0):
        raise ConfigurationError(f"percentile must be in [0,100], got {pct!r}")
    return float(np.percentile(np.asarray(samples, dtype=float), pct))


class ReservoirSampler:
    """Fixed-size uniform reservoir over an unbounded sample stream."""

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._rng = np.random.default_rng(seed)
        self._store: List[float] = []
        self._seen = 0

    def add(self, value: float) -> None:
        """Offer one sample to the reservoir."""
        self._seen += 1
        if len(self._store) < self.capacity:
            self._store.append(float(value))
        else:
            j = int(self._rng.integers(0, self._seen))
            if j < self.capacity:
                self._store[j] = float(value)

    def extend(self, values: Iterable[float]) -> None:
        """Offer many samples with one batched RNG draw.

        The replacement indices for the whole batch come from a single
        ``integers(..., size=n)`` call, so the per-sample Python/RNG
        overhead of :meth:`add` is paid once per batch. The acceptance
        probabilities match the sequential algorithm exactly (sample
        ``i`` is kept with probability ``capacity / seen_i``); only the
        consumed RNG stream differs from an :meth:`add` loop.
        """
        arr = np.asarray(
            values if isinstance(values, np.ndarray) else list(values), dtype=float
        )
        n = int(arr.size)
        if n == 0:
            return
        fill = min(self.capacity - len(self._store), n)
        if fill > 0:
            self._store.extend(float(v) for v in arr[:fill])
            self._seen += fill
        rest = arr[fill:]
        if rest.size == 0:
            return
        # seen counts *after* each remaining sample arrives.
        highs = self._seen + 1 + np.arange(rest.size, dtype=np.int64)
        slots = self._rng.integers(0, highs, size=rest.size)
        self._seen += int(rest.size)
        for slot, value in zip(slots, rest):
            if slot < self.capacity:
                self._store[int(slot)] = float(value)

    @property
    def seen(self) -> int:
        """Total samples offered."""
        return self._seen

    def percentile(self, pct: float) -> float:
        """Percentile estimate over the retained sample."""
        return percentile(self._store, pct)

    def __len__(self) -> int:
        return len(self._store)


class WindowedTailTracker:
    """Per-window tail percentile with worst-case retention.

    Mirrors how the paper defines SLAs: record the tail percentile per
    window (per second in the paper) and keep the worst one.
    """

    def __init__(self, pct: float = 99.0) -> None:
        if not (0.0 < pct < 100.0):
            raise ConfigurationError(f"tail percentile must be in (0,100), got {pct}")
        self.pct = float(pct)
        self._window: List[float] = []
        self._per_window: List[float] = []
        self._worst: Optional[float] = None

    def add_samples(self, values: Iterable[float]) -> None:
        """Add latency samples to the current window.

        Bulk path: one ``asarray`` + ``tolist`` round-trip replaces the
        per-value ``float()`` loop for array inputs (float64 round-trips
        exactly, so the stored samples are unchanged).
        """
        if not isinstance(values, (list, tuple, np.ndarray)):
            values = list(values)
        self._window.extend(np.asarray(values, dtype=float).tolist())

    def roll_window(self) -> Optional[float]:
        """Close the current window; returns its tail (None if empty)."""
        if not self._window:
            return None
        tail = percentile(self._window, self.pct)
        self._window.clear()
        self.record_window_tail(tail)
        return tail

    def record_window_tail(self, tail: float) -> None:
        """Record an externally computed window tail; O(1).

        The co-location loop computes one tail per control window anyway
        (the controller input); recording it directly avoids buffering
        and re-sorting the same samples once per machine.
        """
        tail = float(tail)
        self._per_window.append(tail)
        if self._worst is None or tail > self._worst:
            self._worst = tail

    def record_window_tails(self, tails: Sequence[float]) -> None:
        """Record many externally computed window tails at once.

        One list-extend plus one ``max`` replaces a python call per
        window per machine when the fleet kernel replays a whole run's
        window closes at finalize time; the stored state is identical
        to a :meth:`record_window_tail` loop.
        """
        if not tails:
            return
        values = [float(tail) for tail in tails]
        self._per_window.extend(values)
        top = max(values)
        if self._worst is None or top > self._worst:
            self._worst = top

    @property
    def current_tail(self) -> Optional[float]:
        """Tail of the most recently closed window."""
        return self._per_window[-1] if self._per_window else None

    @property
    def worst_tail(self) -> Optional[float]:
        """Worst per-window tail seen so far."""
        return self._worst

    @property
    def window_tails(self) -> Tuple[float, ...]:
        """Tails of every closed window, in order (immutable snapshot).

        Returned as a tuple so repeated property reads do not copy a
        growing list on every access.
        """
        return tuple(self._per_window)

    def violation_count(self, sla: float) -> int:
        """Number of closed windows whose tail exceeded ``sla``."""
        return sum(1 for tail in self._per_window if tail > sla)


class HistogramTailTracker:
    """Per-window tail estimation on a fixed log-spaced histogram.

    A drop-in alternative to :class:`WindowedTailTracker` for streaming
    contexts: inserts are O(1) (compute a bin index arithmetically, no
    sort, no sample retention) and closing a window is O(bins). The
    estimate's *relative* error is bounded by the bin geometry::

        bound = sqrt(hi_ms / lo_ms) ** (1 / bins) - 1

    (about 1.6% with the defaults), because a window tail is reported as
    the geometric midpoint of the bin holding the target rank. Samples
    below ``lo_ms`` clamp into the first bin; samples above ``hi_ms``
    land in an overflow bucket whose quantile reports the exact window
    maximum seen.
    """

    def __init__(
        self,
        pct: float = 99.0,
        lo_ms: float = 1e-2,
        hi_ms: float = 1e5,
        bins: int = 512,
    ) -> None:
        if not (0.0 < pct < 100.0):
            raise ConfigurationError(f"tail percentile must be in (0,100), got {pct}")
        if not (0.0 < lo_ms < hi_ms):
            raise ConfigurationError(
                f"need 0 < lo_ms < hi_ms, got lo={lo_ms!r} hi={hi_ms!r}"
            )
        if bins < 2:
            raise ConfigurationError(f"need at least 2 bins, got {bins}")
        self.pct = float(pct)
        self.lo_ms = float(lo_ms)
        self.hi_ms = float(hi_ms)
        self.bins = int(bins)
        self._log_lo = math.log(self.lo_ms)
        self._log_step = (math.log(self.hi_ms) - self._log_lo) / self.bins
        # bins regular buckets + one overflow bucket at the end.
        self._counts = np.zeros(self.bins + 1, dtype=np.int64)
        self._window_n = 0
        self._window_max = 0.0
        self._per_window: List[float] = []
        self._worst: Optional[float] = None

    @property
    def error_bound(self) -> float:
        """Worst-case relative error of an in-range window tail."""
        return math.exp(self._log_step / 2.0) - 1.0

    def _index(self, value: float) -> int:
        if value <= self.lo_ms:
            return 0
        if value >= self.hi_ms:
            return self.bins  # overflow bucket
        return min(self.bins - 1, int((math.log(value) - self._log_lo) / self._log_step))

    def add(self, value: float) -> None:
        """Insert one latency sample into the current window; O(1)."""
        value = float(value)
        self._counts[self._index(value)] += 1
        self._window_n += 1
        if value > self._window_max:
            self._window_max = value

    def add_samples(self, values: Iterable[float]) -> None:
        """Insert a batch of samples (vectorised binning)."""
        arr = np.asarray(
            values if isinstance(values, np.ndarray) else list(values), dtype=float
        )
        n = int(arr.size)
        if n == 0:
            return
        clipped = np.clip(arr, self.lo_ms, self.hi_ms)
        idx = ((np.log(clipped) - self._log_lo) / self._log_step).astype(np.int64)
        np.clip(idx, 0, self.bins - 1, out=idx)
        idx[arr >= self.hi_ms] = self.bins
        self._counts += np.bincount(idx, minlength=self.bins + 1)
        self._window_n += n
        top = float(arr.max())
        if top > self._window_max:
            self._window_max = top

    def _window_quantile(self) -> float:
        # Nearest-rank within the histogram: the smallest bin whose
        # cumulative count covers pct% of the window.
        rank = max(1, int(math.ceil(self.pct / 100.0 * self._window_n)))
        cumulative = np.cumsum(self._counts)
        bin_idx = int(np.searchsorted(cumulative, rank))
        if bin_idx >= self.bins:  # overflow bucket
            return self._window_max
        log_left = self._log_lo + bin_idx * self._log_step
        return math.exp(log_left + self._log_step / 2.0)

    def roll_window(self) -> Optional[float]:
        """Close the current window; returns its estimated tail."""
        if self._window_n == 0:
            return None
        tail = self._window_quantile()
        self.record_window_tail(tail)
        self._counts.fill(0)
        self._window_n = 0
        self._window_max = 0.0
        return tail

    def record_window_tail(self, tail: float) -> None:
        """Record an externally computed window tail; O(1)."""
        tail = float(tail)
        self._per_window.append(tail)
        if self._worst is None or tail > self._worst:
            self._worst = tail

    @property
    def current_tail(self) -> Optional[float]:
        """Tail of the most recently closed window."""
        return self._per_window[-1] if self._per_window else None

    @property
    def worst_tail(self) -> Optional[float]:
        """Worst per-window tail seen so far."""
        return self._worst

    @property
    def window_tails(self) -> Tuple[float, ...]:
        """Tails of every closed window, in order."""
        return tuple(self._per_window)

    def violation_count(self, sla: float) -> int:
        """Number of closed windows whose tail exceeded ``sla``."""
        return sum(1 for tail in self._per_window if tail > sla)
