"""Streaming (single-pass, O(1)-memory) moment accumulators.

The profiler and tracer summarise hundreds of thousands of per-request
sojourns; recomputing mean/variance with a two-pass formula over stored
lists is the hot path the parallel grid engine avoids. Welford's update
is numerically stable and needs one pass; Chan et al.'s pairwise merge
lets per-worker accumulators combine without losing precision, which is
what makes the statistics shardable across the process pool.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np


class WelfordAccumulator:
    """Welford/Chan streaming mean and variance.

    ``add`` is the classic O(1) single-sample update; ``add_many``
    ingests a batch with vectorised numpy moments and merges them in one
    Chan-style combine, so large batches cost one pass instead of a
    Python-level loop.
    """

    __slots__ = ("_count", "_mean", "_m2")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Ingest one sample (Welford's update)."""
        self._count += 1
        delta = float(value) - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (float(value) - self._mean)

    def add_many(self, values: Iterable[float]) -> None:
        """Ingest a batch of samples in one vectorised pass."""
        arr = np.asarray(
            values if isinstance(values, np.ndarray) else list(values), dtype=float
        )
        n = int(arr.size)
        if n == 0:
            return
        if n == 1:
            self.add(float(arr[0]))
            return
        batch_mean = float(arr.mean())
        batch_m2 = float(((arr - batch_mean) ** 2).sum())
        self._merge_moments(n, batch_mean, batch_m2)

    def merge(self, other: "WelfordAccumulator") -> None:
        """Fold another accumulator into this one (Chan's combine)."""
        self._merge_moments(other._count, other._mean, other._m2)

    def _merge_moments(self, n: int, mean: float, m2: float) -> None:
        if n == 0:
            return
        total = self._count + n
        delta = mean - self._mean
        self._mean += delta * n / total
        self._m2 += m2 + delta * delta * self._count * n / total
        self._count = total

    @property
    def count(self) -> int:
        """Samples ingested so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Running mean (0.0 before any sample)."""
        return self._mean

    def variance(self, ddof: int = 1) -> float:
        """Running variance; 0.0 when fewer than ``ddof + 1`` samples."""
        if self._count <= ddof:
            return 0.0
        return self._m2 / (self._count - ddof)

    def std(self, ddof: int = 1) -> float:
        """Running standard deviation."""
        return math.sqrt(self.variance(ddof))

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return (
            f"WelfordAccumulator(count={self._count}, mean={self._mean:.6g}, "
            f"std={self.std():.6g})"
        )
