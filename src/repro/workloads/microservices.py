"""SNMS — the social-network microservice benchmark (DeathStarBench).

The paper's §5.3.2 evaluates Rhythm on SNMS, an LC service of 30 unique
microservices communicating over RPC, divided into three Servpods:

- ``frontend`` — 3 microservices (nginx-thrift, media-frontend, jaeger),
- ``userservice`` — 14 microservices for user operations,
- ``mediaservice`` — 13 microservices for media processing.

Each Servpod gets 20 cores and 64 GB (paper §5.3.2). SNMS ships its own
distributed tracer (jaeger), so Rhythm's request tracer is bypassed and
sojourn times come from :class:`repro.tracing.jaeger.JaegerTracer`.

Sensitivities and growth shapes are set so the derived contributions
order as in the paper: userservice (0.565) > mediaservice (0.295) >
frontend (0.14).
"""

from __future__ import annotations

from typing import Tuple

from repro.interference.sensitivity import SensitivityVector
from repro.workloads.catalog import calibrate_to_sla
from repro.workloads.spec import (
    CallNode,
    ComponentSpec,
    RequestType,
    ServiceSpec,
    ServpodSpec,
    chain,
)

#: (name, base_ms, sigma0) for the 3 frontend microservices.
_FRONTEND = (
    ("nginx-thrift", 4.0, 0.18),
    ("media-frontend", 2.5, 0.16),
    ("jaeger", 0.8, 0.12),
)

#: (name, base_ms, sigma0) for the 14 user-operation microservices.
_USERSERVICE = (
    ("user-service", 6.0, 0.30),
    ("social-graph-service", 8.0, 0.34),
    ("user-timeline-service", 9.0, 0.36),
    ("home-timeline-service", 10.0, 0.38),
    ("compose-post-service", 7.0, 0.32),
    ("post-storage-service", 11.0, 0.40),
    ("user-mention-service", 3.0, 0.24),
    ("url-shorten-service", 2.0, 0.22),
    ("unique-id-service", 1.0, 0.18),
    ("text-service", 3.5, 0.26),
    ("user-memcached", 1.5, 0.20),
    ("user-mongodb", 12.0, 0.42),
    ("social-graph-redis", 2.0, 0.24),
    ("social-graph-mongodb", 10.0, 0.40),
)

#: (name, base_ms, sigma0) for the 13 media-processing microservices.
_MEDIASERVICE = (
    ("media-service", 5.0, 0.26),
    ("media-filter-service", 6.0, 0.28),
    ("image-resize-service", 8.0, 0.30),
    ("video-transcode-service", 12.0, 0.34),
    ("media-memcached", 1.5, 0.18),
    ("media-mongodb", 9.0, 0.32),
    ("thumbnail-service", 4.0, 0.24),
    ("media-metadata-service", 3.0, 0.22),
    ("cdn-cache-service", 2.0, 0.20),
    ("media-storage-service", 7.0, 0.30),
    ("watermark-service", 3.5, 0.22),
    ("media-encoder", 6.5, 0.28),
    ("media-frontend-cache", 1.2, 0.16),
)


def _components(
    table: Tuple[Tuple[str, float, float], ...],
    sensitivity: SensitivityVector,
    cov_knee: float,
    sigma_growth: float,
    sat_growth: float,
    cores_total: int,
    membw_peak: float,
    net_peak: float,
    llc_total: float,
) -> Tuple[ComponentSpec, ...]:
    """Expand a (name, base, sigma) table into ComponentSpecs.

    Per-Servpod resource budgets are split evenly over the member
    microservices; latency-shape parameters are shared within a Servpod
    (they are Servpod-level properties in the paper's analysis).
    """
    n = len(table)
    cores_each = max(1, round(cores_total / n))
    return tuple(
        ComponentSpec(
            name=name,
            base_ms=base_ms,
            sigma0=sigma0,
            lin_growth=0.5,
            sat_growth=sat_growth,
            sigma_growth=1.5,
            cov_knee=cov_knee,
            sensitivity=sensitivity,
            cores=cores_each,
            peak_core_util=0.6,
            peak_membw_fraction=membw_peak / n,
            peak_net_gbps=net_peak / n,
            llc_fraction=llc_total / n,
        )
        for name, base_ms, sigma0 in table
    )


def snms_service(calibrated: bool = True) -> ServiceSpec:
    """Build the SNMS microservice benchmark spec (Table 1, last row)."""
    frontend_sens = SensitivityVector(cpu=0.15, llc=0.25, membw=0.35, net=0.80, freq=0.60)
    user_sens = SensitivityVector(cpu=0.50, llc=1.60, membw=2.10, net=0.70, freq=0.80)
    media_sens = SensitivityVector(cpu=0.60, llc=0.90, membw=1.20, net=0.60, freq=1.00)

    frontend = ServpodSpec(
        "frontend",
        _components(
            _FRONTEND, frontend_sens,
            cov_knee=0.85, sigma_growth=2.5, sat_growth=0.10,
            cores_total=20, membw_peak=0.10, net_peak=3.0, llc_total=0.15,
        ),
        llc_ways=8,
        memory_gb=64.0,
    )
    userservice = ServpodSpec(
        "userservice",
        _components(
            _USERSERVICE, user_sens,
            cov_knee=0.67, sigma_growth=2.0, sat_growth=0.60,
            cores_total=20, membw_peak=0.30, net_peak=1.5, llc_total=0.45,
        ),
        llc_ways=10,
        memory_gb=64.0,
    )
    mediaservice = ServpodSpec(
        "mediaservice",
        _components(
            _MEDIASERVICE, media_sens,
            cov_knee=0.75, sigma_growth=2.0, sat_growth=0.30,
            cores_total=20, membw_peak=0.22, net_peak=1.2, llc_total=0.30,
        ),
        llc_ways=10,
        memory_gb=64.0,
    )
    spec = ServiceSpec(
        name="SNMS",
        domain="Microservice (DeathStarBench social network)",
        servpods=(userservice, frontend, mediaservice),
        request_types=(
            RequestType(
                name="compose-post",
                weight=0.4,
                root=CallNode(
                    servpod="frontend",
                    children=(CallNode("userservice"), CallNode("mediaservice")),
                    parallel=True,
                ),
            ),
            RequestType(
                name="read-timeline",
                weight=0.6,
                root=chain("frontend", "userservice"),
            ),
        ),
        max_load_qps=1500.0,
        sla_ms=380.0,
        containers=30,
    )
    return calibrate_to_sla(spec) if calibrated else spec
