"""Specifications for LC components, Servpods, services and call trees.

The structure mirrors §3.1 of the paper: an LC workload is a DAG of
components; components scheduled onto the same machine form a Servpod;
the number of Servpods equals the number of machines the service uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.interference.sensitivity import SensitivityVector


@dataclass(frozen=True)
class ComponentSpec:
    """One LC service component (a process/container, e.g. ``mysql``).

    Latency model parameters (all times in milliseconds)
    ----------------------------------------------------
    The solo-run median sojourn time at load ``u`` (fraction of MaxLoad) is::

        median(u) = base_ms * (1 + lin_growth * u + sat_growth * u**sat_power / (1.25 - u))

    and the lognormal sigma follows a knee curve::

        ramp(u)  = max(0, (u - cov_knee) / (1 - cov_knee))
        sigma(u) = sigma0 * (1 + sigma_growth * ramp(u)**2)

    ``lin_growth`` covers gentle queueing below the knee; the saturating
    term produces the sharp rise near MaxLoad visible in Figure 6a. The
    sigma knee reproduces Figure 8's CoV-vs-load shape — flat fluctuation
    until ``cov_knee`` and a steep rise after — which places the derived
    loadlimit (first CoV point above the sweep average) at approximately
    ``cov_knee + (1 - cov_knee)**1.5 / sqrt(3)`` for a uniform load grid.

    Resource-usage parameters (solo run, as a function of load)
    -----------------------------------------------------------
    ``cores`` is the container's core reservation; ``peak_core_util``,
    ``peak_membw_fraction``, ``peak_net_gbps`` and ``llc_fraction`` give
    the component's machine-level resource usage at 100% load (scaled
    linearly with load at runtime).
    """

    name: str
    base_ms: float
    sigma0: float = 0.25
    lin_growth: float = 0.5
    sat_growth: float = 0.15
    sat_power: float = 2.0
    sigma_growth: float = 2.0
    cov_knee: float = 0.6
    sensitivity: SensitivityVector = field(default_factory=SensitivityVector)
    cores: int = 8
    peak_core_util: float = 0.6
    peak_membw_fraction: float = 0.15
    peak_net_gbps: float = 1.0
    llc_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.base_ms <= 0:
            raise ConfigurationError(f"{self.name}: base_ms must be > 0")
        if self.sigma0 <= 0:
            raise ConfigurationError(f"{self.name}: sigma0 must be > 0")
        if self.cores <= 0:
            raise ConfigurationError(f"{self.name}: cores must be > 0")
        for attr in ("lin_growth", "sat_growth", "sigma_growth"):
            if getattr(self, attr) < 0:
                raise ConfigurationError(f"{self.name}: {attr} must be >= 0")
        if not (0.0 <= self.cov_knee < 1.0):
            raise ConfigurationError(f"{self.name}: cov_knee must be in [0,1)")
        if not (0 <= self.peak_core_util <= 1) or not (0 <= self.peak_membw_fraction <= 1):
            raise ConfigurationError(f"{self.name}: utilisation peaks must be in [0,1]")


@dataclass(frozen=True)
class ServpodSpec:
    """Components of one service deployed together on one machine."""

    name: str
    components: Tuple[ComponentSpec, ...]
    #: LLC ways reserved for the Servpod (CAT partition).
    llc_ways: int = 10
    #: Memory reserved for the Servpod in GiB.
    memory_gb: float = 64.0

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigurationError(f"Servpod {self.name!r} has no components")
        names = [c.name for c in self.components]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"Servpod {self.name!r}: duplicate components")

    @property
    def cores(self) -> int:
        """Total core reservation of the Servpod's containers."""
        return sum(c.cores for c in self.components)

    def component(self, name: str) -> ComponentSpec:
        """Look up a member component by name."""
        for comp in self.components:
            if comp.name == name:
                return comp
        raise ConfigurationError(f"Servpod {self.name!r} has no component {name!r}")


@dataclass(frozen=True)
class CallNode:
    """A node of a request call tree, resolved at Servpod granularity.

    ``servpod`` is the Servpod handling this hop. Children are the
    downstream synchronous calls it makes before replying; they execute
    sequentially when ``parallel`` is ``False`` and concurrently (fan-out)
    when ``True``. End-to-end latency is therefore::

        t(node) = sojourn(node) + combine(t(child) for child in children)

    with ``combine`` = sum (sequential) or max (parallel).
    """

    servpod: str
    children: Tuple["CallNode", ...] = ()
    parallel: bool = False

    def servpods(self) -> List[str]:
        """Every Servpod in this subtree, depth-first, with duplicates."""
        out = [self.servpod]
        for child in self.children:
            out.extend(child.servpods())
        return out


def chain(*servpods: str) -> CallNode:
    """A nested synchronous chain: ``chain('a','b','c')`` = a→b→c."""
    if not servpods:
        raise ConfigurationError("chain() needs at least one servpod")
    node: Optional[CallNode] = None
    for name in reversed(servpods):
        node = CallNode(servpod=name, children=(node,) if node else ())
    assert node is not None
    return node


def fanout(root: str, *branches: CallNode) -> CallNode:
    """A parallel fan-out from ``root`` to each branch subtree."""
    if not branches:
        raise ConfigurationError("fanout() needs at least one branch")
    return CallNode(servpod=root, children=tuple(branches), parallel=True)


@dataclass(frozen=True)
class RequestType:
    """One request class: a call tree plus its traffic share."""

    name: str
    weight: float
    root: CallNode

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(f"request type {self.name!r}: weight must be > 0")


@dataclass(frozen=True)
class ServiceSpec:
    """A complete LC service (one row of Table 1).

    Attributes
    ----------
    name / domain:
        Identity and description.
    servpods:
        The service's Servpods (one machine each).
    request_types:
        Request classes with traffic weights; weights are normalized.
    max_load_qps:
        MaxLoad from Table 1 — the maximum allowable request rate.
    sla_ms:
        The 99th-percentile latency target from Table 1.
    containers:
        Container count from Table 1 (informational).
    tail_percentile:
        Which percentile the SLA refers to (99 by default).
    """

    name: str
    domain: str
    servpods: Tuple[ServpodSpec, ...]
    request_types: Tuple[RequestType, ...]
    max_load_qps: float
    sla_ms: float
    containers: int = 0
    tail_percentile: float = 99.0

    def __post_init__(self) -> None:
        if not self.servpods:
            raise ConfigurationError(f"service {self.name!r} has no Servpods")
        if not self.request_types:
            raise ConfigurationError(f"service {self.name!r} has no request types")
        if self.max_load_qps <= 0 or self.sla_ms <= 0:
            raise ConfigurationError(
                f"service {self.name!r}: MaxLoad and SLA must be positive"
            )
        if not (50.0 <= self.tail_percentile < 100.0):
            raise ConfigurationError(
                f"service {self.name!r}: tail percentile {self.tail_percentile}"
            )
        pod_names = {pod.name for pod in self.servpods}
        if len(pod_names) != len(self.servpods):
            raise ConfigurationError(f"service {self.name!r}: duplicate Servpods")
        for rtype in self.request_types:
            for pod in rtype.root.servpods():
                if pod not in pod_names:
                    raise ConfigurationError(
                        f"service {self.name!r}: request {rtype.name!r} visits "
                        f"unknown Servpod {pod!r}"
                    )

    @property
    def servpod_names(self) -> List[str]:
        """Servpod names in declaration order."""
        return [pod.name for pod in self.servpods]

    def servpod(self, name: str) -> ServpodSpec:
        """Look up a Servpod by name."""
        for pod in self.servpods:
            if pod.name == name:
                return pod
        raise ConfigurationError(f"service {self.name!r} has no Servpod {name!r}")

    def normalized_weights(self) -> Dict[str, float]:
        """Request-type weights normalized to sum to 1."""
        total = sum(rt.weight for rt in self.request_types)
        return {rt.name: rt.weight / total for rt in self.request_types}
