"""The LC service catalog (Table 1 of the paper).

Five containerized services, each with the paper's Servpod decomposition,
MaxLoad and SLA. Latency-model constants are calibrated in two steps:

1. *Shape constants* (growth exponents, sigma curves, sensitivity
   vectors) are chosen so the paper's qualitative structure holds:
   Figure 2's per-component interference asymmetries, Figure 6's
   mean/CoV-vs-load curves, and Figure 8's loadlimit crossings
   (MySQL ≈ 0.76, Tomcat ≈ 0.87, Slave ≈ 0.91, Zookeeper ≈ 0.93,
   Memcached ≈ 0.87, Kibana ≈ 0.90).
2. *Absolute scale* is fixed by :func:`calibrate_to_sla`, which rescales
   every component's ``base_ms`` so the solo-run p99 at MaxLoad lands
   just under the SLA — mirroring how the paper defines each SLA (worst
   p99 of a 30-minute solo run at MaxLoad).

The ``cov_knee`` parameter controls where a Servpod's CoV-vs-load curve
crosses its own average, which is exactly the paper's loadlimit rule: for
the knee sigma curve and a uniform load grid the crossing sits near
``knee + (1 - knee)**1.5 / sqrt(3)``, so knee=0.64 → ~0.76 (MySQL),
knee=0.83 → ~0.87 (Tomcat), knee=0.89 → ~0.91 (Slave), knee=0.915 →
~0.93 (Zookeeper).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List

import numpy as np

from repro.errors import ConfigurationError
from repro.interference.sensitivity import SensitivityVector
from repro.sim.rng import RandomStreams
from repro.workloads.spec import (
    CallNode,
    ComponentSpec,
    RequestType,
    ServiceSpec,
    ServpodSpec,
    chain,
    fanout,
)

#: Calibration target: solo p99 at MaxLoad as a fraction of the SLA.
SLA_CALIBRATION_MARGIN = 0.93
#: Requests sampled per service during SLA calibration.
_CALIBRATION_SAMPLES = 6000
_CALIBRATION_SEED = 20200427  # EuroSys'20 presentation date


def calibrate_to_sla(spec: ServiceSpec, margin: float = SLA_CALIBRATION_MARGIN) -> ServiceSpec:
    """Rescale every ``base_ms`` so the solo p99 at MaxLoad = margin × SLA.

    End-to-end latency is a positive-homogeneous function of the base
    medians, so a single multiplicative factor hits the target exactly.
    """
    from repro.workloads.service import Service  # local import to avoid a cycle

    if not (0.0 < margin <= 1.0):
        raise ConfigurationError(f"margin must be in (0,1], got {margin!r}")
    probe = Service(spec, RandomStreams(_CALIBRATION_SEED))
    p99 = probe.tail_latency(1.0, _CALIBRATION_SAMPLES)
    factor = margin * spec.sla_ms / p99
    servpods = tuple(
        replace(
            pod,
            components=tuple(
                replace(comp, base_ms=comp.base_ms * factor) for comp in pod.components
            ),
        )
        for pod in spec.servpods
    )
    return replace(spec, servpods=servpods)


# ---------------------------------------------------------------------------
# E-commerce (TPC-W website): HAProxy -> Tomcat -> Amoeba -> MySQL
# ---------------------------------------------------------------------------

def ecommerce_service(calibrated: bool = True) -> ServiceSpec:
    """The four-tier TPC-W E-commerce website (Table 1, row 1)."""
    haproxy = ComponentSpec(
        name="haproxy",
        base_ms=1.6,
        sigma0=0.50,          # < 5% of latency but > 20% of the variance (Fig. 6)
        lin_growth=0.3,
        sat_growth=0.04,
        sigma_growth=2.0,
        cov_knee=0.71,
        sensitivity=SensitivityVector(cpu=0.20, llc=0.15, membw=0.20, net=1.20, freq=0.60),
        cores=4,
        peak_core_util=0.55,
        peak_membw_fraction=0.06,
        peak_net_gbps=3.0,
        llc_fraction=0.10,
    )
    tomcat = ComponentSpec(
        name="tomcat",
        base_ms=22.0,
        sigma0=0.22,
        lin_growth=0.8,
        sat_growth=0.30,
        sigma_growth=2.5,
        cov_knee=0.83,        # loadlimit crossing ~ 0.87 (Fig. 8b)
        sensitivity=SensitivityVector(cpu=0.45, llc=0.35, membw=0.60, net=0.35, freq=2.20),
        cores=12,
        peak_core_util=0.70,
        peak_membw_fraction=0.12,
        peak_net_gbps=1.2,
        llc_fraction=0.25,
    )
    amoeba = ComponentSpec(
        name="amoeba",
        base_ms=3.5,
        sigma0=0.10,          # smallest CoV of the four (Fig. 6b)
        lin_growth=0.3,
        sat_growth=0.05,
        sigma_growth=2.0,
        cov_knee=0.785,
        sensitivity=SensitivityVector(cpu=0.15, llc=0.20, membw=0.30, net=0.40, freq=0.30),
        cores=4,
        peak_core_util=0.45,
        peak_membw_fraction=0.05,
        peak_net_gbps=0.8,
        llc_fraction=0.08,
    )
    mysql = ComponentSpec(
        name="mysql",
        base_ms=13.0,
        sigma0=0.38,          # always noisier than Tomcat (Fig. 6b)
        lin_growth=0.4,
        sat_growth=1.6,       # overtakes Tomcat past ~50% load (Fig. 6a)
        sat_power=2.5,
        sigma_growth=2.0,
        cov_knee=0.60,        # loadlimit crossing ~ 0.76 (Fig. 8a)
        sensitivity=SensitivityVector(cpu=0.60, llc=1.80, membw=1.70, net=0.80, freq=0.50),
        cores=12,
        peak_core_util=0.65,
        peak_membw_fraction=0.22,
        peak_net_gbps=1.0,
        llc_fraction=0.35,
    )
    spec = ServiceSpec(
        name="E-commerce",
        domain="TPC-W website",
        servpods=(
            ServpodSpec("haproxy", (haproxy,), llc_ways=6, memory_gb=16.0),
            ServpodSpec("tomcat", (tomcat,), llc_ways=10, memory_gb=48.0),
            ServpodSpec("amoeba", (amoeba,), llc_ways=6, memory_gb=16.0),
            ServpodSpec("mysql", (mysql,), llc_ways=10, memory_gb=64.0),
        ),
        request_types=(
            RequestType(
                name="browse-and-buy",
                weight=1.0,
                root=chain("haproxy", "tomcat", "amoeba", "mysql"),
            ),
        ),
        max_load_qps=1300.0,
        sla_ms=250.0,
        containers=16,
    )
    return calibrate_to_sla(spec) if calibrated else spec


# ---------------------------------------------------------------------------
# Redis (fan-out key-value store): Master fans out to Slave
# ---------------------------------------------------------------------------

def redis_service(calibrated: bool = True) -> ServiceSpec:
    """The fan-out Redis deployment (Table 1, row 2)."""
    master = ComponentSpec(
        name="master",
        base_ms=0.35,
        sigma0=0.30,
        lin_growth=0.5,
        sat_growth=0.55,
        sigma_growth=2.0,
        cov_knee=0.71,
        # Master relies on LLC, memory and network bandwidth for request
        # distribution and data operation (Fig. 2a discussion).
        sensitivity=SensitivityVector(cpu=0.45, llc=2.20, membw=1.80, net=1.50, freq=0.90),
        cores=10,
        peak_core_util=0.75,
        peak_membw_fraction=0.30,
        peak_net_gbps=4.0,
        llc_fraction=0.40,
    )
    slave = ComponentSpec(
        name="slave",
        base_ms=0.30,
        sigma0=0.24,
        lin_growth=0.3,
        sat_growth=0.12,
        sigma_growth=2.0,
        cov_knee=0.89,        # loadlimit ~ 0.91 (paper §5.2.1)
        sensitivity=SensitivityVector(cpu=0.09, llc=0.09, membw=0.85, net=0.60, freq=0.40),
        cores=10,
        peak_core_util=0.60,
        peak_membw_fraction=0.22,
        peak_net_gbps=3.0,
        llc_fraction=0.25,
    )
    spec = ServiceSpec(
        name="Redis",
        domain="Key-value store",
        servpods=(
            ServpodSpec("master", (master,), llc_ways=10, memory_gb=64.0),
            ServpodSpec("slave", (slave,), llc_ways=10, memory_gb=64.0),
        ),
        request_types=(
            RequestType(
                name="get-fanout",
                weight=1.0,
                root=fanout("master", chain("slave")),
            ),
        ),
        max_load_qps=86000.0,
        sla_ms=1.15,
        containers=18,
    )
    return calibrate_to_sla(spec) if calibrated else spec


# ---------------------------------------------------------------------------
# Solr (search): Apache+Solr -> Zookeeper
# ---------------------------------------------------------------------------

def solr_service(calibrated: bool = True) -> ServiceSpec:
    """Apache Solr search with a Zookeeper coordination Servpod."""
    apache_solr = ComponentSpec(
        name="apache-solr",
        base_ms=70.0,
        sigma0=0.30,
        lin_growth=0.6,
        sat_growth=0.50,
        sigma_growth=2.0,
        cov_knee=0.71,
        sensitivity=SensitivityVector(cpu=0.55, llc=1.60, membw=1.40, net=0.70, freq=1.10),
        cores=16,
        peak_core_util=0.70,
        peak_membw_fraction=0.25,
        peak_net_gbps=1.5,
        llc_fraction=0.40,
    )
    zookeeper = ComponentSpec(
        name="zookeeper",
        base_ms=5.0,
        sigma0=0.12,
        lin_growth=0.2,
        sat_growth=0.04,
        sigma_growth=2.5,
        cov_knee=0.915,       # loadlimit ~ 0.93 (paper §5.2.1)
        sensitivity=SensitivityVector(cpu=0.10, llc=0.12, membw=0.20, net=0.45, freq=0.25),
        cores=6,
        peak_core_util=0.30,
        peak_membw_fraction=0.04,
        peak_net_gbps=0.6,
        llc_fraction=0.08,
    )
    spec = ServiceSpec(
        name="Solr",
        domain="Search",
        servpods=(
            ServpodSpec("apache-solr", (apache_solr,), llc_ways=12, memory_gb=64.0),
            ServpodSpec("zookeeper", (zookeeper,), llc_ways=4, memory_gb=16.0),
        ),
        request_types=(
            RequestType(
                name="search",
                weight=1.0,
                root=chain("apache-solr", "zookeeper"),
            ),
        ),
        max_load_qps=400.0,
        sla_ms=350.0,
        containers=15,
    )
    return calibrate_to_sla(spec) if calibrated else spec


# ---------------------------------------------------------------------------
# Elasticsearch (index engine): Kibana -> Index
# ---------------------------------------------------------------------------

def elasticsearch_service(calibrated: bool = True) -> ServiceSpec:
    """Elasticsearch with a Kibana frontend Servpod."""
    kibana = ComponentSpec(
        name="kibana",
        base_ms=9.0,
        sigma0=0.16,
        lin_growth=0.4,
        sat_growth=0.08,
        sigma_growth=2.5,
        cov_knee=0.875,       # loadlimit ~ 0.90 (paper §5.2.1)
        sensitivity=SensitivityVector(cpu=0.20, llc=0.25, membw=0.35, net=0.70, freq=0.60),
        cores=6,
        peak_core_util=0.45,
        peak_membw_fraction=0.06,
        peak_net_gbps=1.5,
        llc_fraction=0.10,
    )
    index = ComponentSpec(
        name="index",
        base_ms=42.0,
        sigma0=0.32,
        lin_growth=0.6,
        sat_growth=0.70,
        sigma_growth=2.0,
        cov_knee=0.67,
        sensitivity=SensitivityVector(cpu=0.50, llc=1.60, membw=1.70, net=0.60, freq=0.90),
        cores=14,
        peak_core_util=0.70,
        peak_membw_fraction=0.30,
        peak_net_gbps=1.0,
        llc_fraction=0.45,
    )
    spec = ServiceSpec(
        name="Elasticsearch",
        domain="Index Engine",
        servpods=(
            ServpodSpec("kibana", (kibana,), llc_ways=4, memory_gb=16.0),
            ServpodSpec("index", (index,), llc_ways=12, memory_gb=64.0),
        ),
        request_types=(
            RequestType(name="query", weight=1.0, root=chain("kibana", "index")),
        ),
        max_load_qps=750.0,
        sla_ms=200.0,
        containers=12,
    )
    return calibrate_to_sla(spec) if calibrated else spec


# ---------------------------------------------------------------------------
# Elgg (social network): Nginx+PHP-FPM -> Memcached, MySQL
# ---------------------------------------------------------------------------

def elgg_service(calibrated: bool = True) -> ServiceSpec:
    """The Elgg social network (Nginx+PHP frontend, Memcached, MySQL)."""
    nginx_php = ComponentSpec(
        name="nginx-php",
        base_ms=30.0,
        sigma0=0.26,
        lin_growth=0.7,
        sat_growth=0.40,
        sigma_growth=2.0,
        cov_knee=0.77,
        sensitivity=SensitivityVector(cpu=0.55, llc=0.60, membw=0.80, net=0.90, freq=1.60),
        cores=10,
        peak_core_util=0.65,
        peak_membw_fraction=0.12,
        peak_net_gbps=1.8,
        llc_fraction=0.20,
    )
    memcached = ComponentSpec(
        name="memcached",
        base_ms=2.2,
        sigma0=0.15,
        lin_growth=0.3,
        sat_growth=0.06,
        sigma_growth=2.5,
        cov_knee=0.83,        # loadlimit ~ 0.87 (paper §5.2.1)
        sensitivity=SensitivityVector(cpu=0.18, llc=0.90, membw=0.70, net=0.50, freq=0.40),
        cores=4,
        peak_core_util=0.35,
        peak_membw_fraction=0.10,
        peak_net_gbps=1.0,
        llc_fraction=0.30,
    )
    mysql = ComponentSpec(
        name="elgg-mysql",
        base_ms=18.0,
        sigma0=0.36,
        lin_growth=0.5,
        sat_growth=1.2,
        sat_power=2.4,
        sigma_growth=2.0,
        cov_knee=0.67,
        sensitivity=SensitivityVector(cpu=0.55, llc=1.70, membw=1.70, net=0.70, freq=0.50),
        cores=10,
        peak_core_util=0.60,
        peak_membw_fraction=0.20,
        peak_net_gbps=0.8,
        llc_fraction=0.35,
    )
    spec = ServiceSpec(
        name="Elgg",
        domain="Social Network",
        servpods=(
            ServpodSpec("nginx-php", (nginx_php,), llc_ways=8, memory_gb=32.0),
            ServpodSpec("memcached", (memcached,), llc_ways=6, memory_gb=32.0),
            ServpodSpec("elgg-mysql", (mysql,), llc_ways=10, memory_gb=64.0),
        ),
        request_types=(
            RequestType(
                name="timeline",
                weight=0.7,
                root=CallNode(
                    servpod="nginx-php",
                    children=(CallNode("memcached"), CallNode("elgg-mysql")),
                    parallel=False,
                ),
            ),
            RequestType(
                name="cached-page",
                weight=0.3,
                root=chain("nginx-php", "memcached"),
            ),
        ),
        max_load_qps=200.0,
        sla_ms=320.0,
        containers=8,
    )
    return calibrate_to_sla(spec) if calibrated else spec


# ---------------------------------------------------------------------------
# Catalog access
# ---------------------------------------------------------------------------

#: Builders for the five containerized LC services of Table 1. SNMS (the
#: microservice benchmark) lives in :mod:`repro.workloads.microservices`.
LC_CATALOG: Dict[str, Callable[[], ServiceSpec]] = {
    "E-commerce": ecommerce_service,
    "Redis": redis_service,
    "Solr": solr_service,
    "Elasticsearch": elasticsearch_service,
    "Elgg": elgg_service,
}


def lc_service_spec(name: str) -> ServiceSpec:
    """Build the calibrated spec of a catalogued LC service by name."""
    try:
        builder = LC_CATALOG[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown LC service {name!r}; known: {sorted(LC_CATALOG)}"
        ) from None
    return builder()


def evaluation_lc_services() -> List[ServiceSpec]:
    """The five LC services used in the §5 evaluation grids, in paper order."""
    return [builder() for builder in LC_CATALOG.values()]


def np_seed_probe() -> np.ndarray:  # pragma: no cover - debugging helper
    """Tiny helper exposing the calibration RNG for reproducibility checks."""
    return RandomStreams(_CALIBRATION_SEED).stream("probe").random(3)
