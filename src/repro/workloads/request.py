"""Request execution records.

:func:`build_execution` expands a call tree plus per-visit sojourn times
into a timestamped :class:`RequestRecord` — which Servpod processed the
request when, including the local-processing intervals before and after
downstream calls. The request tracer consumes these records to generate
system events; the contribution analyzer never sees them directly (it
works from reconstructed events only, like the real system).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from repro.errors import ConfigurationError
from repro.workloads.spec import CallNode

#: One-way network transit between neighbouring Servpods, in ms. Small but
#: non-zero so inter-Servpod event timestamps are strictly ordered.
DEFAULT_HOP_MS = 0.02


@dataclass
class SojournSegment:
    """One visit of a request to a Servpod.

    ``arrive``/``depart`` are the Servpod-edge timestamps (ms since the
    request entered the service); ``local_intervals`` are the periods the
    request was actually being processed locally (excludes time waiting
    for downstream replies). The visit's sojourn time — what the paper
    measures — is the total length of the local intervals.

    ``seg_id`` uniquely identifies the visit within its request;
    ``parent_seg`` is the seg_id of the calling visit (-1 when called
    directly by the client). The trace emitter uses this linkage to lay
    caller/callee SEND/RECV events on the right endpoints.
    """

    servpod: str
    arrive: float
    depart: float
    local_intervals: List[Tuple[float, float]] = field(default_factory=list)
    seg_id: int = -1
    parent_seg: int = -1

    @property
    def sojourn_ms(self) -> float:
        """Total local processing time of this visit."""
        return sum(end - start for start, end in self.local_intervals)


@dataclass
class RequestRecord:
    """A fully timestamped request execution."""

    request_id: int
    t_start: float
    e2e_ms: float
    segments: List[SojournSegment] = field(default_factory=list)

    def sojourn_by_servpod(self) -> dict:
        """Total sojourn per Servpod (summing revisits), in ms."""
        out: dict = {}
        for seg in self.segments:
            out[seg.servpod] = out.get(seg.servpod, 0.0) + seg.sojourn_ms
        return out


def build_execution(
    root: CallNode,
    sojourn_of: Callable[[str], float],
    request_id: int = 0,
    t_start: float = 0.0,
    split: float = 0.5,
    hop_ms: float = DEFAULT_HOP_MS,
) -> RequestRecord:
    """Expand a call tree into a timestamped :class:`RequestRecord`.

    Parameters
    ----------
    root:
        The request's call tree.
    sojourn_of:
        Called once per tree node visit with the Servpod name; must return
        that visit's local sojourn time in ms.
    split:
        Fraction of a node's sojourn spent *before* its downstream calls
        (the rest is spent after the last reply arrives).
    hop_ms:
        One-way network transit between Servpods.
    """
    if not (0.0 <= split <= 1.0):
        raise ConfigurationError(f"split must be in [0,1], got {split!r}")
    if hop_ms < 0:
        raise ConfigurationError(f"hop_ms must be >= 0, got {hop_ms!r}")
    record = RequestRecord(request_id=request_id, t_start=t_start, e2e_ms=0.0)
    counter = [0]
    finish = _walk(root, 0.0, sojourn_of, split, hop_ms, record, counter, parent_seg=-1)
    record.e2e_ms = finish
    record.segments.sort(key=lambda seg: seg.arrive)
    return record


def _walk(
    node: CallNode,
    t_arrive: float,
    sojourn_of: Callable[[str], float],
    split: float,
    hop_ms: float,
    record: RequestRecord,
    counter: List[int],
    parent_seg: int,
) -> float:
    """Recursively lay out one node's visit; returns its reply time (ms)."""
    sojourn = float(sojourn_of(node.servpod))
    if sojourn < 0:
        raise ConfigurationError(
            f"negative sojourn {sojourn} for Servpod {node.servpod!r}"
        )
    seg_id = counter[0]
    counter[0] += 1
    if node.children:
        pre = split * sojourn
        post = sojourn - pre
        t_calls = t_arrive + pre
        if node.parallel:
            child_done = max(
                _walk(child, t_calls + hop_ms, sojourn_of, split, hop_ms,
                      record, counter, seg_id) + hop_ms
                for child in node.children
            )
        else:
            cursor = t_calls
            for child in node.children:
                cursor = _walk(child, cursor + hop_ms, sojourn_of, split, hop_ms,
                               record, counter, seg_id) + hop_ms
            child_done = cursor
        depart = child_done + post
        intervals = [(t_arrive, t_arrive + pre)]
        if post > 0:
            intervals.append((child_done, depart))
    else:
        depart = t_arrive + sojourn
        intervals = [(t_arrive, depart)]
    record.segments.append(
        SojournSegment(
            servpod=node.servpod,
            arrive=t_arrive,
            depart=depart,
            local_intervals=intervals,
            seg_id=seg_id,
            parent_seg=parent_seg,
        )
    )
    return depart
