"""Latency-critical (LC) workload models.

An LC service is a DAG of *components* (HAProxy, Tomcat, MySQL, ...)
grouped into *Servpods* (components co-located on one machine — the
paper's new abstraction, re-exported from :mod:`repro.core.servpod`).
Requests traverse a call tree over Servpods; each Servpod contributes a
load- and interference-dependent sojourn time; the end-to-end latency is
the call tree's critical path.

- :mod:`repro.workloads.spec` — specs for components, Servpods, services
  and call trees.
- :mod:`repro.workloads.latency` — the generative lognormal sojourn model.
- :mod:`repro.workloads.request` — request execution records (timestamped
  per-Servpod segments) used by the tracer.
- :mod:`repro.workloads.service` — the runtime: vectorized sampling of
  request latencies under a given load and pressure assignment.
- :mod:`repro.workloads.catalog` — the five containerized LC services of
  Table 1.
- :mod:`repro.workloads.microservices` — SNMS, the DeathStarBench social
  network (30 microservices in three Servpods).
"""

from repro.workloads.spec import (
    CallNode,
    ComponentSpec,
    RequestType,
    ServiceSpec,
    ServpodSpec,
    chain,
    fanout,
)
from repro.workloads.latency import LatencyModel
from repro.workloads.request import RequestRecord, SojournSegment, build_execution
from repro.workloads.service import Service, ServiceState
from repro.workloads.catalog import (
    LC_CATALOG,
    ecommerce_service,
    redis_service,
    solr_service,
    elasticsearch_service,
    elgg_service,
    lc_service_spec,
    evaluation_lc_services,
)
from repro.workloads.microservices import snms_service

__all__ = [
    "CallNode",
    "ComponentSpec",
    "RequestType",
    "ServiceSpec",
    "ServpodSpec",
    "chain",
    "fanout",
    "LatencyModel",
    "RequestRecord",
    "SojournSegment",
    "build_execution",
    "Service",
    "ServiceState",
    "LC_CATALOG",
    "ecommerce_service",
    "redis_service",
    "solr_service",
    "elasticsearch_service",
    "elgg_service",
    "snms_service",
    "lc_service_spec",
    "evaluation_lc_services",
]
