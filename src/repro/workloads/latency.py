"""The generative sojourn-time model.

Each component's sojourn time is lognormal with a load-dependent median
and sigma (see :class:`~repro.workloads.spec.ComponentSpec` for the
parameterisation). Interference multiplies the median by the slowdown
from :class:`~repro.interference.model.InterferenceModel` and widens the
sigma by its ``sigma_inflation``.

A Servpod's sojourn is the sum of its components' sojourns — components
in one Servpod share the machine, so they see the same pressure.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.spec import ComponentSpec, ServpodSpec


class LatencyModel:
    """Samples and summarises sojourn times for components and Servpods."""

    # -- analytic component-level quantities --------------------------------

    @staticmethod
    def component_median_ms(spec: ComponentSpec, load: float, slowdown: float = 1.0) -> float:
        """Median sojourn of one component at ``load`` under ``slowdown``."""
        u = _check_load(load)
        if slowdown < 1.0:
            raise ConfigurationError(f"slowdown must be >= 1, got {slowdown}")
        median = spec.base_ms * (
            1.0 + spec.lin_growth * u + spec.sat_growth * u**spec.sat_power / (1.25 - u)
        )
        return median * slowdown

    @staticmethod
    def component_sigma(spec: ComponentSpec, load: float, sigma_inflation: float = 1.0) -> float:
        """Lognormal sigma of one component at ``load``."""
        u = _check_load(load)
        if sigma_inflation < 1.0:
            raise ConfigurationError(f"sigma inflation must be >= 1, got {sigma_inflation}")
        ramp = max(0.0, (u - spec.cov_knee) / (1.0 - spec.cov_knee))
        return spec.sigma0 * (1.0 + spec.sigma_growth * ramp**2) * sigma_inflation

    @classmethod
    def component_mean_ms(
        cls, spec: ComponentSpec, load: float, slowdown: float = 1.0, sigma_inflation: float = 1.0
    ) -> float:
        """Analytic mean sojourn: ``median * exp(sigma**2 / 2)``."""
        median = cls.component_median_ms(spec, load, slowdown)
        sigma = cls.component_sigma(spec, load, sigma_inflation)
        return median * math.exp(sigma**2 / 2.0)

    @classmethod
    def component_cov(
        cls, spec: ComponentSpec, load: float, sigma_inflation: float = 1.0
    ) -> float:
        """Analytic coefficient of variation: ``sqrt(exp(sigma**2) - 1)``."""
        sigma = cls.component_sigma(spec, load, sigma_inflation)
        return math.sqrt(math.exp(sigma**2) - 1.0)

    # -- servpod-level quantities -------------------------------------------

    @classmethod
    def servpod_mean_ms(
        cls, pod: ServpodSpec, load: float, slowdown: float = 1.0, sigma_inflation: float = 1.0
    ) -> float:
        """Analytic mean Servpod sojourn (sum over member components)."""
        return sum(
            cls.component_mean_ms(c, load, slowdown, sigma_inflation)
            for c in pod.components
        )

    @classmethod
    def component_params(
        cls,
        pod: ServpodSpec,
        load: float,
        slowdown: float = 1.0,
        sigma_inflation: float = 1.0,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Per-component lognormal ``(log-median, sigma)`` column vectors.

        The shared parameter builder behind :meth:`sample_servpod_ms` and
        the batched kernel's sampler: both draw from the same
        ``(components, 1)`` parameter blocks, so caching these per
        (pod, slowdown, inflation) tick-state cannot change a single
        draw. ``math.log`` (not ``np.log``) keeps the per-component
        means bit-equal to the historical scalar path.
        """
        comps = pod.components
        means = np.array(
            [math.log(cls.component_median_ms(c, load, slowdown)) for c in comps]
        )
        sigmas = np.array(
            [cls.component_sigma(c, load, sigma_inflation) for c in comps]
        )
        return means[:, None], sigmas[:, None]

    @classmethod
    def sample_servpod_ms(
        cls,
        pod: ServpodSpec,
        load: float,
        n: int,
        rng: np.random.Generator,
        slowdown: float = 1.0,
        sigma_inflation: float = 1.0,
    ) -> np.ndarray:
        """Draw ``n`` Servpod sojourn times (ms) as a float array.

        Each member component contributes an independent lognormal draw;
        the Servpod sojourn is their sum. The whole window is drawn in
        one broadcast ``lognormal`` call over a ``(components, n)``
        block: elementwise generation walks that block in C order, so
        the underlying bit stream is consumed exactly as the historical
        per-component loop consumed it and every draw is bit-identical
        (asserted against a scalar reference in the tests).
        """
        if n < 0:
            raise ConfigurationError(f"cannot sample {n} sojourns")
        means, sigmas = cls.component_params(pod, load, slowdown, sigma_inflation)
        draws = rng.lognormal(
            mean=means, sigma=sigmas, size=(len(pod.components), n)
        )
        # Sequential row sum preserves the scalar path's addition order.
        total = draws[0]
        for row in draws[1:]:
            total = total + row
        return total


def _check_load(load: float) -> float:
    """Validate a load fraction; values may slightly exceed 1 (overload)."""
    if not (0.0 <= load <= 1.02):
        raise ConfigurationError(f"load fraction must be in [0, 1.02], got {load!r}")
    return float(load)
