"""LC service runtime: vectorized request sampling.

:class:`Service` binds a :class:`~repro.workloads.spec.ServiceSpec` to
random streams and answers the two questions the rest of the system asks:

1. *"What end-to-end latencies do requests see right now?"* —
   :meth:`Service.sample_e2e`, used by runtime tail-latency monitoring.
2. *"How long did each request stay in each Servpod?"* —
   :meth:`Service.sample_sojourns` (fast, analytic path) and
   :meth:`Service.build_request_records` (full timestamped executions for
   the request tracer).

Interference enters through :class:`ServiceState`, which carries one
slowdown/sigma-inflation pair per Servpod (different machines see
different BE pressure — that is the whole point of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.bejobs.job import LcUsage
from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams
from repro.workloads.latency import LatencyModel
from repro.workloads.request import RequestRecord, build_execution
from repro.workloads.spec import CallNode, ServiceSpec


@dataclass
class ServiceState:
    """Per-Servpod interference condition for one sampling call.

    Missing Servpods default to no interference (slowdown 1, inflation 1).
    """

    slowdowns: Dict[str, float] = field(default_factory=dict)
    sigma_inflations: Dict[str, float] = field(default_factory=dict)

    def slowdown(self, servpod: str) -> float:
        """Median multiplier for ``servpod`` (>= 1)."""
        return self.slowdowns.get(servpod, 1.0)

    def sigma_inflation(self, servpod: str) -> float:
        """Sigma multiplier for ``servpod`` (>= 1)."""
        return self.sigma_inflations.get(servpod, 1.0)

    @classmethod
    def solo(cls) -> "ServiceState":
        """The interference-free state."""
        return cls()


class Service:
    """Runtime sampler for one LC service."""

    def __init__(self, spec: ServiceSpec, streams: Optional[RandomStreams] = None) -> None:
        self.spec = spec
        self.streams = streams or RandomStreams(0)
        self._request_counter = 0
        # Per-pod lookups and usage coefficients are load-independent;
        # caching them removes the linear spec scans and component sums
        # from the per-tick hot path without changing a single value.
        self._pods: Dict[str, object] = {
            pod.name: pod for pod in spec.servpods
        }
        self._usage_coeffs = {
            pod.name: (
                sum(c.cores * c.peak_core_util for c in pod.components),
                sum(c.peak_membw_fraction for c in pod.components),
                sum(c.peak_net_gbps for c in pod.components),
                sum(c.llc_fraction for c in pod.components),
            )
            for pod in spec.servpods
        }

    # -- latency sampling -----------------------------------------------

    def sample_e2e(
        self, load: float, n: int, state: Optional[ServiceState] = None
    ) -> np.ndarray:
        """Draw ``n`` end-to-end request latencies (ms) at ``load``.

        This is the runtime monitoring hot path (one call per control
        window), so it walks the call tree without the per-Servpod
        bookkeeping of :meth:`sample_sojourns`. Both paths draw the same
        lognormals in the same order, so their e2e latencies are
        bit-identical.
        """
        if n <= 0:
            raise ConfigurationError(f"need n >= 1 requests, got {n}")
        state = state or ServiceState.solo()
        rng = self.streams.stream(f"service:{self.spec.name}:latency")
        counts = self._type_counts(n, rng)
        e2e = np.empty(n)
        offset = 0
        for rtype, count in counts:
            if count == 0:
                continue
            e2e[offset : offset + count] = self._walk_tree(
                rtype.root, load, count, state, rng, None
            )
            offset += count
        return e2e

    def sample_sojourns(
        self, load: float, n: int, state: Optional[ServiceState] = None
    ) -> Dict[str, np.ndarray]:
        """Draw per-Servpod sojourns and e2e latency for ``n`` requests.

        Returns a dict mapping each Servpod name to an ``(n,)`` array of
        that request's total sojourn there (0 where the request's type
        does not visit the Servpod), plus key ``"__e2e__"`` with the
        end-to-end latencies. All values are in milliseconds.
        """
        if n <= 0:
            raise ConfigurationError(f"need n >= 1 requests, got {n}")
        state = state or ServiceState.solo()
        rng = self.streams.stream(f"service:{self.spec.name}:latency")
        counts = self._type_counts(n, rng)
        e2e = np.empty(n)
        per_pod = {name: np.zeros(n) for name in self.spec.servpod_names}
        offset = 0
        for rtype, count in counts:
            if count == 0:
                continue
            sl = slice(offset, offset + count)
            totals: Dict[str, np.ndarray] = {}
            e2e[sl] = self._walk_tree(rtype.root, load, count, state, rng, totals)
            for pod_name, arr in totals.items():
                per_pod[pod_name][sl] = arr
            offset += count
        per_pod["__e2e__"] = e2e
        return per_pod

    def tail_latency(
        self,
        load: float,
        n: int,
        state: Optional[ServiceState] = None,
        percentile: Optional[float] = None,
    ) -> float:
        """The tail percentile (default: the SLA's) of ``n`` sampled requests."""
        pct = self.spec.tail_percentile if percentile is None else percentile
        return float(np.percentile(self.sample_e2e(load, n, state), pct))

    def _walk_tree(
        self,
        node: CallNode,
        load: float,
        n: int,
        state: ServiceState,
        rng: np.random.Generator,
        totals: Optional[Dict[str, np.ndarray]],
    ) -> np.ndarray:
        """Vectorized recursion over the call tree; returns subtree times.

        ``totals`` accumulates per-Servpod sojourns when provided;
        passing ``None`` (the ``sample_e2e`` fast path) skips that
        bookkeeping without touching the RNG stream.
        """
        pod = self._pods[node.servpod]
        draws = LatencyModel.sample_servpod_ms(
            pod,
            load,
            n,
            rng,
            slowdown=state.slowdown(node.servpod),
            sigma_inflation=state.sigma_inflation(node.servpod),
        )
        if totals is not None:
            prev = totals.get(node.servpod)
            totals[node.servpod] = draws if prev is None else prev + draws
        if not node.children:
            return draws
        child_times = [
            self._walk_tree(child, load, n, state, rng, totals)
            for child in node.children
        ]
        if node.parallel:
            downstream = np.maximum.reduce(child_times)
        else:
            downstream = np.add.reduce(child_times)
        return draws + downstream

    # -- full request records (tracer input) --------------------------------

    def build_request_records(
        self,
        load: float,
        n: int,
        state: Optional[ServiceState] = None,
        t_start: float = 0.0,
        inter_arrival_ms: float = 1.0,
    ) -> List[RequestRecord]:
        """Construct ``n`` timestamped request executions for the tracer."""
        if n <= 0:
            raise ConfigurationError(f"need n >= 1 requests, got {n}")
        state = state or ServiceState.solo()
        rng = self.streams.stream(f"service:{self.spec.name}:records")
        counts = self._type_counts(n, rng)
        records: List[RequestRecord] = []
        t = t_start
        for rtype, count in counts:
            for _ in range(count):
                self._request_counter += 1

                def sojourn_of(pod_name: str) -> float:
                    pod = self.spec.servpod(pod_name)
                    return float(
                        LatencyModel.sample_servpod_ms(
                            pod,
                            load,
                            1,
                            rng,
                            slowdown=state.slowdown(pod_name),
                            sigma_inflation=state.sigma_inflation(pod_name),
                        )[0]
                    )

                records.append(
                    build_execution(
                        rtype.root,
                        sojourn_of,
                        request_id=self._request_counter,
                        t_start=t,
                    )
                )
                t += inter_arrival_ms
        return records

    # -- resource usage ----------------------------------------------------

    def lc_usage(self, servpod_name: str, load: float) -> LcUsage:
        """The Servpod's machine-resource usage at ``load`` (solo run)."""
        if not (0.0 <= load <= 1.02):
            raise ConfigurationError(f"load must be in [0, 1.02], got {load!r}")
        coeffs = self._usage_coeffs.get(servpod_name)
        if coeffs is None:
            raise ConfigurationError(
                f"service {self.spec.name!r} has no Servpod {servpod_name!r}"
            )
        busy_coeff, membw_coeff, net_coeff, llc_coeff = coeffs
        busy = busy_coeff * load
        membw = min(1.0, membw_coeff * load)
        net = net_coeff * load
        # Cache footprint saturates quickly: even light load keeps the
        # working set warm.
        llc = min(1.0, llc_coeff * (0.3 + 0.7 * load))
        return LcUsage(
            busy_cores=busy, membw_fraction=membw, net_gbps=net, llc_fraction=llc
        )

    # -- internals -----------------------------------------------------------

    def _type_counts(self, n: int, rng: np.random.Generator) -> list:
        """Split ``n`` requests across request types by weight."""
        types = self.spec.request_types
        if len(types) == 1:
            return [(types[0], n)]
        weights = np.array([rt.weight for rt in types], dtype=float)
        weights /= weights.sum()
        counts = rng.multinomial(n, weights)
        return list(zip(types, counts.tolist()))
