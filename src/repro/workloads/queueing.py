"""Request-level queueing simulation — cross-validation of the latency model.

The analytic sojourn model (:mod:`repro.workloads.latency`) *postulates*
a convex load curve and a variance knee. This module derives the same
shapes from first principles: a multi-worker FIFO queue simulated
request-by-request on the discrete-event engine. It exists to validate
(and let users re-calibrate) the analytic model, and as the natural
extension point for users who want full request-level dynamics instead
of the fast analytic path.

A :class:`QueueingComponent` is an G/G/c queue: Poisson arrivals,
lognormal service times, ``c`` parallel workers. As the offered load
approaches capacity, waiting time — and its variance — blows up, which
is exactly the knee the analytic curves encode.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.kernel import drain_fifo_queue, resolve_kernel
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class QueueingStats:
    """Summary of one queueing run."""

    offered_load: float          # lambda * E[S] / c
    completed: int
    mean_sojourn_ms: float
    p99_sojourn_ms: float
    cov: float
    mean_wait_ms: float
    #: Simulation events the run executed (arrivals + in-horizon
    #: finishes) — the throughput denominator for kernel benchmarks.
    events: int = 0

    @property
    def mean_service_ms(self) -> float:
        """Mean in-service time (sojourn minus queueing wait)."""
        return self.mean_sojourn_ms - self.mean_wait_ms


class QueueingComponent:
    """A G/G/c FIFO queue driven by the discrete-event engine.

    Parameters
    ----------
    service_ms:
        Median service time of one request (lognormal).
    service_sigma:
        Lognormal sigma of the service time.
    workers:
        Parallel workers (threads) of the component.
    """

    def __init__(
        self,
        service_ms: float,
        service_sigma: float = 0.3,
        workers: int = 8,
    ) -> None:
        if service_ms <= 0 or service_sigma <= 0 or workers <= 0:
            raise ConfigurationError(
                f"invalid queue parameters service_ms={service_ms} "
                f"sigma={service_sigma} workers={workers}"
            )
        self.service_ms = float(service_ms)
        self.service_sigma = float(service_sigma)
        self.workers = int(workers)

    #: Inter-arrival gaps are drawn in batches of this size.
    _ARRIVAL_CHUNK = 1024

    @property
    def capacity_qps(self) -> float:
        """Saturation throughput: workers / E[service]."""
        mean_service_s = (
            self.service_ms * math.exp(self.service_sigma**2 / 2) / 1000.0
        )
        return self.workers / mean_service_s

    def simulate(
        self,
        arrival_qps: float,
        duration_s: float,
        streams: Optional[RandomStreams] = None,
        warmup_s: float = 2.0,
        kernel: Optional[str] = None,
    ) -> QueueingStats:
        """Simulate ``duration_s`` seconds of Poisson arrivals.

        Requests arriving during the warm-up period are served but not
        counted, so the statistics reflect (near-)steady state.

        Arrival times and service times are drawn in vectorized batches;
        both streams are consumed in exactly the order the historical
        one-draw-per-event loop consumed them, so results are
        bit-identical (pinned by a scalar reference implementation in
        the tests). Under the batched kernel (``kernel="batched"`` or
        ``RHYTHM_KERNEL=batched``) the event engine is bypassed entirely
        — :func:`repro.sim.kernel.drain_fifo_queue` replays the FIFO
        loop as a start-time recurrence, bit-identical again.
        """
        if arrival_qps <= 0 or duration_s <= 0:
            raise ConfigurationError(
                f"need positive rate/duration, got {arrival_qps}/{duration_s}"
            )
        streams = streams or RandomStreams(0)
        arrival_rng = streams.stream("queue:arrivals")
        service_rng = streams.stream("queue:service")

        arrival_times = self._draw_arrival_times(
            arrival_rng, arrival_qps, duration_s
        )
        # One batch replaces one scalar lognormal per fired arrival.
        service_times: List[float] = (
            service_rng.lognormal(
                math.log(self.service_ms / 1000.0),
                self.service_sigma,
                size=len(arrival_times),
            ).tolist()
            if arrival_times
            else []
        )

        if resolve_kernel(kernel) == "batched":
            sojourn_arr, wait_arr, events = drain_fifo_queue(
                arrival_times,
                service_times,
                self.workers,
                warmup_s,
                duration_s + 60.0,
            )
            return self._stats(
                arrival_qps, sojourn_arr, wait_arr, events
            )

        engine = Engine()
        busy = [0]                    # busy workers
        waiting: deque = deque()      # (arrival time, service time)
        sojourns: List[float] = []
        waits: List[float] = []

        def start_service(t: float, arrived: float, service_s: float) -> None:
            busy[0] += 1

            def finish(t_done: float) -> None:
                busy[0] -= 1
                if arrived >= warmup_s:
                    sojourns.append((t_done - arrived) * 1000.0)
                    waits.append((t_done - arrived - service_s) * 1000.0)
                if waiting:
                    q_arrived, q_service = waiting.popleft()
                    start_service(t_done, q_arrived, q_service)

            engine.after(service_s, finish)

        next_service = iter(service_times)

        def arrive(t: float) -> None:
            service_s = next(next_service)
            if busy[0] < self.workers:
                start_service(t, t, service_s)
            else:
                waiting.append((t, service_s))

        engine.at_many([(t, arrive) for t in arrival_times])
        fired = engine.run(until=duration_s + 60.0)  # drain in-flight requests
        return self._stats(arrival_qps, np.asarray(sojourns), waits, fired)

    def _stats(
        self,
        arrival_qps: float,
        sojourns: np.ndarray,
        waits,
        events: int,
    ) -> QueueingStats:
        """Summarise completion records (shared by both kernels).

        ``sojourns``/``waits`` arrive in finish order from both paths,
        so the numpy reductions fold the same operands in the same
        order and the statistics are bit-identical across kernels.
        """
        if sojourns.size == 0:
            raise ConfigurationError(
                "no requests completed after warm-up; extend the duration"
            )
        mean = float(sojourns.mean())
        return QueueingStats(
            offered_load=arrival_qps / self.capacity_qps,
            completed=len(sojourns),
            mean_sojourn_ms=mean,
            p99_sojourn_ms=float(np.percentile(sojourns, 99.0)),
            cov=float(sojourns.std(ddof=1) / mean) if len(sojourns) > 1 else 0.0,
            mean_wait_ms=float(np.mean(waits)),
            events=events,
        )

    def _draw_arrival_times(
        self,
        arrival_rng: np.random.Generator,
        arrival_qps: float,
        duration_s: float,
    ) -> List[float]:
        """Materialise the Poisson arrival process as a list of times.

        Gaps are drawn in chunks; when the overshooting gap lands
        mid-chunk the generator is rewound and exactly the prefix the
        scalar loop would have consumed (the in-range gaps plus the one
        overshoot) is re-drawn, so the arrival stream's final state
        matches the historical one-gap-per-event loop bit-for-bit.
        """
        scale = 1.0 / arrival_qps
        first = float(arrival_rng.exponential(scale))
        # Arrivals past the drain horizon would never fire — and the
        # scalar loop never drew a gap for them either.
        if first > duration_s + 60.0:
            return []
        times: List[float] = [first]
        t = first
        while True:
            state = arrival_rng.bit_generator.state
            gaps = arrival_rng.exponential(scale, size=self._ARRIVAL_CHUNK)
            # cumsum accumulates strictly left to right, so seeding it
            # with ``t`` reproduces the scalar ``t += gap`` chain
            # bit-for-bit.
            chunk_times = np.cumsum(np.concatenate(((t,), gaps)))[1:]
            over = np.nonzero(chunk_times > duration_s)[0]
            if over.size:
                j = int(over[0])
                arrival_rng.bit_generator.state = state
                arrival_rng.exponential(scale, size=j + 1)
                times.extend(chunk_times[:j].tolist())
                return times
            times.extend(chunk_times.tolist())
            t = float(chunk_times[-1])


def load_latency_curve(
    component: QueueingComponent,
    loads: List[float],
    duration_s: float = 60.0,
    seed: int = 0,
) -> List[QueueingStats]:
    """Sweep offered load (fractions of capacity) and collect statistics.

    This is the queueing-theoretic counterpart of the analytic model's
    ``median(u)`` / ``sigma(u)`` curves; tests assert the two agree in
    shape (both convex in load, variance rising toward saturation).
    """
    stats = []
    for i, load in enumerate(loads):
        if not (0.0 < load < 1.0):
            raise ConfigurationError(
                f"offered load must be in (0,1) for a stable queue, got {load}"
            )
        qps = load * component.capacity_qps
        stats.append(
            component.simulate(
                qps, duration_s, RandomStreams(seed).spawn(f"load-{i}")
            )
        )
    return stats
