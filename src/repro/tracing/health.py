"""Trace-quality accounting for degraded event streams.

A healthy capture matches every RECV to a SEND and every Servpod has
entry RECVs to normalize by. Under fault injection (event drop,
duplication, late delivery — see :mod:`repro.faults.tracing`) those
invariants break; the tolerant extraction paths *skip and flag* instead
of raising, and this record is the flag: it counts what was filtered,
what failed to match, which pods needed estimated visit counts and how
many estimates had to be clamped to stay physical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass
class TraceHealth:
    """Counters describing how degraded one event stream was."""

    #: Raw events seen / dropped by the program+message filters.
    events_seen: int = 0
    events_filtered: int = 0
    #: Intra-Servpod RECV→SEND pairs successfully matched.
    segments_matched: int = 0
    #: SENDs with no pending RECV / RECVs never paired with a SEND.
    unmatched_sends: int = 0
    unmatched_recvs: int = 0
    #: Negative spans clamped to zero (late-delivered timestamps).
    spans_clamped: int = 0
    #: Mean estimates clamped to the observable end-to-end bound.
    means_bounded: int = 0
    #: Pods whose visit count had to be estimated from matched segments.
    pods_estimated: Tuple[str, ...] = ()
    #: Pods skipped entirely (no segments and no visits survived).
    pods_skipped: Tuple[str, ...] = field(default_factory=tuple)

    def flag_estimated(self, pod: str) -> None:
        """Record that ``pod``'s visit count was estimated, not observed."""
        if pod not in self.pods_estimated:
            self.pods_estimated = self.pods_estimated + (pod,)

    def flag_skipped(self, pod: str) -> None:
        """Record that ``pod`` produced no usable sojourn estimate."""
        if pod not in self.pods_skipped:
            self.pods_skipped = self.pods_skipped + (pod,)

    @property
    def degraded(self) -> bool:
        """True when any skip-and-flag path had to engage."""
        return bool(
            self.unmatched_sends
            or self.unmatched_recvs
            or self.spans_clamped
            or self.means_bounded
            or self.pods_estimated
            or self.pods_skipped
        )
