"""Non-intrusive request tracing (§3.3 of the paper).

The real system derives per-Servpod sojourn times from four kernel events
captured with SystemTap — ACCEPT, RECV, SEND, CLOSE — each tagged with a
*context identifier* (hostIP, program, pid, tid) and a *message
identifier* (the TCP 5-tuple). This package reproduces that pipeline:

- :mod:`repro.tracing.events` — the event record and identifier types,
- :mod:`repro.tracing.emitter` — generates realistic event streams from
  request executions, including unrelated-process noise, non-blocking
  thread reordering and persistent-TCP message-id reuse,
- :mod:`repro.tracing.causality` — intra-/inter-Servpod event matching,
- :mod:`repro.tracing.cpg` — causal path graph construction (Figure 4),
- :mod:`repro.tracing.sojourn` — sojourn-time extraction, including the
  paper's mean-preservation argument for mismatched pairings,
- :mod:`repro.tracing.jaeger` — the built-in tracer used for SNMS.
"""

from repro.tracing.events import ContextId, EventType, MessageId, SysEvent
from repro.tracing.emitter import EmitterConfig, ServpodEndpoint, TraceEmitter
from repro.tracing.causality import CausalityMatcher, MatchedSegment
from repro.tracing.cpg import CausalPathGraph
from repro.tracing.sojourn import SojournExtractor, SojournStats
from repro.tracing.jaeger import JaegerTracer

__all__ = [
    "ContextId",
    "EventType",
    "MessageId",
    "SysEvent",
    "EmitterConfig",
    "ServpodEndpoint",
    "TraceEmitter",
    "CausalityMatcher",
    "MatchedSegment",
    "CausalPathGraph",
    "SojournExtractor",
    "SojournStats",
    "JaegerTracer",
]
