"""System-event records captured by the (simulated) kernel tracer.

Each event carries the two identifiers the paper uses for filtering and
causality:

- the **context identifier** ``<hostIP, programName, processID,
  threadID>`` filters noise from unrelated processes and establishes
  intra-Servpod causality, and
- the **message identifier** ``<senderIP, senderPort, receiverIP,
  receiverPort, messageSize>`` filters unrelated communications and
  establishes inter-Servpod causality.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class EventType(enum.Enum):
    """The four kernel events the tracer records (§3.3)."""

    ACCEPT = "ACCEPT"   # syscall_accept — acceptance of a request
    RECV = "RECV"       # tcp_rcvmsg — receiving a data package
    SEND = "SEND"       # tcp_sendmsg — sending a data package
    CLOSE = "CLOSE"     # syscall_close — close of a request call


@dataclass(frozen=True)
class ContextId:
    """``<hostIP, programName, processID, threadID>``."""

    host_ip: str
    program: str
    pid: int
    tid: int

    def same_thread(self, other: "ContextId") -> bool:
        """True when two events ran on the same thread of the same process."""
        return self == other


@dataclass(frozen=True)
class MessageId:
    """``<senderIP, senderPort, receiverIP, receiverPort, messageSize>``."""

    sender_ip: str
    sender_port: int
    receiver_ip: str
    receiver_port: int
    size: int

    def reversed(self) -> "MessageId":
        """The reply direction of this flow (size not preserved)."""
        return MessageId(
            sender_ip=self.receiver_ip,
            sender_port=self.receiver_port,
            receiver_ip=self.sender_ip,
            receiver_port=self.sender_port,
            size=self.size,
        )

    @property
    def flow(self) -> tuple:
        """The 4-tuple identifying the connection direction (ignores size)."""
        return (self.sender_ip, self.sender_port, self.receiver_ip, self.receiver_port)


@dataclass(frozen=True)
class SysEvent:
    """One captured kernel event.

    ``timestamp`` is in milliseconds since the capture started. ``request_id``
    is ground truth carried only for test assertions — the matcher never
    reads it (the whole point of the tracer is that the kernel does not
    know which request an event belongs to).
    """

    etype: EventType
    timestamp: float
    context: ContextId
    message: Optional[MessageId] = None
    request_id: int = -1

    def __post_init__(self) -> None:
        if self.etype in (EventType.RECV, EventType.SEND) and self.message is None:
            raise ValueError(f"{self.etype.value} events must carry a message id")

    def sort_key(self) -> tuple:
        """Stable global ordering: by time, then context, then type."""
        return (self.timestamp, self.context.host_ip, self.context.tid, self.etype.value)
