"""Synthetic kernel-event stream generation.

:class:`TraceEmitter` turns timestamped request executions
(:class:`~repro.workloads.request.RequestRecord`) into the flat, global,
noisy stream of ACCEPT/RECV/SEND/CLOSE events a SystemTap probe would
capture — which the causality matcher must then untangle.

Realism knobs (all per the paper's §3.3 discussion):

- **noise events** from unrelated processes and communications, which the
  matcher must filter via context/message identifiers;
- **blocking vs non-blocking** Servpods: blocking servers use one thread
  per in-flight request (thread id identifies the request within a pod);
  non-blocking servers multiplex every request onto one event-loop thread,
  so order-based RECV/SEND pairing can mis-attribute segments (Figure 5);
- **ephemeral vs persistent TCP**: ephemeral connections give every
  request-edge a unique 5-tuple; persistent connections reuse one 5-tuple
  per Servpod pair, making inter-Servpod matching ambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.errors import TracingError
from repro.tracing.events import ContextId, EventType, MessageId, SysEvent
from repro.workloads.request import RequestRecord, SojournSegment

#: The client's synthetic endpoint.
CLIENT_IP = "10.0.0.1"
CLIENT_PROGRAM = "loadgen"

#: Base for ephemeral source ports.
_EPHEMERAL_BASE = 20000
#: Fixed source port used by persistent connections.
_PERSISTENT_PORT = 4000


@dataclass(frozen=True)
class ServpodEndpoint:
    """Network identity of one Servpod."""

    servpod: str
    host_ip: str
    program: str
    pid: int
    listen_port: int


@dataclass
class EmitterConfig:
    """Behavioural knobs of the emitted trace."""

    blocking: bool = True
    persistent_connections: bool = False
    #: Noise events per request (unrelated processes + communications).
    noise_per_request: float = 2.0
    #: Emit per-request ACCEPT/CLOSE at the entry Servpod.
    emit_accept_close: bool = True
    #: One-way network transit between endpoints (must match the hop used
    #: when the request executions were built, so a SEND's timestamp
    #: strictly precedes its peer RECV's).
    hop_ms: float = 0.02
    seed: int = 0


def default_endpoints(servpods: Iterable[str]) -> Dict[str, ServpodEndpoint]:
    """Assign deterministic IPs/ports/pids to Servpods in order."""
    endpoints = {}
    for i, name in enumerate(servpods):
        endpoints[name] = ServpodEndpoint(
            servpod=name,
            host_ip=f"10.0.1.{i + 10}",
            program=name,
            pid=1000 + i,
            listen_port=7000 + i,
        )
    return endpoints


class TraceEmitter:
    """Generates a global kernel-event stream from request executions."""

    def __init__(
        self,
        endpoints: Dict[str, ServpodEndpoint],
        config: Optional[EmitterConfig] = None,
    ) -> None:
        if not endpoints:
            raise TracingError("emitter needs at least one Servpod endpoint")
        self.endpoints = dict(endpoints)
        self.config = config or EmitterConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._port_counter = 0

    # -- public API ----------------------------------------------------------

    def emit(self, records: Iterable[RequestRecord]) -> List[SysEvent]:
        """Emit the time-sorted event stream for ``records`` (plus noise)."""
        events: List[SysEvent] = []
        n_requests = 0
        t_min, t_max = float("inf"), float("-inf")
        for record in records:
            n_requests += 1
            events.extend(self._emit_request(record))
        if events:
            t_min = min(e.timestamp for e in events)
            t_max = max(e.timestamp for e in events)
            events.extend(self._emit_noise(n_requests, t_min, t_max))
        events.sort(key=SysEvent.sort_key)
        return events

    # -- request expansion -----------------------------------------------

    def _emit_request(self, record: RequestRecord) -> List[SysEvent]:
        events: List[SysEvent] = []
        segments = {seg.seg_id: seg for seg in record.segments}
        for seg in record.segments:
            parent = segments.get(seg.parent_seg)
            events.extend(self._emit_edge(record, seg, parent))
        return events

    def _emit_edge(
        self,
        record: RequestRecord,
        seg: SojournSegment,
        parent: Optional[SojournSegment],
    ) -> List[SysEvent]:
        """Events for the caller→callee edge ending at ``seg``.

        Four data events per edge: SEND at the caller, RECV at the callee
        (request direction), then SEND at the callee and RECV at the
        caller (reply direction).
        """
        callee = self._endpoint(seg.servpod)
        if parent is None:
            caller_ip, caller_ctx = CLIENT_IP, self._client_context(record)
        else:
            caller_ep = self._endpoint(parent.servpod)
            caller_ip = caller_ep.host_ip
            caller_ctx = self._pod_context(caller_ep, record)
        callee_ctx = self._pod_context(callee, record)

        src_port = self._source_port(caller_ip, callee)
        size = int(self._rng.integers(200, 4000))
        msg_req = MessageId(
            sender_ip=caller_ip,
            sender_port=src_port,
            receiver_ip=callee.host_ip,
            receiver_port=callee.listen_port,
            size=size,
        )
        msg_reply = msg_req.reversed()
        t0 = record.t_start
        hop = self.config.hop_ms
        # Request executions place the callee's arrival/departure stamps;
        # the wire adds one hop on each direction.
        send_req_t = t0 + seg.arrive - hop
        recv_req_t = t0 + seg.arrive
        send_reply_t = t0 + seg.depart
        recv_reply_t = t0 + seg.depart + hop

        rid = record.request_id
        events = [
            SysEvent(EventType.SEND, send_req_t, caller_ctx, msg_req, rid),
            SysEvent(EventType.RECV, recv_req_t, callee_ctx, msg_req, rid),
            SysEvent(EventType.SEND, send_reply_t, callee_ctx, msg_reply, rid),
            SysEvent(EventType.RECV, recv_reply_t, caller_ctx, msg_reply, rid),
        ]
        if parent is None and self.config.emit_accept_close:
            events.insert(
                1, SysEvent(EventType.ACCEPT, recv_req_t, callee_ctx, None, rid)
            )
            events.append(
                SysEvent(EventType.CLOSE, send_reply_t, callee_ctx, None, rid)
            )
        return events

    # -- identity helpers ------------------------------------------------

    def _endpoint(self, servpod: str) -> ServpodEndpoint:
        try:
            return self.endpoints[servpod]
        except KeyError:
            raise TracingError(f"no endpoint registered for Servpod {servpod!r}") from None

    def _client_context(self, record: RequestRecord) -> ContextId:
        return ContextId(
            host_ip=CLIENT_IP,
            program=CLIENT_PROGRAM,
            pid=1,
            tid=record.request_id if self.config.blocking else 1,
        )

    def _pod_context(self, endpoint: ServpodEndpoint, record: RequestRecord) -> ContextId:
        """Blocking pods run one thread per request; non-blocking share one."""
        tid = record.request_id if self.config.blocking else 1
        return ContextId(
            host_ip=endpoint.host_ip,
            program=endpoint.program,
            pid=endpoint.pid,
            tid=tid,
        )

    def _source_port(self, caller_ip: str, callee: ServpodEndpoint) -> int:
        """Ephemeral: unique per edge. Persistent: one pooled connection."""
        if self.config.persistent_connections:
            return _PERSISTENT_PORT
        self._port_counter += 1
        return _EPHEMERAL_BASE + self._port_counter

    # -- noise -----------------------------------------------------------------

    def _emit_noise(self, n_requests: int, t_min: float, t_max: float) -> List[SysEvent]:
        """Unrelated-process events the matcher must filter out."""
        n = int(round(self.config.noise_per_request * n_requests))
        if n <= 0:
            return []
        noise_programs = ("kworker", "sshd", "systemd-journal", "cron")
        events: List[SysEvent] = []
        pods = list(self.endpoints.values())
        times = self._rng.uniform(t_min, t_max, size=n)
        for i in range(n):
            pod = pods[int(self._rng.integers(0, len(pods)))]
            program = noise_programs[int(self._rng.integers(0, len(noise_programs)))]
            ctx = ContextId(
                host_ip=pod.host_ip,
                program=program,
                pid=int(self._rng.integers(2, 999)),
                tid=int(self._rng.integers(1, 64)),
            )
            etype = EventType.SEND if self._rng.random() < 0.5 else EventType.RECV
            msg = MessageId(
                sender_ip=f"172.16.{self._rng.integers(0, 255)}.{self._rng.integers(1, 255)}",
                sender_port=int(self._rng.integers(1024, 65535)),
                receiver_ip=pod.host_ip,
                receiver_port=int(self._rng.integers(1024, 65535)),
                size=int(self._rng.integers(40, 1500)),
            )
            events.append(SysEvent(etype, float(times[i]), ctx, msg, request_id=-1))
        return events
