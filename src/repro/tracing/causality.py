"""Event filtering and causality matching (§3.3).

The matcher reconstructs structure from a flat, noisy event stream using
only the deployment knowledge an operator has — which hosts/programs/
listen-ports belong to the service — plus the context and message
identifiers carried by each event. It never reads the ground-truth
``request_id`` field.

Matching rules, straight from the paper:

- **intra-Servpod**: a RECV happens-before the next SEND sharing the
  same context identifier (hostIP, program, pid, tid), paired FIFO in
  timestamp order. For blocking servers one thread serves one request,
  so pairing is exact; for non-blocking servers every request shares the
  event-loop thread and pairing can mis-attribute segments — but the
  *sum* of spans (hence the mean sojourn) is invariant (Figure 5).
- **inter-Servpod**: a SEND happens-before the RECV sharing the same
  message identifier, paired FIFO in timestamp order; with persistent
  TCP connections many requests share a 5-tuple and the same
  sum-preservation argument applies.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import CausalityError
from repro.tracing.emitter import CLIENT_IP, CLIENT_PROGRAM, ServpodEndpoint
from repro.tracing.events import ContextId, EventType, SysEvent
from repro.tracing.health import TraceHealth


@dataclass(frozen=True)
class MatchedSegment:
    """One local-processing segment at a Servpod: RECV paired with SEND."""

    servpod: str
    recv: SysEvent
    send: SysEvent

    @property
    def span_ms(self) -> float:
        """The segment's duration."""
        return self.send.timestamp - self.recv.timestamp


@dataclass(frozen=True)
class InterPair:
    """A SEND at one endpoint matched to the RECV at its peer."""

    send: SysEvent
    recv: SysEvent


class CausalityMatcher:
    """Filters noise and matches event causality for one LC service."""

    def __init__(self, endpoints: Dict[str, ServpodEndpoint]) -> None:
        if not endpoints:
            raise CausalityError("matcher needs the service's Servpod endpoints")
        self.endpoints = dict(endpoints)
        self._by_ip = {ep.host_ip: ep for ep in endpoints.values()}
        self._listen_ports = {ep.host_ip: ep.listen_port for ep in endpoints.values()}
        self._known_ips = set(self._by_ip) | {CLIENT_IP}
        self._known_programs = {ep.program for ep in endpoints.values()} | {CLIENT_PROGRAM}

    # -- filtering ----------------------------------------------------------

    def filter(self, events: Iterable[SysEvent]) -> List[SysEvent]:
        """Drop events from unrelated processes or communications."""
        clean: List[SysEvent] = []
        for event in events:
            if event.context.program not in self._known_programs:
                continue  # unrelated process (context-identifier filter)
            if event.message is not None:
                msg = event.message
                if msg.sender_ip not in self._known_ips or msg.receiver_ip not in self._known_ips:
                    continue  # unrelated communication (message-identifier filter)
            clean.append(event)
        clean.sort(key=SysEvent.sort_key)
        return clean

    # -- intra-Servpod causality -----------------------------------------

    def intra_segments(
        self,
        events: Iterable[SysEvent],
        health: Optional[TraceHealth] = None,
    ) -> List[MatchedSegment]:
        """Pair RECV→SEND per context identifier, FIFO in time order.

        Only Servpod-side events participate (the client's SEND-first
        pattern is handled by :meth:`client_latencies`). A degraded
        stream (dropped/duplicated events) leaves SENDs without a
        pending RECV or RECVs never consumed; pass a
        :class:`~repro.tracing.health.TraceHealth` to have those
        mismatches counted instead of silently ignored.
        """
        pending: Dict[ContextId, deque] = defaultdict(deque)
        segments: List[MatchedSegment] = []
        for event in self._sorted_data_events(events):
            pod = self._servpod_of(event.context)
            if pod is None:
                continue
            if event.etype == EventType.RECV:
                pending[event.context].append(event)
            elif event.etype == EventType.SEND:
                queue = pending[event.context]
                if queue:
                    recv = queue.popleft()
                    segments.append(MatchedSegment(servpod=pod, recv=recv, send=event))
                elif health is not None:
                    health.unmatched_sends += 1
        if health is not None:
            health.segments_matched += len(segments)
            health.unmatched_recvs += sum(len(q) for q in pending.values())
        return segments

    # -- inter-Servpod causality -------------------------------------------

    def inter_pairs(self, events: Iterable[SysEvent]) -> List[InterPair]:
        """Pair SEND with the peer RECV sharing the message id, FIFO."""
        pending: Dict[tuple, deque] = defaultdict(deque)
        pairs: List[InterPair] = []
        for event in self._sorted_data_events(events):
            if event.message is None:
                continue
            flow = event.message.flow
            if event.etype == EventType.SEND:
                pending[flow].append(event)
            elif event.etype == EventType.RECV:
                queue = pending[flow]
                if queue:
                    pairs.append(InterPair(send=queue.popleft(), recv=event))
        return pairs

    # -- client-side end-to-end latency -----------------------------------------

    def client_latencies(self, events: Iterable[SysEvent]) -> List[float]:
        """End-to-end latencies observed at the client (SEND→RECV pairs)."""
        pending: Dict[ContextId, deque] = defaultdict(deque)
        latencies: List[float] = []
        for event in self._sorted_data_events(events):
            if event.context.program != CLIENT_PROGRAM:
                continue
            if event.etype == EventType.SEND:
                pending[event.context].append(event)
            elif event.etype == EventType.RECV:
                queue = pending[event.context]
                if queue:
                    latencies.append(event.timestamp - queue.popleft().timestamp)
        return latencies

    # -- request-direction classification --------------------------------------

    def is_request_direction(self, event: SysEvent) -> bool:
        """True when the event's message targets a Servpod listen port."""
        if event.message is None:
            return False
        port = self._listen_ports.get(event.message.receiver_ip)
        return port is not None and event.message.receiver_port == port

    def entry_recv_count(self, events: Iterable[SysEvent]) -> Dict[str, int]:
        """Per-Servpod count of inbound *request* RECVs (= visits)."""
        counts: Dict[str, int] = defaultdict(int)
        for event in events:
            if event.etype != EventType.RECV or not self.is_request_direction(event):
                continue
            pod = self._servpod_of(event.context)
            if pod is not None:
                counts[pod] += 1
        return dict(counts)

    # -- helpers ------------------------------------------------------------

    def servpod_of(self, context: ContextId) -> Optional[str]:
        """The Servpod a context identifier belongs to (None if unknown)."""
        return self._servpod_of(context)

    def _servpod_of(self, context: ContextId) -> Optional[str]:
        endpoint = self._by_ip.get(context.host_ip)
        if endpoint is None or endpoint.program != context.program:
            return None
        return endpoint.servpod

    @staticmethod
    def _sorted_data_events(events: Iterable[SysEvent]) -> List[SysEvent]:
        data = [e for e in events if e.etype in (EventType.RECV, EventType.SEND)]
        data.sort(key=SysEvent.sort_key)
        return data
