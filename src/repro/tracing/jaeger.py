"""Built-in distributed tracing for microservice workloads.

SNMS ships with jaeger, so the paper bypasses Rhythm's request tracer for
it (§5.3.2): the application itself records per-microservice sojourn
times. :class:`JaegerTracer` models that shortcut — it reads sojourns
directly off :class:`~repro.workloads.request.RequestRecord` executions
instead of reconstructing them from kernel events.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List

from repro.errors import TracingError
from repro.tracing.sojourn import SojournStats
from repro.workloads.request import RequestRecord


class JaegerTracer:
    """Application-level tracer: exact per-request spans, no kernel events."""

    def __init__(self) -> None:
        self._sojourns: Dict[str, List[float]] = defaultdict(list)
        self._e2e: List[float] = []

    def record(self, records: Iterable[RequestRecord]) -> int:
        """Ingest request executions; returns how many were recorded."""
        n = 0
        for record in records:
            for pod, sojourn in record.sojourn_by_servpod().items():
                self._sojourns[pod].append(sojourn)
            self._e2e.append(record.e2e_ms)
            n += 1
        return n

    def reset(self) -> None:
        """Drop all recorded spans."""
        self._sojourns.clear()
        self._e2e.clear()

    def per_request(self) -> Dict[str, List[float]]:
        """Per-Servpod sojourn samples recorded so far."""
        if not self._sojourns:
            raise TracingError("jaeger tracer has recorded no requests")
        return {pod: list(values) for pod, values in self._sojourns.items()}

    def e2e_latencies(self) -> List[float]:
        """End-to-end latencies recorded so far."""
        return list(self._e2e)

    def stats(self) -> Dict[str, SojournStats]:
        """Mean/std/CoV summary per Servpod."""
        import math

        out = {}
        for pod, values in self.per_request().items():
            n = len(values)
            mean = sum(values) / n
            var = sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
            out[pod] = SojournStats(
                servpod=pod, n_requests=n, mean_ms=mean, std_ms=math.sqrt(var)
            )
        return out
