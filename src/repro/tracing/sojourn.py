"""Sojourn-time extraction from matched event streams.

Two extraction modes, mirroring §3.3:

- :meth:`SojournExtractor.per_request` — exact per-request sojourns via
  full CPG reconstruction (blocking servers, ephemeral connections). The
  offline profiler uses this: it controls the solo-run stress test, so it
  can arrange instrumentation-friendly conditions.
- :meth:`SojournExtractor.mean_only` — aggregate mean sojourns that stay
  *exact even when RECV/SEND pairing is scrambled* by non-blocking
  threads or persistent connections, because FIFO pairing preserves the
  sum of spans (the paper's Figure-5 argument: ``Σ(S_k − R_k)`` is
  invariant under permutations of equal-cardinality matchings).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.errors import TracingError
from repro.metrics.streaming import WelfordAccumulator
from repro.tracing.causality import CausalityMatcher
from repro.tracing.cpg import CausalPathGraph
from repro.tracing.events import SysEvent
from repro.tracing.health import TraceHealth


@dataclass(frozen=True)
class SojournStats:
    """Summary of one Servpod's sojourn times at one load level."""

    servpod: str
    n_requests: int
    mean_ms: float
    #: Standard deviation across requests (0 when only means are known).
    std_ms: float

    @property
    def cov(self) -> float:
        """Coefficient of variation across requests."""
        return self.std_ms / self.mean_ms if self.mean_ms > 0 else 0.0


class SojournExtractor:
    """Turns an event stream into per-Servpod sojourn statistics."""

    def __init__(self, matcher: CausalityMatcher) -> None:
        self.matcher = matcher

    def per_request(self, events: Iterable[SysEvent]) -> Dict[str, List[float]]:
        """Exact per-request sojourn lists per Servpod (blocking traces)."""
        cpg = CausalPathGraph(self.matcher)
        paths = cpg.reconstruct_requests(list(events))
        if not paths:
            raise TracingError("no requests could be reconstructed from the trace")
        out: Dict[str, List[float]] = defaultdict(list)
        for path in paths:
            for pod, sojourn in path.sojourns.items():
                out[pod].append(sojourn)
        return dict(out)

    def e2e_latencies(self, events: Iterable[SysEvent]) -> List[float]:
        """Client-observed end-to-end latencies (ms)."""
        return self.matcher.client_latencies(self.matcher.filter(list(events)))

    def mean_only(self, events: Iterable[SysEvent]) -> Dict[str, SojournStats]:
        """Mismatch-proof mean sojourns: (ΣSEND − ΣRECV) / #visits.

        ``std_ms`` is reported as 0 because individual spans are not
        trustworthy under scrambled pairings — only their sum is.
        """
        clean = self.matcher.filter(list(events))
        segments = self.matcher.intra_segments(clean)
        visits = self.matcher.entry_recv_count(clean)
        span_sum: Dict[str, float] = defaultdict(float)
        for seg in segments:
            span_sum[seg.servpod] += seg.span_ms
        stats = {}
        for pod, total in span_sum.items():
            n = visits.get(pod, 0)
            if n == 0:
                raise TracingError(f"segments matched at {pod!r} but no entry RECVs")
            stats[pod] = SojournStats(
                servpod=pod, n_requests=n, mean_ms=total / n, std_ms=0.0
            )
        return stats

    def robust_stats(
        self, events: Iterable[SysEvent]
    ) -> Tuple[Dict[str, SojournStats], TraceHealth]:
        """Mean sojourns from a possibly corrupted stream: skip and flag.

        The tolerant sibling of :meth:`mean_only` for traces degraded by
        event drop/duplication/late delivery (see
        :mod:`repro.faults.tracing`). Instead of raising on broken
        invariants it degrades gracefully and reports *how* degraded the
        stream was through a :class:`~repro.tracing.health.TraceHealth`:

        - negative spans (late-delivered SEND timestamps) clamp to 0,
        - a pod whose entry RECVs were all dropped estimates its visit
          count from its matched segment count (flagged),
        - a pod with neither segments nor visits is skipped (flagged),
        - every mean is bounded by the worst observable client latency
          (duplicated events inflate span sums; a sojourn can never
          exceed the end-to-end time of the slowest request).
        """
        health = TraceHealth()
        raw = list(events)
        health.events_seen = len(raw)
        clean = self.matcher.filter(raw)
        health.events_filtered = len(raw) - len(clean)
        segments = self.matcher.intra_segments(clean, health=health)
        visits = self.matcher.entry_recv_count(clean)
        span_sum: Dict[str, float] = defaultdict(float)
        span_count: Dict[str, int] = defaultdict(int)
        for seg in segments:
            span = seg.span_ms
            if span < 0:
                health.spans_clamped += 1
                span = 0.0
            span_sum[seg.servpod] += span
            span_count[seg.servpod] += 1
        e2e = self.matcher.client_latencies(clean)
        bound = max(e2e) if e2e else None
        stats: Dict[str, SojournStats] = {}
        for pod in sorted(set(span_sum) | set(visits)):
            n = visits.get(pod, 0)
            if n == 0:
                n = span_count.get(pod, 0)
                if n == 0:
                    health.flag_skipped(pod)
                    continue
                health.flag_estimated(pod)
            mean = span_sum.get(pod, 0.0) / n
            if bound is not None and mean > bound:
                health.means_bounded += 1
                mean = bound
            stats[pod] = SojournStats(
                servpod=pod, n_requests=n, mean_ms=mean, std_ms=0.0
            )
        return stats, health

    def stats(self, events: Iterable[SysEvent]) -> Dict[str, SojournStats]:
        """Full per-request statistics (mean, std, CoV) per Servpod.

        Uses single-pass Welford accumulation instead of the naive
        two-pass mean/variance, so the per-pod sample lists are consumed
        in one sweep with O(1) extra memory per pod.
        """
        per_request = self.per_request(events)
        out = {}
        for pod, values in per_request.items():
            acc = WelfordAccumulator()
            acc.add_many(values)
            out[pod] = SojournStats(
                servpod=pod,
                n_requests=acc.count,
                mean_ms=acc.mean,
                std_ms=acc.std(ddof=1),
            )
        return out
