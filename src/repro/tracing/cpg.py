"""Causal path graph (CPG) construction — Figure 4 of the paper.

A CPG is a DAG whose vertices are the per-Servpod event sets of one
request and whose edges are causal relations: *message relations* between
SEND/RECV pairs on neighbouring Servpods and *context relations* between
RECV/SEND pairs inside one Servpod.

Per-request reconstruction is exact when the trace was captured from
blocking servers over ephemeral connections (one thread and one 5-tuple
per request). :meth:`CausalPathGraph.reconstruct_requests` implements the
breadth-first walk from each client SEND; the resulting graphs carry
per-visit sojourn times, which the offline profiler consumes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import networkx as nx

from repro.errors import TracingError
from repro.tracing.causality import CausalityMatcher, MatchedSegment
from repro.tracing.events import ContextId, EventType, SysEvent

#: Node name used for the load-generating client.
CLIENT_NODE = "client"


@dataclass
class RequestPath:
    """One reconstructed request: its CPG and per-Servpod sojourns."""

    graph: nx.DiGraph
    #: Per-Servpod total sojourn time (ms), summed over revisits.
    sojourns: Dict[str, float] = field(default_factory=dict)
    #: Client-observed end-to-end latency (ms).
    e2e_ms: float = 0.0

    def servpods(self) -> List[str]:
        """Servpods on this request's path (excludes the client node)."""
        return [n for n in self.graph.nodes if n != CLIENT_NODE]


class CausalPathGraph:
    """Builds CPGs and per-request sojourn attributions from a trace."""

    def __init__(self, matcher: CausalityMatcher) -> None:
        self.matcher = matcher

    def reconstruct_requests(self, events: Iterable[SysEvent]) -> List[RequestPath]:
        """Reconstruct one :class:`RequestPath` per client request.

        Requires blocking servers (per-request thread ids) and ephemeral
        connections (per-request 5-tuples); raises
        :class:`~repro.errors.TracingError` if the stream is visibly
        ambiguous (a context id serving two overlapping entry requests).
        """
        clean = self.matcher.filter(events)
        inter = self.matcher.inter_pairs(clean)
        segments = self.matcher.intra_segments(clean)

        # Per-context local segments (exact per request in blocking mode).
        segs_by_ctx: Dict[ContextId, List[MatchedSegment]] = defaultdict(list)
        for seg in segments:
            segs_by_ctx[seg.recv.context].append(seg)

        # Request-direction pairs indexed by sender context; reply pairs
        # indexed by the replying (Servpod-side) context.
        out_calls: Dict[ContextId, List] = defaultdict(list)
        replies_to: Dict[ContextId, List] = defaultdict(list)
        for pair in inter:
            if self.matcher.is_request_direction(pair.send):
                out_calls[pair.send.context].append(pair)
            else:
                replies_to[pair.recv.context].append(pair)

        client_sends = sorted(
            (
                e
                for e in clean
                if e.etype == EventType.SEND
                and e.context.program == "loadgen"
                and self.matcher.is_request_direction(e)
            ),
            key=SysEvent.sort_key,
        )

        # Map each request-direction pair to its callee context.
        paths: List[RequestPath] = []
        for send in client_sends:
            pair = self._pair_for_send(out_calls[send.context], send)
            if pair is None:
                continue
            graph = nx.DiGraph()
            graph.add_node(CLIENT_NODE)
            sojourns: Dict[str, float] = {}
            self._walk(pair, CLIENT_NODE, graph, sojourns, out_calls, segs_by_ctx)
            e2e = self._client_e2e(send, replies_to[send.context])
            paths.append(RequestPath(graph=graph, sojourns=sojourns, e2e_ms=e2e))
        return paths

    def aggregate_graph(self, events: Iterable[SysEvent]) -> nx.DiGraph:
        """The service topology: union of all reconstructed request CPGs."""
        graph = nx.DiGraph()
        for path in self.reconstruct_requests(events):
            graph.add_nodes_from(path.graph.nodes)
            graph.add_edges_from(path.graph.edges)
        return graph

    # -- internals ----------------------------------------------------

    def _walk(
        self,
        pair,
        caller_node: str,
        graph: nx.DiGraph,
        sojourns: Dict[str, float],
        out_calls: Dict[ContextId, List],
        segs_by_ctx: Dict[ContextId, List[MatchedSegment]],
    ) -> None:
        callee_ctx = pair.recv.context
        pod = self.matcher.servpod_of(callee_ctx)
        if pod is None:
            raise TracingError(f"matched RECV on unknown endpoint {callee_ctx}")
        graph.add_edge(caller_node, pod, t_send=pair.send.timestamp, t_recv=pair.recv.timestamp)
        local = sum(seg.span_ms for seg in segs_by_ctx.get(callee_ctx, ()))
        # A context id may recur across sequential revisits of the same
        # pod within one request; summing matches the paper's definition.
        if pod not in sojourns:
            sojourns[pod] = local
        for downstream in out_calls.get(callee_ctx, ()):
            # Only walk calls issued after this visit began.
            if downstream.send.timestamp + 1e-12 < pair.recv.timestamp:
                continue
            self._walk(downstream, pod, graph, sojourns, out_calls, segs_by_ctx)

    @staticmethod
    def _pair_for_send(pairs: List, send: SysEvent) -> Optional[object]:
        for pair in pairs:
            if pair.send is send:
                return pair
        return None

    @staticmethod
    def _client_e2e(send: SysEvent, reply_pairs: List) -> float:
        """E2E latency: first reply RECV at the client after this SEND."""
        best = None
        for pair in reply_pairs:
            t = pair.recv.timestamp
            if t >= send.timestamp and (best is None or t < best):
                best = t
        return (best - send.timestamp) if best is not None else float("nan")
