"""BE job specifications.

A :class:`BeJobSpec` describes how a batch job behaves when it runs
*alone* on a whole machine: which fraction of each shared resource it
uses (``solo_usage``), and how many cores it needs before its bottleneck
resource saturates (``saturation_cores``). Runtime throughput under an
arbitrary allocation follows from this profile via a Leontief
(fixed-proportions) production model in :mod:`repro.bejobs.job`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError

#: Shared-resource dimensions a BE job can stress.
BE_RESOURCES = ("cpu", "llc", "membw", "net")


class BeIntensity(enum.Enum):
    """Which shared resource a BE job predominantly stresses (Table 1)."""

    CPU = "CPU"
    LLC = "LLC"
    DRAM = "DRAM"
    NETWORK = "Network"
    MIXED = "mixed"


@dataclass(frozen=True)
class BeJobSpec:
    """Static description of a BE batch job.

    Attributes
    ----------
    name:
        Catalog name, e.g. ``"stream-dram"``.
    domain:
        Human description from Table 1.
    intensity:
        Dominant resource (Table 1's "-intensive" column).
    solo_usage:
        Fraction of machine capacity used per resource when the job runs
        alone with every core, e.g. ``{"cpu": 1.0, "membw": 0.15, ...}``.
        Missing keys default to 0. The ``cpu`` entry must be > 0 — every
        job needs cores to make progress.
    saturation_cores:
        Number of cores at which the job's bottleneck resource saturates;
        beyond this, extra cores add no throughput for stream-type jobs.
    memory_gb:
        Working-set size of one instance.
    unit_seconds:
        Solo-run wall-clock seconds to finish one work unit with the whole
        machine (simulation-scaled: ~10 s units so several units finish
        within a few-minute experiment). Used to convert progress into
        completed units; work on an unfinished unit is lost on a kill.
    """

    name: str
    domain: str
    intensity: BeIntensity
    solo_usage: Dict[str, float] = field(default_factory=dict)
    saturation_cores: int = 40
    memory_gb: float = 2.0
    unit_seconds: float = 10.0

    def __post_init__(self) -> None:
        for key, value in self.solo_usage.items():
            if key not in BE_RESOURCES:
                raise ConfigurationError(f"{self.name}: unknown resource {key!r}")
            if not (0.0 <= value <= 1.0):
                raise ConfigurationError(
                    f"{self.name}: solo usage of {key} must be in [0,1], got {value}"
                )
        if self.solo_usage.get("cpu", 0.0) <= 0.0:
            raise ConfigurationError(f"{self.name}: cpu solo usage must be > 0")
        if self.saturation_cores <= 0:
            raise ConfigurationError(f"{self.name}: saturation_cores must be > 0")
        if self.unit_seconds <= 0:
            raise ConfigurationError(f"{self.name}: unit_seconds must be > 0")

    def usage(self, resource: str) -> float:
        """Solo-run usage fraction for ``resource`` (0 if unlisted)."""
        if resource not in BE_RESOURCES:
            raise ConfigurationError(f"unknown resource {resource!r}")
        return self.solo_usage.get(resource, 0.0)

    def demand_fraction(self, resource: str, cores: int, total_cores: int) -> float:
        """Demand on ``resource`` (fraction of machine) with ``cores`` cores.

        Demand ramps linearly in cores until ``saturation_cores`` and is
        flat afterwards — e.g. stream-dram saturates DRAM bandwidth with a
        handful of cores, while CPU-stress scales to every core.
        """
        if cores <= 0:
            return 0.0
        solo = self.usage(resource)
        if resource == "cpu":
            # CPU demand is simply the allocated core fraction.
            return min(1.0, cores / total_cores)
        ramp = min(1.0, cores / self.saturation_cores)
        return solo * ramp
