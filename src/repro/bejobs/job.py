"""BE job runtime state and the shared-resource throughput model.

:func:`compute_be_rates` is the single place where machine allocations,
LC resource usage and BE demand meet. Each job's progress rate is
normalized so that ``1.0`` means "what this job would achieve running
alone on the whole machine" — exactly the normalization the paper's
``BE Throughput`` metric uses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.bejobs.spec import BeJobSpec
from repro.cluster.machine import BE_DOMAIN, Machine
from repro.errors import ControlError

#: Fraction of unsatisfied LLC demand that spills into extra DRAM traffic.
LLC_SPILL_TO_MEMBW = 0.4


class BeJobState(enum.Enum):
    """Lifecycle of a BE job instance."""

    PENDING = "pending"
    RUNNING = "running"
    SUSPENDED = "suspended"
    KILLED = "killed"


@dataclass
class BeJob:
    """One BE job instance placed on (at most) one machine."""

    job_id: str
    spec: BeJobSpec
    state: BeJobState = BeJobState.PENDING
    machine_name: Optional[str] = None
    #: Integral of normalized rate over time (seconds of solo-machine work).
    normalized_work: float = 0.0
    #: Wall-clock seconds spent in RUNNING state.
    running_seconds: float = 0.0

    def start(self, machine_name: str) -> None:
        """Mark the job as running on ``machine_name``."""
        if self.state == BeJobState.KILLED:
            raise ControlError(f"{self.job_id}: cannot start a killed job")
        self.machine_name = machine_name
        self.state = BeJobState.RUNNING

    def suspend(self) -> None:
        """Pause the job (keeps memory, stops progress)."""
        if self.state == BeJobState.RUNNING:
            self.state = BeJobState.SUSPENDED

    def resume(self) -> None:
        """Resume a suspended job."""
        if self.state == BeJobState.SUSPENDED:
            self.state = BeJobState.RUNNING

    def kill(self) -> None:
        """Terminate the job; it can never run again.

        Work on the in-flight (unfinished) unit is lost — the paper's
        BE-throughput metric counts *successfully finished* jobs, so a
        StopBE kill costs real throughput. This loss is what ultimately
        punishes controllers that ride too close to the SLA.
        """
        completed = int(self.normalized_work / self.spec.unit_seconds)
        self.normalized_work = completed * self.spec.unit_seconds
        self.state = BeJobState.KILLED
        self.machine_name = None

    def advance(self, dt: float, rate: float) -> None:
        """Accumulate ``dt`` seconds of progress at normalized ``rate``."""
        if dt < 0 or rate < 0:
            raise ControlError(f"{self.job_id}: negative progress dt={dt} rate={rate}")
        if self.state == BeJobState.RUNNING:
            self.normalized_work += dt * rate
            self.running_seconds += dt

    @property
    def units_completed(self) -> float:
        """Work units finished so far (fractional)."""
        return self.normalized_work / self.spec.unit_seconds


@dataclass(frozen=True)
class LcUsage:
    """The LC Servpod's current consumption of machine-shared resources.

    Produced by the workload model each control interval; consumed here to
    compute the headroom available to BE jobs.
    """

    busy_cores: float = 0.0
    membw_fraction: float = 0.0
    net_gbps: float = 0.0
    llc_fraction: float = 0.0


@dataclass(frozen=True)
class BeResourceSnapshot:
    """Aggregate BE resource consumption after rate computation.

    Used both for utilisation metrics and as the input to the
    interference model (BE *usage* is what generates pressure).
    """

    busy_cores: float = 0.0
    membw_fraction: float = 0.0
    llc_demand_fraction: float = 0.0
    llc_occupied_fraction: float = 0.0
    net_fraction: float = 0.0
    rates: Dict[str, float] = field(default_factory=dict)

    @property
    def total_rate(self) -> float:
        """Sum of normalized job rates — the machine's BE throughput."""
        return sum(self.rates.values())


def compute_be_rates(
    machine: Machine,
    jobs: Iterable[BeJob],
    lc_usage: LcUsage,
) -> BeResourceSnapshot:
    """Compute each running BE job's normalized progress rate.

    The model is Leontief: a job needs fixed proportions of CPU, LLC,
    DRAM bandwidth and network per unit of progress (derived from its
    solo-run profile), so its rate is the minimum of the per-resource
    satisfaction ratios, capped at 1.

    DRAM bandwidth and network headroom (what the LC is not using) are
    shared among jobs in proportion to demand; cores and LLC ways are
    hard-partitioned per job by the machine. BE frequency scaling from
    the DVFS governor multiplies the CPU term.
    """
    total_cores = machine.spec.cores
    freq_ratio = machine.dvfs.ratio(BE_DOMAIN)
    running = [
        job
        for job in jobs
        if job.state == BeJobState.RUNNING
        and machine.be_allocation(job.job_id) is not None
        and not machine.be_allocation(job.job_id).suspended
    ]
    if not running:
        return BeResourceSnapshot()

    # -- per-job demands ----------------------------------------------------
    demands = {}
    for job in running:
        alloc = machine.be_allocation(job.job_id)
        cores = alloc.cores
        llc_granted = alloc.llc_ways / machine.llc.n_ways
        llc_demand = job.spec.demand_fraction("llc", cores, total_cores)
        membw_demand = job.spec.demand_fraction("membw", cores, total_cores)
        # Unsatisfied cache demand shows up as extra DRAM traffic.
        membw_demand += LLC_SPILL_TO_MEMBW * max(0.0, llc_demand - llc_granted)
        net_demand = job.spec.demand_fraction("net", cores, total_cores)
        demands[job.job_id] = {
            "cores": cores,
            "llc_granted": llc_granted,
            "llc_demand": llc_demand,
            "membw": min(1.0, membw_demand),
            "net": net_demand,
        }

    # -- share DRAM bandwidth headroom proportionally -----------------------
    membw_headroom = max(0.0, 1.0 - lc_usage.membw_fraction)
    total_membw_demand = sum(d["membw"] for d in demands.values())
    membw_scale = (
        min(1.0, membw_headroom / total_membw_demand) if total_membw_demand > 0 else 1.0
    )

    # -- share the NIC's BE cap proportionally -------------------------------
    machine.nic.observe_lc_traffic(lc_usage.net_gbps)
    be_cap_fraction = machine.nic.be_cap_gbps / machine.spec.link_gbps
    total_net_demand = sum(d["net"] for d in demands.values())
    net_scale = (
        min(1.0, be_cap_fraction / total_net_demand) if total_net_demand > 0 else 1.0
    )

    # -- per-job Leontief rate ----------------------------------------------
    rates: Dict[str, float] = {}
    busy_cores = 0.0
    membw_used = 0.0
    llc_demand_total = 0.0
    llc_occupied = 0.0
    net_used = 0.0
    for job in running:
        spec = job.spec
        d = demands[job.job_id]
        req_cpu = min(1.0, spec.saturation_cores / total_cores)
        granted_cpu = (d["cores"] / total_cores) * freq_ratio
        ratios = [granted_cpu / req_cpu]
        if spec.usage("llc") > 0:
            ratios.append(d["llc_granted"] / spec.usage("llc"))
        if spec.usage("membw") > 0:
            granted_membw = d["membw"] * membw_scale
            ratios.append(granted_membw / spec.usage("membw"))
        if spec.usage("net") > 0:
            granted_net = d["net"] * net_scale
            ratios.append(granted_net / spec.usage("net"))
        rate = max(0.0, min(1.0, min(ratios)))
        rates[job.job_id] = rate
        busy_cores += d["cores"]  # allocated BE cores busy-spin regardless of rate
        membw_used += d["membw"] * membw_scale
        llc_demand_total += d["llc_demand"]
        llc_occupied += d["llc_granted"]
        net_used += d["net"] * net_scale

    return BeResourceSnapshot(
        busy_cores=busy_cores,
        membw_fraction=min(1.0, membw_used),
        llc_demand_fraction=min(1.0, llc_demand_total),
        llc_occupied_fraction=min(1.0, llc_occupied),
        net_fraction=min(1.0, net_used),
        rates=rates,
    )
