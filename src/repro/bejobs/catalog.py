"""The BE job catalog from Table 1 of the paper.

Four synthetic stressors (CPU-stress, stream-llc, stream-dram, iperf) put
strong pressure on one resource; three real workloads (Wordcount,
ImageClassify, LSTM) put mixed pressure on several. ``stream-llc`` and
``stream-dram`` come in ``big`` (saturate the resource) and ``small``
(occupy half of it) variants, used in the §2 characterization (Figure 2).
"""

from __future__ import annotations

from typing import Dict, List

from repro.bejobs.spec import BeIntensity, BeJobSpec
from repro.errors import ConfigurationError

CPU_STRESS = BeJobSpec(
    name="CPU-stress",
    domain="CPU stress testing tool",
    intensity=BeIntensity.CPU,
    solo_usage={"cpu": 1.0, "llc": 0.05, "membw": 0.05},
    saturation_cores=40,
    memory_gb=1.0,
    unit_seconds=10.0,
)

STREAM_LLC = BeJobSpec(
    name="stream-llc",
    domain="LLC-benchmark in iBench (big: saturates the LLC)",
    intensity=BeIntensity.LLC,
    solo_usage={"cpu": 0.2, "llc": 1.0, "membw": 0.35},
    saturation_cores=8,
    memory_gb=2.0,
    unit_seconds=9.0,
)

STREAM_LLC_SMALL = BeJobSpec(
    name="stream-llc-small",
    domain="LLC-benchmark in iBench (small: occupies half the LLC)",
    intensity=BeIntensity.LLC,
    solo_usage={"cpu": 0.15, "llc": 0.5, "membw": 0.2},
    saturation_cores=6,
    memory_gb=1.0,
    unit_seconds=9.0,
)

STREAM_DRAM = BeJobSpec(
    name="stream-dram",
    domain="DRAM-benchmark in iBench (big: saturates DRAM bandwidth)",
    intensity=BeIntensity.DRAM,
    solo_usage={"cpu": 0.25, "llc": 0.3, "membw": 1.0},
    saturation_cores=16,
    memory_gb=4.0,
    unit_seconds=9.0,
)

STREAM_DRAM_SMALL = BeJobSpec(
    name="stream-dram-small",
    domain="DRAM-benchmark in iBench (small: occupies half the bandwidth)",
    intensity=BeIntensity.DRAM,
    solo_usage={"cpu": 0.15, "llc": 0.2, "membw": 0.5},
    saturation_cores=6,
    memory_gb=2.0,
    unit_seconds=9.0,
)

IPERF = BeJobSpec(
    name="iperf",
    domain="Network stress testing tool",
    intensity=BeIntensity.NETWORK,
    solo_usage={"cpu": 0.1, "membw": 0.05, "net": 1.0},
    saturation_cores=4,
    memory_gb=0.5,
    unit_seconds=8.0,
)

WORDCOUNT = BeJobSpec(
    name="wordcount",
    domain="Big data analytics",
    intensity=BeIntensity.MIXED,
    solo_usage={"cpu": 0.8, "llc": 0.4, "membw": 0.6, "net": 0.1},
    saturation_cores=32,
    memory_gb=8.0,
    unit_seconds=14.0,
)

IMAGE_CLASSIFY = BeJobSpec(
    name="imageClassify",
    domain="Image classification on CycleGAN",
    intensity=BeIntensity.MIXED,
    solo_usage={"cpu": 0.9, "llc": 0.5, "membw": 0.45},
    saturation_cores=36,
    memory_gb=6.0,
    unit_seconds=18.0,
)

LSTM = BeJobSpec(
    name="LSTM",
    domain="Deep learning on Tensorflow",
    intensity=BeIntensity.MIXED,
    solo_usage={"cpu": 0.95, "llc": 0.35, "membw": 0.5},
    saturation_cores=38,
    memory_gb=8.0,
    unit_seconds=20.0,
)

#: Every catalogued BE job, keyed by name.
BE_CATALOG: Dict[str, BeJobSpec] = {
    spec.name: spec
    for spec in (
        CPU_STRESS,
        STREAM_LLC,
        STREAM_LLC_SMALL,
        STREAM_DRAM,
        STREAM_DRAM_SMALL,
        IPERF,
        WORDCOUNT,
        IMAGE_CLASSIFY,
        LSTM,
    )
}


def be_job_spec(name: str) -> BeJobSpec:
    """Look up a BE job spec by name."""
    try:
        return BE_CATALOG[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown BE job {name!r}; known: {sorted(BE_CATALOG)}"
        ) from None


def evaluation_be_jobs() -> List[BeJobSpec]:
    """The six BE jobs used throughout the paper's §5 evaluation grids.

    (The small stream variants appear only in the §2 characterization.)
    """
    return [STREAM_LLC, STREAM_DRAM, CPU_STRESS, LSTM, IMAGE_CLASSIFY, WORDCOUNT]
