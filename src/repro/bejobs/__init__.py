"""Best-effort (BE) batch jobs.

BE jobs matter to the co-location controller through two couplings:

1. the *pressure* they put on shared resources (which degrades LC tail
   latency through :mod:`repro.interference`), and
2. the *throughput* they achieve given the resources a controller grants
   them (which drives EMU and utilisation metrics).

Both are modeled here: :class:`~repro.bejobs.spec.BeJobSpec` captures a
job's solo-run usage profile, :class:`~repro.bejobs.job.BeJob` tracks the
runtime state of one instance, and :func:`~repro.bejobs.job.compute_be_rates`
turns machine allocations into normalized progress rates.
"""

from repro.bejobs.spec import BeJobSpec, BeIntensity
from repro.bejobs.job import BeJob, BeJobState, compute_be_rates, LcUsage
from repro.bejobs.catalog import (
    BE_CATALOG,
    CPU_STRESS,
    STREAM_LLC,
    STREAM_LLC_SMALL,
    STREAM_DRAM,
    STREAM_DRAM_SMALL,
    IPERF,
    WORDCOUNT,
    IMAGE_CLASSIFY,
    LSTM,
    be_job_spec,
    evaluation_be_jobs,
)

__all__ = [
    "BeJobSpec",
    "BeIntensity",
    "BeJob",
    "BeJobState",
    "LcUsage",
    "compute_be_rates",
    "BE_CATALOG",
    "CPU_STRESS",
    "STREAM_LLC",
    "STREAM_LLC_SMALL",
    "STREAM_DRAM",
    "STREAM_DRAM_SMALL",
    "IPERF",
    "WORDCOUNT",
    "IMAGE_CLASSIFY",
    "LSTM",
    "be_job_spec",
    "evaluation_be_jobs",
]
