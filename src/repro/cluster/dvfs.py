"""DVFS frequency control and a RAPL-style power model.

The paper's frequency subcontroller monitors socket power via RAPL and,
when power exceeds 80% of TDP, steps the BE cores' frequency down by
100 MHz at a time (as long as the LC service keeps at least its
SLA-required minimum frequency).

We model one frequency domain for LC cores and one for BE cores. Dynamic
power scales with ``f^3`` (voltage tracks frequency), the standard CMOS
approximation, plus a fixed idle floor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PowerModel:
    """Socket-level power estimate.

    Attributes
    ----------
    tdp_watts:
        Thermal design power of the machine.
    idle_watts:
        Power drawn with all cores idle.
    active_watts_per_core:
        Additional power of one fully-busy core at maximum frequency.
    """

    tdp_watts: float = 115.0
    idle_watts: float = 30.0
    active_watts_per_core: float = 2.0

    def power(
        self,
        busy_cores_lc: float,
        freq_ratio_lc: float,
        busy_cores_be: float,
        freq_ratio_be: float,
    ) -> float:
        """Estimate machine power draw in watts.

        ``busy_cores_*`` are effective busy core counts; ``freq_ratio_*``
        are current frequency / max frequency.
        """
        dynamic = self.active_watts_per_core * (
            busy_cores_lc * freq_ratio_lc**3 + busy_cores_be * freq_ratio_be**3
        )
        return self.idle_watts + dynamic

    def headroom(self, current_watts: float, cap_fraction: float = 0.8) -> float:
        """Watts remaining below ``cap_fraction`` × TDP (negative if over)."""
        return cap_fraction * self.tdp_watts - current_watts


class DvfsGovernor:
    """Per-domain frequency control with a fixed step size.

    Parameters
    ----------
    min_mhz, max_mhz:
        Frequency range of the part (defaults match a 2.0 GHz Xeon with a
        1.2 GHz floor).
    step_mhz:
        Adjustment granularity; the paper uses 100 MHz.
    """

    def __init__(self, min_mhz: int = 1200, max_mhz: int = 2000, step_mhz: int = 100) -> None:
        if not (0 < min_mhz <= max_mhz):
            raise ConfigurationError(f"invalid frequency range [{min_mhz}, {max_mhz}]")
        if step_mhz <= 0 or (max_mhz - min_mhz) % step_mhz != 0:
            raise ConfigurationError(
                f"step {step_mhz} MHz must evenly divide the range "
                f"[{min_mhz}, {max_mhz}]"
            )
        self.min_mhz = int(min_mhz)
        self.max_mhz = int(max_mhz)
        self.step_mhz = int(step_mhz)
        self._freq: dict[str, int] = {}
        self._cap: dict[str, int] = {}

    def frequency(self, domain: str) -> int:
        """Current frequency of ``domain`` in MHz (domains start at max).

        A hardware cap (see :meth:`set_cap`) bounds the effective
        frequency regardless of what the governor requested.
        """
        freq = self._freq.get(domain, self.max_mhz)
        cap = self._cap.get(domain)
        return min(freq, cap) if cap is not None else freq

    def ratio(self, domain: str) -> float:
        """Current frequency of ``domain`` as a fraction of max."""
        return self.frequency(domain) / self.max_mhz

    def step_down(self, domain: str) -> int:
        """Lower ``domain`` by one step (clamped at min); returns new MHz."""
        self._freq[domain] = max(self.min_mhz, self.frequency(domain) - self.step_mhz)
        return self.frequency(domain)

    def step_up(self, domain: str) -> int:
        """Raise ``domain`` by one step (clamped at max); returns new MHz."""
        self._freq[domain] = min(self.max_mhz, self.frequency(domain) + self.step_mhz)
        return self.frequency(domain)

    def reset(self, domain: str) -> None:
        """Return ``domain`` to maximum frequency (a cap still applies)."""
        self._freq.pop(domain, None)

    # -- hardware frequency caps (fault injection) ----------------------

    def cap(self, domain: str) -> "int | None":
        """The hardware cap on ``domain`` in MHz, or ``None``."""
        return self._cap.get(domain)

    def set_cap(self, domain: str, mhz: int) -> None:
        """Pin a hardware ceiling on ``domain`` (thermal/firmware fault).

        The governor's requested frequency is preserved; the *effective*
        frequency reported by :meth:`frequency` is clamped to the cap
        until :meth:`clear_cap` lifts it — exactly how a stuck thermal
        limit behaves: ``reset``/``step_up`` appear to succeed but the
        silicon never speeds up.
        """
        if not (self.min_mhz <= mhz <= self.max_mhz):
            raise ConfigurationError(
                f"cap {mhz} MHz outside [{self.min_mhz}, {self.max_mhz}]"
            )
        self._cap[domain] = int(mhz)

    def clear_cap(self, domain: str) -> None:
        """Lift the hardware cap on ``domain``."""
        self._cap.pop(domain, None)

    def set_frequency(self, domain: str, mhz: int) -> None:
        """Pin ``domain`` to an explicit frequency within the legal range."""
        if not (self.min_mhz <= mhz <= self.max_mhz):
            raise ConfigurationError(
                f"{mhz} MHz outside [{self.min_mhz}, {self.max_mhz}]"
            )
        self._freq[domain] = int(mhz)
