"""Physical machine model.

A :class:`Machine` bundles the isolation mechanisms the paper uses —
cpuset core pinning, CAT LLC partitioning, DVFS/power capping, qdisc
network shaping — plus DRAM bandwidth/capacity accounting, and tracks the
resource allocations of the LC Servpod and every co-located BE job.

The machine is policy-free: controllers decide *when* to grow or shrink a
BE job; the machine only enforces *feasibility* (you cannot allocate cores
or cache ways that do not exist).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.cache import LastLevelCache
from repro.cluster.cgroups import CpuSet
from repro.cluster.dvfs import DvfsGovernor, PowerModel
from repro.cluster.network import Nic
from repro.cluster.resources import ResourceVector
from repro.errors import AllocationError, ConfigurationError

#: cpuset/CAT owner name used for the LC Servpod on every machine.
LC_OWNER = "lc"

#: cpuset/CAT owner name holding resources lost to injected faults.
FAULT_OWNER = "__fault__"

#: DVFS domain names.
LC_DOMAIN = "lc"
BE_DOMAIN = "be"


@dataclass(frozen=True)
class MachineSpec:
    """Static capacities of a physical machine.

    Defaults match the paper's testbed nodes (40-core Xeon E7-4820 v4 @
    2.0 GHz, 20 MB L3 per socket modeled as one 20-way cache, 64 GB DRAM
    per socket => 256 GB, 10 Gb NIC; DRAM bandwidth is a machine-level
    aggregate).
    """

    name: str = "node"
    cores: int = 40
    llc_mb: float = 20.0
    llc_ways: int = 20
    membw_gbps: float = 80.0
    memory_gb: float = 256.0
    link_gbps: float = 10.0
    tdp_watts: float = 115.0
    min_mhz: int = 1200
    max_mhz: int = 2000

    def capacity(self) -> ResourceVector:
        """Total machine capacity as a :class:`ResourceVector`."""
        return ResourceVector(
            cores=float(self.cores),
            llc_mb=self.llc_mb,
            membw_gbps=self.membw_gbps,
            netbw_gbps=self.link_gbps,
            memory_gb=self.memory_gb,
        )


@dataclass
class BeAllocation:
    """Mutable record of one BE job's resources on a machine."""

    job_id: str
    cores: int = 0
    llc_ways: int = 0
    memory_gb: float = 0.0
    suspended: bool = False

    def as_vector(self, mb_per_way: float) -> ResourceVector:
        """This allocation as a :class:`ResourceVector`."""
        return ResourceVector(
            cores=float(self.cores),
            llc_mb=self.llc_ways * mb_per_way,
            memory_gb=self.memory_gb,
        )


@dataclass
class MachineCounters:
    """Cumulative bookkeeping used by the evaluation (Table 2)."""

    be_kills: int = 0
    be_suspensions: int = 0
    be_launches: int = 0


class Machine:
    """A machine hosting one LC Servpod plus co-located BE jobs.

    Parameters
    ----------
    spec:
        Static capacities.
    be_initial_cores / be_initial_memory_gb / be_memory_step_gb:
        BE sizing constants from §3.5.2 of the paper: a newly launched BE
        job gets 1 core, 10% of the LLC and 2 GB memory; memory adjusts in
        100 MB steps; cores/LLC adjust in steps of 1 core / 10% LLC.
    """

    def __init__(
        self,
        spec: Optional[MachineSpec] = None,
        be_initial_cores: int = 1,
        be_initial_memory_gb: float = 2.0,
        be_memory_step_gb: float = 0.1,
    ) -> None:
        self.spec = spec or MachineSpec()
        self.cpuset = CpuSet(self.spec.cores)
        self.llc = LastLevelCache(self.spec.llc_mb, self.spec.llc_ways)
        self.dvfs = DvfsGovernor(self.spec.min_mhz, self.spec.max_mhz)
        self.power_model = PowerModel(tdp_watts=self.spec.tdp_watts)
        self.nic = Nic(self.spec.link_gbps)
        self.be_initial_cores = int(be_initial_cores)
        self.be_initial_memory_gb = float(be_initial_memory_gb)
        self.be_memory_step_gb = float(be_memory_step_gb)
        self.counters = MachineCounters()
        self._lc_memory_gb = 0.0
        self._be: Dict[str, BeAllocation] = {}
        # Cached left fold of per-job memory, refreshed on every mutation.
        # ``free_memory_gb`` is read in tight grow loops, so the O(n) sum
        # runs once per allocation change instead of once per read.
        self._be_mem_total = 0.0
        #: Monotonic BE-allocation version. Bumped on every change that can
        #: affect BE progress rates (launch/kill, core/LLC grow-shrink,
        #: suspend/resume) so rate computations can cache per-job inputs
        #: and revalidate with one integer compare. Memory sizing does not
        #: bump it — memory never enters the rate model.
        self.version = 0
        #: Monotonic BE-memory version. Memory sizing never changes rates
        #: (hence it leaves :attr:`version` alone) but it does change
        #: ``can_launch_be``, so controllers that memoize whole control
        #: actions need a second counter that grow/shrink-memory bump.
        self.mem_version = 0

    # -- LC reservation -----------------------------------------------------

    def reserve_lc(self, cores: int, llc_ways: int, memory_gb: float) -> None:
        """Pin the LC Servpod's cores, LLC ways and memory."""
        if self.cpuset.count(LC_OWNER) or self.llc.ways_of(LC_OWNER):
            raise ConfigurationError(f"{self.spec.name}: LC already reserved")
        if memory_gb > self.spec.memory_gb:
            raise AllocationError(
                f"{self.spec.name}: LC wants {memory_gb} GB, "
                f"machine has {self.spec.memory_gb}"
            )
        self.cpuset.allocate(LC_OWNER, cores)
        self.llc.allocate(LC_OWNER, llc_ways)
        self._lc_memory_gb = float(memory_gb)

    @property
    def lc_cores(self) -> int:
        """Cores pinned to the LC Servpod."""
        return self.cpuset.count(LC_OWNER)

    @property
    def lc_llc_ways(self) -> int:
        """LLC ways partitioned to the LC Servpod."""
        return self.llc.ways_of(LC_OWNER)

    @property
    def lc_memory_gb(self) -> float:
        """Memory reserved for the LC Servpod."""
        return self._lc_memory_gb

    # -- BE lifecycle ---------------------------------------------------

    def be_allocation(self, job_id: str) -> Optional[BeAllocation]:
        """The allocation record for ``job_id``, or ``None``."""
        return self._be.get(job_id)

    def be_jobs(self) -> Dict[str, BeAllocation]:
        """A snapshot of all BE allocations keyed by job id."""
        return dict(self._be)

    @property
    def be_instance_count(self) -> int:
        """Number of BE jobs currently placed (running or suspended)."""
        return len(self._be)

    @property
    def be_running_count(self) -> int:
        """Number of BE jobs currently running (not suspended)."""
        return sum(1 for a in self._be.values() if not a.suspended)

    @property
    def be_total_cores(self) -> int:
        """Cores held by all BE jobs."""
        return sum(a.cores for a in self._be.values())

    @property
    def be_total_llc_ways(self) -> int:
        """LLC ways held by all BE jobs."""
        return sum(a.llc_ways for a in self._be.values())

    @property
    def be_total_memory_gb(self) -> float:
        """Memory held by all BE jobs (cached fold, O(1) per read)."""
        return self._be_mem_total

    def _refresh_be_mem_total(self) -> None:
        # Exactly the fold the property used to run on every read, so the
        # cached value is bit-identical to the on-demand sum.
        self._be_mem_total = sum(a.memory_gb for a in self._be.values())

    def can_launch_be(self) -> bool:
        """True if a fresh BE job (1 core, 2 GB; LLC is best-effort) fits.

        Cores and memory are hard requirements; the 10% LLC grant is
        taken from whatever ways remain — BE jobs effectively share the
        BE side of the cache partition once it is exhausted, which is
        how the paper's machines host 15+ BE instances (Figure 17)
        against a 20-way cache.
        """
        return (
            self.cpuset.free_cores >= self.be_initial_cores
            and self.free_memory_gb >= self.be_initial_memory_gb
        )

    def launch_be(self, job_id: str) -> BeAllocation:
        """Place a new BE job with its initial allocation."""
        if job_id in self._be:
            raise ConfigurationError(f"BE job {job_id!r} already on {self.spec.name}")
        if not self.can_launch_be():
            raise AllocationError(f"{self.spec.name}: no room for BE job {job_id!r}")
        step = min(self.llc.step_ways(), self.llc.free_ways)
        self.cpuset.allocate(job_id, self.be_initial_cores)
        if step > 0:
            self.llc.allocate(job_id, step)
        alloc = BeAllocation(
            job_id=job_id,
            cores=self.be_initial_cores,
            llc_ways=step,
            memory_gb=self.be_initial_memory_gb,
        )
        self._be[job_id] = alloc
        self._refresh_be_mem_total()
        self.counters.be_launches += 1
        self.version += 1
        return alloc

    def grow_be(self, job_id: str) -> bool:
        """Grant one more core (plus an LLC step if ways remain)."""
        alloc = self._require(job_id)
        if self.cpuset.free_cores < 1:
            return False
        step = min(self.llc.step_ways(), self.llc.free_ways)
        self.cpuset.allocate(job_id, 1)
        if step > 0:
            self.llc.allocate(job_id, step)
        alloc.cores += 1
        alloc.llc_ways += step
        self.version += 1
        return True

    def shrink_be(self, job_id: str) -> bool:
        """Take one core (and an LLC step, if held) back from ``job_id``.

        Returns ``False`` once the job is at its minimum footprint.
        """
        alloc = self._require(job_id)
        if alloc.cores <= self.be_initial_cores:
            return False
        step = min(self.llc.step_ways(), alloc.llc_ways)
        self.cpuset.release(job_id, 1)
        if step > 0:
            self.llc.release(job_id, step)
        alloc.cores -= 1
        alloc.llc_ways -= step
        self.version += 1
        return True

    def grow_be_memory(self, job_id: str) -> bool:
        """Grant one 100 MB memory step if capacity allows."""
        alloc = self._require(job_id)
        if self.free_memory_gb < self.be_memory_step_gb:
            return False
        alloc.memory_gb += self.be_memory_step_gb
        self._refresh_be_mem_total()
        self.mem_version += 1
        return True

    def shrink_be_memory(self, job_id: str) -> bool:
        """Take one 100 MB memory step back (not below the initial 2 GB)."""
        alloc = self._require(job_id)
        if alloc.memory_gb - self.be_memory_step_gb < self.be_initial_memory_gb:
            return False
        alloc.memory_gb -= self.be_memory_step_gb
        self._refresh_be_mem_total()
        self.mem_version += 1
        return True

    def suspend_be(self, job_id: str) -> None:
        """Pause ``job_id``: keeps memory, stops executing (SIGSTOP-like)."""
        alloc = self._require(job_id)
        if not alloc.suspended:
            alloc.suspended = True
            self.counters.be_suspensions += 1
            self.version += 1

    def resume_be(self, job_id: str) -> None:
        """Resume a suspended BE job."""
        self._require(job_id).suspended = False
        self.version += 1

    def kill_be(self, job_id: str) -> None:
        """Kill ``job_id`` and release every resource it held."""
        alloc = self._require(job_id)
        self.cpuset.release_all(job_id)
        self.llc.release_all(job_id)
        del self._be[alloc.job_id]
        self._refresh_be_mem_total()
        self.counters.be_kills += 1
        self.version += 1

    def kill_all_be(self) -> int:
        """Kill every BE job on the machine; returns how many were killed."""
        job_ids = list(self._be)
        for job_id in job_ids:
            self.kill_be(job_id)
        return len(job_ids)

    def suspend_all_be(self) -> int:
        """Suspend every running BE job; returns how many were suspended."""
        n = 0
        for alloc in self._be.values():
            if not alloc.suspended:
                self.suspend_be(alloc.job_id)
                n += 1
        return n

    def resume_all_be(self) -> int:
        """Resume every suspended BE job; returns how many were resumed."""
        n = 0
        for alloc in self._be.values():
            if alloc.suspended:
                self.resume_be(alloc.job_id)
                n += 1
        return n

    # -- fault-injected capacity loss -----------------------------------

    @property
    def offlined_cores(self) -> int:
        """Cores currently held out of service by fault injection."""
        return self.cpuset.count(FAULT_OWNER)

    @property
    def lost_llc_ways(self) -> int:
        """LLC ways currently held out of service by fault injection."""
        return self.llc.ways_of(FAULT_OWNER)

    def offline_cores(self, n: int) -> int:
        """Take up to ``n`` cores out of the schedulable set.

        Models cores offlined after MCE errors or hot-unplug: the free
        pool is drained first; if that is not enough, BE jobs are shrunk
        (largest first, deterministically) down to their minimum
        footprint to make room. The LC reservation is never touched —
        the kernel migrates the pinned LC threads off the dead cores —
        so the actual count taken can be less than ``n`` on a crowded
        machine. Returns how many cores were actually offlined.
        """
        n = max(0, int(n))
        while self.cpuset.free_cores < n and self._shrink_any_be():
            pass
        take = min(n, self.cpuset.free_cores)
        if take > 0:
            self.cpuset.allocate(FAULT_OWNER, take)
        return take

    def restore_offlined_cores(self, n: int) -> None:
        """Return ``n`` previously offlined cores to the free pool."""
        if n > 0:
            self.cpuset.release(FAULT_OWNER, n)

    def fault_llc_ways(self, n: int) -> int:
        """Remove up to ``n`` free LLC ways from service (faulty SRAM).

        Only unowned ways are physically fenced — partitions already
        granted keep working (CAT masks are sticky) — but the *lost
        capacity* still pressures the LC through the interference model
        (see :meth:`repro.faults.cluster.ClusterFaultInjector`). Returns
        how many ways were actually fenced.
        """
        take = min(max(0, int(n)), self.llc.free_ways)
        if take > 0:
            self.llc.allocate(FAULT_OWNER, take)
        return take

    def restore_fault_llc_ways(self, n: int) -> None:
        """Return ``n`` previously fenced LLC ways to the free pool."""
        if n > 0:
            self.llc.release(FAULT_OWNER, n)

    def _shrink_any_be(self) -> bool:
        """Shrink the largest shrinkable BE job by one core (deterministic)."""
        for job_id in sorted(self._be, key=lambda j: (-self._be[j].cores, j)):
            if self.shrink_be(job_id):
                return True
        return False

    # -- capacity views -------------------------------------------------

    @property
    def free_memory_gb(self) -> float:
        """Unreserved memory capacity."""
        return self.spec.memory_gb - self._lc_memory_gb - self.be_total_memory_gb

    def power_watts(self, lc_busy_cores: float, be_busy_cores: float) -> float:
        """Current power estimate from the RAPL-like model."""
        return self.power_model.power(
            busy_cores_lc=lc_busy_cores,
            freq_ratio_lc=self.dvfs.ratio(LC_DOMAIN),
            busy_cores_be=be_busy_cores,
            freq_ratio_be=self.dvfs.ratio(BE_DOMAIN),
        )

    # -- internals --------------------------------------------------------

    def _require(self, job_id: str) -> BeAllocation:
        alloc = self._be.get(job_id)
        if alloc is None:
            raise ConfigurationError(f"no BE job {job_id!r} on {self.spec.name}")
        return alloc

    def __repr__(self) -> str:
        return (
            f"Machine({self.spec.name!r}, lc_cores={self.lc_cores}, "
            f"be_jobs={self.be_instance_count})"
        )
