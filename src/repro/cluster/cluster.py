"""A named collection of machines.

The paper's testbed is four machines; each LC Servpod is deployed on its
own machine (the number of Servpods equals the number of machines used by
a service). :class:`Cluster` provides lookup and aggregate views.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.cluster.machine import Machine, MachineSpec
from repro.errors import ConfigurationError


class Cluster:
    """A set of machines addressable by name."""

    def __init__(self, machines: Optional[Iterable[Machine]] = None) -> None:
        self._machines: Dict[str, Machine] = {}
        for machine in machines or ():
            self.add(machine)

    @classmethod
    def homogeneous(cls, n: int, base_spec: Optional[MachineSpec] = None) -> "Cluster":
        """Build ``n`` identical machines named ``node0..node{n-1}``."""
        if n <= 0:
            raise ConfigurationError(f"cluster needs >= 1 machine, got {n}")
        base = base_spec or MachineSpec()
        machines = []
        for i in range(n):
            spec = MachineSpec(
                name=f"node{i}",
                cores=base.cores,
                llc_mb=base.llc_mb,
                llc_ways=base.llc_ways,
                membw_gbps=base.membw_gbps,
                memory_gb=base.memory_gb,
                link_gbps=base.link_gbps,
                tdp_watts=base.tdp_watts,
                min_mhz=base.min_mhz,
                max_mhz=base.max_mhz,
            )
            machines.append(Machine(spec))
        return cls(machines)

    def add(self, machine: Machine) -> None:
        """Register a machine; names must be unique."""
        name = machine.spec.name
        if name in self._machines:
            raise ConfigurationError(f"duplicate machine name {name!r}")
        self._machines[name] = machine

    def __getitem__(self, name: str) -> Machine:
        try:
            return self._machines[name]
        except KeyError:
            raise ConfigurationError(f"no machine named {name!r}") from None

    def __iter__(self) -> Iterator[Machine]:
        return iter(self._machines.values())

    def __len__(self) -> int:
        return len(self._machines)

    def __contains__(self, name: str) -> bool:
        return name in self._machines

    def names(self) -> List[str]:
        """Machine names in registration order."""
        return list(self._machines)

    @property
    def total_be_instances(self) -> int:
        """BE jobs placed across the whole cluster."""
        return sum(m.be_instance_count for m in self)

    @property
    def total_be_kills(self) -> int:
        """Cumulative BE kills across the whole cluster."""
        return sum(m.counters.be_kills for m in self)
