"""qdisc-style network bandwidth shaping.

The paper's network subcontroller continuously measures the LC service's
bandwidth ``B_LC`` and grants BE jobs ``B_link - 1.2 * B_LC`` (a 20%
guard band on top of the LC's observed traffic).
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class Nic:
    """A link with qdisc-style rate allocation between LC and BE traffic.

    Parameters
    ----------
    link_gbps:
        Physical link capacity in Gb/s.
    lc_guard_factor:
        The LC reservation multiplier; the paper uses 1.2.
    """

    def __init__(self, link_gbps: float = 10.0, lc_guard_factor: float = 1.2) -> None:
        if link_gbps <= 0:
            raise ConfigurationError(f"link capacity must be positive, got {link_gbps}")
        if lc_guard_factor < 1.0:
            raise ConfigurationError(
                f"guard factor below 1.0 would starve the LC, got {lc_guard_factor}"
            )
        self.link_gbps = float(link_gbps)
        self.lc_guard_factor = float(lc_guard_factor)
        self._lc_gbps = 0.0
        self._be_cap_gbps = self.link_gbps

    @property
    def lc_gbps(self) -> float:
        """Most recently observed LC traffic in Gb/s."""
        return self._lc_gbps

    @property
    def be_cap_gbps(self) -> float:
        """Current bandwidth cap applied to BE traffic in Gb/s."""
        return self._be_cap_gbps

    def observe_lc_traffic(self, gbps: float) -> float:
        """Record LC traffic and recompute the BE cap; returns the new cap.

        BE cap = ``link - guard * B_LC``, floored at zero.
        """
        if gbps < 0:
            raise ConfigurationError(f"negative traffic {gbps}")
        self._lc_gbps = min(float(gbps), self.link_gbps)
        self._be_cap_gbps = max(0.0, self.link_gbps - self.lc_guard_factor * self._lc_gbps)
        return self._be_cap_gbps

    def be_share(self, demand_gbps: float) -> float:
        """Bandwidth actually granted to BE traffic demanding ``demand_gbps``."""
        if demand_gbps < 0:
            raise ConfigurationError(f"negative demand {demand_gbps}")
        return min(demand_gbps, self._be_cap_gbps)

    def lc_pressure(self, be_demand_gbps: float) -> float:
        """Residual pressure BE traffic puts on the LC's network headroom.

        With shaping in place, BE traffic can still consume link headroom;
        the pressure is the granted BE share as a fraction of capacity.
        """
        return self.be_share(be_demand_gbps) / self.link_gbps
