"""qdisc-style network bandwidth shaping.

The paper's network subcontroller continuously measures the LC service's
bandwidth ``B_LC`` and grants BE jobs ``B_link - 1.2 * B_LC`` (a 20%
guard band on top of the LC's observed traffic).

Fault injection can degrade the link (:meth:`Nic.set_link_scale`): the
*effective* capacity shrinks — a renegotiated 10G→1G link, a flapping
transceiver — and both the BE cap and the LC's own traffic are bounded
by it. The unservable part of the LC's demand is reported through
:meth:`Nic.lc_shortfall_fraction` so the interference model can surface
it as network pressure.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class Nic:
    """A link with qdisc-style rate allocation between LC and BE traffic.

    Parameters
    ----------
    link_gbps:
        Physical link capacity in Gb/s.
    lc_guard_factor:
        The LC reservation multiplier; the paper uses 1.2.
    """

    def __init__(self, link_gbps: float = 10.0, lc_guard_factor: float = 1.2) -> None:
        if link_gbps <= 0:
            raise ConfigurationError(f"link capacity must be positive, got {link_gbps}")
        if lc_guard_factor < 1.0:
            raise ConfigurationError(
                f"guard factor below 1.0 would starve the LC, got {lc_guard_factor}"
            )
        self.link_gbps = float(link_gbps)
        self.lc_guard_factor = float(lc_guard_factor)
        self._link_scale = 1.0
        self._lc_demand_gbps = 0.0
        self._lc_gbps = 0.0
        self._be_cap_gbps = self.link_gbps

    @property
    def link_scale(self) -> float:
        """Current degradation scale applied to the link (1.0 = healthy)."""
        return self._link_scale

    @property
    def effective_link_gbps(self) -> float:
        """Usable link capacity after degradation."""
        return self.link_gbps * self._link_scale

    @property
    def lc_gbps(self) -> float:
        """Most recently observed LC traffic in Gb/s (capacity-bounded)."""
        return self._lc_gbps

    @property
    def lc_demand_gbps(self) -> float:
        """The LC's raw traffic demand before any capacity bound."""
        return self._lc_demand_gbps

    @property
    def be_cap_gbps(self) -> float:
        """Current bandwidth cap applied to BE traffic in Gb/s."""
        return self._be_cap_gbps

    def set_link_scale(self, scale: float) -> None:
        """Degrade (or restore) the link to ``scale`` of its capacity.

        Recomputes the BE cap against the already-observed LC traffic so
        a mid-window degradation takes effect immediately.
        """
        if not (0.0 < scale <= 1.0):
            raise ConfigurationError(f"link scale must be in (0, 1], got {scale}")
        self._link_scale = float(scale)
        self.observe_lc_traffic(self._lc_demand_gbps)

    def observe_lc_traffic(self, gbps: float) -> float:
        """Record LC traffic and recompute the BE cap; returns the new cap.

        BE cap = ``effective_link - guard * B_LC``, floored at zero. LC
        traffic itself is bounded by the effective capacity — a degraded
        link cannot carry more than it has.
        """
        if gbps < 0:
            raise ConfigurationError(f"negative traffic {gbps}")
        self._lc_demand_gbps = float(gbps)
        capacity = self.effective_link_gbps
        self._lc_gbps = min(self._lc_demand_gbps, capacity)
        self._be_cap_gbps = max(0.0, capacity - self.lc_guard_factor * self._lc_gbps)
        return self._be_cap_gbps

    def lc_shortfall_fraction(self) -> float:
        """Fraction of the LC's traffic demand the link cannot carry.

        0 on a healthy link; grows toward 1 as degradation starves the
        LC. The cluster fault injector feeds this into the interference
        model as network pressure — it is how the top controller *sees*
        a NIC collapse.
        """
        if self._lc_demand_gbps <= 0:
            return 0.0
        unserved = max(0.0, self._lc_demand_gbps - self.effective_link_gbps)
        return unserved / self._lc_demand_gbps

    def be_share(self, demand_gbps: float) -> float:
        """Bandwidth actually granted to BE traffic demanding ``demand_gbps``."""
        if demand_gbps < 0:
            raise ConfigurationError(f"negative demand {demand_gbps}")
        return min(demand_gbps, self._be_cap_gbps)

    def lc_pressure(self, be_demand_gbps: float) -> float:
        """Residual pressure BE traffic puts on the LC's network headroom.

        With shaping in place, BE traffic can still consume link headroom;
        the pressure is the granted BE share as a fraction of capacity.
        """
        return self.be_share(be_demand_gbps) / self.effective_link_gbps
