"""Cgroup-style cpuset accounting.

Models the ``cpuset`` controller the paper uses for core/thread isolation:
LC Servpods and BE jobs are pinned to disjoint sets of physical cores, so
direct core contention between them is eliminated (indirect contention —
LLC, DRAM bandwidth, power — is modeled elsewhere).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.errors import AllocationError, ReleaseError


class CpuSet:
    """Tracks exclusive assignment of physical core IDs to named owners.

    Parameters
    ----------
    total_cores:
        Number of physical cores on the machine (IDs ``0..total_cores-1``).
    """

    def __init__(self, total_cores: int) -> None:
        if total_cores <= 0:
            raise AllocationError(f"machine must have >= 1 core, got {total_cores}")
        self._total = int(total_cores)
        self._free: Set[int] = set(range(self._total))
        self._owned: Dict[str, Set[int]] = {}

    @property
    def total_cores(self) -> int:
        """Total physical cores on the machine."""
        return self._total

    @property
    def free_cores(self) -> int:
        """Number of currently unassigned cores."""
        return len(self._free)

    def owned_by(self, owner: str) -> FrozenSet[int]:
        """The (possibly empty) set of core IDs assigned to ``owner``."""
        return frozenset(self._owned.get(owner, set()))

    def count(self, owner: str) -> int:
        """Number of cores assigned to ``owner``."""
        return len(self._owned.get(owner, set()))

    def allocate(self, owner: str, n: int) -> FrozenSet[int]:
        """Assign ``n`` more cores to ``owner``; returns the new core IDs.

        Cores are handed out lowest-ID-first for determinism.
        """
        if n < 0:
            raise AllocationError(f"cannot allocate {n} cores")
        if n > len(self._free):
            raise AllocationError(
                f"cpuset exhausted: {owner!r} wants {n} cores, {len(self._free)} free"
            )
        granted = set(sorted(self._free)[:n])
        self._free -= granted
        self._owned.setdefault(owner, set()).update(granted)
        return frozenset(granted)

    def release(self, owner: str, n: int) -> int:
        """Return ``n`` cores from ``owner`` to the free pool.

        Releasing more than owned raises :class:`ReleaseError`.
        """
        owned = self._owned.get(owner, set())
        if n < 0 or n > len(owned):
            raise ReleaseError(
                f"{owner!r} owns {len(owned)} cores, cannot release {n}"
            )
        victims = set(sorted(owned, reverse=True)[:n])
        owned -= victims
        self._free |= victims
        if not owned and owner in self._owned:
            del self._owned[owner]
        return n

    def release_all(self, owner: str) -> int:
        """Return every core owned by ``owner``; returns how many."""
        owned = self._owned.pop(owner, set())
        self._free |= owned
        return len(owned)

    def owners(self) -> FrozenSet[str]:
        """Names that currently own at least one core."""
        return frozenset(self._owned)
