"""Hardware substrate: machines with controllable, partitionable resources.

This package models exactly the knobs the paper's controller actuates on
real hardware:

- core pinning via cgroup cpusets (:mod:`repro.cluster.cgroups`),
- LLC way-partitioning via Intel CAT (:mod:`repro.cluster.cache`),
- per-core frequency scaling via DVFS and a RAPL-like power model
  (:mod:`repro.cluster.dvfs`),
- network-bandwidth shaping via qdisc (:mod:`repro.cluster.network`),
- DRAM bandwidth and memory capacity accounting
  (:mod:`repro.cluster.machine`).
"""

from repro.cluster.resources import ResourceVector, RESOURCE_KINDS
from repro.cluster.cache import LastLevelCache
from repro.cluster.cgroups import CpuSet
from repro.cluster.dvfs import DvfsGovernor, PowerModel
from repro.cluster.network import Nic
from repro.cluster.machine import Machine, MachineSpec
from repro.cluster.cluster import Cluster

__all__ = [
    "ResourceVector",
    "RESOURCE_KINDS",
    "LastLevelCache",
    "CpuSet",
    "DvfsGovernor",
    "PowerModel",
    "Nic",
    "Machine",
    "MachineSpec",
    "Cluster",
]
