"""Intel CAT-style last-level-cache way partitioning.

The paper partitions the LLC into an LC part and a BE part with Intel CAT.
We model the cache as ``n_ways`` equal ways; each owner holds an integral
number of ways. The BE subcontroller grows/shrinks the BE partition in
steps of 10% of the cache (paper §3.5.2), i.e. ``ways_per_step =
round(0.1 * n_ways)``.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import AllocationError, ReleaseError


class LastLevelCache:
    """A way-partitioned LLC.

    Parameters
    ----------
    size_mb:
        Total LLC capacity in MiB.
    n_ways:
        Number of ways (partitioning granularity). 20 matches the paper's
        Xeon E7-4820 v4 (20 MB L3, so one way == 1 MB).
    """

    def __init__(self, size_mb: float = 20.0, n_ways: int = 20) -> None:
        if size_mb <= 0 or n_ways <= 0:
            raise AllocationError(
                f"LLC needs positive size and ways, got {size_mb=} {n_ways=}"
            )
        self.size_mb = float(size_mb)
        self.n_ways = int(n_ways)
        self._owned: Dict[str, int] = {}

    @property
    def mb_per_way(self) -> float:
        """Capacity of a single way in MiB."""
        return self.size_mb / self.n_ways

    @property
    def free_ways(self) -> int:
        """Ways not assigned to any owner."""
        return self.n_ways - sum(self._owned.values())

    def ways_of(self, owner: str) -> int:
        """Ways currently held by ``owner`` (0 if unknown)."""
        return self._owned.get(owner, 0)

    def mb_of(self, owner: str) -> float:
        """Capacity in MiB currently held by ``owner``."""
        return self.ways_of(owner) * self.mb_per_way

    def fraction_of(self, owner: str) -> float:
        """Fraction of the whole cache held by ``owner``."""
        return self.ways_of(owner) / self.n_ways

    def allocate(self, owner: str, ways: int) -> int:
        """Give ``ways`` more ways to ``owner``; returns new total held."""
        if ways < 0:
            raise AllocationError(f"cannot allocate {ways} ways")
        if ways > self.free_ways:
            raise AllocationError(
                f"LLC exhausted: {owner!r} wants {ways} ways, {self.free_ways} free"
            )
        self._owned[owner] = self._owned.get(owner, 0) + ways
        return self._owned[owner]

    def release(self, owner: str, ways: int) -> int:
        """Take ``ways`` ways back from ``owner``; returns remaining held."""
        held = self._owned.get(owner, 0)
        if ways < 0 or ways > held:
            raise ReleaseError(f"{owner!r} holds {held} ways, cannot release {ways}")
        remaining = held - ways
        if remaining:
            self._owned[owner] = remaining
        else:
            self._owned.pop(owner, None)
        return remaining

    def release_all(self, owner: str) -> int:
        """Return all of ``owner``'s ways to the free pool; returns count."""
        return self._owned.pop(owner, 0)

    def step_ways(self, fraction: float = 0.10) -> int:
        """Ways corresponding to one adjustment step (default 10% of LLC)."""
        return max(1, round(fraction * self.n_ways))
