"""Resource vectors.

A :class:`ResourceVector` quantifies demand or capacity across the five
shared-resource dimensions the paper studies: CPU cores, LLC capacity,
DRAM bandwidth, network bandwidth, and memory capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import AllocationError

#: Canonical resource dimension names, in the order used across the package.
RESOURCE_KINDS = ("cores", "llc_mb", "membw_gbps", "netbw_gbps", "memory_gb")


@dataclass(frozen=True)
class ResourceVector:
    """An immutable quantity of machine resources.

    Attributes
    ----------
    cores:
        CPU cores (fractional cores are allowed for accounting).
    llc_mb:
        Last-level-cache capacity in MiB.
    membw_gbps:
        DRAM bandwidth in GB/s.
    netbw_gbps:
        Network bandwidth in Gb/s.
    memory_gb:
        DRAM capacity in GiB.
    """

    cores: float = 0.0
    llc_mb: float = 0.0
    membw_gbps: float = 0.0
    netbw_gbps: float = 0.0
    memory_gb: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if not (value >= 0.0):  # rejects negatives and NaN
                raise AllocationError(
                    f"resource {f.name} must be finite and >= 0, got {value!r}"
                )

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            cores=self.cores + other.cores,
            llc_mb=self.llc_mb + other.llc_mb,
            membw_gbps=self.membw_gbps + other.membw_gbps,
            netbw_gbps=self.netbw_gbps + other.netbw_gbps,
            memory_gb=self.memory_gb + other.memory_gb,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        """Subtract, raising :class:`AllocationError` on any underflow."""
        return ResourceVector(
            cores=self.cores - other.cores,
            llc_mb=self.llc_mb - other.llc_mb,
            membw_gbps=self.membw_gbps - other.membw_gbps,
            netbw_gbps=self.netbw_gbps - other.netbw_gbps,
            memory_gb=self.memory_gb - other.memory_gb,
        )

    def scaled(self, factor: float) -> "ResourceVector":
        """Return this vector scaled by a non-negative ``factor``."""
        if not (factor >= 0.0):
            raise AllocationError(f"scale factor must be >= 0, got {factor!r}")
        return ResourceVector(
            cores=self.cores * factor,
            llc_mb=self.llc_mb * factor,
            membw_gbps=self.membw_gbps * factor,
            netbw_gbps=self.netbw_gbps * factor,
            memory_gb=self.memory_gb * factor,
        )

    def fits_within(self, capacity: "ResourceVector", tolerance: float = 1e-9) -> bool:
        """True if every dimension of ``self`` is <= the same in ``capacity``."""
        return all(
            getattr(self, kind) <= getattr(capacity, kind) + tolerance
            for kind in RESOURCE_KINDS
        )

    def fractions_of(self, capacity: "ResourceVector") -> dict:
        """Per-dimension utilisation of ``self`` against ``capacity``.

        Dimensions with zero capacity report 0.0 usage.
        """
        out = {}
        for kind in RESOURCE_KINDS:
            cap = getattr(capacity, kind)
            out[kind] = (getattr(self, kind) / cap) if cap > 0 else 0.0
        return out

    def is_zero(self, tolerance: float = 1e-12) -> bool:
        """True if every dimension is (numerically) zero."""
        return all(getattr(self, kind) <= tolerance for kind in RESOURCE_KINDS)

    @classmethod
    def zero(cls) -> "ResourceVector":
        """The all-zero vector."""
        return cls()
