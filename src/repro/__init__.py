"""Rhythm — component-distinguishable workload deployment in datacenters.

A full Python reproduction of *Rhythm* (Zhao et al., EuroSys 2020) on a
discrete-event datacenter simulator. The public API re-exports the
pieces a downstream user needs:

- workload models: :func:`lc_service_spec`, :data:`LC_CATALOG`,
  :func:`snms_service`, :data:`BE_CATALOG`, :func:`be_job_spec`,
- the Rhythm pipeline: :class:`Rhythm`, :class:`RhythmConfig`,
- the Heracles baseline: :class:`HeraclesPolicy`,
  :func:`heracles_controllers`,
- the co-location runtime: :class:`ColocationExperiment`,
  :class:`ColocationConfig`, :func:`compare_systems`,
- load patterns: :class:`ConstantLoad`, :func:`clarknet_production_load`.

Quickstart::

    from repro import Rhythm, lc_service_spec
    rhythm = Rhythm(lc_service_spec("E-commerce"))
    print(rhythm.loadlimits())
    print(rhythm.slacklimits())
"""

from repro.baselines.heracles import HeraclesPolicy, heracles_controllers
from repro.bejobs.catalog import BE_CATALOG, be_job_spec, evaluation_be_jobs
from repro.core.rhythm import Rhythm, RhythmConfig
from repro.core.top_controller import ControllerThresholds, TopController
from repro.experiments.colocation import ColocationConfig, ColocationExperiment
from repro.experiments.runner import compare_systems
from repro.loadgen.clarknet import clarknet_production_load
from repro.loadgen.patterns import ConstantLoad
from repro.sim.rng import RandomStreams
from repro.workloads.catalog import LC_CATALOG, evaluation_lc_services, lc_service_spec
from repro.workloads.microservices import snms_service

__version__ = "1.0.0"

__all__ = [
    "Rhythm",
    "RhythmConfig",
    "TopController",
    "ControllerThresholds",
    "HeraclesPolicy",
    "heracles_controllers",
    "ColocationExperiment",
    "ColocationConfig",
    "compare_systems",
    "ConstantLoad",
    "clarknet_production_load",
    "RandomStreams",
    "LC_CATALOG",
    "BE_CATALOG",
    "lc_service_spec",
    "be_job_spec",
    "snms_service",
    "evaluation_lc_services",
    "evaluation_be_jobs",
    "__version__",
]
