"""Isolation mechanisms and their attenuation of BE pressure.

The paper's prototype (§4) enables four isolation mechanisms: cpuset core
pinning, Intel CAT LLC partitioning, qdisc network shaping, and
RAPL+DVFS power redistribution. None eliminates interference completely —
cores still share the memory system and power envelope, CAT leaks through
the shared directory/prefetchers, shaping leaves link contention at the
NIC queues. :class:`IsolationConfig` captures which mechanisms are on and
the residual-leak factors used when mapping BE usage to pressure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class IsolationConfig:
    """Which isolation mechanisms are active, and how leaky they are.

    Attributes
    ----------
    cpuset / cat / qdisc / dvfs:
        Mechanism toggles. All default to on, matching the prototype.
    cpuset_leak:
        Residual CPU pressure per BE busy-core fraction when cores are
        pinned disjointly (shared power, scheduler noise, SMT siblings).
    cat_leak:
        Fraction of *unsatisfied* BE cache demand that still perturbs the
        LC partition (directory conflicts, prefetcher traffic).
    no_isolation_cpu / no_isolation_cat:
        Pressure factors when the corresponding mechanism is disabled.
    """

    cpuset: bool = True
    cat: bool = True
    qdisc: bool = True
    dvfs: bool = True
    cpuset_leak: float = 0.25
    cat_leak: float = 0.30
    no_isolation_cpu: float = 1.0
    no_isolation_cat: float = 1.0

    def __post_init__(self) -> None:
        for name in ("cpuset_leak", "cat_leak", "no_isolation_cpu", "no_isolation_cat"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ConfigurationError(f"{name} must be in [0,1], got {value!r}")

    def cpu_pressure(self, be_core_fraction: float) -> float:
        """Residual CPU pressure from BE jobs occupying ``be_core_fraction``."""
        factor = self.cpuset_leak if self.cpuset else self.no_isolation_cpu
        return min(1.0, factor * be_core_fraction)

    def llc_pressure(self, occupied_fraction: float, demand_fraction: float) -> float:
        """Residual LLC pressure given BE cache occupancy and demand.

        With CAT, the LC partition itself is untouched; BE jobs perturb
        it only through the shared directory, prefetchers and way-fill
        traffic, so both their occupancy and their unsatisfied demand
        leak at ``cat_leak``. Without CAT the full demand competes
        directly with the LC's working set.
        """
        if self.cat:
            total = max(occupied_fraction, demand_fraction)
            return min(1.0, self.cat_leak * total)
        return min(1.0, self.no_isolation_cat * demand_fraction)
