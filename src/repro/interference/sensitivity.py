"""Per-component interference sensitivity vectors.

A :class:`SensitivityVector` holds one non-negative coefficient per
pressure dimension. A coefficient of 0 means the component's latency is
unaffected by pressure on that resource; larger values mean steeper
degradation. The catalog in :mod:`repro.workloads.catalog` calibrates one
vector per LC component so that the qualitative structure of Figure 2 holds
(e.g. Redis Master ≫ Slave under LLC pressure, MySQL ≫ Tomcat under DRAM
pressure, Tomcat ≫ MySQL under DVFS).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Pressure dimensions, matching :class:`repro.interference.model.Pressure`.
PRESSURE_KINDS = ("cpu", "llc", "membw", "net", "freq")


@dataclass(frozen=True)
class SensitivityVector:
    """How strongly a component's sojourn time reacts to each pressure.

    Attributes map 1:1 to :class:`~repro.interference.model.Pressure`
    dimensions. All coefficients must be finite and >= 0.
    """

    cpu: float = 0.0
    llc: float = 0.0
    membw: float = 0.0
    net: float = 0.0
    freq: float = 0.0

    def __post_init__(self) -> None:
        for kind in PRESSURE_KINDS:
            value = getattr(self, kind)
            if not (value >= 0.0):
                raise ConfigurationError(
                    f"sensitivity {kind} must be finite and >= 0, got {value!r}"
                )

    def coefficient(self, kind: str) -> float:
        """The coefficient for pressure dimension ``kind``."""
        if kind not in PRESSURE_KINDS:
            raise ConfigurationError(f"unknown pressure kind {kind!r}")
        return getattr(self, kind)

    @property
    def magnitude(self) -> float:
        """Sum of all coefficients — a crude overall-sensitivity scalar."""
        return sum(getattr(self, kind) for kind in PRESSURE_KINDS)

    def scaled(self, factor: float) -> "SensitivityVector":
        """A copy with every coefficient multiplied by ``factor`` (>= 0)."""
        if not (factor >= 0.0):
            raise ConfigurationError(f"scale factor must be >= 0, got {factor!r}")
        return SensitivityVector(
            cpu=self.cpu * factor,
            llc=self.llc * factor,
            membw=self.membw * factor,
            net=self.net * factor,
            freq=self.freq * factor,
        )
