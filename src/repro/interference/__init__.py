"""Interference modeling.

This package turns BE resource *usage* into LC performance *degradation*:

- :class:`~repro.interference.model.Pressure` — per-resource pressure the
  co-located BE jobs exert on the machine's shared resources,
- :class:`~repro.interference.sensitivity.SensitivityVector` — how strongly
  one LC component's latency reacts to pressure on each resource (this is
  the paper's central observation: these vectors differ wildly between
  components of the same service, Figure 2),
- :class:`~repro.interference.model.InterferenceModel` — combines the two
  with a load-amplification term into a sojourn-time slowdown factor,
- :class:`~repro.interference.isolation.IsolationConfig` — which hardware/
  software isolation mechanisms are active, and how they attenuate raw BE
  usage into residual pressure.
"""

from repro.interference.sensitivity import SensitivityVector
from repro.interference.isolation import IsolationConfig
from repro.interference.model import InterferenceModel, Pressure

__all__ = ["SensitivityVector", "IsolationConfig", "InterferenceModel", "Pressure"]
