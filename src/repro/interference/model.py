"""Pressure → sojourn-time slowdown.

The characterization in §2 of the paper shows two structural facts that
this model reproduces:

1. degradation under a fixed interference kind *grows with request load*
   (every panel of Figure 2 rises left to right), and
2. degradation at a fixed load *differs sharply between components*
   (Master vs Slave, Tomcat vs MySQL).

Fact 2 lives in the per-component
:class:`~repro.interference.sensitivity.SensitivityVector`; fact 1 lives
in the load-amplification term here. The slowdown for component *c* at
load *u* under pressure *p* is::

    slowdown = 1 + A(u) * sum_r  S_c[r] * p_r**gamma

with ``A(u) = 1 + beta * u / (headroom + (1 - u))`` growing sharply as the
load approaches saturation, and ``gamma > 1`` making pressure response
convex (half-intensity stressors hurt much less than half as much as
full-intensity ones — compare the big/small stream variants in Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bejobs.job import BeResourceSnapshot
from repro.errors import ConfigurationError
from repro.interference.isolation import IsolationConfig
from repro.interference.sensitivity import PRESSURE_KINDS, SensitivityVector


@dataclass(frozen=True)
class Pressure:
    """Residual per-resource pressure on the LC Servpod, each in [0, 1]."""

    cpu: float = 0.0
    llc: float = 0.0
    membw: float = 0.0
    net: float = 0.0
    freq: float = 0.0

    def __post_init__(self) -> None:
        for kind in PRESSURE_KINDS:
            value = getattr(self, kind)
            if not (0.0 <= value <= 1.0):
                raise ConfigurationError(
                    f"pressure {kind} must be in [0,1], got {value!r}"
                )

    @classmethod
    def from_be_snapshot(
        cls,
        snapshot: BeResourceSnapshot,
        total_cores: int,
        isolation: IsolationConfig,
        lc_freq_ratio: float = 1.0,
    ) -> "Pressure":
        """Derive pressure from aggregate BE usage on a machine."""
        be_core_fraction = min(1.0, snapshot.busy_cores / total_cores)
        return cls(
            cpu=isolation.cpu_pressure(be_core_fraction),
            llc=isolation.llc_pressure(
                snapshot.llc_occupied_fraction, snapshot.llc_demand_fraction
            ),
            membw=snapshot.membw_fraction,
            net=snapshot.net_fraction,
            freq=max(0.0, 1.0 - lc_freq_ratio),
        )

    @classmethod
    def none(cls) -> "Pressure":
        """Zero pressure — the LC solo run."""
        return cls()

    def is_zero(self) -> bool:
        """True when every dimension is exactly zero."""
        return all(getattr(self, kind) == 0.0 for kind in PRESSURE_KINDS)


class InterferenceModel:
    """Maps (sensitivity, pressure, load) to a sojourn-time slowdown.

    Parameters
    ----------
    beta:
        Strength of load amplification.
    headroom:
        Softening constant keeping the amplification finite at 100% load.
    gamma:
        Convexity of the pressure response (> 1).
    sigma_coupling:
        How much of the median slowdown also widens the sojourn
        distribution (interference makes latency *noisier*, not just
        slower; this drives the variance principle of §3.4).
    sigma_cap:
        Upper bound on the sigma multiplier — queueing widens tails, but
        not without limit (admission control and timeouts truncate the
        far tail on real systems).
    """

    def __init__(
        self,
        beta: float = 1.8,
        headroom: float = 0.30,
        gamma: float = 1.6,
        sigma_coupling: float = 0.12,
        sigma_cap: float = 1.35,
    ) -> None:
        if beta < 0 or headroom <= 0 or gamma < 1.0 or not (0 <= sigma_coupling <= 1):
            raise ConfigurationError(
                f"invalid interference parameters beta={beta} headroom={headroom} "
                f"gamma={gamma} sigma_coupling={sigma_coupling}"
            )
        if sigma_cap < 1.0:
            raise ConfigurationError(f"sigma_cap must be >= 1, got {sigma_cap}")
        self.beta = beta
        self.headroom = headroom
        self.gamma = gamma
        self.sigma_coupling = sigma_coupling
        self.sigma_cap = sigma_cap

    def load_amplification(self, load: float) -> float:
        """The A(u) term: 1 at idle, growing sharply near saturation."""
        load = min(max(load, 0.0), 1.0)
        return 1.0 + self.beta * load / (self.headroom + (1.0 - load))

    def slowdown(
        self, sensitivity: SensitivityVector, pressure: Pressure, load: float
    ) -> float:
        """Multiplicative sojourn-time slowdown (>= 1)."""
        if pressure.is_zero():
            return 1.0
        impact = sum(
            sensitivity.coefficient(kind) * getattr(pressure, kind) ** self.gamma
            for kind in PRESSURE_KINDS
        )
        return 1.0 + self.load_amplification(load) * impact

    def sigma_inflation(self, slowdown: float) -> float:
        """Multiplier on the lognormal sigma given a median ``slowdown``."""
        return min(self.sigma_cap, 1.0 + self.sigma_coupling * (slowdown - 1.0))
