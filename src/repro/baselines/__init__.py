"""Baseline controllers the paper compares against.

- :mod:`repro.baselines.heracles` — Heracles (Lo et al., ISCA'15) as the
  paper re-implements it: the same feedback loop and subcontrollers as
  Rhythm, but with *uniform* thresholds at every machine (loadlimit 0.85,
  slacklimit 0.10) and no per-Servpod distinction.
- :mod:`repro.baselines.static` — non-colocating references (LC solo).
- :mod:`repro.baselines.interference` — Alibaba-style single-score
  interference throttling (arXiv:2407.12248).
- :mod:`repro.baselines.predictive` — PCS-style predicted-slack control
  (arXiv:1511.02960).
"""

from repro.baselines.heracles import HeraclesPolicy, heracles_controllers
from repro.baselines.interference import (
    InterferencePolicy,
    InterferenceScoreController,
    interference_controllers,
)
from repro.baselines.predictive import (
    PredictiveController,
    PredictivePolicy,
    predictive_controllers,
)
from repro.baselines.static import LcSoloPolicy

__all__ = [
    "HeraclesPolicy",
    "heracles_controllers",
    "InterferencePolicy",
    "InterferenceScoreController",
    "interference_controllers",
    "PredictivePolicy",
    "PredictiveController",
    "predictive_controllers",
    "LcSoloPolicy",
]
