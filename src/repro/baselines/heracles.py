"""The Heracles baseline (§5.1).

Heracles is a feedback-based co-location controller that does *not*
distinguish Servpods. As re-implemented by the paper for comparison:

1. it disables BE jobs at **all** machines whenever the LC load reaches
   85% of MaxLoad, and
2. it disallows BE growth whenever the slack between the current tail
   latency and the SLA target is below 10%.

Structurally that is Algorithm 2 with ``loadlimit = 0.85`` and
``slacklimit = 0.10`` at every machine — which is exactly how we build
it, so every measured difference between systems comes from Rhythm's
per-Servpod thresholds and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.top_controller import ControllerThresholds, TopController
from repro.workloads.spec import ServiceSpec


@dataclass(frozen=True)
class HeraclesPolicy:
    """Heracles' uniform thresholds."""

    loadlimit: float = 0.85
    slacklimit: float = 0.10

    def thresholds(self) -> ControllerThresholds:
        """The same thresholds, for any machine."""
        return ControllerThresholds(
            loadlimit=self.loadlimit, slacklimit=self.slacklimit
        )


def heracles_controllers(
    service: ServiceSpec, policy: HeraclesPolicy = HeraclesPolicy()
) -> Dict[str, TopController]:
    """One uniformly-configured controller per Servpod machine.

    ``suspend_on_load_at_or_above`` is set so that at exactly 85% load
    Heracles runs no BE jobs, matching the zero-throughput bars at the
    85% grid point of Figures 9–11.
    """
    return {
        pod: TopController(
            servpod=pod,
            thresholds=policy.thresholds(),
            sla_ms=service.sla_ms,
            suspend_on_load_at_or_above=True,
        )
        for pod in service.servpod_names
    }
