"""Non-colocating reference policies.

``LcSoloPolicy`` runs the LC service alone — the reference the paper's
Figure 16 shades as "the EMU or resource utilization of LC itself", and
the baseline against which *any* co-location gain is measured.
"""

from __future__ import annotations

from typing import Dict

from repro.core.actions import BeAction
from repro.core.top_controller import ControllerThresholds, TopController
from repro.workloads.spec import ServiceSpec


class _SoloController(TopController):
    """A controller that never allows any BE job to run."""

    def _decide(self, load: float, tail_ms: float) -> BeAction:
        """Always stop BE jobs, regardless of load or slack."""
        return BeAction.STOP_BE


class LcSoloPolicy:
    """Factory for solo-run (no co-location) controllers."""

    def controllers(self, service: ServiceSpec) -> Dict[str, TopController]:
        """One always-stop controller per Servpod machine."""
        return {
            pod: _SoloController(
                servpod=pod,
                thresholds=ControllerThresholds(loadlimit=1.0, slacklimit=1.0),
                sla_ms=service.sla_ms,
            )
            for pod in service.servpod_names
        }
