"""PCS-style predictive baseline (trend-extrapolated slack control).

PCS ("Predictive Component-level Scheduling for Reducing Tail Latency",
arXiv:1511.02960) sizes resources against the *predicted* next-interval
tail latency instead of the last observed one. This baseline ports that
idea onto the repo's knobs: the controller keeps an exponentially
weighted moving average of the window tail plus a smoothed
tick-over-tick trend (double exponential smoothing), extrapolates one
control period ahead, and runs Algorithm-2-style slack thresholds on
the *predicted* slack. A rising tail therefore cuts BE growth a period
earlier than reactive controllers, at the price of over-reacting to
noise — the trade the bake-off is built to measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.actions import BeAction
from repro.core.controller import ColocationController
from repro.errors import ControlError
from repro.workloads.spec import ServiceSpec


@dataclass(frozen=True)
class PredictivePolicy:
    """Smoothing and threshold knobs of the PCS-style baseline.

    ``level_alpha``/``trend_beta`` are the double-exponential-smoothing
    gains; ``horizon_periods`` is how many control periods ahead the
    tail is extrapolated. ``loadlimit``/``slacklimit`` mirror the
    Algorithm-2 thresholds but run on the predicted slack.
    """

    level_alpha: float = 0.5
    trend_beta: float = 0.3
    horizon_periods: float = 1.0
    loadlimit: float = 0.85
    slacklimit: float = 0.10

    def __post_init__(self) -> None:
        if not (0.0 < self.level_alpha <= 1.0):
            raise ControlError(
                f"level_alpha must be in (0,1], got {self.level_alpha!r}"
            )
        if not (0.0 <= self.trend_beta <= 1.0):
            raise ControlError(
                f"trend_beta must be in [0,1], got {self.trend_beta!r}"
            )
        if self.horizon_periods < 0:
            raise ControlError(
                f"horizon_periods must be >= 0, got {self.horizon_periods!r}"
            )
        if not (0.0 < self.loadlimit <= 1.0):
            raise ControlError(f"loadlimit must be in (0,1], got {self.loadlimit!r}")
        if not (0.0 < self.slacklimit <= 1.0):
            raise ControlError(
                f"slacklimit must be in (0,1], got {self.slacklimit!r}"
            )


class PredictiveController(ColocationController):
    """One machine's predicted-slack decision loop."""

    def __init__(
        self,
        servpod: str,
        sla_ms: float,
        policy: PredictivePolicy = PredictivePolicy(),
    ) -> None:
        super().__init__(servpod, sla_ms)
        self.policy = policy
        self._level: float = 0.0
        self._trend: float = 0.0
        self._seen: bool = False

    @property
    def predicted_tail_ms(self) -> float:
        """The current one-horizon-ahead tail extrapolation."""
        return max(0.0, self._level + self.policy.horizon_periods * self._trend)

    def _decide(self, load: float, tail_ms: float) -> BeAction:
        p = self.policy
        if self._seen:
            prev_level = self._level
            self._level = prev_level + p.level_alpha * (tail_ms - prev_level)
            self._trend = self._trend + p.trend_beta * (
                (self._level - prev_level) - self._trend
            )
        else:
            self._level = tail_ms
            self._trend = 0.0
            self._seen = True
        # The observed tail breaching the SLA still stops BE outright —
        # prediction accelerates the softer actions, never the brake.
        if tail_ms > self.sla_ms:
            return BeAction.STOP_BE
        slack = self.slack(self.predicted_tail_ms)
        if slack < 0:
            return BeAction.CUT_BE
        if load > p.loadlimit:
            return BeAction.SUSPEND_BE
        if slack < p.slacklimit / 2.0:
            return BeAction.CUT_BE
        if slack < p.slacklimit:
            return BeAction.DISALLOW_BE_GROWTH
        return BeAction.ALLOW_BE_GROWTH


def predictive_controllers(
    service: ServiceSpec, policy: PredictivePolicy = PredictivePolicy()
) -> Dict[str, PredictiveController]:
    """One PCS-style predictive controller per Servpod machine."""
    return {
        pod: PredictiveController(pod, service.sla_ms, policy)
        for pod in service.servpod_names
    }
