"""Interference-scoring baseline (Alibaba-style colocation scoring).

Alibaba's production colocation stack (see "Deep Dive into the Workload
Scheduler for Large-Scale Cloud Computing", arXiv:2407.12248) throttles
best-effort work off a single machine-level *interference score* blended
from utilisation and latency signals, rather than Rhythm's per-component
thresholds. This baseline reproduces that control style on the repo's
knobs: each period it folds the normalised LC load and the tail/SLA
ratio into an exponentially smoothed score and maps fixed score bands to
the five BE actions. One scalar score, uniform bands on every machine —
deliberately component-blind, which is exactly what the bake-off is
meant to expose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.actions import BeAction
from repro.core.controller import ColocationController
from repro.errors import ControlError
from repro.workloads.spec import ServiceSpec


@dataclass(frozen=True)
class InterferencePolicy:
    """Scoring weights and bands of the interference-scoring baseline.

    The score is ``load_weight * load + tail_weight * (tail / SLA)``,
    smoothed with ``ema_alpha`` (1.0 = no smoothing). Bands map the
    smoothed score to actions: below ``allow_below`` BE may grow, then
    growth is frozen, above ``cut_above`` BE shrinks and above
    ``suspend_above`` it suspends; a tail at or past the SLA always
    stops BE outright.
    """

    load_weight: float = 0.5
    tail_weight: float = 0.5
    ema_alpha: float = 0.6
    allow_below: float = 0.55
    cut_above: float = 0.70
    suspend_above: float = 0.85

    def __post_init__(self) -> None:
        if not (0.0 < self.ema_alpha <= 1.0):
            raise ControlError(f"ema_alpha must be in (0,1], got {self.ema_alpha!r}")
        if not (0.0 < self.allow_below <= self.cut_above <= self.suspend_above):
            raise ControlError(
                "score bands must satisfy 0 < allow_below <= cut_above "
                f"<= suspend_above, got {self!r}"
            )


class InterferenceScoreController(ColocationController):
    """One machine's interference-score decision loop."""

    def __init__(
        self,
        servpod: str,
        sla_ms: float,
        policy: InterferencePolicy = InterferencePolicy(),
    ) -> None:
        super().__init__(servpod, sla_ms)
        self.policy = policy
        self._score: float = 0.0
        self._seen: bool = False

    def _decide(self, load: float, tail_ms: float) -> BeAction:
        p = self.policy
        raw = p.load_weight * min(1.0, load) + p.tail_weight * (
            tail_ms / self.sla_ms
        )
        if self._seen:
            self._score = self._score + p.ema_alpha * (raw - self._score)
        else:
            self._score = raw
            self._seen = True
        if tail_ms >= self.sla_ms:
            return BeAction.STOP_BE
        if self._score > p.suspend_above:
            return BeAction.SUSPEND_BE
        if self._score > p.cut_above:
            return BeAction.CUT_BE
        if self._score >= p.allow_below:
            return BeAction.DISALLOW_BE_GROWTH
        return BeAction.ALLOW_BE_GROWTH


def interference_controllers(
    service: ServiceSpec, policy: InterferencePolicy = InterferencePolicy()
) -> Dict[str, InterferenceScoreController]:
    """One interference-scoring controller per Servpod machine."""
    return {
        pod: InterferenceScoreController(pod, service.sla_ms, policy)
        for pod in service.servpod_names
    }
