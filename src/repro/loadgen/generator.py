"""Per-window request generation.

The simulator samples request latencies per measurement window rather
than simulating every packet; :class:`WindowLoadGenerator` decides how
many requests arrive in a window (Poisson around ``load × MaxLoad``) and
how many of them to actually sample for latency estimation (capped, so a
Redis window of 86 000 requests costs the same as an Elgg window of 200).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.loadgen.patterns import LoadPattern


@dataclass(frozen=True)
class WindowArrivals:
    """Arrivals of one measurement window.

    ``load`` is the smooth pattern value — what a monitoring stack
    reports as "current load". ``realized_load`` additionally carries
    the window's burst factor; it drives queueing (latency) and actual
    resource consumption.
    """

    t_start: float
    duration_s: float
    load: float
    realized_load: float
    n_requests: int
    n_samples: int


class WindowLoadGenerator:
    """Generates per-window arrival counts for one LC service."""

    def __init__(
        self,
        pattern: LoadPattern,
        max_qps: float,
        rng: np.random.Generator,
        sample_cap: int = 400,
        min_samples: int = 50,
        burst_sigma: float = 0.05,
    ) -> None:
        if max_qps <= 0:
            raise ConfigurationError(f"max_qps must be positive, got {max_qps}")
        if sample_cap <= 0 or min_samples <= 0 or min_samples > sample_cap:
            raise ConfigurationError(
                f"invalid sampling bounds min={min_samples} cap={sample_cap}"
            )
        if burst_sigma < 0:
            raise ConfigurationError(f"burst_sigma must be >= 0, got {burst_sigma}")
        self.pattern = pattern
        self.max_qps = float(max_qps)
        self.rng = rng
        self.sample_cap = int(sample_cap)
        self.min_samples = int(min_samples)
        self.burst_sigma = float(burst_sigma)

    def window(self, t_start: float, duration_s: float) -> WindowArrivals:
        """Arrivals for the window starting at ``t_start``.

        The window's realised load carries a lognormal burst factor on
        top of the pattern: production traffic fluctuates at time scales
        below the control period, which is what makes riding close to
        the SLA dangerous (a burst landing on a loaded window violates
        before any controller can react).
        """
        if duration_s <= 0:
            raise ConfigurationError(f"window must be positive, got {duration_s}")
        load = float(self.pattern.load_at(t_start + duration_s / 2.0))
        load = min(1.0, max(0.0, load))
        realized = load
        if self.burst_sigma > 0:
            realized *= float(np.exp(self.rng.normal(0.0, self.burst_sigma)))
        realized = min(1.0, max(0.0, realized))
        expected = realized * self.max_qps * duration_s
        n_requests = int(self.rng.poisson(expected)) if expected > 0 else 0
        n_samples = 0
        if n_requests > 0:
            n_samples = int(min(self.sample_cap, max(self.min_samples, n_requests)))
            n_samples = min(n_samples, max(n_requests, self.min_samples))
        return WindowArrivals(
            t_start=t_start,
            duration_s=duration_s,
            load=load,
            realized_load=realized,
            n_requests=n_requests,
            n_samples=n_samples,
        )
