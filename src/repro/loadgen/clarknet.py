"""A synthetic ClarkNet-like production request trace.

The paper (§5.3) replays five days of the ClarkNet web trace, scaled down
to six hours while keeping the traffic level and fluctuation pattern. The
original archive is not redistributable here, so we synthesise a trace
with the same published structure: strong 24-hour periodicity, a daytime
plateau with an evening peak, a deep night trough, per-day level drift,
and short-term fluctuation. The five synthetic days are then compressed
into a configurable experiment duration exactly as the paper does.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.loadgen.patterns import LoadPattern

#: Days of trace synthesised before compression, matching the paper.
TRACE_DAYS = 5
#: Hourly samples per synthetic day.
_SAMPLES_PER_DAY = 24


def _daily_profile(hour: float) -> float:
    """Relative traffic level over one day (0..1 scale before noise).

    Shape follows the published ClarkNet diurnal curve: minimum around
    05:00, a morning ramp, a daytime plateau and an evening peak around
    21:00.
    """
    morning = math.exp(-((hour - 11.0) ** 2) / (2 * 3.5**2))
    evening = math.exp(-((hour - 20.5) ** 2) / (2 * 2.5**2))
    night_floor = 0.18
    return night_floor + 0.55 * morning + 0.75 * evening


class ClarkNetLoad:
    """The compressed synthetic trace as a :class:`LoadPattern`.

    ``duration_s`` is the experiment's wall-clock span; the five trace
    days are linearly compressed into it (six hours in the paper).
    """

    def __init__(self, levels: List[float], duration_s: float) -> None:
        if len(levels) < 2:
            raise ConfigurationError("trace needs at least two samples")
        if duration_s <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration_s}")
        self._levels = np.asarray(levels, dtype=float)
        self.duration_s = float(duration_s)

    def load_at(self, t: float) -> float:
        """Linearly interpolated load fraction at ``t`` (clamped)."""
        if t <= 0:
            return float(self._levels[0])
        if t >= self.duration_s:
            return float(self._levels[-1])
        pos = t / self.duration_s * (len(self._levels) - 1)
        lo = int(pos)
        frac = pos - lo
        return float(self._levels[lo] * (1 - frac) + self._levels[lo + 1] * frac)

    @property
    def levels(self) -> np.ndarray:
        """The underlying (hourly, pre-compression) load samples."""
        return self._levels.copy()


def clarknet_production_load(
    duration_s: float = 6 * 3600.0,
    peak_fraction: float = 0.93,
    seed: int = 11,
    days: int = TRACE_DAYS,
) -> LoadPattern:
    """Build the production load pattern used by the §5.3 experiments.

    Parameters
    ----------
    duration_s:
        Experiment duration the trace days are compressed into (the
        paper compresses five days into six hours).
    peak_fraction:
        Load fraction the busiest trace hour maps to.
    seed:
        Seed for day-level drift and hour-level fluctuation.
    days:
        Trace days synthesised before compression. Simulation-scale
        experiments compress fewer days into shorter durations so the
        *ramp rate relative to the 2-second control period* stays
        comparable to the paper's (a 3-hour evening ramp spanned
        hundreds of control periods on their testbed).
    """
    if not (0.0 < peak_fraction <= 1.0):
        raise ConfigurationError(f"peak fraction must be in (0,1], got {peak_fraction!r}")
    if days <= 0:
        raise ConfigurationError(f"days must be positive, got {days!r}")
    rng = np.random.default_rng(seed)
    levels: List[float] = []
    for day in range(days):
        day_scale = 1.0 + rng.normal(0.0, 0.06)  # day-to-day drift
        for sample in range(_SAMPLES_PER_DAY):
            hour = sample * 24.0 / _SAMPLES_PER_DAY
            level = _daily_profile(hour) * day_scale
            level *= 1.0 + rng.normal(0.0, 0.05)  # short-term fluctuation
            levels.append(max(0.02, level))
    arr = np.asarray(levels)
    arr = arr / arr.max() * peak_fraction
    return ClarkNetLoad(arr.tolist(), duration_s)
