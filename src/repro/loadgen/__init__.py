"""Load generation: request-rate patterns and arrival processes.

- :mod:`repro.loadgen.patterns` — constant/step/diurnal load shapes,
- :mod:`repro.loadgen.clarknet` — the synthetic ClarkNet-like production
  trace used in §5.3 (five days of diurnal web traffic scaled to six
  hours),
- :mod:`repro.loadgen.alibaba` — the bundled Alibaba
  cluster-trace-v2018 machine-usage sample, replayable through
  :class:`~repro.loadgen.patterns.ReplayLoad`,
- :mod:`repro.loadgen.generator` — Poisson request-count generation per
  measurement window with sampling caps.
"""

from repro.loadgen.patterns import (
    ConstantLoad,
    DiurnalLoad,
    LoadPattern,
    StepLoad,
    SweepLoad,
)
from repro.loadgen.alibaba import alibaba_machine_ids, alibaba_machine_load
from repro.loadgen.clarknet import clarknet_production_load
from repro.loadgen.generator import WindowLoadGenerator

__all__ = [
    "LoadPattern",
    "ConstantLoad",
    "StepLoad",
    "DiurnalLoad",
    "SweepLoad",
    "alibaba_machine_ids",
    "alibaba_machine_load",
    "clarknet_production_load",
    "WindowLoadGenerator",
]
