"""Load generation: request-rate patterns and arrival processes.

- :mod:`repro.loadgen.patterns` — constant/step/diurnal load shapes,
- :mod:`repro.loadgen.clarknet` — the synthetic ClarkNet-like production
  trace used in §5.3 (five days of diurnal web traffic scaled to six
  hours),
- :mod:`repro.loadgen.generator` — Poisson request-count generation per
  measurement window with sampling caps.
"""

from repro.loadgen.patterns import (
    ConstantLoad,
    DiurnalLoad,
    LoadPattern,
    StepLoad,
    SweepLoad,
)
from repro.loadgen.clarknet import clarknet_production_load
from repro.loadgen.generator import WindowLoadGenerator

__all__ = [
    "LoadPattern",
    "ConstantLoad",
    "StepLoad",
    "DiurnalLoad",
    "SweepLoad",
    "clarknet_production_load",
    "WindowLoadGenerator",
]
