"""Request-load patterns.

A :class:`LoadPattern` maps simulation time (seconds) to a load fraction
of the service's MaxLoad. Patterns are pure functions of time so every
controller and metric window sees a consistent load signal.
"""

from __future__ import annotations

import math
from typing import Callable, Protocol, Sequence, Tuple

from repro.errors import ConfigurationError


class LoadPattern(Protocol):
    """Anything that maps time to a load fraction."""

    def load_at(self, t: float) -> float:
        """Load fraction of MaxLoad at simulation time ``t`` (seconds)."""
        ...


class ConstantLoad:
    """A fixed load fraction (the §5.2 constant-load experiments)."""

    def __init__(self, fraction: float) -> None:
        if not (0.0 <= fraction <= 1.0):
            raise ConfigurationError(f"load fraction must be in [0,1], got {fraction!r}")
        self.fraction = float(fraction)

    def load_at(self, t: float) -> float:
        """The constant fraction, for any ``t``."""
        return self.fraction


class StepLoad:
    """Piecewise-constant load: a list of (start_time, fraction) steps."""

    def __init__(self, steps: Sequence[Tuple[float, float]]) -> None:
        if not steps:
            raise ConfigurationError("StepLoad needs at least one step")
        ordered = sorted(steps)
        for _, fraction in ordered:
            if not (0.0 <= fraction <= 1.0):
                raise ConfigurationError(f"step fraction {fraction!r} out of [0,1]")
        self.steps = ordered

    def load_at(self, t: float) -> float:
        """The fraction of the last step whose start time is <= ``t``."""
        current = self.steps[0][1]
        for start, fraction in self.steps:
            if t >= start:
                current = fraction
            else:
                break
        return current


class DiurnalLoad:
    """A smooth day/night cycle: ``base + amplitude * sin`` shape."""

    def __init__(
        self,
        base: float = 0.55,
        amplitude: float = 0.35,
        period_s: float = 86400.0,
        phase_s: float = 0.0,
    ) -> None:
        if period_s <= 0:
            raise ConfigurationError(f"period must be positive, got {period_s}")
        if not (0.0 <= base - amplitude and base + amplitude <= 1.0):
            raise ConfigurationError(
                f"diurnal range [{base - amplitude}, {base + amplitude}] leaves [0,1]"
            )
        self.base = base
        self.amplitude = amplitude
        self.period_s = period_s
        self.phase_s = phase_s

    def load_at(self, t: float) -> float:
        """Sinusoidal load at ``t``."""
        angle = 2.0 * math.pi * (t + self.phase_s) / self.period_s
        return self.base + self.amplitude * math.sin(angle)


class SweepLoad:
    """Linear ramp from ``start`` to ``end`` over ``duration_s`` seconds."""

    def __init__(self, start: float, end: float, duration_s: float) -> None:
        for fraction in (start, end):
            if not (0.0 <= fraction <= 1.0):
                raise ConfigurationError(f"sweep fraction {fraction!r} out of [0,1]")
        if duration_s <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration_s}")
        self.start = start
        self.end = end
        self.duration_s = duration_s

    def load_at(self, t: float) -> float:
        """Linearly interpolated load, clamped past the ramp's end."""
        if t <= 0:
            return self.start
        if t >= self.duration_s:
            return self.end
        return self.start + (self.end - self.start) * (t / self.duration_s)


class FlashCrowdLoad:
    """A base pattern with superimposed flash-crowd spikes.

    Each crowd is ``(start_s, peak_fraction, ramp_s, decay_s)``: the
    extra load ramps linearly from 0 to ``peak_fraction`` over
    ``ramp_s`` seconds, then decays exponentially with time constant
    ``decay_s``. The total is clamped into [0, 1], so a crowd landing on
    an already-busy diurnal peak saturates rather than overflows.
    """

    def __init__(
        self,
        base: LoadPattern,
        crowds: Sequence[Tuple[float, float, float, float]],
    ) -> None:
        validated = []
        for crowd in crowds:
            if len(crowd) != 4:
                raise ConfigurationError(
                    f"crowd must be (start_s, peak, ramp_s, decay_s), got {crowd!r}"
                )
            start_s, peak, ramp_s, decay_s = crowd
            if start_s < 0:
                raise ConfigurationError(f"crowd start must be >= 0, got {start_s}")
            if not (0.0 < peak <= 1.0):
                raise ConfigurationError(f"crowd peak {peak!r} out of (0,1]")
            if ramp_s <= 0 or decay_s <= 0:
                raise ConfigurationError(
                    f"crowd ramp/decay must be positive, got {ramp_s}/{decay_s}"
                )
            validated.append((float(start_s), float(peak), float(ramp_s), float(decay_s)))
        self.base = base
        self.crowds = sorted(validated)

    def load_at(self, t: float) -> float:
        """Base load plus every active crowd's surge, clamped to [0, 1]."""
        load = self.base.load_at(t)
        for start_s, peak, ramp_s, decay_s in self.crowds:
            dt = t - start_s
            if dt < 0:
                break  # crowds are sorted; none later can be active
            if dt <= ramp_s:
                load += peak * (dt / ramp_s)
            else:
                load += peak * math.exp(-(dt - ramp_s) / decay_s)
        return min(1.0, max(0.0, load))


class ReplayLoad:
    """Trace replay: piecewise-constant levels sampled every ``interval_s``.

    ``levels[i]`` holds for ``t`` in ``[i * interval_s, (i+1) * interval_s)``.
    With ``loop=True`` the trace wraps around (for driving long
    simulations from a short recorded window); otherwise the last level
    holds forever.
    """

    def __init__(
        self,
        levels: Sequence[float],
        interval_s: float,
        loop: bool = False,
    ) -> None:
        if not levels:
            raise ConfigurationError("ReplayLoad needs at least one level")
        if interval_s <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval_s}")
        for level in levels:
            if not (0.0 <= level <= 1.0):
                raise ConfigurationError(f"trace level {level!r} out of [0,1]")
        self.levels = [float(level) for level in levels]
        self.interval_s = float(interval_s)
        self.loop = bool(loop)

    def load_at(self, t: float) -> float:
        """The trace level covering ``t`` (clamped or wrapped at the ends)."""
        if t < 0:
            return self.levels[0]
        index = int(t / self.interval_s)
        if self.loop:
            index %= len(self.levels)
        elif index >= len(self.levels):
            index = len(self.levels) - 1
        return self.levels[index]


class CallableLoad:
    """Adapts a plain function ``t -> fraction`` to the pattern protocol."""

    def __init__(self, fn: Callable[[float], float]) -> None:
        self._fn = fn

    def load_at(self, t: float) -> float:
        """Delegate to the wrapped callable, clamped into [0, 1]."""
        return min(1.0, max(0.0, float(self._fn(t))))
