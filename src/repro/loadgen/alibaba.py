"""The bundled Alibaba cluster-trace-v2018 machine-usage sample.

``data/alibaba_v2018_machine_usage.csv`` carries a downsampled sample
in the trace's ``machine_usage`` format (machine id, timestamp in
seconds, CPU utilisation percent): four machines over 24 hours at
5-minute resolution. The original archive is thousands of machines over
eight days and not vendorable, so the sample is synthesised to the
published statistics — the regeneration recipe (seed 20180926, diurnal
profile + AR(1) fluctuation + batch bursts) is documented in the file's
header. Trace levels feed straight into
:class:`~repro.loadgen.patterns.ReplayLoad`, so a fleet instance can
replay a machine's recorded day instead of the parametric
:class:`~repro.loadgen.patterns.DiurnalLoad`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.loadgen.patterns import ReplayLoad

#: The bundled sample, resolved relative to the installed package.
DATA_FILE = Path(__file__).parent / "data" / "alibaba_v2018_machine_usage.csv"

#: Sampling interval of the bundled trace (the v2018 downsample step).
ALIBABA_INTERVAL_S = 300.0

_cache: Dict[str, List[float]] = {}


def _read_sample() -> Dict[str, List[float]]:
    """Parse the CSV once: machine id -> utilisation series in [0, 1]."""
    if _cache:
        return _cache
    series: Dict[str, List[Tuple[int, float]]] = {}
    with open(DATA_FILE, newline="", encoding="utf-8") as fh:
        rows = csv.reader(line for line in fh if not line.startswith("#"))
        header = next(rows)
        if header != ["machine_id", "timestamp_s", "cpu_util_pct"]:
            raise ConfigurationError(
                f"unexpected trace sample header: {header!r}"
            )
        for machine_id, timestamp_s, cpu_util_pct in rows:
            series.setdefault(machine_id, []).append(
                (int(timestamp_s), float(cpu_util_pct) / 100.0)
            )
    for machine_id, points in series.items():
        points.sort()
        for k, (t, _level) in enumerate(points):
            if t != k * int(ALIBABA_INTERVAL_S):
                raise ConfigurationError(
                    f"trace sample for {machine_id!r} is not uniform "
                    f"{ALIBABA_INTERVAL_S:.0f}s-spaced at row {k}"
                )
        _cache[machine_id] = [level for _t, level in points]
    return _cache


def alibaba_machine_ids() -> Tuple[str, ...]:
    """Machine ids available in the bundled sample, sorted."""
    return tuple(sorted(_read_sample()))


def alibaba_machine_load(
    machine_id: str | None = None, loop: bool = True
) -> ReplayLoad:
    """The recorded day of one sampled machine as a load pattern.

    ``machine_id`` defaults to the first machine (sorted order);
    ``loop=True`` (the default) wraps the 24-hour window so traces can
    drive arbitrarily long simulations, mirroring how the paper replays
    its compressed ClarkNet days.
    """
    sample = _read_sample()
    if machine_id is None:
        machine_id = sorted(sample)[0]
    if machine_id not in sample:
        raise ConfigurationError(
            f"unknown trace machine {machine_id!r}; "
            f"bundled: {sorted(sample)}"
        )
    return ReplayLoad(
        sample[machine_id], interval_s=ALIBABA_INTERVAL_S, loop=loop
    )
