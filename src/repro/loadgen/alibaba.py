"""Alibaba cluster-trace-v2018 machine-usage loading.

``data/alibaba_v2018_machine_usage.csv`` carries a downsampled sample
in the trace's ``machine_usage`` format (machine id, timestamp in
seconds, CPU utilisation percent): four machines over 24 hours at
5-minute resolution. The original archive is thousands of machines over
eight days and not vendorable, so the sample is synthesised to the
published statistics — the regeneration recipe (seed 20180926, diurnal
profile + AR(1) fluctuation + batch bursts) is documented in the file's
header. Trace levels feed straight into
:class:`~repro.loadgen.patterns.ReplayLoad`, so a fleet instance can
replay a machine's recorded day instead of the parametric
:class:`~repro.loadgen.patterns.DiurnalLoad`.

:func:`read_machine_usage` additionally loads a *real* trace file: it
accepts both the bundled 3-column format and the raw, headerless
v2018 ``machine_usage`` rows (``machine_id, time_stamp,
cpu_util_percent, mem_util_percent, …``), tolerates the archive's
messiness — malformed rows are skipped and counted, irregular
timestamps are bucketed to the sampling interval and gaps
forward-filled — and is deterministic: the same file bytes always
produce the same level series, so a fleet replaying an external trace
has a stable digest (pinned in ``tests/test_loadgen.py``). The fleet
CLI reaches it via ``fleet --load alibaba --trace FILE``.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.loadgen.patterns import ReplayLoad

#: The bundled sample, resolved relative to the installed package.
DATA_FILE = Path(__file__).parent / "data" / "alibaba_v2018_machine_usage.csv"

#: Sampling interval of the bundled trace (the v2018 downsample step).
ALIBABA_INTERVAL_S = 300.0

_cache: Dict[str, List[float]] = {}


def _read_sample() -> Dict[str, List[float]]:
    """Parse the CSV once: machine id -> utilisation series in [0, 1]."""
    if _cache:
        return _cache
    series: Dict[str, List[Tuple[int, float]]] = {}
    with open(DATA_FILE, newline="", encoding="utf-8") as fh:
        rows = csv.reader(line for line in fh if not line.startswith("#"))
        header = next(rows)
        if header != ["machine_id", "timestamp_s", "cpu_util_pct"]:
            raise ConfigurationError(
                f"unexpected trace sample header: {header!r}"
            )
        for machine_id, timestamp_s, cpu_util_pct in rows:
            series.setdefault(machine_id, []).append(
                (int(timestamp_s), float(cpu_util_pct) / 100.0)
            )
    for machine_id, points in series.items():
        points.sort()
        for k, (t, _level) in enumerate(points):
            if t != k * int(ALIBABA_INTERVAL_S):
                raise ConfigurationError(
                    f"trace sample for {machine_id!r} is not uniform "
                    f"{ALIBABA_INTERVAL_S:.0f}s-spaced at row {k}"
                )
        _cache[machine_id] = [level for _t, level in points]
    return _cache


def alibaba_machine_ids() -> Tuple[str, ...]:
    """Machine ids available in the bundled sample, sorted."""
    return tuple(sorted(_read_sample()))


def alibaba_machine_load(
    machine_id: str | None = None, loop: bool = True
) -> ReplayLoad:
    """The recorded day of one sampled machine as a load pattern.

    ``machine_id`` defaults to the first machine (sorted order);
    ``loop=True`` (the default) wraps the 24-hour window so traces can
    drive arbitrarily long simulations, mirroring how the paper replays
    its compressed ClarkNet days.
    """
    sample = _read_sample()
    if machine_id is None:
        machine_id = sorted(sample)[0]
    if machine_id not in sample:
        raise ConfigurationError(
            f"unknown trace machine {machine_id!r}; "
            f"bundled: {sorted(sample)}"
        )
    return ReplayLoad(
        sample[machine_id], interval_s=ALIBABA_INTERVAL_S, loop=loop
    )


# -- external machine_usage trace files -----------------------------------

#: The bundled sample's header row; external files may carry it too.
_SAMPLE_HEADER = ["machine_id", "timestamp_s", "cpu_util_pct"]

#: Per-path parse cache (external files are read once per process).
_trace_cache: Dict[str, "MachineUsageTrace"] = {}


class MachineUsageTrace:
    """One parsed ``machine_usage`` file: levels per machine + accounting."""

    def __init__(
        self,
        path: str,
        series: Dict[str, List[float]],
        interval_s: float,
        rows_read: int,
        rows_skipped: int,
    ) -> None:
        self.path = path
        self.series = series
        self.interval_s = interval_s
        self.rows_read = rows_read
        self.rows_skipped = rows_skipped

    def machine_ids(self) -> Tuple[str, ...]:
        """Machine ids in the trace, sorted."""
        return tuple(sorted(self.series))

    def load(self, machine_id: Optional[str] = None, loop: bool = True) -> ReplayLoad:
        """One machine's recorded series as a load pattern."""
        if machine_id is None:
            machine_id = self.machine_ids()[0]
        if machine_id not in self.series:
            raise ConfigurationError(
                f"unknown trace machine {machine_id!r} in {self.path}; "
                f"available: {list(self.machine_ids())[:8]}"
            )
        return ReplayLoad(
            self.series[machine_id], interval_s=self.interval_s, loop=loop
        )


def _parse_row(row: List[str]) -> Optional[Tuple[str, float, float]]:
    """One trace row -> (machine id, timestamp s, level in [0, 1]).

    Returns ``None`` for malformed rows: too few columns, empty
    machine id, non-numeric timestamp/utilisation, negative timestamp,
    or utilisation outside [0, 100]. The v2018 archive leaves
    utilisation blank on some rows, which lands here too.
    """
    if len(row) < 3:
        return None
    machine_id = row[0].strip()
    if not machine_id:
        return None
    try:
        timestamp = float(row[1])
        util_pct = float(row[2])
    except ValueError:
        return None
    if timestamp < 0 or not (0.0 <= util_pct <= 100.0):
        return None
    return machine_id, timestamp, util_pct / 100.0


def read_machine_usage(
    path: "str | Path", interval_s: float = ALIBABA_INTERVAL_S
) -> MachineUsageTrace:
    """Parse a ``machine_usage`` CSV into per-machine level series.

    Accepts the bundled 3-column format (with or without its header)
    and the raw headerless v2018 rows (extra columns are ignored).
    Deterministic resampling: each machine's timestamps are shifted to
    its own first sample, bucketed to ``interval_s`` bins (bin value =
    mean of the bin's samples, in file order), and interior gaps are
    forward-filled with the previous level — so the resulting
    :class:`~repro.loadgen.patterns.ReplayLoad` steps uniformly no
    matter how raggedly the archive sampled. Malformed rows are
    skipped and counted in ``rows_skipped``; a file with *no* valid
    rows (empty, comments only, or fully malformed) raises
    :class:`~repro.errors.ConfigurationError`.
    """
    if interval_s <= 0:
        raise ConfigurationError(
            f"trace interval must be > 0, got {interval_s}"
        )
    resolved = str(Path(path))
    cached = _trace_cache.get(resolved)
    if cached is not None and cached.interval_s == interval_s:
        return cached
    raw: Dict[str, List[Tuple[float, float]]] = {}
    rows_read = 0
    rows_skipped = 0
    try:
        fh = open(resolved, newline="", encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace file: {exc}") from None
    with fh:
        reader = csv.reader(
            line for line in fh if line.strip() and not line.startswith("#")
        )
        for row in reader:
            if rows_read == 0 and [c.strip() for c in row[:3]] == _SAMPLE_HEADER:
                continue  # bundled-format header line
            rows_read += 1
            parsed = _parse_row(row)
            if parsed is None:
                rows_skipped += 1
                continue
            machine_id, timestamp, level = parsed
            raw.setdefault(machine_id, []).append((timestamp, level))
    if not raw:
        raise ConfigurationError(
            f"trace file {resolved} has no valid machine_usage rows "
            f"({rows_read} read, {rows_skipped} malformed)"
        )
    series: Dict[str, List[float]] = {}
    for machine_id, points in raw.items():
        t0 = min(t for t, _level in points)
        bins: Dict[int, List[float]] = {}
        for t, level in points:
            bins.setdefault(int(round((t - t0) / interval_s)), []).append(level)
        levels: List[float] = []
        last = bins[0][0] if 0 in bins else points[0][1]
        for k in range(max(bins) + 1):
            if k in bins:
                last = sum(bins[k]) / len(bins[k])
            levels.append(last)
        series[machine_id] = levels
    trace = MachineUsageTrace(
        path=resolved,
        series=series,
        interval_s=interval_s,
        rows_read=rows_read,
        rows_skipped=rows_skipped,
    )
    _trace_cache[resolved] = trace
    return trace


def clear_trace_cache() -> None:
    """Drop the per-path parse cache (tests use this for isolation)."""
    _trace_cache.clear()
