"""Batched structure-of-arrays (SoA) simulation kernel.

The per-event python path (:mod:`repro.sim.engine` callbacks, per-job
dict loops in :func:`repro.bejobs.job.compute_be_rates`, per-request
closures in :mod:`repro.workloads.queueing`) tops out around a thousand
events per second on one core. This module re-expresses the same-tick
work as contiguous numpy arrays keyed by (machine, Servpod) coordinates
and drains whole ticks with vectorized operations:

- :class:`BeRateKernel` mirrors each machine's BE allocation state into
  flat per-job arrays (CPU grants, LLC ratios, bandwidth demands),
  revalidated with one integer compare against ``Machine.version``, and
  evaluates every job's Leontief rate in a handful of array ops.
- :class:`BatchedServiceSampler` builds the per-Servpod lognormal
  parameter blocks once per tick and replays the call-tree walk against
  them, consuming the latency RNG stream in exactly the scalar order.
- :func:`drain_fifo_queue` replays the G/G/c FIFO event loop as a
  Lindley start-time recurrence over plain floats plus vectorized
  sojourn/wait extraction — no engine, no per-request closures.
- :class:`BatchedColocationKernel` composes the pieces into a drop-in
  replacement for the scalar ``ColocationExperiment._tick``.

Identity pinning
----------------
The scalar path remains the reference implementation. Every batched
computation here is pinned **bit-identical** to it: same outputs, same
final RNG states, with and without fault injection. The pattern (see
DESIGN.md) is:

1. mutate the world through the *same* scalar code (machines, pools,
   subcontrollers, fault injector are shared, not re-implemented);
2. cache only values the scalar path recomputes deterministically
   (sensitivity vectors, usage coefficient sums, per-job demands),
   invalidated by ``Machine.version``;
3. where floats are folded, preserve the scalar fold order exactly
   (python-float accumulation, ``cumsum``-style left-to-right chains);
4. draw randomness through the same generators with the same call
   shapes, so the bit streams are consumed identically.

Kernel selection is *not* part of :class:`ColocationConfig` — both
kernels produce identical results, so cache keys deliberately do not
distinguish them (a regression test proves the identity that justifies
the sharing).
"""

from __future__ import annotations

import heapq
import os
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bejobs.job import (
    LLC_SPILL_TO_MEMBW,
    BeJobState,
    BeResourceSnapshot,
    LcUsage,
)
from repro.cluster.machine import BE_DOMAIN, LC_DOMAIN, Machine
from repro.errors import ConfigurationError
from repro.interference.model import Pressure
from repro.workloads.latency import LatencyModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.colocation import ColocationExperiment
    from repro.workloads.service import Service
    from repro.workloads.spec import CallNode

#: Environment variable selecting the simulation kernel.
KERNEL_ENV_VAR = "RHYTHM_KERNEL"

#: Valid kernel names.
KERNELS = ("scalar", "batched")


def resolve_kernel(explicit: Optional[str] = None) -> str:
    """Resolve the kernel choice: explicit arg > ``RHYTHM_KERNEL`` > scalar."""
    value = explicit if explicit is not None else os.environ.get(KERNEL_ENV_VAR)
    if value is None or value == "":
        return "scalar"
    value = str(value).strip().lower()
    if value not in KERNELS:
        raise ConfigurationError(
            f"unknown simulation kernel {value!r}; expected one of {KERNELS}"
        )
    return value


# ---------------------------------------------------------------------------
# BE progress rates: SoA mirror of one machine's allocation state
# ---------------------------------------------------------------------------


class _MachineMirror:
    """Flat per-job arrays for one machine's *running* BE jobs.

    Rebuilt whenever ``Machine.version`` moves (launch/kill/grow/shrink/
    suspend/resume); between bumps every cached value is exactly what
    the scalar :func:`~repro.bejobs.job.compute_be_rates` would
    recompute from the same allocations.
    """

    __slots__ = (
        "version",
        "job_ids",
        "cpu_base",
        "req_cpu",
        "llc_ratio",
        "membw",
        "membw_div",
        "membw_mask",
        "net",
        "net_div",
        "net_mask",
        "total_membw_demand",
        "total_net_demand",
        "busy_cores",
        "llc_demand_total",
        "llc_occupied_total",
    )

    def __init__(self, machine: Machine, jobs: Sequence) -> None:
        self.version = machine.version
        total_cores = machine.spec.cores
        running = [
            job
            for job in jobs
            if job.state == BeJobState.RUNNING
            and machine.be_allocation(job.job_id) is not None
            and not machine.be_allocation(job.job_id).suspended
        ]
        n = len(running)
        self.job_ids: List[str] = [job.job_id for job in running]
        cpu_base = np.empty(n)
        req_cpu = np.empty(n)
        llc_ratio = np.empty(n)
        membw = np.empty(n)
        membw_div = np.empty(n)
        membw_mask = np.empty(n, dtype=bool)
        net = np.empty(n)
        net_div = np.empty(n)
        net_mask = np.empty(n, dtype=bool)
        # Scalar-order python folds: compute_be_rates accumulates these
        # with ``+=`` over the running list, so the cached totals carry
        # the exact same rounding.
        total_membw_demand = 0.0
        total_net_demand = 0.0
        busy_cores = 0.0
        llc_demand_total = 0.0
        llc_occupied_total = 0.0
        for i, job in enumerate(running):
            spec = job.spec
            alloc = machine.be_allocation(job.job_id)
            cores = alloc.cores
            llc_granted = alloc.llc_ways / machine.llc.n_ways
            llc_demand = spec.demand_fraction("llc", cores, total_cores)
            membw_demand = spec.demand_fraction("membw", cores, total_cores)
            membw_demand += LLC_SPILL_TO_MEMBW * max(0.0, llc_demand - llc_granted)
            membw_i = min(1.0, membw_demand)
            net_i = spec.demand_fraction("net", cores, total_cores)
            cpu_base[i] = cores / total_cores
            req_cpu[i] = min(1.0, spec.saturation_cores / total_cores)
            llc_usage = spec.usage("llc")
            llc_ratio[i] = llc_granted / llc_usage if llc_usage > 0 else np.inf
            membw[i] = membw_i
            membw_usage = spec.usage("membw")
            membw_mask[i] = membw_usage > 0
            membw_div[i] = membw_usage if membw_usage > 0 else 1.0
            net[i] = net_i
            net_usage = spec.usage("net")
            net_mask[i] = net_usage > 0
            net_div[i] = net_usage if net_usage > 0 else 1.0
            total_membw_demand += membw_i
            total_net_demand += net_i
            busy_cores += cores
            llc_demand_total += llc_demand
            llc_occupied_total += llc_granted
        self.cpu_base = cpu_base
        self.req_cpu = req_cpu
        self.llc_ratio = llc_ratio
        self.membw = membw
        self.membw_div = membw_div
        self.membw_mask = membw_mask
        self.net = net
        self.net_div = net_div
        self.net_mask = net_mask
        self.total_membw_demand = total_membw_demand
        self.total_net_demand = total_net_demand
        self.busy_cores = busy_cores
        self.llc_demand_total = llc_demand_total
        self.llc_occupied_total = llc_occupied_total


class BeRateKernel:
    """Vectorized, mirror-cached replacement for ``compute_be_rates``."""

    def __init__(self) -> None:
        self._mirrors: Dict[str, _MachineMirror] = {}

    def be_rates(
        self, machine: Machine, jobs: Sequence, lc_usage: LcUsage
    ) -> BeResourceSnapshot:
        """Bit-identical to ``compute_be_rates(machine, jobs, lc_usage)``."""
        mirror = self._mirrors.get(machine.spec.name)
        if mirror is None or mirror.version != machine.version:
            mirror = _MachineMirror(machine, jobs)
            self._mirrors[machine.spec.name] = mirror
        if not mirror.job_ids:
            # The scalar path returns before touching the NIC when no
            # jobs run — preserve that exactly (NIC state is observable).
            return BeResourceSnapshot()

        freq_ratio = machine.dvfs.ratio(BE_DOMAIN)
        membw_headroom = max(0.0, 1.0 - lc_usage.membw_fraction)
        membw_scale = (
            min(1.0, membw_headroom / mirror.total_membw_demand)
            if mirror.total_membw_demand > 0
            else 1.0
        )
        machine.nic.observe_lc_traffic(lc_usage.net_gbps)
        be_cap_fraction = machine.nic.be_cap_gbps / machine.spec.link_gbps
        net_scale = (
            min(1.0, be_cap_fraction / mirror.total_net_demand)
            if mirror.total_net_demand > 0
            else 1.0
        )

        # Leontief rates across all jobs at once. min() over the scalar
        # ratio list is order-insensitive for non-NaN floats, so chained
        # np.minimum reproduces it exactly; resources a job does not use
        # contribute +inf, exactly like the scalar path's absent ratios.
        ratios = (mirror.cpu_base * freq_ratio) / mirror.req_cpu
        ratios = np.minimum(ratios, mirror.llc_ratio)
        granted_membw = mirror.membw * membw_scale
        ratios = np.minimum(
            ratios,
            np.where(mirror.membw_mask, granted_membw / mirror.membw_div, np.inf),
        )
        granted_net = mirror.net * net_scale
        ratios = np.minimum(
            ratios,
            np.where(mirror.net_mask, granted_net / mirror.net_div, np.inf),
        )
        rate_arr = np.maximum(0.0, np.minimum(1.0, ratios))

        rates = {
            job_id: float(rate)
            for job_id, rate in zip(mirror.job_ids, rate_arr)
        }
        # Scalar-order folds of the granted shares (n <= max BE
        # instances, so plain python folds are cheap and bit-exact).
        membw_used = 0.0
        for g in granted_membw.tolist():
            membw_used += g
        net_used = 0.0
        for g in granted_net.tolist():
            net_used += g
        return BeResourceSnapshot(
            busy_cores=mirror.busy_cores,
            membw_fraction=min(1.0, membw_used),
            llc_demand_fraction=min(1.0, mirror.llc_demand_total),
            llc_occupied_fraction=min(1.0, mirror.llc_occupied_total),
            net_fraction=min(1.0, net_used),
            rates=rates,
        )


# ---------------------------------------------------------------------------
# Latency sampling: pod-indexed parameter arrays, one build per tick
# ---------------------------------------------------------------------------


class BatchedServiceSampler:
    """Call-tree sampler over per-tick pod-indexed parameter arrays.

    ``Service.sample_e2e`` rebuilds each visited node's lognormal
    parameter block (log-medians, sigmas) on every visit; this sampler
    builds one ``(components, 1)`` block per Servpod per tick — via the
    same :meth:`LatencyModel.component_params` — and replays the exact
    walk. Draw shapes, draw order and combination operators
    (``np.maximum.reduce`` / ``np.add.reduce``) match the scalar walk
    call for call, so the RNG bit stream is consumed identically.
    """

    def __init__(self, service: "Service") -> None:
        self._service = service
        self._stream_name = f"service:{service.spec.name}:latency"
        self._pods = {pod.name: pod for pod in service.spec.servpods}

    def sample_e2e(
        self,
        load: float,
        n: int,
        slowdowns: Dict[str, float],
        inflations: Dict[str, float],
    ) -> np.ndarray:
        """Bit-identical to ``Service.sample_e2e`` under the same state."""
        service = self._service
        rng = service.streams.stream(self._stream_name)
        params = {
            name: LatencyModel.component_params(
                pod,
                load,
                slowdowns.get(name, 1.0),
                inflations.get(name, 1.0),
            )
            for name, pod in self._pods.items()
        }
        counts = service._type_counts(n, rng)
        e2e = np.empty(n)
        offset = 0
        for rtype, count in counts:
            if count == 0:
                continue
            e2e[offset : offset + count] = self._walk(
                rtype.root, count, params, rng
            )
            offset += count
        return e2e

    def _walk(
        self,
        node: "CallNode",
        n: int,
        params: Dict[str, Tuple[np.ndarray, np.ndarray]],
        rng: np.random.Generator,
    ) -> np.ndarray:
        means, sigmas = params[node.servpod]
        draws = rng.lognormal(
            mean=means, sigma=sigmas, size=(means.shape[0], n)
        )
        total = draws[0]
        for row in draws[1:]:
            total = total + row
        if not node.children:
            return total
        child_times = [
            self._walk(child, n, params, rng) for child in node.children
        ]
        if node.parallel:
            downstream = np.maximum.reduce(child_times)
        else:
            downstream = np.add.reduce(child_times)
        return total + downstream


# ---------------------------------------------------------------------------
# Queueing: engine-free FIFO drain
# ---------------------------------------------------------------------------


def drain_fifo_queue(
    arrival_times: Sequence[float],
    service_times: Sequence[float],
    workers: int,
    warmup_s: float,
    horizon_s: float,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Replay a G/G/c FIFO queue without the event engine.

    Returns ``(sojourns_ms, waits_ms, events_fired)`` bit-identical to
    the engine-driven loop in ``QueueingComponent.simulate``:

    - Start times follow the Lindley recurrence ``start_i = max(t_i,
      min_free)`` over a heap of plain worker-free times. FIFO
      discipline means services begin in arrival order, and the engine's
      ``clock.now + service_s`` additions are reproduced as the same
      python-float sums, so every start/finish time matches bit for bit.
    - Completion records are emitted in finish order (arrival index
      breaking ties — the engine's event-sequence order), so downstream
      ``np.mean``/``np.percentile`` pairwise folds see the same operand
      order.
    - ``events_fired`` counts every arrival plus each finish at or
      before the drain horizon: exactly the events the engine fires.
    """
    n = len(arrival_times)
    if n == 0:
        return np.empty(0), np.empty(0), 0
    free = [0.0] * workers
    starts: List[float] = [0.0] * n
    for i, t in enumerate(arrival_times):
        m = free[0]
        start = t if t >= m else m
        starts[i] = start
        heapq.heapreplace(free, start + service_times[i])
    t_arr = np.asarray(arrival_times)
    s_arr = np.asarray(service_times)
    finish = np.asarray(starts) + s_arr
    order = np.argsort(finish, kind="stable")
    fo = finish[order]
    to = t_arr[order]
    so = s_arr[order]
    fired = fo <= horizon_s
    events = n + int(np.count_nonzero(fired))
    keep = fired & (to >= warmup_s)
    sojourns = ((fo - to) * 1000.0)[keep]
    waits = (((fo - to) - so) * 1000.0)[keep]
    return sojourns, waits, events


# ---------------------------------------------------------------------------
# The batched colocation tick
# ---------------------------------------------------------------------------


class BatchedColocationKernel:
    """Drop-in batched implementation of ``ColocationExperiment._tick``.

    The experiment's world objects (machines, pools, subcontrollers,
    fault injector, metrics) stay authoritative and are mutated through
    the experiment's own shared phase helpers; the kernel only swaps the
    two hot computations — BE rate evaluation and latency sampling — for
    their SoA counterparts, plus caches each Servpod's (deterministic)
    effective sensitivity vector.
    """

    def __init__(self, experiment: "ColocationExperiment") -> None:
        self._exp = experiment
        self._pods = list(experiment._runs)
        self._servpods = {
            pod: experiment.deployment.servpod(pod) for pod in self._pods
        }
        self._machines = {
            pod: self._servpods[pod].machine for pod in self._pods
        }
        self._sensitivities = {
            pod: self._servpods[pod].effective_sensitivity()
            for pod in self._pods
        }
        self._be = BeRateKernel()
        self._sampler = BatchedServiceSampler(experiment.service)

    def tick(self, t: float, dt: float) -> None:
        """One control period, bit-identical to the scalar ``_tick``."""
        exp = self._exp
        model = exp.config.interference
        injector = exp._fault_injector
        window = exp._begin_tick(t, dt)
        load = window.load
        realized = window.realized_load

        # Phase 1: physics across all pods — vectorized BE rates per
        # machine, shared scalar pressure/slowdown math on top.
        slowdowns: Dict[str, float] = {}
        inflations: Dict[str, float] = {}
        snapshots: Dict[str, BeResourceSnapshot] = {}
        usages: Dict[str, LcUsage] = {}
        for pod in self._pods:
            machine = self._machines[pod]
            run = exp._runs[pod]
            usage = usages[pod] = exp.service.lc_usage(pod, realized)
            exp._network.apply(machine, usage.net_gbps)
            snapshot = self._be.be_rates(machine, run.pool.jobs(), usage)
            snapshots[pod] = snapshot
            pressure = Pressure.from_be_snapshot(
                snapshot,
                machine.spec.cores,
                exp.config.isolation,
                lc_freq_ratio=machine.dvfs.ratio(LC_DOMAIN),
            )
            if injector is not None:
                pressure = injector.adjust_pressure(machine, pressure)
            slowdown = model.slowdown(
                self._sensitivities[pod], pressure, realized
            )
            if injector is not None:
                slowdown *= injector.stall_factor(machine.spec.name)
            slowdowns[pod] = slowdown
            inflations[pod] = model.sigma_inflation(slowdown)

        # Phase 2: batched latency sampling over per-tick pod arrays.
        if window.n_samples > 0:
            latencies = self._sampler.sample_e2e(
                realized, window.n_samples, slowdowns, inflations
            )
            tail_ms = exp._window_tail(latencies)
            window_closed = True
        else:
            tail_ms = 0.0
            window_closed = False

        # Phases 3-4: shared scalar helpers (cheap; world mutation must
        # go through the same code as the reference path).
        exp._advance_be(dt, snapshots)
        exp._control_phase(
            t, dt, load, tail_ms, window_closed, snapshots, usages
        )
