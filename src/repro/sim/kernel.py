"""Batched structure-of-arrays (SoA) simulation kernel.

The per-event python path (:mod:`repro.sim.engine` callbacks, per-job
dict loops in :func:`repro.bejobs.job.compute_be_rates`, per-request
closures in :mod:`repro.workloads.queueing`) tops out around a thousand
events per second on one core. This module re-expresses the same-tick
work as contiguous numpy arrays keyed by (machine, Servpod) coordinates
and drains whole ticks with vectorized operations:

- :class:`BeRateKernel` mirrors each machine's BE allocation state into
  flat per-job arrays (CPU grants, LLC ratios, bandwidth demands),
  revalidated with one integer compare against ``Machine.version``, and
  evaluates every job's Leontief rate in a handful of array ops.
- :class:`BatchedServiceSampler` builds the per-Servpod lognormal
  parameter blocks once per tick and replays the call-tree walk against
  them, consuming the latency RNG stream in exactly the scalar order.
- :func:`drain_fifo_queue` replays the G/G/c FIFO event loop as a
  Lindley start-time recurrence over plain floats plus vectorized
  sojourn/wait extraction — no engine, no per-request closures.
- :class:`BatchedColocationKernel` composes the pieces into a drop-in
  replacement for the scalar ``ColocationExperiment._tick``.
- :class:`FleetColocationKernel` lifts the same idea across *machines*:
  it runs many ``ColocationExperiment`` instances in lockstep, holding
  one contiguous (machines × job-slots) array family for BE rates and
  progress, (machines,) arrays for LC usage, NIC caps, DVFS state and
  metric integrals, so a fleet tick is a handful of whole-array numpy
  ops plus one python pass for the (stateful) per-machine controllers.

Identity pinning
----------------
The scalar path remains the reference implementation. Every batched
computation here is pinned **bit-identical** to it: same outputs, same
final RNG states, with and without fault injection. The pattern (see
DESIGN.md) is:

1. mutate the world through the *same* scalar code (machines, pools,
   subcontrollers, fault injector are shared, not re-implemented);
2. cache only values the scalar path recomputes deterministically
   (sensitivity vectors, usage coefficient sums, per-job demands),
   invalidated by ``Machine.version``;
3. where floats are folded, preserve the scalar fold order exactly
   (python-float accumulation, ``cumsum``-style left-to-right chains);
4. draw randomness through the same generators with the same call
   shapes, so the bit streams are consumed identically.

Kernel selection is *not* part of :class:`ColocationConfig` — both
kernels produce identical results, so cache keys deliberately do not
distinguish them (a regression test proves the identity that justifies
the sharing).
"""

from __future__ import annotations

import copy
import heapq
import math
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bejobs.job import (
    LLC_SPILL_TO_MEMBW,
    BeJobState,
    BeResourceSnapshot,
    LcUsage,
)
from repro.cluster.machine import BE_DOMAIN, LC_DOMAIN, Machine
from repro.core.actions import BeAction
from repro.errors import ConfigurationError
from repro.interference.model import Pressure
from repro.interference.sensitivity import PRESSURE_KINDS
from repro.metrics.collector import MachineMetrics, TickSample
from repro.workloads.latency import LatencyModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.colocation import ColocationExperiment
    from repro.workloads.service import Service
    from repro.workloads.spec import CallNode

#: Environment variable selecting the simulation kernel.
KERNEL_ENV_VAR = "RHYTHM_KERNEL"

#: Valid kernel names.
KERNELS = ("scalar", "batched")


def resolve_kernel(explicit: Optional[str] = None) -> str:
    """Resolve the kernel choice: explicit arg > ``RHYTHM_KERNEL`` > batched.

    The batched kernel is the default: it is pinned bit-identical to the
    scalar reference and an order of magnitude faster. ``RHYTHM_KERNEL=
    scalar`` remains the escape hatch (and the reference for identity
    tests and benchmarks).
    """
    value = explicit if explicit is not None else os.environ.get(KERNEL_ENV_VAR)
    if value is None or value == "":
        return "batched"
    value = str(value).strip().lower()
    if value not in KERNELS:
        raise ConfigurationError(
            f"unknown simulation kernel {value!r}; expected one of {KERNELS}"
        )
    return value


# ---------------------------------------------------------------------------
# BE progress rates: SoA mirror of one machine's allocation state
# ---------------------------------------------------------------------------


class _MachineMirror:
    """Flat per-job rows for one machine's *running* BE jobs.

    Rebuilt whenever ``Machine.version`` moves (launch/kill/grow/shrink/
    suspend/resume); between bumps every cached value is exactly what
    the scalar :func:`~repro.bejobs.job.compute_be_rates` would
    recompute from the same allocations. Rows are python lists, not
    arrays: a machine holds at most a handful of BE jobs, so the fused
    scalar loop in :meth:`BeRateKernel.be_rates` beats whole-array
    numpy on dispatch cost alone — and elementwise float64 equals
    python-float arithmetic bit for bit, so the identity pin holds.

    ``row_cache`` (per machine, owned by :class:`BeRateKernel`) carries
    individual job rows across rebuilds: a row depends only on the
    job's frozen spec and its ``(cores, llc_ways)`` allocation, so a
    version bump that touches one job (launch, grow) can reuse every
    other job's row verbatim. Cached rows are the exact floats the
    uncached branch computes, and the totals folds below always run in
    job order over those values, so rounding is unchanged.
    """

    __slots__ = (
        "version",
        "job_ids",
        "jobs",
        "cpu_base",
        "req_cpu",
        "llc_ratio",
        "membw",
        "membw_div",
        "membw_mask",
        "net",
        "net_div",
        "net_mask",
        "total_membw_demand",
        "total_net_demand",
        "busy_cores",
        "llc_demand_total",
        "llc_occupied_total",
        "p_cpu",
        "p_llc",
        "last_rates",
    )

    def __init__(
        self,
        machine: Machine,
        jobs: Sequence,
        isolation=None,
        row_cache: Optional[Dict[tuple, tuple]] = None,
    ) -> None:
        self.version = machine.version
        total_cores = machine.spec.cores
        running = [
            job
            for job in jobs
            if job.state == BeJobState.RUNNING
            and machine.be_allocation(job.job_id) is not None
            and not machine.be_allocation(job.job_id).suspended
        ]
        n = len(running)
        self.job_ids: List[str] = [job.job_id for job in running]
        self.jobs = running
        self.last_rates: List[float] = []
        cpu_base: List[float] = [0.0] * n
        req_cpu: List[float] = [0.0] * n
        llc_ratio: List[float] = [0.0] * n
        membw: List[float] = [0.0] * n
        membw_div: List[float] = [0.0] * n
        membw_mask: List[bool] = [False] * n
        net: List[float] = [0.0] * n
        net_div: List[float] = [0.0] * n
        net_mask: List[bool] = [False] * n
        # Scalar-order python folds: compute_be_rates accumulates these
        # with ``+=`` over the running list, so the cached totals carry
        # the exact same rounding.
        total_membw_demand = 0.0
        total_net_demand = 0.0
        busy_cores = 0.0
        llc_demand_total = 0.0
        llc_occupied_total = 0.0
        for i, job in enumerate(running):
            spec = job.spec
            alloc = machine.be_allocation(job.job_id)
            cores = alloc.cores
            row_key = (job.job_id, spec.name, cores, alloc.llc_ways)
            row = None if row_cache is None else row_cache.get(row_key)
            if row is None:
                llc_granted = alloc.llc_ways / machine.llc.n_ways
                llc_demand = spec.demand_fraction("llc", cores, total_cores)
                membw_demand = spec.demand_fraction(
                    "membw", cores, total_cores
                )
                membw_demand += LLC_SPILL_TO_MEMBW * max(
                    0.0, llc_demand - llc_granted
                )
                membw_i = min(1.0, membw_demand)
                net_i = spec.demand_fraction("net", cores, total_cores)
                llc_usage = spec.usage("llc")
                membw_usage = spec.usage("membw")
                net_usage = spec.usage("net")
                row = (
                    llc_granted,
                    llc_demand,
                    cores / total_cores,
                    min(1.0, spec.saturation_cores / total_cores),
                    llc_granted / llc_usage if llc_usage > 0 else np.inf,
                    membw_i,
                    membw_usage > 0,
                    membw_usage if membw_usage > 0 else 1.0,
                    net_i,
                    net_usage > 0,
                    net_usage if net_usage > 0 else 1.0,
                )
                if row_cache is not None:
                    row_cache[row_key] = row
            llc_granted = row[0]
            llc_demand = row[1]
            cpu_base[i] = row[2]
            req_cpu[i] = row[3]
            llc_ratio[i] = row[4]
            membw_i = row[5]
            membw[i] = membw_i
            membw_mask[i] = row[6]
            membw_div[i] = row[7]
            net_i = row[8]
            net[i] = net_i
            net_mask[i] = row[9]
            net_div[i] = row[10]
            total_membw_demand += membw_i
            total_net_demand += net_i
            busy_cores += cores
            llc_demand_total += llc_demand
            llc_occupied_total += llc_granted
        self.cpu_base = cpu_base
        self.req_cpu = req_cpu
        self.llc_ratio = llc_ratio
        self.membw = membw
        self.membw_div = membw_div
        self.membw_mask = membw_mask
        self.net = net
        self.net_div = net_div
        self.net_mask = net_mask
        self.total_membw_demand = total_membw_demand
        self.total_net_demand = total_net_demand
        self.busy_cores = busy_cores
        self.llc_demand_total = llc_demand_total
        self.llc_occupied_total = llc_occupied_total
        # CPU and LLC pressure depend only on allocation state, so they
        # are row-cacheable (membw/net pressure is per-tick). Same
        # expressions as ``Pressure.from_be_snapshot`` over this
        # mirror's totals.
        if isolation is not None:
            self.p_cpu = isolation.cpu_pressure(
                min(1.0, busy_cores / total_cores)
            )
            self.p_llc = isolation.llc_pressure(
                min(1.0, llc_occupied_total), min(1.0, llc_demand_total)
            )
        else:
            self.p_cpu = 0.0
            self.p_llc = 0.0


class BeRateKernel:
    """Mirror-cached, scalar-fused replacement for ``compute_be_rates``."""

    def __init__(self, isolation=None) -> None:
        self._mirrors: Dict[str, _MachineMirror] = {}
        self._isolation = isolation
        # Per-machine job-row caches shared across mirror rebuilds (see
        # the ``row_cache`` note on :class:`_MachineMirror`).
        self._rows: Dict[str, Dict[tuple, tuple]] = {}

    def mirror(self, machine: Machine) -> _MachineMirror:
        """The current (freshly validated) mirror for ``machine``.

        Valid immediately after a same-tick :meth:`be_rates` call; the
        cached ``p_cpu``/``p_llc`` and ``last_rates`` belong to that
        call's allocation state and rate computation.
        """
        return self._mirrors[machine.spec.name]

    def advance_be(self, machine: Machine, dt: float) -> None:
        """Phase-3 BE progress from the mirror's cached job rows.

        Bit-identical to ``ColocationExperiment._advance_be`` for this
        machine's pod: the same two ``+=`` folds per running job, in the
        same job order, at the rates just computed by :meth:`be_rates`
        (mirror membership == ``pool.running()`` with a live allocation,
        and any suspend/resume/kill bumps ``Machine.version`` which
        rebuilds the mirror before the next call).
        """
        mirror = self._mirrors[machine.spec.name]
        for job, rate in zip(mirror.jobs, mirror.last_rates):
            job.normalized_work += dt * rate
            job.running_seconds += dt

    def be_rates(
        self, machine: Machine, jobs: Sequence, lc_usage: LcUsage
    ) -> BeResourceSnapshot:
        """Bit-identical to ``compute_be_rates(machine, jobs, lc_usage)``."""
        mirror = self._mirrors.get(machine.spec.name)
        if mirror is None or mirror.version != machine.version:
            rows = self._rows.get(machine.spec.name)
            if rows is None:
                rows = self._rows[machine.spec.name] = {}
            mirror = _MachineMirror(machine, jobs, self._isolation, rows)
            self._mirrors[machine.spec.name] = mirror
        if not mirror.job_ids:
            # The scalar path returns before touching the NIC when no
            # jobs run — preserve that exactly (NIC state is observable).
            return BeResourceSnapshot()

        freq_ratio = machine.dvfs.ratio(BE_DOMAIN)
        membw_headroom = max(0.0, 1.0 - lc_usage.membw_fraction)
        membw_scale = (
            min(1.0, membw_headroom / mirror.total_membw_demand)
            if mirror.total_membw_demand > 0
            else 1.0
        )
        machine.nic.observe_lc_traffic(lc_usage.net_gbps)
        be_cap_fraction = machine.nic.be_cap_gbps / machine.spec.link_gbps
        net_scale = (
            min(1.0, be_cap_fraction / mirror.total_net_demand)
            if mirror.total_net_demand > 0
            else 1.0
        )

        # Leontief rates, one fused scalar pass per job — the same
        # min-chain the scalar path folds per job (resources a job does
        # not use are simply skipped, exactly like its absent ratios),
        # and the same left-to-right ``+=`` folds over granted shares.
        cpu_base = mirror.cpu_base
        req_cpu = mirror.req_cpu
        llc_ratio = mirror.llc_ratio
        membw = mirror.membw
        membw_mask = mirror.membw_mask
        membw_div = mirror.membw_div
        net = mirror.net
        net_mask = mirror.net_mask
        net_div = mirror.net_div
        rates: Dict[str, float] = {}
        rate_list: List[float] = []
        membw_used = 0.0
        net_used = 0.0
        for j, job_id in enumerate(mirror.job_ids):
            r = (cpu_base[j] * freq_ratio) / req_cpu[j]
            lr = llc_ratio[j]
            if lr < r:
                r = lr
            g_m = membw[j] * membw_scale
            if membw_mask[j]:
                q = g_m / membw_div[j]
                if q < r:
                    r = q
            g_n = net[j] * net_scale
            if net_mask[j]:
                q = g_n / net_div[j]
                if q < r:
                    r = q
            if r > 1.0:
                r = 1.0
            elif r < 0.0:
                r = 0.0
            rates[job_id] = r
            rate_list.append(r)
            membw_used += g_m
            net_used += g_n
        mirror.last_rates = rate_list
        return BeResourceSnapshot(
            busy_cores=mirror.busy_cores,
            membw_fraction=min(1.0, membw_used),
            llc_demand_fraction=min(1.0, mirror.llc_demand_total),
            llc_occupied_fraction=min(1.0, mirror.llc_occupied_total),
            net_fraction=min(1.0, net_used),
            rates=rates,
        )


# ---------------------------------------------------------------------------
# Latency sampling: pod-indexed parameter arrays, one build per tick
# ---------------------------------------------------------------------------


class BatchedServiceSampler:
    """Call-tree sampler over per-tick pod-indexed parameter arrays.

    ``Service.sample_e2e`` rebuilds each visited node's lognormal
    parameter block (log-medians, sigmas) on every visit; this sampler
    builds one ``(components, 1)`` block per Servpod per tick — via the
    same :meth:`LatencyModel.component_params` — and replays the exact
    walk. Draw shapes, draw order and combination operators
    (``np.maximum.reduce`` / ``np.add.reduce``) match the scalar walk
    call for call, so the RNG bit stream is consumed identically.
    """

    def __init__(self, service: "Service") -> None:
        self._service = service
        self._stream_name = f"service:{service.spec.name}:latency"
        self._pods = {pod.name: pod for pod in service.spec.servpods}
        # Component constants hoisted once so the per-tick parameter
        # build is plain float math — the exact expressions of
        # ``component_median_ms`` / ``component_sigma``, just without
        # the per-call attribute walks and revalidation.
        self._consts = {
            name: [
                (
                    c.base_ms,
                    c.lin_growth,
                    c.sat_growth,
                    c.sat_power,
                    c.cov_knee,
                    c.sigma0,
                    c.sigma_growth,
                )
                for c in pod.components
            ]
            for name, pod in self._pods.items()
        }

    def _params(
        self,
        u: float,
        slowdowns: Dict[str, float],
        inflations: Dict[str, float],
    ) -> Dict[str, Tuple]:
        """Per-pod lognormal parameters; floats for single-component pods."""
        params: Dict[str, Tuple] = {}
        for name, consts in self._consts.items():
            slowdown = slowdowns.get(name, 1.0)
            inflation = inflations.get(name, 1.0)
            if slowdown < 1.0:
                raise ConfigurationError(f"slowdown must be >= 1, got {slowdown}")
            if inflation < 1.0:
                raise ConfigurationError(
                    f"sigma inflation must be >= 1, got {inflation}"
                )
            if len(consts) == 1:
                base, lin, sat, p, knee, s0, sg = consts[0]
                median = base * (1.0 + lin * u + sat * u**p / (1.25 - u))
                ramp = max(0.0, (u - knee) / (1.0 - knee))
                params[name] = (
                    math.log(median * slowdown),
                    s0 * (1.0 + sg * ramp**2) * inflation,
                )
            else:
                means = []
                sigmas = []
                for base, lin, sat, p, knee, s0, sg in consts:
                    median = base * (1.0 + lin * u + sat * u**p / (1.25 - u))
                    means.append(math.log(median * slowdown))
                    ramp = max(0.0, (u - knee) / (1.0 - knee))
                    sigmas.append(s0 * (1.0 + sg * ramp**2) * inflation)
                params[name] = (
                    np.array(means)[:, None],
                    np.array(sigmas)[:, None],
                )
        return params

    def sample_e2e(
        self,
        load: float,
        n: int,
        slowdowns: Dict[str, float],
        inflations: Dict[str, float],
    ) -> np.ndarray:
        """Bit-identical to ``Service.sample_e2e`` under the same state."""
        service = self._service
        rng = service.streams.stream(self._stream_name)
        u = float(load)
        if not (0.0 <= u <= 1.02):
            raise ConfigurationError(
                f"load fraction must be in [0, 1.02], got {load!r}"
            )
        params = self._params(u, slowdowns, inflations)
        counts = service._type_counts(n, rng)
        e2e = np.empty(n)
        offset = 0
        for rtype, count in counts:
            if count == 0:
                continue
            e2e[offset : offset + count] = self._walk(
                rtype.root, count, params, rng
            )
            offset += count
        return e2e

    def _walk(
        self,
        node: "CallNode",
        n: int,
        params: Dict[str, Tuple],
        rng: np.random.Generator,
    ) -> np.ndarray:
        p = params[node.servpod]
        if type(p[0]) is float:
            # Single-component pod: scalar-parameter draw. Verified
            # bit-identical to the (1, n) array-parameter broadcast —
            # same value stream, same generator state after.
            total = rng.lognormal(mean=p[0], sigma=p[1], size=n)
        else:
            means, sigmas = p
            draws = rng.lognormal(
                mean=means, sigma=sigmas, size=(means.shape[0], n)
            )
            total = draws[0]
            for row in draws[1:]:
                total = total + row
        if not node.children:
            return total
        child_times = [
            self._walk(child, n, params, rng) for child in node.children
        ]
        if node.parallel:
            downstream = np.maximum.reduce(child_times)
        else:
            downstream = np.add.reduce(child_times)
        return total + downstream


# ---------------------------------------------------------------------------
# Queueing: engine-free FIFO drain
# ---------------------------------------------------------------------------


def drain_fifo_queue(
    arrival_times: Sequence[float],
    service_times: Sequence[float],
    workers: int,
    warmup_s: float,
    horizon_s: float,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Replay a G/G/c FIFO queue without the event engine.

    Returns ``(sojourns_ms, waits_ms, events_fired)`` bit-identical to
    the engine-driven loop in ``QueueingComponent.simulate``:

    - Start times follow the Lindley recurrence ``start_i = max(t_i,
      min_free)`` over a heap of plain worker-free times. FIFO
      discipline means services begin in arrival order, and the engine's
      ``clock.now + service_s`` additions are reproduced as the same
      python-float sums, so every start/finish time matches bit for bit.
    - Completion records are emitted in finish order (arrival index
      breaking ties — the engine's event-sequence order), so downstream
      ``np.mean``/``np.percentile`` pairwise folds see the same operand
      order.
    - ``events_fired`` counts every arrival plus each finish at or
      before the drain horizon: exactly the events the engine fires.
    """
    n = len(arrival_times)
    if n == 0:
        return np.empty(0), np.empty(0), 0
    free = [0.0] * workers
    starts: List[float] = [0.0] * n
    for i, t in enumerate(arrival_times):
        m = free[0]
        start = t if t >= m else m
        starts[i] = start
        heapq.heapreplace(free, start + service_times[i])
    t_arr = np.asarray(arrival_times)
    s_arr = np.asarray(service_times)
    finish = np.asarray(starts) + s_arr
    order = np.argsort(finish, kind="stable")
    fo = finish[order]
    to = t_arr[order]
    so = s_arr[order]
    fired = fo <= horizon_s
    events = n + int(np.count_nonzero(fired))
    keep = fired & (to >= warmup_s)
    sojourns = ((fo - to) * 1000.0)[keep]
    waits = (((fo - to) - so) * 1000.0)[keep]
    return sojourns, waits, events


# ---------------------------------------------------------------------------
# Window-tail fast path: np.percentile without the dispatch overhead
# ---------------------------------------------------------------------------


def _lerp_quantile(a: float, b: float, g: float) -> float:
    """numpy's ``_lerp`` on two python floats — branch and ops included.

    numpy computes ``a + (b - a) * g`` and then overwrites with
    ``b - (b - a) * (1 - g)`` where ``g >= 0.5``; reproducing the branch
    with the same python-float operations is bitwise identical to the
    elementwise float64 kernel.
    """
    d = b - a
    if g >= 0.5:
        return b - d * (1.0 - g)
    return a + d * g


def percentile_linear(values: np.ndarray, pct: float) -> float:
    """``float(np.percentile(values, pct))`` for a 1-D float64 array.

    The wrapper machinery around ``np.percentile`` (ufunc dispatch,
    axis normalisation, virtual-index broadcasting) costs ~200µs per
    call — an order of magnitude more than the O(n) partition it
    guards for window-sized sample counts. This reimplements exactly
    the ``method="linear"`` arithmetic: the virtual index is
    ``(n - 1) * (pct / 100)``, the two bracketing order statistics come
    from one ``np.partition``, and the interpolation replicates
    ``_lerp``'s ``g >= 0.5`` branch. Bitwise equal to ``np.percentile``
    for finite inputs (pinned by tests/test_sim_kernel.py).
    """
    n = values.shape[0]
    virtual = (n - 1) * (pct / 100.0)
    i0 = int(virtual)
    g = virtual - i0
    if i0 >= n - 1:
        part = np.partition(values, n - 1)
        return float(part[n - 1])
    part = np.partition(values, (i0, i0 + 1))
    return _lerp_quantile(float(part[i0]), float(part[i0 + 1]), g)


def percentile_linear_rows(stack: np.ndarray, pct: float) -> List[float]:
    """Row-wise ``np.percentile(stack, pct, axis=1)`` (linear method).

    One partition over the whole ``(rows, n)`` block, then the same
    scalar ``_lerp`` per row: elementwise float64 arithmetic equals the
    per-row python-float arithmetic, so each entry is bitwise equal to
    ``np.percentile`` of that row.
    """
    n = stack.shape[1]
    virtual = (n - 1) * (pct / 100.0)
    i0 = int(virtual)
    g = virtual - i0
    if i0 >= n - 1:
        part = np.partition(stack, n - 1, axis=1)
        return part[:, n - 1].tolist()
    part = np.partition(stack, (i0, i0 + 1), axis=1)
    lo = part[:, i0].tolist()
    hi = part[:, i0 + 1].tolist()
    return [_lerp_quantile(a, b, g) for a, b in zip(lo, hi)]


# ---------------------------------------------------------------------------
# The batched colocation tick
# ---------------------------------------------------------------------------


class BatchedColocationKernel:
    """Drop-in batched implementation of ``ColocationExperiment._tick``.

    The experiment's world objects (machines, pools, subcontrollers,
    fault injector, metrics) stay authoritative and are mutated through
    the experiment's own shared phase helpers; the kernel only swaps the
    two hot computations — BE rate evaluation and latency sampling — for
    their SoA counterparts, plus caches each Servpod's (deterministic)
    effective sensitivity vector.
    """

    def __init__(self, experiment: "ColocationExperiment") -> None:
        self._exp = experiment
        self._pods = list(experiment._runs)
        self._servpods = {
            pod: experiment.deployment.servpod(pod) for pod in self._pods
        }
        self._machines = {
            pod: self._servpods[pod].machine for pod in self._pods
        }
        self._sensitivities = {
            pod: self._servpods[pod].effective_sensitivity()
            for pod in self._pods
        }
        self._be = BeRateKernel(experiment.config.isolation)
        self._sampler = BatchedServiceSampler(experiment.service)
        # Flat slowdown constants: the sensitivity coefficients in
        # ``PRESSURE_KINDS`` order plus the interference model's scalar
        # parameters, hoisted so healthy ticks run the fused fold below
        # instead of the object path (same arithmetic, same fold order).
        model = experiment.config.interference
        self._sens_coeffs = {
            pod: tuple(
                self._sensitivities[pod].coefficient(kind)
                for kind in PRESSURE_KINDS
            )
            for pod in self._pods
        }
        self._model_consts = (
            model.gamma,
            model.beta,
            model.headroom,
            model.sigma_coupling,
            model.sigma_cap,
        )
        # BE counter gauges (instances / cores / LLC ways) per pod,
        # keyed by ``Machine.version`` — every allocation change bumps
        # it, so a hit is exactly the genexpr-sum recomputation.
        self._counter_cache: Dict[str, Tuple[int, Tuple[int, int, int]]] = {}

    def be_counters(self, pod: str) -> Tuple[int, int, int]:
        """``(be_instance_count, be_total_cores, be_total_llc_ways)``
        for ``pod``'s machine, cached on ``Machine.version``."""
        machine = self._machines[pod]
        cached = self._counter_cache.get(pod)
        if cached is not None and cached[0] == machine.version:
            return cached[1]
        gauges = (
            machine.be_instance_count,
            machine.be_total_cores,
            machine.be_total_llc_ways,
        )
        self._counter_cache[pod] = (machine.version, gauges)
        return gauges

    def tick(self, t: float, dt: float) -> None:
        """One control period, bit-identical to the scalar ``_tick``."""
        exp = self._exp
        load, tail_ms, window_closed, snapshots, usages = self.observe(t, dt)
        exp._control_phase(
            t, dt, load, tail_ms, window_closed, snapshots, usages
        )

    def observe(
        self, t: float, dt: float
    ) -> Tuple[float, float, bool, Dict[str, BeResourceSnapshot], Dict[str, LcUsage]]:
        """Phases 0-3 of one control period: everything up to (but not
        including) the control decisions.

        Faults advance, the load window opens, BE rates / pressure /
        Servpod slowdowns are computed, latencies are sampled and BE
        progress integrates — all of it controller-independent, which is
        what lets :class:`BakeoffKernel` share one ``observe`` pass
        across several controller sets. Returns the control-phase inputs
        ``(load, tail_ms, window_closed, snapshots, usages)``.
        """
        exp = self._exp
        model = exp.config.interference
        injector = exp._fault_injector
        window = exp._begin_tick(t, dt)
        load = window.load
        realized = window.realized_load

        # Phase 1: physics across all pods — fused scalar BE rates per
        # machine, shared pressure/slowdown math on top. Healthy ticks
        # run the flat fold (same expressions, same fold order as
        # ``InterferenceModel.slowdown`` over a ``Pressure`` built by
        # ``from_be_snapshot`` — the identity tests pin both); faulted
        # experiments keep the object path, whose injector hooks rewrite
        # the pressure vector wholesale.
        slowdowns: Dict[str, float] = {}
        inflations: Dict[str, float] = {}
        snapshots: Dict[str, BeResourceSnapshot] = {}
        usages: Dict[str, LcUsage] = {}
        gamma, beta, hroom, coup, cap = self._model_consts
        for pod in self._pods:
            machine = self._machines[pod]
            run = exp._runs[pod]
            usage = usages[pod] = exp.service.lc_usage(pod, realized)
            exp._network.apply(machine, usage.net_gbps)
            snapshot = self._be.be_rates(machine, run.pool.jobs(), usage)
            snapshots[pod] = snapshot
            if injector is None:
                mirror = self._be.mirror(machine)
                p_cpu = mirror.p_cpu
                p_llc = mirror.p_llc
                p_membw = snapshot.membw_fraction
                p_net = snapshot.net_fraction
                p_freq = 1.0 - machine.dvfs.ratio(LC_DOMAIN)
                if p_freq < 0.0:
                    p_freq = 0.0
                if (
                    p_cpu == 0.0
                    and p_llc == 0.0
                    and p_membw == 0.0
                    and p_net == 0.0
                    and p_freq == 0.0
                ):
                    slowdown = 1.0
                else:
                    c = self._sens_coeffs[pod]
                    impact = c[0] * p_cpu**gamma
                    impact = impact + c[1] * p_llc**gamma
                    impact = impact + c[2] * p_membw**gamma
                    impact = impact + c[3] * p_net**gamma
                    impact = impact + c[4] * p_freq**gamma
                    lo = realized
                    if lo < 0.0:
                        lo = 0.0
                    elif lo > 1.0:
                        lo = 1.0
                    amp = 1.0 + beta * lo / (hroom + (1.0 - lo))
                    slowdown = 1.0 + amp * impact
                infl = 1.0 + coup * (slowdown - 1.0)
                slowdowns[pod] = slowdown
                inflations[pod] = infl if infl < cap else cap
            else:
                pressure = Pressure.from_be_snapshot(
                    snapshot,
                    machine.spec.cores,
                    exp.config.isolation,
                    lc_freq_ratio=machine.dvfs.ratio(LC_DOMAIN),
                )
                pressure = injector.adjust_pressure(machine, pressure)
                slowdown = model.slowdown(
                    self._sensitivities[pod], pressure, realized
                )
                slowdown *= injector.stall_factor(machine.spec.name)
                slowdowns[pod] = slowdown
                inflations[pod] = model.sigma_inflation(slowdown)

        # Phase 2: batched latency sampling over per-tick pod arrays.
        if window.n_samples > 0:
            latencies = self._sampler.sample_e2e(
                realized, window.n_samples, slowdowns, inflations
            )
            tail_ms = exp._window_tail(latencies)
            window_closed = True
        else:
            tail_ms = 0.0
            window_closed = False

        # Phase 3: BE progress from the mirrors' cached job rows —
        # bit-identical to ``exp._advance_be(dt, snapshots)`` (see
        # :meth:`BeRateKernel.advance_be`); job-level accumulation is
        # independent across pods, so pod order cannot matter.
        be = self._be
        for pod in self._pods:
            be.advance_be(self._machines[pod], dt)
        return load, tail_ms, window_closed, snapshots, usages


# ---------------------------------------------------------------------------
# Fleet-wide SoA: many colocation experiments in lockstep
# ---------------------------------------------------------------------------

#: Machine count at or below which a fleet runs the per-machine python
#: tick instead of whole-array numpy: under this size every array op is
#: dominated by its fixed dispatch cost. Both paths are bit-identical,
#: so the threshold is purely a performance knob.
_SMALL_FLEET_MACHINES = 8


class FleetColocationKernel:
    """Runs many ``ColocationExperiment`` instances as one SoA fleet.

    Everything the scalar path recomputes per machine per tick — LC
    usage, NIC caps, proportional bandwidth shares, Leontief rates, BE
    progress, interference pressure, DVFS power stepping, and the metric
    integrals — lives in ``(machines,)`` / ``(machines, job-slots)``
    arrays spanning the *whole fleet*, so a tick is a handful of
    whole-array numpy ops plus one python pass for the parts that are
    genuinely stateful per machine (controller decisions, subcontroller
    actions, RNG-driven latency sampling).

    Identity contract (the PR-2/PR-6 pattern, fleet-wide): running
    ``FleetColocationKernel([e1, .., ek]).run()`` is bit-identical —
    results, metrics, controller history, final RNG states — to running
    ``e1.run(); ..; ek.run()`` sequentially. Instances with fault
    schedules or histogram tail estimators are *delegated*: their whole
    ticks run through their own (already identity-pinned) per-instance
    path, interleaved on the same lockstep clock, so mixed fleets
    compose without weakening the pin.

    How the vectorized path keeps the pin:

    - world mutation (launch/kill/grow/shrink/suspend/resume) goes
      through the *same* subcontroller code on the shared machines and
      pools; the SoA job mirror is invalidated by ``Machine.version``;
    - subcontroller applies are memoized per machine on ``(action,
      version, mem_version)``: a key can only enter the memo set after
      an execution that provably changed nothing, so skipping a repeat
      cannot change state (STOP is never memoized — its DVFS reset is a
      side effect the key cannot witness);
    - BE progress integrates in-place in SoA (elementwise float64 ==
      python-float arithmetic) and is flushed back to the ``BeJob``
      objects before any apply that might read or rearrange them;
    - reductions over a machine's jobs run as padded column sweeps
      (``acc = acc + col``), exact because pads contribute ``+0.0`` to
      non-negative accumulators; the interference impact sum and the
      ``x ** gamma`` terms stay per-machine python arithmetic, where
      vectorized ``np.power`` is known to differ by 1 ulp;
    - per-window tails group instances by ``(n_samples, percentile)``
      and reduce with one ``np.percentile(stack, pct, axis=1)`` call,
      bitwise equal per row to the scalar per-instance call;
    - metric columns (one ``(machines,)`` array per tick) integrate
      vectorized and only materialise into ``TickSample`` objects and
      window-tail replays once, at the end of the run.

    All experiments must share ``duration_s`` and ``control_period_s``
    (one lockstep clock). ``on_tick(tick_index, t, loads, closed,
    tails, be_rates)`` — lists indexed like ``experiments`` — fires
    after each control phase; a fleet-level governor may mutate the
    experiments' ``action_filter`` there, taking effect next tick.
    """

    def __init__(
        self,
        experiments: Sequence["ColocationExperiment"],
        on_tick=None,
    ) -> None:
        if not experiments:
            raise ConfigurationError("fleet needs at least one experiment")
        self._exps: List["ColocationExperiment"] = list(experiments)
        self._on_tick = on_tick
        cfg0 = self._exps[0].config
        self._duration_s = cfg0.duration_s
        self._period_s = cfg0.control_period_s
        for exp in self._exps:
            cfg = exp.config
            if (
                cfg.duration_s != self._duration_s
                or cfg.control_period_s != self._period_s
            ):
                raise ConfigurationError(
                    "fleet experiments must share duration_s and "
                    "control_period_s (one lockstep clock)"
                )
        self._del_idx = [
            i
            for i, exp in enumerate(self._exps)
            if exp._fault_injector is not None or exp._tail_estimator is not None
        ]
        delegated = set(self._del_idx)
        self._vec_idx = [i for i in range(len(self._exps)) if i not in delegated]

        # -- machine-major bookkeeping (global machine index m) -------------
        # Machine *names* collide across experiments (deploy_service
        # names machines after Servpods), so every mapping here is
        # keyed by index, never by name.
        self._m_pod: List[str] = []
        self._m_i: List[int] = []
        self._m_run: List = []
        self._m_mach: List[Machine] = []
        self._inst_machines: List[List[int]] = []
        m_vi: List[int] = []
        for vi, i in enumerate(self._vec_idx):
            exp = self._exps[i]
            rows: List[int] = []
            for pod in exp._runs:
                rows.append(len(self._m_pod))
                self._m_pod.append(pod)
                self._m_i.append(i)
                m_vi.append(vi)
                self._m_run.append(exp._runs[pod])
                self._m_mach.append(exp.deployment.servpod(pod).machine)
            self._inst_machines.append(rows)
        M = len(self._m_pod)
        self._n_machines = M
        self._m_vi_arr = np.asarray(m_vi, dtype=np.intp)

        self._samplers = [
            BatchedServiceSampler(self._exps[i].service) for i in self._vec_idx
        ]
        self._tail_pct = [
            self._exps[i].spec.tail_percentile for i in self._vec_idx
        ]

        jmax = 1
        for i in self._vec_idx:
            jmax = max(jmax, int(self._exps[i].config.max_be_instances))
        self._jmax = jmax

        # -- static per-machine parameters ----------------------------------
        busy_c: List[float] = []
        membw_c: List[float] = []
        net_c: List[float] = []
        link_nic: List[float] = []
        link_spec: List[float] = []
        guard: List[float] = []
        cores_f: List[float] = []
        sla: List[float] = []
        idle_w: List[float] = []
        active_w: List[float] = []
        hi_w: List[float] = []
        lo_w: List[float] = []
        f_min: List[int] = []
        f_max: List[int] = []
        f_step: List[int] = []
        f_now: List[int] = []
        self._cores_i: List[int] = []
        self._iso: List = []
        self._pconst: List[Tuple] = []
        for m in range(M):
            exp = self._exps[self._m_i[m]]
            pod = self._m_pod[m]
            machine = self._m_mach[m]
            bc, mc, nc, _llc = exp.service._usage_coeffs[pod]
            busy_c.append(bc)
            membw_c.append(mc)
            net_c.append(nc)
            link_nic.append(machine.nic.link_gbps)
            link_spec.append(machine.spec.link_gbps)
            guard.append(machine.nic.lc_guard_factor)
            self._cores_i.append(machine.spec.cores)
            cores_f.append(float(machine.spec.cores))
            sla.append(exp.spec.sla_ms)
            pm = machine.power_model
            idle_w.append(pm.idle_watts)
            active_w.append(pm.active_watts_per_core)
            hi_w.append(exp._frequency.cap_fraction * pm.tdp_watts)
            lo_w.append(exp._frequency.restore_fraction * pm.tdp_watts)
            dvfs = machine.dvfs
            f_min.append(dvfs.min_mhz)
            f_max.append(dvfs.max_mhz)
            f_step.append(dvfs.step_mhz)
            f_now.append(dvfs.frequency(BE_DOMAIN))
            self._iso.append(exp.config.isolation)
            sens = exp.deployment.servpod(pod).effective_sensitivity()
            model = exp.config.interference
            self._pconst.append(
                (
                    tuple(sens.coefficient(kind) for kind in PRESSURE_KINDS),
                    model.gamma,
                    model.beta,
                    model.headroom,
                    model.sigma_coupling,
                    model.sigma_cap,
                )
            )
        self._busy_coeff = np.asarray(busy_c)
        self._membw_coeff = np.asarray(membw_c)
        self._net_coeff = np.asarray(net_c)
        self._link_nic = np.asarray(link_nic)
        self._link_spec = np.asarray(link_spec)
        self._guard = np.asarray(guard)
        self._cores_farr = np.asarray(cores_f)
        self._sla_arr = np.asarray(sla)
        self._idle_w = np.asarray(idle_w)
        self._active_w = np.asarray(active_w)
        self._hi_w = np.asarray(hi_w)
        self._lo_w = np.asarray(lo_w)
        self._f_min = np.asarray(f_min, dtype=np.int64)
        self._f_max = np.asarray(f_max, dtype=np.int64)
        self._f_step = np.asarray(f_step, dtype=np.int64)
        self._f_max_l = f_max
        self._freq = np.asarray(f_now, dtype=np.int64)

        # (freq / max) ** 3 lookup, computed with *python* pow: the
        # vectorized cube diverges from the scalar path by 1 ulp.
        ranges = {(f_min[m], f_max[m], f_step[m]) for m in range(M)}
        self._r3_table: Optional[np.ndarray] = None
        self._r3_base = 0
        self._r3_step = 1
        if len(ranges) == 1:
            lo, hi, st = next(iter(ranges))
            self._r3_base = lo
            self._r3_step = st
            self._r3_table = np.asarray(
                [(mhz / hi) ** 3 for mhz in range(lo, hi + st, st)]
            )
        self._r3_cache: Dict[Tuple[int, int], float] = {}

        # -- SoA job mirror: padded (machines, job-slots) -------------------
        self._cpu_base = np.zeros((M, jmax))
        self._req_cpu = np.ones((M, jmax))
        self._llc_ratio = np.full((M, jmax), np.inf)
        self._membw = np.zeros((M, jmax))
        self._membw_div = np.ones((M, jmax))
        self._membw_mask = np.zeros((M, jmax), dtype=bool)
        self._net = np.zeros((M, jmax))
        self._net_div = np.ones((M, jmax))
        self._net_mask = np.zeros((M, jmax), dtype=bool)
        self._valid = np.zeros((M, jmax))
        self._nw = np.zeros((M, jmax))
        self._rs = np.zeros((M, jmax))
        self._row_jobs: List[List] = [[] for _ in range(M)]
        self._row_ids: List[List[str]] = [[] for _ in range(M)]
        self._row_cache: Dict[Tuple, Tuple] = {}
        self._busy_be = np.zeros(M)
        self._busy_be_l: List[float] = [0.0] * M
        self._p_cpu_l: List[float] = [0.0] * M
        self._p_llc_l: List[float] = [0.0] * M
        self._md_total = np.zeros(M)
        self._nd_total = np.zeros(M)
        self._llc_dem_l: List[float] = [0.0] * M
        self._llc_occ_l: List[float] = [0.0] * M
        self._cnt_inst = np.zeros(M, dtype=np.int64)
        self._cnt_cores = np.zeros(M, dtype=np.int64)
        self._cnt_ways = np.zeros(M, dtype=np.int64)
        self._njobs = np.zeros(M, dtype=np.int64)
        self._dirty = set(range(M))
        self._memo: List[set] = [set() for _ in range(M)]

        # -- deferred metric state ------------------------------------------
        self._lc_int = np.zeros(M)
        self._be_int = np.zeros(M)
        self._cpu_int = np.zeros(M)
        self._membw_int = np.zeros(M)
        self._elapsed = 0.0
        self._cols: List[Tuple] = []
        self._acts: List[List[str]] = []
        self._wins: List[Tuple[List[bool], List[float]]] = []
        self._last_net: Optional[np.ndarray] = None

        # -- small-fleet python fast path -----------------------------------
        # Under ~8 machines the fixed dispatch cost of each whole-array
        # numpy op dwarfs the elementwise work, so tiny fleets (and the
        # single-experiment batched path that rides this kernel) run the
        # same arithmetic as per-machine python floats: elementwise
        # float64 ops equal python-float ops bit for bit, so both paths
        # satisfy the same identity pin. State lives in python twins of
        # the SoA columns; each mode touches only its own storage.
        self._small = M <= _SMALL_FLEET_MACHINES
        self._m_vi = m_vi
        self._rows_py: List[Tuple] = [() for _ in range(M)]
        self._nw_py: List[List[float]] = [[] for _ in range(M)]
        self._rs_py: List[List[float]] = [[] for _ in range(M)]
        self._freq_py: List[int] = list(f_now)
        self._md_l: List[float] = [0.0] * M
        self._nd_l: List[float] = [0.0] * M
        self._cnt_inst_l: List[int] = [0] * M
        self._cnt_cores_l: List[int] = [0] * M
        self._cnt_ways_l: List[int] = [0] * M
        self._njobs_l: List[int] = [0] * M
        self._busy_c_l = busy_c
        self._membw_c_l = membw_c
        self._net_c_l = net_c
        self._link_nic_l = link_nic
        self._link_spec_l = link_spec
        self._guard_l = guard
        self._cores_f_l = cores_f
        self._sla_l = sla
        self._idle_l = idle_w
        self._active_l = active_w
        self._hi_l = hi_w
        self._lo_l = lo_w
        self._f_min_l = f_min
        self._f_step_l = f_step
        self._lc_int_l: List[float] = [0.0] * M
        self._be_int_l: List[float] = [0.0] * M
        self._cpu_int_l: List[float] = [0.0] * M
        self._membw_int_l: List[float] = [0.0] * M
        self._last_net_l: Optional[List[float]] = None

    # -- SoA <-> world synchronisation --------------------------------------

    def _rebuild_row(self, m: int) -> None:
        """Reload machine ``m``'s job rows from the world objects.

        Same math, same python fold order as :class:`_MachineMirror`;
        pads carry the identity elements of every downstream op (0 for
        sums and rates, 1 for divisors, ``inf`` for min-reductions).
        """
        machine = self._m_mach[m]
        run = self._m_run[m]
        total_cores = self._cores_i[m]
        running = [
            job
            for job in run.pool.jobs()
            if job.state == BeJobState.RUNNING
            and machine.be_allocation(job.job_id) is not None
            and not machine.be_allocation(job.job_id).suspended
        ]
        if len(running) > self._jmax:  # pragma: no cover - pool caps instances
            raise ConfigurationError(
                f"machine {machine.spec.name!r} has {len(running)} running BE "
                f"jobs, fleet rows hold {self._jmax}"
            )
        if not self._small:
            self._cpu_base[m, :] = 0.0
            self._req_cpu[m, :] = 1.0
            self._llc_ratio[m, :] = np.inf
            self._membw[m, :] = 0.0
            self._membw_div[m, :] = 1.0
            self._membw_mask[m, :] = False
            self._net[m, :] = 0.0
            self._net_div[m, :] = 1.0
            self._net_mask[m, :] = False
            self._valid[m, :] = 0.0
            self._nw[m, :] = 0.0
            self._rs[m, :] = 0.0
        total_membw_demand = 0.0
        total_net_demand = 0.0
        busy_cores = 0.0
        llc_demand_total = 0.0
        llc_occupied_total = 0.0
        n_ways = machine.llc.n_ways
        cache = self._row_cache
        cpu_b: List[float] = []
        req_c: List[float] = []
        llc_r: List[float] = []
        mbw: List[float] = []
        mbw_m: List[bool] = []
        mbw_d: List[float] = []
        net_l: List[float] = []
        net_m: List[bool] = []
        net_d: List[float] = []
        nw_l: List[float] = []
        rs_l: List[float] = []
        for job in running:
            spec = job.spec
            alloc = machine.be_allocation(job.job_id)
            # Row values depend only on (spec, cores, llc ways, machine
            # geometry) — all in the key — so one computation serves every
            # job of the same shape fleet-wide. The spec object rides along
            # in the entry to pin its id() for the cache's lifetime.
            key = (id(spec), alloc.cores, alloc.llc_ways, total_cores, n_ways)
            row = cache.get(key)
            if row is None:
                cores = alloc.cores
                llc_granted = alloc.llc_ways / n_ways
                llc_demand = spec.demand_fraction("llc", cores, total_cores)
                membw_demand = spec.demand_fraction("membw", cores, total_cores)
                membw_demand += LLC_SPILL_TO_MEMBW * max(
                    0.0, llc_demand - llc_granted
                )
                llc_usage = spec.usage("llc")
                membw_usage = spec.usage("membw")
                net_usage = spec.usage("net")
                row = (
                    cores / total_cores,
                    min(1.0, spec.saturation_cores / total_cores),
                    llc_granted / llc_usage if llc_usage > 0 else np.inf,
                    min(1.0, membw_demand),
                    membw_usage > 0,
                    membw_usage if membw_usage > 0 else 1.0,
                    spec.demand_fraction("net", cores, total_cores),
                    net_usage > 0,
                    net_usage if net_usage > 0 else 1.0,
                    llc_demand,
                    llc_granted,
                    cores,
                    spec,
                )
                cache[key] = row
            cpu_b.append(row[0])
            req_c.append(row[1])
            llc_r.append(row[2])
            mbw.append(row[3])
            mbw_m.append(row[4])
            mbw_d.append(row[5])
            net_l.append(row[6])
            net_m.append(row[7])
            net_d.append(row[8])
            nw_l.append(job.normalized_work)
            rs_l.append(job.running_seconds)
            total_membw_demand += row[3]
            total_net_demand += row[6]
            busy_cores += row[11]
            llc_demand_total += row[9]
            llc_occupied_total += row[10]
        k = len(running)
        if self._small:
            self._rows_py[m] = (
                cpu_b, req_c, llc_r, mbw, mbw_m, mbw_d, net_l, net_m, net_d
            )
            self._nw_py[m] = nw_l
            self._rs_py[m] = rs_l
            self._md_l[m] = total_membw_demand
            self._nd_l[m] = total_net_demand
            self._cnt_inst_l[m] = machine.be_instance_count
            self._cnt_cores_l[m] = machine.be_total_cores
            self._cnt_ways_l[m] = machine.be_total_llc_ways
            self._njobs_l[m] = k
        else:
            if k:
                self._cpu_base[m, :k] = cpu_b
                self._req_cpu[m, :k] = req_c
                self._llc_ratio[m, :k] = llc_r
                self._membw[m, :k] = mbw
                self._membw_mask[m, :k] = mbw_m
                self._membw_div[m, :k] = mbw_d
                self._net[m, :k] = net_l
                self._net_mask[m, :k] = net_m
                self._net_div[m, :k] = net_d
                self._valid[m, :k] = 1.0
                self._nw[m, :k] = nw_l
                self._rs[m, :k] = rs_l
            self._busy_be[m] = busy_cores
            self._md_total[m] = total_membw_demand
            self._nd_total[m] = total_net_demand
            self._cnt_inst[m] = machine.be_instance_count
            self._cnt_cores[m] = machine.be_total_cores
            self._cnt_ways[m] = machine.be_total_llc_ways
            self._njobs[m] = k
        self._row_jobs[m] = running
        self._row_ids[m] = [job.job_id for job in running]
        self._busy_be_l[m] = busy_cores
        self._llc_dem_l[m] = min(1.0, llc_demand_total)
        self._llc_occ_l[m] = min(1.0, llc_occupied_total)
        # CPU and LLC pressure are pure functions of row state, so they
        # only move when the row does; the tick loop reads the cache.
        iso = self._iso[m]
        self._p_cpu_l[m] = iso.cpu_pressure(min(1.0, busy_cores / total_cores))
        self._p_llc_l[m] = iso.llc_pressure(
            self._llc_occ_l[m], self._llc_dem_l[m]
        )

    def _flush_row(self, m: int) -> None:
        """Write accumulated BE progress back into the ``BeJob`` objects."""
        jobs = self._row_jobs[m]
        if not jobs:
            return
        if self._small:
            nw = self._nw_py[m]
            rs = self._rs_py[m]
        else:
            nw = self._nw[m, : len(jobs)].tolist()
            rs = self._rs[m, : len(jobs)].tolist()
        for j, job in enumerate(jobs):
            job.normalized_work = nw[j]
            job.running_seconds = rs[j]

    # -- one lockstep tick ---------------------------------------------------

    def tick(self, tick_index: int, t: float, dt: float, last: bool) -> None:
        """One control period across the whole fleet."""
        exps = self._exps
        n_exp = len(exps)
        loads: List[float] = [0.0] * n_exp
        tails: List[float] = [0.0] * n_exp
        closed: List[bool] = [False] * n_exp
        want_obs = self._on_tick is not None
        be_rates: List[float] = [0.0] * n_exp

        # Delegated instances: whole per-instance ticks on the shared
        # clock (cross-instance order is irrelevant — streams, machines
        # and pools are per-instance).
        for i in self._del_idx:
            exp = exps[i]
            run0 = next(iter(exp._runs.values()))
            n_wins = len(run0.metrics.tail._per_window)
            exp._tick(t, dt)
            sample = run0.metrics.samples[-1]
            loads[i] = sample.load
            tails[i] = sample.tail_ms
            closed[i] = len(run0.metrics.tail._per_window) > n_wins
            if want_obs:
                rate_sum = 0.0
                for run in exp._runs.values():
                    rate_sum += run.last_snapshot.total_rate
                be_rates[i] = rate_sum

        vec = self._vec_idx
        if vec:
            if self._small:
                self._tick_small(
                    t, dt, last, loads, tails, closed, be_rates, want_obs
                )
            else:
                self._tick_vec(
                    t, dt, last, loads, tails, closed, be_rates, want_obs
                )
        if want_obs:
            self._on_tick(tick_index, t, loads, closed, tails, be_rates)

    def _sample_tails(
        self,
        w_real: List[float],
        w_n: List[int],
        slow_l: List[float],
        infl_l: List[float],
    ) -> Tuple[List[bool], List[float]]:
        """Latency sampling + window tails for every vectorized instance.

        Per-instance RNG draws stay sequential (stream identity); the
        tail reduction groups instances by ``(n_samples, percentile)``
        and runs one partitioned percentile per group, bitwise equal to
        the scalar per-instance ``np.percentile`` call.
        """
        vec = self._vec_idx
        groups: Dict[Tuple[int, float], Tuple[List[int], List[np.ndarray]]] = {}
        for vi in range(len(vec)):
            n = w_n[vi]
            if n <= 0:
                continue
            slowdowns: Dict[str, float] = {}
            inflations: Dict[str, float] = {}
            for m in self._inst_machines[vi]:
                pod = self._m_pod[m]
                slowdowns[pod] = slow_l[m]
                inflations[pod] = infl_l[m]
            lat = self._samplers[vi].sample_e2e(
                w_real[vi], n, slowdowns, inflations
            )
            key = (n, self._tail_pct[vi])
            bucket = groups.get(key)
            if bucket is None:
                bucket = ([], [])
                groups[key] = bucket
            bucket[0].append(vi)
            bucket[1].append(lat)
        closed_vec = [False] * len(vec)
        tails_vec = [0.0] * len(vec)
        for (_n, pct), (vis, lats) in groups.items():
            if len(lats) == 1:
                vals = [percentile_linear(lats[0], pct)]
            else:
                vals = percentile_linear_rows(np.stack(lats), pct)
            for vi, tail in zip(vis, vals):
                closed_vec[vi] = True
                tails_vec[vi] = tail
        return closed_vec, tails_vec

    def _tick_small(
        self,
        t: float,
        dt: float,
        last: bool,
        loads: List[float],
        tails: List[float],
        closed: List[bool],
        be_rates: List[float],
        want_obs: bool,
    ) -> None:
        """Per-machine python tick for small fleets.

        Identical arithmetic to :meth:`_tick_vec`, operand for operand:
        every whole-array op there is elementwise over machines (or a
        strictly left-to-right fold over job slots), and elementwise
        float64 equals python-float arithmetic bit for bit, so both
        paths land on the same identity pin. ``np.minimum``/``maximum``
        become ``min``/``max`` — equivalent here because no operand is
        NaN and no tie mixes signed zeros.
        """
        exps = self._exps
        vec = self._vec_idx
        M = self._n_machines
        m_vi = self._m_vi

        # Phase 0: load windows (per-instance RNG, python).
        w_load: List[float] = [0.0] * len(vec)
        w_real: List[float] = [0.0] * len(vec)
        w_n: List[int] = [0] * len(vec)
        for vi, i in enumerate(vec):
            window = exps[i]._begin_tick(t, dt)
            w_load[vi] = window.load
            w_real[vi] = window.realized_load
            w_n[vi] = window.n_samples
            loads[i] = window.load

        if self._dirty:
            for m in sorted(self._dirty):
                self._rebuild_row(m)
            self._dirty.clear()

        # Phases 1 + 3 fused per machine: LC usage, NIC caps, headroom
        # shares, Leontief rates, BE progress, pressure -> slowdown.
        slow_l: List[float] = [1.0] * M
        infl_l: List[float] = [1.0] * M
        membw_l: List[float] = [0.0] * M
        net_l: List[float] = [0.0] * M
        lc_busy_l: List[float] = [0.0] * M
        lc_net_l: List[float] = [0.0] * M
        rate_rows: List[List[float]] = [[]] * M
        rate_tot_l: List[float] = [0.0] * M
        busy_tot_l: List[float] = [0.0] * M
        membw_tot_l: List[float] = [0.0] * M
        load_m: List[float] = [0.0] * M
        for m in range(M):
            vi = m_vi[m]
            real = w_real[vi]
            load_m[m] = w_load[vi]
            lc_busy = self._busy_c_l[m] * real
            lc_membw = self._membw_c_l[m] * real
            if lc_membw > 1.0:
                lc_membw = 1.0
            lc_net = self._net_c_l[m] * real
            link = self._link_nic_l[m]
            lc_sent = lc_net if lc_net < link else link
            be_cap = link - self._guard_l[m] * lc_sent
            if be_cap < 0.0:
                be_cap = 0.0
            be_cap_frac = be_cap / self._link_spec_l[m]
            headroom = 1.0 - lc_membw
            if headroom < 0.0:
                headroom = 0.0
            md = self._md_l[m]
            membw_scale = 1.0
            if md > 0.0:
                membw_scale = headroom / md
                if membw_scale > 1.0:
                    membw_scale = 1.0
            nd = self._nd_l[m]
            net_scale = 1.0
            if nd > 0.0:
                net_scale = be_cap_frac / nd
                if net_scale > 1.0:
                    net_scale = 1.0
            fratio = self._freq_py[m] / self._f_max_l[m]
            (cpu_b, req_c, llc_r, mbw, mbw_m, mbw_d,
             net_b, net_m, net_d) = self._rows_py[m]
            nw = self._nw_py[m]
            rs = self._rs_py[m]
            rates: List[float] = [0.0] * len(cpu_b)
            membw_used = 0.0
            net_used = 0.0
            rate_total = 0.0
            for j in range(len(cpu_b)):
                r = (cpu_b[j] * fratio) / req_c[j]
                lr = llc_r[j]
                if lr < r:
                    r = lr
                g_m = mbw[j] * membw_scale
                if mbw_m[j]:
                    q = g_m / mbw_d[j]
                    if q < r:
                        r = q
                g_n = net_b[j] * net_scale
                if net_m[j]:
                    q = g_n / net_d[j]
                    if q < r:
                        r = q
                if r > 1.0:
                    r = 1.0
                elif r < 0.0:
                    r = 0.0
                rates[j] = r
                membw_used = membw_used + g_m
                net_used = net_used + g_n
                rate_total = rate_total + r
                nw[j] = nw[j] + dt * r
                rs[j] = rs[j] + dt
            snap_membw = membw_used if membw_used < 1.0 else 1.0
            snap_net = net_used if net_used < 1.0 else 1.0
            p_cpu = self._p_cpu_l[m]
            p_llc = self._p_llc_l[m]
            coeffs, gamma, beta, hroom, coup, cap = self._pconst[m]
            if p_cpu == 0.0 and p_llc == 0.0 and snap_membw == 0.0 and snap_net == 0.0:
                slow = 1.0
            else:
                impact = coeffs[0] * p_cpu**gamma
                impact = impact + coeffs[1] * p_llc**gamma
                impact = impact + coeffs[2] * snap_membw**gamma
                impact = impact + coeffs[3] * snap_net**gamma
                impact = impact + coeffs[4] * 0.0**gamma
                lo = real
                if lo < 0.0:
                    lo = 0.0
                elif lo > 1.0:
                    lo = 1.0
                amp = 1.0 + beta * lo / (hroom + (1.0 - lo))
                slow = 1.0 + amp * impact
            slow_l[m] = slow
            infl = 1.0 + coup * (slow - 1.0)
            infl_l[m] = infl if infl < cap else cap
            membw_l[m] = snap_membw
            net_l[m] = snap_net
            lc_busy_l[m] = lc_busy
            lc_net_l[m] = lc_net
            rate_rows[m] = rates
            rate_tot_l[m] = rate_total
            busy_tot = lc_busy + self._busy_be_l[m]
            busy_tot_l[m] = busy_tot
            membw_tot = lc_membw + snap_membw
            if membw_tot > 1.0:
                membw_tot = 1.0
            membw_tot_l[m] = membw_tot
            cores_f = self._cores_f_l[m]
            self._lc_int_l[m] += load_m[m] * dt
            self._be_int_l[m] += rate_total * dt
            self._cpu_int_l[m] += (busy_tot if busy_tot < cores_f else cores_f) * dt
            self._membw_int_l[m] += membw_tot * dt
        self._elapsed += dt

        # Phase 2: latency sampling (shared with the vectorized path).
        closed_vec, tails_vec = self._sample_tails(w_real, w_n, slow_l, infl_l)
        for vi, i in enumerate(vec):
            tails[i] = tails_vec[vi]
            closed[i] = closed_vec[vi]

        # Deferred metrics: python columns; counters copied before the
        # applies, like the scalar record_tick.
        self._cols.append(
            (
                t,
                load_m,
                [tails_vec[m_vi[m]] for m in range(M)],
                busy_tot_l,
                membw_tot_l,
                rate_tot_l,
                list(self._cnt_inst_l),
                list(self._cnt_cores_l),
                list(self._cnt_ways_l),
                list(self._njobs_l),
            )
        )
        self._wins.append((closed_vec, tails_vec))

        # Phase 4: control (same memoized-apply loop as the vec path).
        acts: List[str] = [""] * M
        stop = BeAction.STOP_BE
        for m in range(M):
            i = self._m_i[m]
            exp = exps[i]
            run = self._m_run[m]
            machine = self._m_mach[m]
            action = run.controller.decide(loads[i], tails[i], t=t)
            filt = exp.action_filter
            if filt is not None:
                action = filt(self._m_pod[m], action)
            run.last_action = action
            acts[m] = action.value
            if last:
                ids = self._row_ids[m]
                run.last_snapshot = BeResourceSnapshot(
                    busy_cores=self._busy_be_l[m],
                    membw_fraction=membw_l[m],
                    llc_demand_fraction=self._llc_dem_l[m],
                    llc_occupied_fraction=self._llc_occ_l[m],
                    net_fraction=net_l[m],
                    rates=dict(zip(ids, rate_rows[m][: len(ids)])),
                )
            memo = self._memo[m]
            key = (action, machine.version, machine.mem_version)
            if key in memo:
                continue
            self._flush_row(m)
            v0 = machine.version
            mv0 = machine.mem_version
            exp._cpu_llc.apply(action, machine, run.pool)
            exp._memory.apply(action, machine, run.pool)
            if action is stop:
                self._freq_py[m] = self._f_max_l[m]
            if machine.version != v0:
                self._dirty.add(m)
                self._cnt_inst_l[m] = machine.be_instance_count
                self._cnt_cores_l[m] = machine.be_total_cores
                self._cnt_ways_l[m] = machine.be_total_llc_ways
            elif machine.mem_version == mv0 and action is not stop:
                memo.add(key)
        self._acts.append(acts)

        # Phase 5: frequency subcontroller per machine (post-apply BE
        # core counts, python pow cube — same table the vec path uses).
        r3_cache = self._r3_cache
        for m in range(M):
            f = self._freq_py[m]
            mx = self._f_max_l[m]
            v = r3_cache.get((f, mx))
            if v is None:
                v = (f / mx) ** 3
                r3_cache[(f, mx)] = v
            power = self._idle_l[m] + self._active_l[m] * (
                lc_busy_l[m] + self._cnt_cores_l[m] * v
            )
            if power > self._hi_l[m]:
                self._freq_py[m] = max(self._f_min_l[m], f - self._f_step_l[m])
            elif power < self._lo_l[m]:
                self._freq_py[m] = min(mx, f + self._f_step_l[m])
        self._last_net_l = lc_net_l

        if want_obs:
            for vi, i in enumerate(vec):
                rate_sum = 0.0
                for m in self._inst_machines[vi]:
                    rate_sum += rate_tot_l[m]
                be_rates[i] = rate_sum

    def _tick_vec(
        self,
        t: float,
        dt: float,
        last: bool,
        loads: List[float],
        tails: List[float],
        closed: List[bool],
        be_rates: List[float],
        want_obs: bool,
    ) -> None:
        """Whole-array tick over the vectorized instances (large fleets)."""
        exps = self._exps
        vec = self._vec_idx
        M = self._n_machines

        # Phase 0: load windows (per-instance RNG, python).
        w_load: List[float] = [0.0] * len(vec)
        w_real: List[float] = [0.0] * len(vec)
        w_n: List[int] = [0] * len(vec)
        for vi, i in enumerate(vec):
            window = exps[i]._begin_tick(t, dt)
            w_load[vi] = window.load
            w_real[vi] = window.realized_load
            w_n[vi] = window.n_samples
            loads[i] = window.load

        # Rebuild rows invalidated by last tick's applies.
        if self._dirty:
            for m in sorted(self._dirty):
                self._rebuild_row(m)
            self._dirty.clear()

        # Phase 1a: LC usage and NIC caps, whole fleet at once. Healthy
        # link (faulted instances are delegated): effective capacity ==
        # physical link, bitwise.
        real_m = np.asarray(w_real)[self._m_vi_arr]
        lc_busy = self._busy_coeff * real_m
        lc_membw = np.minimum(1.0, self._membw_coeff * real_m)
        lc_net = self._net_coeff * real_m
        lc_sent = np.minimum(lc_net, self._link_nic)
        be_cap = np.maximum(0.0, self._link_nic - self._guard * lc_sent)
        be_cap_frac = be_cap / self._link_spec

        # Phase 1b: proportional headroom shares. min(1, inf) == 1
        # covers the scalar "no demand -> scale 1.0" branch.
        headroom = np.maximum(0.0, 1.0 - lc_membw)
        quot = np.full(M, np.inf)
        np.divide(headroom, self._md_total, out=quot, where=self._md_total > 0.0)
        membw_scale = np.minimum(1.0, quot)
        quot = np.full(M, np.inf)
        np.divide(be_cap_frac, self._nd_total, out=quot, where=self._nd_total > 0.0)
        net_scale = np.minimum(1.0, quot)

        # Phase 1c: Leontief rates, exact BeRateKernel op order.
        fratio = self._freq / self._f_max
        ratios = (self._cpu_base * fratio[:, None]) / self._req_cpu
        ratios = np.minimum(ratios, self._llc_ratio)
        granted_membw = self._membw * membw_scale[:, None]
        ratios = np.minimum(
            ratios,
            np.where(self._membw_mask, granted_membw / self._membw_div, np.inf),
        )
        granted_net = self._net * net_scale[:, None]
        ratios = np.minimum(
            ratios,
            np.where(self._net_mask, granted_net / self._net_div, np.inf),
        )
        rate = np.maximum(0.0, np.minimum(1.0, ratios))

        # Padded column sweeps as ``add.accumulate`` (strictly sequential
        # left-to-right, unlike ``np.sum``'s pairwise fold): exact because
        # pads add +0.0 to non-negative accumulators and the first column
        # satisfies ``0.0 + c == c`` bitwise for c >= 0.
        membw_used = np.cumsum(granted_membw, axis=1)[:, -1]
        net_used = np.cumsum(granted_net, axis=1)[:, -1]
        rate_total = np.cumsum(rate, axis=1)[:, -1]
        snap_membw = np.minimum(1.0, membw_used)
        snap_net = np.minimum(1.0, net_used)

        # Phase 1d: pressure -> slowdown -> sigma inflation, python per
        # machine (x ** gamma and the impact fold must stay python).
        membw_l = snap_membw.tolist()
        net_l = snap_net.tolist()
        real_l = real_m.tolist()
        busy_l = self._busy_be_l
        slow_l: List[float] = [1.0] * M
        infl_l: List[float] = [1.0] * M
        p_cpu_l = self._p_cpu_l
        p_llc_l = self._p_llc_l
        for m in range(M):
            p_cpu = p_cpu_l[m]
            p_llc = p_llc_l[m]
            p_membw = membw_l[m]
            p_net = net_l[m]
            # p_freq == 0.0 exactly: the LC DVFS domain is untouched on
            # healthy machines, so its ratio is bitwise 1.0.
            coeffs, gamma, beta, hroom, coup, cap = self._pconst[m]
            if p_cpu == 0.0 and p_llc == 0.0 and p_membw == 0.0 and p_net == 0.0:
                slow = 1.0
            else:
                impact = coeffs[0] * p_cpu**gamma
                impact = impact + coeffs[1] * p_llc**gamma
                impact = impact + coeffs[2] * p_membw**gamma
                impact = impact + coeffs[3] * p_net**gamma
                impact = impact + coeffs[4] * 0.0**gamma
                lo = real_l[m]
                lo = min(max(lo, 0.0), 1.0)
                amp = 1.0 + beta * lo / (hroom + (1.0 - lo))
                slow = 1.0 + amp * impact
            slow_l[m] = slow
            infl_l[m] = min(cap, 1.0 + coup * (slow - 1.0))

        # Phase 2: latency sampling per instance (per-instance RNG),
        # tails reduced per (n_samples, percentile) group in one
        # partitioned-percentile call — bitwise equal per row.
        closed_vec, tails_vec = self._sample_tails(w_real, w_n, slow_l, infl_l)
        for vi, i in enumerate(vec):
            tails[i] = tails_vec[vi]
            closed[i] = closed_vec[vi]

        # Phase 3: BE progress, in place (elementwise == python floats).
        self._nw += dt * rate
        self._rs += dt * self._valid

        # Deferred metrics: integrate now, materialise at end of run.
        # Counter columns are copied *before* this tick's applies, like
        # the scalar record_tick.
        tail_m = np.asarray(tails_vec)[self._m_vi_arr]
        load_m = np.asarray(w_load)[self._m_vi_arr]
        busy_total = lc_busy + self._busy_be
        membw_total = np.minimum(1.0, lc_membw + snap_membw)
        self._lc_int += load_m * dt
        self._be_int += rate_total * dt
        self._cpu_int += np.minimum(busy_total, self._cores_farr) * dt
        self._membw_int += np.minimum(membw_total, 1.0) * dt
        self._elapsed += dt
        self._cols.append(
            (
                t,
                load_m,
                tail_m,
                busy_total,
                membw_total,
                rate_total,
                self._cnt_inst.copy(),
                self._cnt_cores.copy(),
                self._cnt_ways.copy(),
                self._njobs.copy(),
            )
        )
        self._wins.append((closed_vec, tails_vec))

        # Phase 4: control — decide is stateful python per machine; the
        # applies run through the shared subcontrollers, memoized on
        # (action, version, mem_version) no-op keys.
        acts: List[str] = [""] * M
        stop = BeAction.STOP_BE
        for m in range(M):
            i = self._m_i[m]
            exp = exps[i]
            run = self._m_run[m]
            machine = self._m_mach[m]
            action = run.controller.decide(loads[i], tails[i], t=t)
            filt = exp.action_filter
            if filt is not None:
                action = filt(self._m_pod[m], action)
            run.last_action = action
            acts[m] = action.value
            if last:
                ids = self._row_ids[m]
                run.last_snapshot = BeResourceSnapshot(
                    busy_cores=busy_l[m],
                    membw_fraction=membw_l[m],
                    llc_demand_fraction=self._llc_dem_l[m],
                    llc_occupied_fraction=self._llc_occ_l[m],
                    net_fraction=net_l[m],
                    rates=dict(zip(ids, rate[m, : len(ids)].tolist())),
                )
            memo = self._memo[m]
            key = (action, machine.version, machine.mem_version)
            if key in memo:
                continue
            self._flush_row(m)
            v0 = machine.version
            mv0 = machine.mem_version
            exp._cpu_llc.apply(action, machine, run.pool)
            exp._memory.apply(action, machine, run.pool)
            if action is stop:
                # STOP reset the BE DVFS domain; mirror it and never
                # memoize (the key cannot witness this side effect).
                self._freq[m] = self._f_max_l[m]
            if machine.version != v0:
                self._dirty.add(m)
                self._cnt_inst[m] = machine.be_instance_count
                self._cnt_cores[m] = machine.be_total_cores
                self._cnt_ways[m] = machine.be_total_llc_ways
            elif machine.mem_version == mv0 and action is not stop:
                memo.add(key)
        self._acts.append(acts)

        # Phase 5: frequency subcontroller, whole fleet at once. Uses
        # post-apply BE core counts, exactly like the scalar pass.
        if self._r3_table is not None:
            r3 = self._r3_table[(self._freq - self._r3_base) // self._r3_step]
        else:
            cache = self._r3_cache
            vals = []
            for m, f in enumerate(self._freq.tolist()):
                mx = self._f_max_l[m]
                v = cache.get((f, mx))
                if v is None:
                    v = (f / mx) ** 3
                    cache[(f, mx)] = v
                vals.append(v)
            r3 = np.asarray(vals)
        power = self._idle_w + self._active_w * (lc_busy + self._cnt_cores * r3)
        down = power > self._hi_w
        up = (~down) & (power < self._lo_w)
        self._freq = np.where(
            down,
            np.maximum(self._f_min, self._freq - self._f_step),
            np.where(
                up, np.minimum(self._f_max, self._freq + self._f_step), self._freq
            ),
        )
        self._last_net = lc_net

        if want_obs:
            rt_l = rate_total.tolist()
            for vi, i in enumerate(vec):
                rate_sum = 0.0
                for m in self._inst_machines[vi]:
                    rate_sum += rt_l[m]
                be_rates[i] = rate_sum

    # -- whole runs ----------------------------------------------------------

    def _tick_times(self) -> List[float]:
        """The scalar engine's tick schedule, float accumulation and all."""
        times: List[float] = []
        t = self._period_s
        if t <= self._duration_s:
            times.append(t)
            while True:
                nxt = t + self._period_s
                if nxt > self._duration_s:
                    break
                times.append(nxt)
                t = nxt
        return times

    def run(self) -> List["ColocationResult"]:
        """Run every experiment to completion; results in input order."""
        times = self._tick_times()
        n_ticks = len(times)
        lsum = [0.0] * len(self._exps)
        for k, t in enumerate(times):
            self.tick(k, t, self._period_s, last=(k == n_ticks - 1))
            for i, exp in enumerate(self._exps):
                lsum[i] += min(1.0, max(0.0, exp.pattern.load_at(t)))
        self._finalize()
        return [
            exp._result(lsum[i] / max(1, n_ticks), events_fired=n_ticks)
            for i, exp in enumerate(self._exps)
        ]

    def _finalize(self) -> None:
        """Flush SoA state back into the world objects and metrics."""
        if self._small:
            self._finalize_small()
            return
        M = self._n_machines
        elapsed = self._elapsed
        lc_l = self._lc_int.tolist()
        be_l = self._be_int.tolist()
        cpu_l = self._cpu_int.tolist()
        mb_l = self._membw_int.tolist()
        for m in range(M):
            self._flush_row(m)
            metrics = self._m_run[m].metrics
            emu = metrics.emu
            emu._lc_integral = lc_l[m]
            emu._be_integral = be_l[m]
            emu._elapsed = elapsed
            util = metrics.utilisation
            util._cpu_integral = cpu_l[m]
            util._membw_integral = mb_l[m]
            util._elapsed = elapsed
        for col, acts in zip(self._cols, self._acts):
            (t, load_m, tail_m, busy, membw, rate_tot, ci, cc, cw, nj) = col
            slack = (self._sla_arr - tail_m) / self._sla_arr
            cpu_u = np.minimum(1.0, busy / self._cores_farr)
            ll = load_m.tolist()
            tl = tail_m.tolist()
            sl = slack.tolist()
            cl = cpu_u.tolist()
            mb = membw.tolist()
            rt = rate_tot.tolist()
            cil = ci.tolist()
            ccl = cc.tolist()
            cwl = cw.tolist()
            njl = nj.tolist()
            for m in range(M):
                self._m_run[m].metrics.samples.append(
                    TickSample(
                        t=t,
                        load=ll[m],
                        slack=sl[m],
                        tail_ms=tl[m],
                        cpu_utilisation=cl[m],
                        membw_utilisation=mb[m],
                        be_instances=cil[m],
                        be_cores=ccl[m],
                        be_llc_ways=cwl[m],
                        # An empty rates dict sums to the *int* 0 on the
                        # scalar path (sum of no floats) — match it so
                        # fingerprint reprs stay bitwise identical.
                        be_rate=rt[m] if njl[m] else 0,
                        action=acts[m],
                    )
                )
        for vi, rows in enumerate(self._inst_machines):
            window_tails = [tl[vi] for (cv, tl) in self._wins if cv[vi]]
            for m in rows:
                self._m_run[m].metrics.tail.record_window_tails(window_tails)
        # Sync the hardware observables (DVFS frequency, NIC caps) so
        # post-run machine state matches a scalar run's.
        freq_l = self._freq.tolist()
        net_l = self._last_net.tolist() if self._last_net is not None else None
        self._sync_hardware(freq_l, net_l)

    def _finalize_small(self) -> None:
        """Python finalize over the small-fleet twins (same values)."""
        M = self._n_machines
        elapsed = self._elapsed
        for m in range(M):
            self._flush_row(m)
            metrics = self._m_run[m].metrics
            emu = metrics.emu
            emu._lc_integral = self._lc_int_l[m]
            emu._be_integral = self._be_int_l[m]
            emu._elapsed = elapsed
            util = metrics.utilisation
            util._cpu_integral = self._cpu_int_l[m]
            util._membw_integral = self._membw_int_l[m]
            util._elapsed = elapsed
        for col, acts in zip(self._cols, self._acts):
            (t, load_m, tail_m, busy, membw, rate_tot, ci, cc, cw, nj) = col
            for m in range(M):
                tail = tail_m[m]
                sla = self._sla_l[m]
                self._m_run[m].metrics.samples.append(
                    TickSample(
                        t=t,
                        load=load_m[m],
                        slack=(sla - tail) / sla,
                        tail_ms=tail,
                        cpu_utilisation=min(1.0, busy[m] / self._cores_f_l[m]),
                        membw_utilisation=membw[m],
                        be_instances=ci[m],
                        be_cores=cc[m],
                        be_llc_ways=cw[m],
                        # Same int-0 quirk as the vec path: the scalar
                        # rates dict sums to the *int* 0 when empty.
                        be_rate=rate_tot[m] if nj[m] else 0,
                        action=acts[m],
                    )
                )
        for vi, rows in enumerate(self._inst_machines):
            window_tails = [tl[vi] for (cv, tl) in self._wins if cv[vi]]
            for m in rows:
                self._m_run[m].metrics.tail.record_window_tails(window_tails)
        self._sync_hardware(self._freq_py, self._last_net_l)

    def _sync_hardware(
        self, freq_l: List[int], net_l: Optional[List[float]]
    ) -> None:
        for m in range(self._n_machines):
            machine = self._m_mach[m]
            if freq_l[m] >= self._f_max_l[m]:
                machine.dvfs.reset(BE_DOMAIN)
            else:
                machine.dvfs.set_frequency(BE_DOMAIN, freq_l[m])
            if net_l is not None:
                machine.nic.observe_lc_traffic(net_l[m])


# ---------------------------------------------------------------------------
# Bake-off: many controller sets over one shared physics pass
# ---------------------------------------------------------------------------


@dataclass
class BakeoffStats:
    """Sharing accounting of one :class:`BakeoffKernel` run.

    ``branch_ticks`` counts physics passes actually executed (one per
    live branch per tick); running the ``members`` controller sets
    independently would cost ``members * ticks`` passes, so the saving
    is their difference.
    """

    members: int = 0
    ticks: int = 0
    branch_ticks: int = 0
    forks: int = 0
    merges: int = 0
    max_branches: int = 0

    @property
    def physics_passes_saved(self) -> int:
        """Physics passes avoided vs independent per-member runs."""
        return self.members * self.ticks - self.branch_ticks

    @property
    def shared_fraction(self) -> float:
        """Fraction of the independent-run physics cost avoided."""
        total = self.members * self.ticks
        return self.physics_passes_saved / total if total else 0.0


class _BakeoffMember:
    """One controller set racing in the bake-off, with its own metrics."""

    __slots__ = (
        "name",
        "controllers",
        "metrics",
        "kill_offset",
        "susp_offset",
        "actions",
    )

    def __init__(self, name, controllers, metrics) -> None:
        self.name = name
        self.controllers = controllers
        self.metrics = metrics
        # Integer counter virtualisation: this member's independent-run
        # kill/suspension totals equal its branch world's totals plus
        # these offsets. Exact integer arithmetic, adjusted only at
        # merge time, so no float associativity is ever at stake.
        self.kill_offset = 0
        self.susp_offset = 0
        self.actions: Dict[str, BeAction] = {}


#: Distinct-from-everything marker for the memo-normalisation lookup
#: (``None`` is a real verdict there, so ``dict.get`` needs a third state).
_UNRESOLVED = object()


def _memo_key(pod: str, action: BeAction, machine) -> Tuple:
    """The no-op memo key for one pod's pending action.

    ``version``/``mem_version`` witness every BE-visible allocation
    change, but fault injection moves capacity *without* bumping them:
    ``offline_cores``/``fault_llc_ways`` park cores and cache ways under
    the fault owner and the restore hands them straight back to the free
    pool. A memoized "ALLOW was a no-op" verdict recorded while capacity
    was fault-held would otherwise stay live after the restore and skip
    a launch that the scalar engine performs. Including the fault-held
    counts in the key invalidates the memo across every such transition.
    """
    return (
        pod,
        action,
        machine.version,
        machine.mem_version,
        machine.offlined_cores,
        machine.lost_llc_ways,
    )


class _BakeoffBranch:
    """One materialised world shared by members whose decisions agree."""

    __slots__ = ("exp", "kernel", "members", "memo")

    def __init__(self, exp, kernel, members, memo) -> None:
        self.exp = exp
        self.kernel = kernel
        self.members = members  # member indices, ascending
        # No-op memo in the FleetColocationKernel style: a key (see
        # :func:`_memo_key`) enters only after an apply that provably
        # changed nothing, so skipping a repeat cannot change state
        # (STOP never enters — its DVFS reset is a side effect the key
        # cannot witness). Used both to skip repeated applies and to
        # *normalise* action vectors before divergence partitioning:
        # two members whose actions differ only on memoized-no-op pods
        # share one world mutation.
        self.memo = memo


class BakeoffKernel:
    """Runs N controller sets over one seeded scenario in a single pass.

    The controller-independent physics of a tick — fault advance, load
    window, BE rates, interference pressure, Servpod latency draws, BE
    progress — runs **once per branch** through
    :meth:`BatchedColocationKernel.observe` and is broadcast to every
    member (controller set) on that branch. Members decide on the shared
    observation and record their own metrics; their action vectors are
    then normalised through the branch's no-op memo and partitioned.
    One partition keeps the branch; each additional partition **forks**
    a copy-on-write world (``copy.deepcopy`` of the experiment: machine
    state, pools, RNG streams, fault injector) and applies its own
    actions — so the cost of divergence is paid only when decisions
    actually differ in effect.

    Because controller decisions never change RNG *consumption* (window
    sample counts and latency-draw shapes depend only on the load
    pattern and the shared seed), every branch's streams stay bitwise
    equal, and branches whose worlds re-converge — same live jobs, same
    allocations and float progress, same DVFS/NIC state — are detected
    by a state digest and **re-merged**, with per-member integer
    kill/suspension counters virtualised via exact offsets.

    Identity contract: for every member, the returned
    ``ColocationResult`` and the final RNG stream states are
    bit-identical to constructing a fresh ``ColocationExperiment`` with
    that member's controllers over the same seeded scenario and calling
    ``run()`` (``tests/test_bakeoff.py`` pins this in-process, across
    fork/spawn, and under fault schedules).
    """

    def __init__(
        self,
        experiment: "ColocationExperiment",
        members: "Dict[str, Dict[str, object]]",
    ) -> None:
        if not members:
            raise ConfigurationError("bake-off needs at least one member")
        if experiment.action_filter is not None:
            raise ConfigurationError(
                "bake-off does not compose with action_filter hooks"
            )
        pods = list(experiment._runs)
        for name, controllers in members.items():
            missing = set(pods) - set(controllers)
            if missing:
                raise ConfigurationError(
                    f"member {name!r} lacks controllers for {sorted(missing)}"
                )
        self._exp = experiment
        self._pods = pods
        self._duration_s = experiment.config.duration_s
        self._period_s = experiment.config.control_period_s
        # Histogram tail estimators carry cross-tick state that the
        # merge digest does not model; forking still works, merging is
        # simply never attempted.
        self._mergeable = experiment._tail_estimator is None
        self._members: List[_BakeoffMember] = []
        for name, controllers in members.items():
            metrics = {
                pod: MachineMetrics(
                    machine_name=experiment.deployment.servpod(pod).machine.spec.name,
                    servpod=pod,
                    total_cores=experiment.deployment.servpod(pod).machine.spec.cores,
                    sla_ms=experiment.spec.sla_ms,
                    tail_pct=experiment.spec.tail_percentile,
                )
                for pod in pods
            }
            self._members.append(_BakeoffMember(name, dict(controllers), metrics))
        # The root branch reuses the experiment's own batched kernel if
        # present; ``_batched`` is then detached so world forks do not
        # deepcopy SoA mirrors (each fork builds a fresh kernel whose
        # mirrors rebuild on the next version check).
        root_kernel = experiment._batched or BatchedColocationKernel(experiment)
        experiment._batched = None
        self._branches: List[_BakeoffBranch] = [
            _BakeoffBranch(
                experiment, root_kernel, list(range(len(self._members))), set()
            )
        ]
        self.stats = BakeoffStats(members=len(self._members))
        self._member_branch: Dict[str, _BakeoffBranch] = {}

    # -- the run loop ---------------------------------------------------

    def _tick_times(self) -> List[float]:
        """The scalar engine's tick schedule, float accumulation and all."""
        times: List[float] = []
        t = self._period_s
        if t <= self._duration_s:
            times.append(t)
            while True:
                nxt = t + self._period_s
                if nxt > self._duration_s:
                    break
                times.append(nxt)
                t = nxt
        return times

    def run(self) -> "Dict[str, ColocationResult]":
        """Run every member to completion; results keyed by member name."""
        times = self._tick_times()
        n_ticks = len(times)
        self.stats.ticks = n_ticks
        lsum = 0.0
        pattern = self._exp.pattern
        for t in times:
            for branch in list(self._branches):
                self._tick_branch(branch, t, self._period_s)
            if self._mergeable and len(self._branches) > 1:
                self._try_merge()
            self.stats.max_branches = max(
                self.stats.max_branches, len(self._branches)
            )
            lsum += min(1.0, max(0.0, pattern.load_at(t)))
        lc_load_mean = lsum / max(1, n_ticks)
        results: Dict[str, "ColocationResult"] = {}
        for branch in self._branches:
            for mi in branch.members:
                member = self._members[mi]
                self._member_branch[member.name] = branch
                results[member.name] = self._member_result(
                    member, branch, lc_load_mean, n_ticks
                )
        return {m.name: results[m.name] for m in self._members}

    def member_streams(self, name: str):
        """The final RNG streams of ``name``'s branch (after ``run``)."""
        return self._member_branch[name].exp.streams

    # -- one tick of one branch -----------------------------------------

    def _tick_branch(self, branch: _BakeoffBranch, t: float, dt: float) -> None:
        self.stats.branch_ticks += 1
        exp = branch.exp
        load, tail_ms, window_closed, snapshots, usages = branch.kernel.observe(
            t, dt
        )
        machines = branch.kernel._machines

        # Pre-apply machine gauges and per-pod sample fields, computed
        # once and recorded for every member: the world is shared until
        # the apply phase, so each member's scalar run would read these
        # exact values.
        pod_fields: Dict[str, Tuple] = {}
        for pod in self._pods:
            snapshot = snapshots[pod]
            usage = usages[pod]
            n_inst, n_cores, n_ways = branch.kernel.be_counters(pod)
            pod_fields[pod] = (
                usage.busy_cores + snapshot.busy_cores,
                min(1.0, usage.membw_fraction + snapshot.membw_fraction),
                n_inst,
                n_cores,
                n_ways,
                snapshot.total_rate,
            )

        # Decide + record for every member on the shared observation.
        # Machines are per-pod, so recording all members before any
        # apply sees exactly the pre-apply state the scalar per-pod
        # decide/record/apply interleaving sees. Members that chose the
        # same action for a pod record the exact same field values, so
        # one frozen ``TickSample`` per distinct (pod, action) is built
        # and shared (every member's sla / core capacity comes from the
        # one scenario service, enforced at construction).
        sample_cache: Dict[Tuple[str, BeAction], TickSample] = {}
        for mi in branch.members:
            member = self._members[mi]
            actions: Dict[str, BeAction] = {}
            for pod in self._pods:
                actions[pod] = member.controllers[pod].decide(load, tail_ms, t=t)
            member.actions = actions
            for pod in self._pods:
                action = actions[pod]
                metrics = member.metrics[pod]
                if window_closed:
                    metrics.tail.record_window_tail(tail_ms)
                key = (pod, action)
                sample = sample_cache.get(key)
                if sample is None:
                    (busy, membw, n_inst, n_cores, n_ways, be_rate) = (
                        pod_fields[pod]
                    )
                    sla = metrics.sla_ms
                    sample = TickSample(
                        t=t,
                        load=load,
                        slack=(sla - tail_ms) / sla,
                        tail_ms=tail_ms,
                        cpu_utilisation=min(1.0, busy / metrics.total_cores),
                        membw_utilisation=membw,
                        be_instances=n_inst,
                        be_cores=n_cores,
                        be_llc_ways=n_ways,
                        be_rate=be_rate,
                        action=action.value,
                    )
                    sample_cache[key] = sample
                metrics.record_shared_tick(dt, sample, pod_fields[pod][0])

        # Partition members by memo-normalised action vector: a pod
        # whose memo key is a proven no-op is a wildcard — members
        # differing only there share one world mutation. The memo
        # verdict depends only on (pod, action, machine state), so it
        # is resolved once per distinct action and reused.
        norm: Dict[Tuple[str, BeAction], Optional[BeAction]] = {}
        partitions: Dict[Tuple, List[int]] = {}
        for mi in branch.members:
            member = self._members[mi]
            sig_parts = []
            for pod in self._pods:
                action = member.actions[pod]
                pk = (pod, action)
                verdict = norm.get(pk, _UNRESOLVED)
                if verdict is _UNRESOLVED:
                    verdict = (
                        None
                        if _memo_key(pod, action, machines[pod]) in branch.memo
                        else action
                    )
                    norm[pk] = verdict
                sig_parts.append(verdict)
            partitions.setdefault(tuple(sig_parts), []).append(mi)

        groups = list(partitions.values())
        if len(groups) > 1:
            # Lazy divergence forking: clone the pre-apply world once
            # per extra partition, then let each partition apply its own
            # actions to its own copy.
            branch.members = groups[0]
            for group in groups[1:]:
                fork = self._fork(branch, group)
                self._branches.append(fork)
                self._apply(fork, self._members[group[0]].actions, usages)
        self._apply(branch, self._members[branch.members[0]].actions, usages)

    # -- copy-on-write world forking --------------------------------------

    def _scenario_shared_state(self, exp) -> List[object]:
        """The scenario objects every branch may share by reference.

        A fork must duplicate exactly the state a branch can *mutate*:
        machine/cluster state, BE pools, RNG streams, the load
        generator, the fault injector, tail estimators. Everything else
        about the scenario is decision-independent and read-only for
        the whole run — the frozen service/BE specs, the load pattern,
        the config (and its fault schedule), the stateless
        subcontrollers, and the experiment's own controllers (the
        bake-off consults only *member* controllers, never the
        scenario experiment's; enforced by every member carrying a
        fresh ``build_controllers`` set). Sharing these turns the fork
        deep-copy into a copy-on-write snapshot of just the mutable
        world, which is what lets the engine win even on
        high-divergence rosters (see ``bench_bakeoff.py``).
        """
        shared: List[object] = [
            exp.spec,
            exp.pattern,
            exp.config,
            exp._cpu_llc,
            exp._frequency,
            exp._memory,
            exp._network,
        ]
        if exp.config.faults is not None:
            shared.append(exp.config.faults)
            shared.extend(exp.config.faults.faults)
        shared.extend(exp.be_specs)
        shared.extend(exp.controllers.values())
        return shared

    def _fork(self, branch: _BakeoffBranch, group: List[int]) -> _BakeoffBranch:
        """Clone ``branch``'s world for a diverging member partition.

        The deep copy is seeded with a memo mapping every shared
        scenario object to itself (:meth:`_scenario_shared_state`), so
        only the mutable world state is duplicated. The clone's
        ``_batched`` mirror is already detached (done once at
        construction), so no SoA arrays are copied either — the fork's
        fresh :class:`BatchedColocationKernel` rebuilds them lazily.
        """
        self.stats.forks += 1
        exp = branch.exp
        memo: Dict[int, object] = {
            id(obj): obj for obj in self._scenario_shared_state(exp)
        }
        clone = copy.deepcopy(exp, memo)
        return _BakeoffBranch(
            clone,
            BatchedColocationKernel(clone),
            group,
            set(branch.memo),
        )

    def _apply(
        self,
        branch: _BakeoffBranch,
        actions: "Dict[str, BeAction]",
        usages,
    ) -> None:
        """Phase 4 actuation in exact scalar order, memoised per branch."""
        exp = branch.exp
        machines = branch.kernel._machines
        for pod in self._pods:
            machine = machines[pod]
            run = exp._runs[pod]
            action = actions[pod]
            key = _memo_key(pod, action, machine)
            if key not in branch.memo:
                v0, mv0 = machine.version, machine.mem_version
                exp._cpu_llc.apply(action, machine, run.pool)
                exp._memory.apply(action, machine, run.pool)
                if (
                    action is not BeAction.STOP_BE
                    and machine.version == v0
                    and machine.mem_version == mv0
                ):
                    branch.memo.add(key)
            exp._frequency.apply(
                machine,
                usages[pod].busy_cores,
                branch.kernel.be_counters(pod)[1],
            )

    # -- re-merge detection ---------------------------------------------

    def _try_merge(self) -> None:
        """Collapse branches whose forward-relevant state re-converged."""
        by_digest: Dict[Tuple, List[_BakeoffBranch]] = {}
        for branch in self._branches:
            by_digest.setdefault(_world_digest(branch.exp), []).append(branch)
        if len(by_digest) == len(self._branches):
            return
        survivors: List[_BakeoffBranch] = []
        for branch in self._branches:
            group = by_digest.get(_world_digest(branch.exp))
            if group is None or group[0] is branch:
                survivors.append(branch)
        for group in by_digest.values():
            keep = group[0]
            k_kills = keep.exp.deployment.cluster.total_be_kills
            k_susp = sum(
                m.counters.be_suspensions for m in keep.exp.deployment.cluster
            )
            for other in group[1:]:
                o_kills = other.exp.deployment.cluster.total_be_kills
                o_susp = sum(
                    m.counters.be_suspensions
                    for m in other.exp.deployment.cluster
                )
                for mi in other.members:
                    member = self._members[mi]
                    member.kill_offset += o_kills - k_kills
                    member.susp_offset += o_susp - k_susp
                keep.members.extend(other.members)
                self.stats.merges += 1
            keep.members.sort()
        self._branches = survivors

    # -- results --------------------------------------------------------

    def _member_result(
        self,
        member: _BakeoffMember,
        branch: _BakeoffBranch,
        lc_load_mean: float,
        n_ticks: int,
    ) -> "ColocationResult":
        from repro.experiments.colocation import ColocationResult

        exp = branch.exp
        machines = dict(member.metrics)
        for pod in self._pods:
            member.metrics[pod].completed_be_throughput = (
                exp._runs[pod].pool.total_normalized_work
                / exp.config.duration_s
            )
        first = next(iter(machines.values()))
        return ColocationResult(
            service=exp.spec.name,
            duration_s=exp.config.duration_s,
            lc_load_mean=lc_load_mean,
            machines=machines,
            be_kills=exp.deployment.cluster.total_be_kills
            + member.kill_offset,
            be_suspensions=sum(
                m.counters.be_suspensions for m in exp.deployment.cluster
            )
            + member.susp_offset,
            sla_violations=first.sla_violations,
            worst_tail_ms=max(m.worst_tail_ms for m in machines.values()),
            events_fired=n_ticks,
        )


def _world_digest(exp: "ColocationExperiment") -> Tuple:
    """Forward-relevant world state of one experiment, id-free.

    Two branches with equal digests evolve identically from here on, so
    they may share one world. The digest deliberately **excludes** the
    monotonic counters that merging virtualises — kill/suspension/launch
    counters, the pool's job-id counter, ``Machine.version`` — and
    compares live jobs *positionally* (spec, state, float progress in
    exact bits, allocation) rather than by id: job ids never enter
    physics or results. The spec-cycle position IS included — with a
    multi-spec BE mix it determines which spec the next launch gets.
    Everything float is compared via ``float.hex`` (bitwise).
    """
    pods_state = []
    for pod, run in exp._runs.items():
        machine = exp.deployment.servpod(pod).machine
        pool = run.pool
        jobs = []
        for job in pool.jobs():
            alloc = machine.be_allocation(job.job_id)
            jobs.append(
                (
                    job.spec.name,
                    job.state.value,
                    job.normalized_work.hex(),
                    job.running_seconds.hex(),
                    None
                    if alloc is None
                    else (
                        alloc.cores,
                        alloc.llc_ways,
                        alloc.memory_gb.hex(),
                        alloc.suspended,
                    ),
                )
            )
        pods_state.append(
            (
                pod,
                tuple(jobs),
                float(pool.total_normalized_work).hex(),
                pool._counter % len(pool.specs),
                machine.dvfs.frequency(LC_DOMAIN),
                machine.dvfs.frequency(BE_DOMAIN),
                machine.dvfs.cap(LC_DOMAIN),
                machine.dvfs.cap(BE_DOMAIN),
                machine.nic.be_cap_gbps.hex(),
                machine.nic.link_scale.hex(),
                machine.offlined_cores,
                machine.lost_llc_ways,
                machine.cpuset.free_cores,
                machine.llc.free_ways,
            )
        )
    rng = tuple(
        (name, repr(exp.streams._streams[name].bit_generator.state))
        for name in sorted(exp.streams._streams)
    )
    return (tuple(pods_state), rng)
