"""The discrete-event simulation engine.

The engine owns a :class:`~repro.sim.clock.Clock` and an
:class:`~repro.sim.events.EventQueue` and drains events in time order until
a horizon is reached or the queue empties. Periodic activities (load
generators, controllers, metric snapshots) register through
:meth:`Engine.every`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.events import Event, EventCallback, EventQueue


class Engine:
    """Run a discrete-event simulation.

    Priorities used across the simulator (lower fires first at equal time):

    - ``PRIORITY_ARRIVAL`` (0): request arrivals / BE work completions.
    - ``PRIORITY_METRICS`` (5): metric window rollovers.
    - ``PRIORITY_CONTROL`` (10): controller ticks — run last so they see
      all activity up to and including their tick time.
    """

    PRIORITY_ARRIVAL = 0
    PRIORITY_METRICS = 5
    PRIORITY_CONTROL = 10

    def __init__(self, start: float = 0.0) -> None:
        self.clock = Clock(start)
        self.queue = EventQueue()
        self._running = False
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.clock.now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (skipped/cancelled not counted)."""
        return self._events_fired

    def at(self, time: float, callback: EventCallback, priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past: now={self.clock.now}, at={time}"
            )
        return self.queue.push(time, callback, priority)

    def at_many(
        self, items: Iterable[Sequence], priority: int = 0
    ) -> List[Event]:
        """Batch-schedule ``(time, callback)`` (or ``(time, callback,
        priority)``) pairs via :meth:`EventQueue.push_many`.

        One O(n) heapify replaces n sift-ups — the fast path for
        arrival bursts where a load generator materialises a whole
        window (or run) of arrivals at once. Items that carry no
        explicit priority pass straight through to the queue (which
        applies ``priority`` as the default), so the common uniform-
        priority burst is scheduled without rebuilding the batch as an
        intermediate list of triples.
        """
        now = self.clock.now
        if not isinstance(items, (list, tuple)):
            items = list(items)
        for item in items:
            if item[0] < now:
                raise SimulationError(
                    f"cannot schedule event in the past: now={now}, at={item[0]}"
                )
        return self.queue.push_many(items, default_priority=priority)

    def after(self, delay: float, callback: EventCallback, priority: int = 0) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now (``delay`` >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.queue.push(self.clock.now + delay, callback, priority)

    def every(
        self,
        period: float,
        callback: Callable[[float], Any],
        priority: int = 0,
        first_at: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Callable[[], None]:
        """Schedule ``callback`` periodically; returns a cancel function.

        The callback fires at ``first_at`` (default: now + period) and then
        every ``period`` seconds until cancelled or ``until`` is passed.
        A ``first_at`` already in the past — e.g. computed against a
        clock that has since resumed and advanced — clamps to *now*
        instead of crashing the schedule.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period!r}")
        state: dict[str, Any] = {"cancelled": False, "event": None}

        def fire(t: float) -> None:
            if state["cancelled"]:
                return
            callback(t)
            next_t = t + period
            if until is None or next_t <= until:
                state["event"] = self.at(next_t, fire, priority)

        start = (
            self.clock.now + period
            if first_at is None
            else max(float(first_at), self.clock.now)
        )
        if until is None or start <= until:
            state["event"] = self.at(start, fire, priority)

        def cancel() -> None:
            state["cancelled"] = True
            event = state["event"]
            if event is not None:
                event.cancel()

        return cancel

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time; the clock
            is advanced to ``until`` on a horizon stop.
        max_events:
            Safety valve against runaway schedules.

        Returns
        -------
        int
            The number of events fired during this call.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        fired = 0
        queue = self.queue
        heap = queue._heap
        batch: List[Event] = []
        try:
            while True:
                limit = (
                    max_events - fired if max_events is not None else 1 << 30
                )
                if limit <= 0:
                    break
                # Coalesced-tick fast path: one heap access pops the whole
                # same-(time, priority) batch — e.g. every periodic tick
                # scheduled for this instant — instead of the historical
                # peek_time() + pop() pair per event.
                count = queue.pop_batch_due(until, batch, limit)
                if count == 0:
                    if until is not None:
                        self.clock.advance_to(until)
                    break
                self.clock.advance_to(batch[0].time)
                for index, event in enumerate(batch):
                    if event.cancelled:
                        continue
                    # A callback may have scheduled an event that sorts
                    # before the rest of the batch (same time, lower
                    # priority). Push the unfired tail back so firing
                    # order stays exactly the single-pop order.
                    if heap and heap[0] < event:
                        for later in batch[index:]:
                            if not later.cancelled:
                                queue.reinsert(later)
                        break
                    event.callback(event.time)
                    fired += 1
                    self._events_fired += 1
        finally:
            self._running = False
        return fired
