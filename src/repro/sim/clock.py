"""Simulation clock.

Time is measured in *seconds* as a float. The clock only moves forward;
moving it backwards raises :class:`~repro.errors.ClockError` because a
backwards move would silently corrupt every time-ordered statistic in the
simulator.
"""

from __future__ import annotations

from repro.errors import ClockError


class Clock:
    """A monotonically non-decreasing simulation clock.

    Parameters
    ----------
    start:
        Initial simulation time in seconds. Must be finite and >= 0.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if not (start >= 0.0):  # also rejects NaN
            raise ClockError(f"clock must start at a finite time >= 0, got {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t``.

        Raises
        ------
        ClockError
            If ``t`` is earlier than the current time or not finite.
        """
        if not (t >= self._now):  # also rejects NaN
            raise ClockError(
                f"cannot move clock backwards: now={self._now}, requested={t!r}"
            )
        self._now = float(t)

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by ``dt`` seconds (must be >= 0)."""
        if not (dt >= 0.0):
            raise ClockError(f"cannot advance clock by negative delta {dt!r}")
        self._now += float(dt)

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.6f})"
