"""Discrete-event simulation kernel.

The kernel is deliberately small: a :class:`~repro.sim.clock.Clock`, a
priority :class:`~repro.sim.events.EventQueue`, an
:class:`~repro.sim.engine.Engine` that drains the queue, and deterministic
named random streams (:class:`~repro.sim.rng.RandomStreams`).

Every stochastic component of the simulator draws from a *named* stream so
that experiments are reproducible and statistically independent subsystems
stay independent when one of them changes how many draws it makes.
"""

from repro.sim.clock import Clock
from repro.sim.events import Event, EventQueue
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams

__all__ = ["Clock", "Event", "EventQueue", "Engine", "RandomStreams"]
