"""Event and event-queue primitives for the simulation kernel.

Events are ordered by ``(time, priority, sequence)``. The sequence number
makes ordering total and FIFO-stable for events scheduled at the same time
and priority, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.errors import SimulationError

# An event callback receives the firing time.
EventCallback = Callable[[float], Any]


@dataclass(order=True)
class Event:
    """A scheduled simulation event.

    Attributes
    ----------
    time:
        Absolute firing time in seconds.
    priority:
        Lower fires first among events at the same time. Controllers use a
        lower priority than request completions so that control decisions
        observe a consistent snapshot of the second that just elapsed.
    seq:
        Tie-breaking sequence number (assigned by the queue).
    callback:
        Callable invoked as ``callback(time)`` when the event fires.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.
    """

    time: float
    priority: int
    seq: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Owning queue while the event sits in its heap; lets cancel()
    #: maintain the queue's live-event counter in O(1). Detached (None)
    #: once popped or cleared.
    _queue: Optional["EventQueue"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark this event so the engine skips it; O(1)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._live -= 1
            self._queue = None


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    A live-event counter is maintained on push/pop/cancel so ``len()``
    and truthiness are O(1) instead of scanning the heap.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, callback: EventCallback, priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return the event."""
        if not (time >= 0.0):
            raise SimulationError(f"event time must be finite and >= 0, got {time!r}")
        event = Event(time=float(time), priority=priority, seq=next(self._counter), callback=callback)
        event._queue = self
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def push_many(
        self,
        items: Iterable[Sequence],
        default_priority: int = 0,
    ) -> List[Event]:
        """Schedule a batch of ``(time, callback[, priority])`` tuples.

        Amortizes the per-event ``heappush`` cost for arrival bursts:
        the batch is appended and the heap restored with one O(n)
        ``heapify`` instead of m × O(log n) sift-ups. Pop order is
        unaffected — events are totally ordered by
        ``(time, priority, seq)`` and sequence numbers are assigned in
        batch order, exactly as repeated :meth:`push` calls would.

        Two-element tuples take ``default_priority``, so callers with a
        uniform priority (the common arrival-burst case) can pass their
        ``(time, callback)`` pairs straight through without building an
        intermediate list of triples.
        """
        events: List[Event] = []
        for item in items:
            time = item[0]
            if not (time >= 0.0):
                raise SimulationError(
                    f"event time must be finite and >= 0, got {time!r}"
                )
            event = Event(
                time=float(time),
                priority=item[2] if len(item) > 2 else default_priority,
                seq=next(self._counter),
                callback=item[1],
            )
            event._queue = self
            events.append(event)
        if not events:
            return events
        self._heap.extend(events)
        heapq.heapify(self._heap)
        self._live += len(events)
        return events

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                # Detach so a late cancel() of the returned event cannot
                # decrement the counter for an event no longer queued.
                event._queue = None
                self._live -= 1
                return event
        return None

    def pop_batch_due(
        self, until: Optional[float], out: List[Event], limit: int
    ) -> int:
        """Pop up to ``limit`` live events sharing the earliest
        ``(time, priority)`` coordinate into ``out``; returns the count.

        This is the engine's coalesced-tick fast path: one call replaces
        the historical ``peek_time()`` + ``pop()`` double heap access and
        additionally drains every same-time, same-priority event (a whole
        periodic tick) in one go. Events past ``until`` are left in the
        heap (a horizon stop returns 0 with the queue intact); cancelled
        heads are discarded on the way.
        """
        out.clear()
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        if not heap or (until is not None and heap[0].time > until):
            return 0
        first = heapq.heappop(heap)
        first._queue = None
        self._live -= 1
        out.append(first)
        while len(out) < limit and heap:
            head = heap[0]
            if head.cancelled:
                heapq.heappop(heap)
                continue
            if head.time != first.time or head.priority != first.priority:
                break
            heapq.heappop(heap)
            head._queue = None
            self._live -= 1
            out.append(head)
        return len(out)

    def reinsert(self, event: Event) -> None:
        """Return a popped-but-unfired event to the heap.

        The engine uses this when a batch callback schedules an event
        that must fire *before* the remainder of its batch: the unfired
        tail goes back into the heap with its original ``(time,
        priority, seq)`` coordinates, so overall firing order is exactly
        what single-event pops would have produced.
        """
        event._queue = self
        heapq.heappush(self._heap, event)
        self._live += 1

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event without popping."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        """Drop every scheduled event."""
        for event in self._heap:
            event._queue = None
        self._heap.clear()
        self._live = 0
