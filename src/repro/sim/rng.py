"""Deterministic named random streams.

Each subsystem (arrival process, per-component service time, tracer noise,
BE progress jitter, ...) draws from its own named stream. Streams are
seeded by hashing ``(root_seed, name)`` so:

- the whole experiment is reproducible from a single seed, and
- adding draws in one subsystem does not perturb any other subsystem.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """A registry of independent, reproducibly seeded RNG streams.

    Parameters
    ----------
    seed:
        Root seed for the entire experiment.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream called ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(_derive_seed(self._seed, name))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child registry rooted at a seed derived from ``name``.

        Useful when an experiment fans out into repeated trials that must
        each be reproducible yet mutually independent.
        """
        return RandomStreams(_derive_seed(self._seed, f"spawn:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"
