"""Command-line interface.

Exposes the library's main entry points without writing Python::

    python -m repro list                      # catalogued workloads
    python -m repro profile E-commerce        # thresholds for one service
    python -m repro compare E-commerce stream-dram --load 0.85
    python -m repro production E-commerce stream-dram --duration 600
    python -m repro trace E-commerce --requests 100
    python -m repro grid service --workers 4  # a figure grid, in parallel
    python -m repro cache stats               # the result cache's state

Every command prints the same text tables the benchmarks produce. Grid
commands fan cells out to the parallel grid engine (worker count from
``--workers``, the ``RHYTHM_WORKERS`` env var, or the CPU count); the
profiling phase fans out through the same persistent process pool
(``--profile-workers`` / ``RHYTHM_PROFILE_WORKERS``), so a cold figure
run pays pool startup once. Both phases, by default, memoize results in
the content-addressed cache — artifacts at load-point granularity,
finished cells whole — so warm re-runs only execute changed work
(``--no-cache``, or ``RHYTHM_CACHE=off``, disables this).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import asdict
from typing import List, Optional

from repro.bejobs.catalog import BE_CATALOG, be_job_spec
from repro.errors import ReproError
from repro.experiments.colocation import ColocationConfig
from repro.experiments.report import render_table
from repro.experiments.runner import compare_systems, get_rhythm
from repro.loadgen.clarknet import clarknet_production_load
from repro.workloads.catalog import LC_CATALOG, lc_service_spec
from repro.workloads.microservices import snms_service
from repro.workloads.spec import ServiceSpec


def _apply_kernel(args: argparse.Namespace) -> None:
    """Export ``--kernel`` as ``RHYTHM_KERNEL`` for this process tree.

    The environment variable (rather than threading a parameter through
    every driver) reaches worker-pool subprocesses under both fork and
    spawn start methods, so a whole grid runs on the chosen kernel.
    """
    kernel = getattr(args, "kernel", None)
    if kernel:
        from repro.sim.kernel import KERNEL_ENV_VAR, resolve_kernel

        os.environ[KERNEL_ENV_VAR] = resolve_kernel(kernel)


def _service(name: str) -> ServiceSpec:
    if name == "SNMS":
        return snms_service()
    return lc_service_spec(name)


def _profiling_mode(service: ServiceSpec) -> str:
    # SNMS ships its own tracer (jaeger), per the paper.
    return "jaeger" if service.name == "SNMS" else "direct"


def cmd_list(args: argparse.Namespace) -> int:
    """List the catalogued LC services and BE jobs."""
    lc_rows = []
    for name in list(LC_CATALOG) + ["SNMS"]:
        spec = _service(name)
        lc_rows.append([
            spec.name, spec.domain, ",".join(spec.servpod_names),
            f"{spec.max_load_qps:g} QPS", f"{spec.sla_ms:g} ms",
        ])
    print(render_table(
        ["Service", "Domain", "Servpods", "MaxLoad", "SLA"], lc_rows,
        title="LC services (Table 1)",
    ))
    print()
    print(render_table(
        ["BE job", "Domain", "-intensive"],
        [[s.name, s.domain, s.intensity.value] for s in BE_CATALOG.values()],
        title="BE jobs (Table 1)",
    ))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile a service and print its derived thresholds."""
    spec = _service(args.service)
    rhythm = get_rhythm(
        spec,
        seed=args.seed,
        profiling_mode=_profiling_mode(spec),
        probe_slacklimits=not args.no_probe,
    )
    contributions = rhythm.contributions()
    normalized = contributions.normalized()
    loadlimits = rhythm.loadlimits()
    slacklimits = rhythm.slacklimits()
    rows = []
    for pod in spec.servpod_names:
        c = contributions.contributions[pod]
        rows.append([
            pod, round(c.mean_weight, 3), round(c.correlation, 3),
            round(c.variation, 4), round(normalized[pod], 3),
            round(loadlimits[pod], 2), round(slacklimits[pod], 3),
        ])
    print(render_table(
        ["Servpod", "P_i", "rho_i", "V_i", "C_i (norm)", "loadlimit", "slacklimit"],
        rows,
        title=f"{spec.name} — per-Servpod contributions and thresholds",
    ))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Compare Rhythm and Heracles on one (service, BE, load) cell."""
    spec = _service(args.service)
    be = be_job_spec(args.be_job)
    cmp = compare_systems(
        spec, be, args.load, seed=args.seed,
        config=ColocationConfig(duration_s=args.duration),
        profiling_mode=_profiling_mode(spec),
    )
    rows = []
    for name, result in (("Rhythm", cmp.rhythm), ("Heracles", cmp.heracles)):
        rows.append([
            name, round(result.be_throughput, 3), round(result.emu, 3),
            f"{result.cpu_utilisation:.1%}", f"{result.membw_utilisation:.1%}",
            result.sla_violations, result.be_kills,
        ])
    print(render_table(
        ["System", "BE tput", "EMU", "CPU", "MemBW", "violations", "kills"],
        rows,
        title=f"{spec.name} + {be.name} @ {args.load:.0%} load, {args.duration:g}s",
    ))
    print(f"EMU improvement: {cmp.emu_improvement:+.1%}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a seeded fault storm under Rhythm and Heracles, same storm."""
    from repro.experiments.faultstorm import run_fault_storm

    _apply_kernel(args)
    spec = _service(args.service)
    be = be_job_spec(args.be_job)
    storm = run_fault_storm(
        spec,
        be,
        load=args.load,
        duration_s=args.duration,
        seed=args.seed,
        storm_seed=args.storm_seed,
        faults_per_minute=args.faults_per_minute,
        probe_slacklimits=args.probe,
    )
    kind_rows = [
        [kind, count]
        for kind, count in sorted(storm.schedule.counts_by_kind().items())
    ]
    print(render_table(
        ["fault kind", "windows"],
        kind_rows,
        title=(
            f"fault storm: seed {args.storm_seed}, "
            f"{storm.faults_injected} faults over {args.duration:g}s"
        ),
    ))
    rows = []
    for name, result in (("Rhythm", storm.rhythm), ("Heracles", storm.heracles)):
        rows.append([
            name, result.sla_violations, round(result.worst_tail_ms, 3),
            result.be_kills, round(result.be_throughput, 3),
            round(result.emu, 3),
        ])
    print(render_table(
        ["System", "violations", "worst tail ms", "kills", "BE tput", "EMU"],
        rows,
        title=f"{spec.name} + {be.name} @ {args.load:.0%} load under the storm",
    ))
    print(
        f"violation gap (Heracles − Rhythm): {storm.violation_gap:+d}, "
        f"EMU gap (Rhythm − Heracles): {storm.emu_gap:+.3f}"
    )
    if args.json:
        payload = {
            "service": storm.service,
            "be_job": storm.be_job,
            "load": storm.load,
            "duration_s": storm.duration_s,
            "storm_seed": args.storm_seed,
            "schedule": [
                {
                    "kind": f.kind.value,
                    "target": f.target,
                    "at_s": f.at_s,
                    "duration_s": f.duration_s,
                    "magnitude": f.magnitude,
                }
                for f in storm.schedule
            ],
            "systems": {
                name: {
                    "sla_violations": result.sla_violations,
                    "worst_tail_ms": result.worst_tail_ms,
                    "be_kills": result.be_kills,
                    "be_throughput": result.be_throughput,
                    "emu": result.emu,
                }
                for name, result in storm.summary_rows()
            },
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote storm report to {args.json}")
    return 0


def cmd_production(args: argparse.Namespace) -> int:
    """Run a production (ClarkNet) day under both systems."""
    spec = _service(args.service)
    be = be_job_spec(args.be_job)
    pattern = clarknet_production_load(duration_s=args.duration, days=1)
    cmp = compare_systems(
        spec, be, load=0.5, seed=args.seed,
        config=ColocationConfig(duration_s=args.duration),
        pattern=pattern,
        profiling_mode=_profiling_mode(spec),
    )
    rows = []
    for name, result in (("Rhythm", cmp.rhythm), ("Heracles", cmp.heracles)):
        rows.append([
            name, round(result.emu, 3), round(result.be_throughput, 3),
            f"{result.worst_tail_ms / spec.sla_ms:.2f}",
            result.sla_violations, result.be_kills,
        ])
    print(render_table(
        ["System", "EMU", "BE tput", "worst p99/SLA", "violations", "kills"],
        rows,
        title=f"{spec.name} + {be.name} — production day ({args.duration:g}s)",
    ))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Trace requests through a service and print recovered sojourns."""
    import numpy as np

    from repro.sim.rng import RandomStreams
    from repro.tracing import CausalityMatcher, SojournExtractor, TraceEmitter
    from repro.tracing.emitter import EmitterConfig, default_endpoints
    from repro.workloads.service import Service

    spec = _service(args.service)
    svc = Service(spec, RandomStreams(args.seed))
    records = svc.build_request_records(args.load, args.requests)
    endpoints = default_endpoints(spec.servpod_names)
    emitter = TraceEmitter(endpoints, EmitterConfig(noise_per_request=3, seed=args.seed))
    events = emitter.emit(records)
    stats = SojournExtractor(CausalityMatcher(endpoints)).stats(events)
    truth = {}
    for record in records:
        for pod, sojourn in record.sojourn_by_servpod().items():
            truth.setdefault(pod, []).append(sojourn)
    print(f"{len(events)} kernel events captured for {len(records)} requests")
    print(render_table(
        ["Servpod", "traced mean (ms)", "true mean (ms)", "CoV"],
        [[pod, round(stats[pod].mean_ms, 3),
          round(float(np.mean(truth[pod])), 3), round(stats[pod].cov, 3)]
         for pod in spec.servpod_names],
        title=f"{spec.name} — tracer-recovered sojourn statistics @ {args.load:.0%}",
    ))
    return 0


def cmd_grid(args: argparse.Namespace) -> int:
    """Run one of the evaluation grids on the parallel engine."""
    from repro.cache import default_store
    from repro.experiments.figures.figure9_11 import (
        SHOWCASED_SERVPODS,
        average_gain,
        run_servpod_grid,
    )
    from repro.experiments.figures.figure12_14 import (
        improvement_table,
        run_service_grid,
    )
    from repro.experiments.figures.figure15 import run_figure15, worst_safety_cell
    from repro.parallel.grid import GridCacheStats, resolve_workers
    from repro.parallel.pool import resolve_profile_workers

    _apply_kernel(args)
    workers = resolve_workers(args.workers)
    profile_workers = resolve_profile_workers(
        args.profile_workers if args.profile_workers is not None else args.workers
    )
    for name in args.services or ():
        lc_service_spec(name)  # fail fast; grids only take catalog services
    be_specs = [be_job_spec(name) for name in args.be_jobs] if args.be_jobs else None
    loads = tuple(args.loads) if args.loads else (0.05, 0.25, 0.45, 0.65, 0.85)
    config = ColocationConfig(duration_s=args.duration)
    cache = default_store() if args.cache else None
    cache_stats = GridCacheStats() if cache is not None else None

    if args.kind == "servpod":
        servpods = [
            pair for pair in SHOWCASED_SERVPODS
            if not args.services or pair[0] in args.services
        ]
        rows = run_servpod_grid(
            servpods=servpods, be_specs=be_specs, loads=loads,
            seed=args.seed, config=config, workers=workers,
            cache=cache, cache_stats=cache_stats,
            profile_workers=profile_workers,
        )
        print(render_table(
            ["Servpod", "BE tput gain", "CPU gain", "MemBW gain"],
            [[pod,
              f"{average_gain(rows, pod, 'be_throughput'):+.3f}",
              f"{average_gain(rows, pod, 'cpu_utilisation'):+.1%}",
              f"{average_gain(rows, pod, 'membw_utilisation'):+.1%}"]
             for _, pod in servpods],
            title=f"Figures 9-11 grid — {len(rows)} rows, {workers} workers",
        ))
    elif args.kind == "service":
        rows = run_service_grid(
            services=args.services or None, be_specs=be_specs, loads=loads,
            seed=args.seed, config=config, workers=workers,
            cache=cache, cache_stats=cache_stats,
            profile_workers=profile_workers,
        )
        emu = improvement_table(rows, "emu_improvement")
        cpu = improvement_table(rows, "cpu_improvement")
        membw = improvement_table(rows, "membw_improvement")
        print(render_table(
            ["Service", "EMU impr", "CPU impr", "MemBW impr"],
            [[svc, f"{emu[svc]:+.1%}", f"{cpu[svc]:+.1%}", f"{membw[svc]:+.1%}"]
             for svc in sorted(emu)],
            title=f"Figures 12-14 grid — {len(rows)} cells, {workers} workers",
        ))
    else:  # production
        rows = run_figure15(
            services=args.services or None, be_specs=be_specs,
            duration_s=args.duration, seed=args.seed, workers=workers,
            cache=cache, cache_stats=cache_stats,
            profile_workers=profile_workers,
        )
        worst = worst_safety_cell(rows)
        print(render_table(
            ["Service", "BE job", "EMU impr", "worst p99/SLA", "kills"],
            [[r.service, r.be_job, f"{r.emu_improvement:+.1%}",
              f"{r.worst_p99_over_sla:.2f}", r.be_kills] for r in rows],
            title=f"Figure 15 production grid — {workers} workers",
        ))
        print(f"worst safety cell: {worst.service}+{worst.be_job} "
              f"at {worst.worst_p99_over_sla:.2f}x SLA")
    if cache_stats is not None:
        print(
            f"cache: {cache_stats.hits} hits, {cache_stats.misses} misses, "
            f"{cache_stats.skipped} uncached of {cache_stats.total} cells"
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump([asdict(r) for r in rows], fh, indent=2)
        print(f"wrote {len(rows)} rows to {args.json}")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run a sharded Rhythm-vs-Heracles fleet on the Alibaba-shaped trace."""
    import time

    from repro.cache import default_store
    from repro.experiments.fleet import (
        _DEFAULT_SERVICES,
        FleetCacheStats,
        FleetConfig,
        alibaba_fleet,
    )

    cache = default_store() if args.cache else None
    cache_stats = FleetCacheStats() if cache is not None else None
    config = FleetConfig(
        duration_s=args.duration,
        shards=args.shards,
        workers=args.workers,
        zone_size=args.zone_size,
        epoch_ticks=args.epoch_ticks,
        violation_threshold=args.violation_threshold,
    )
    rows = []
    reports = {}
    for policy in args.policies:
        fleet = alibaba_fleet(
            args.machines,
            policy=policy,
            duration_s=args.duration,
            seed=args.seed,
            services=args.services or _DEFAULT_SERVICES,
            config=config,
            load=args.load,
            trace_path=args.trace,
        )
        start = time.perf_counter()
        result = fleet.run(cache=cache)
        elapsed = time.perf_counter() - start
        if cache_stats is not None and result.cache is not None:
            cache_stats.merge(result.cache)
        rows.append([
            policy,
            result.n_machines,
            f"{result.be_throughput:.4f}",
            f"{result.emu:.4f}",
            result.sla_violations,
            f"{result.sla_violation_rate:.2%}",
            f"{elapsed:.1f}s",
        ])
        reports[policy] = {
            "policy": policy,
            "machines": result.n_machines,
            "instances": result.n_instances,
            "events_fired": result.events_fired,
            "be_throughput": result.be_throughput,
            "emu": result.emu,
            "sla_violations": result.sla_violations,
            "sla_violation_rate": result.sla_violation_rate,
            "digest": result.digest,
            "zone_records": len(result.zone_records),
            "wall_seconds": elapsed,
        }
        if result.cache is not None:
            reports[policy]["cache"] = {
                "hits": result.cache.hits,
                "misses": result.cache.misses,
                "skipped": result.cache.skipped,
            }
    print(render_table(
        ["Policy", "Machines", "BE tput", "EMU", "SLA viols", "viol rate", "wall"],
        rows,
        title=f"Fleet — {args.duration:.0f}s simulated, "
              f"{args.shards} shard(s), seed {args.seed}",
    ))
    if cache_stats is not None:
        print(
            f"cache: {cache_stats.hits} hits, {cache_stats.misses} misses, "
            f"{cache_stats.skipped} uncached of {cache_stats.total} zones"
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(reports, fh, indent=2)
        print(f"wrote fleet report to {args.json}")
    return 0


def cmd_storm(args: argparse.Namespace) -> int:
    """Run a correlated fault storm over a fleet, same storm per policy."""
    import time

    from repro.cache import default_store
    from repro.experiments.fleet import _DEFAULT_SERVICES, FleetConfig
    from repro.experiments.scenarios import run_fleet_storm

    cache = default_store() if args.cache else None
    config = FleetConfig(
        duration_s=args.duration,
        shards=args.shards,
        workers=args.workers,
        zone_size=args.zone_size,
    )
    start = time.perf_counter()
    report = run_fleet_storm(
        n_machines=args.machines,
        policies=args.policies,
        duration_s=args.duration,
        seed=args.seed,
        storm_seed=args.storm_seed,
        events_per_minute=args.events_per_minute,
        services=args.services or _DEFAULT_SERVICES,
        load=args.load,
        config=config,
        cache=cache,
        with_baseline=args.baseline,
    )
    elapsed = time.perf_counter() - start
    storm = report.storm
    print(render_table(
        ["event", "domain", "at", "for", "magnitude", "blast zones"],
        [[e.kind.value, f"{e.level} {e.domain}", f"{e.at_s:.0f}s",
          f"{e.duration_s:.0f}s", f"{e.magnitude:.2f}",
          ",".join(str(z) for z in storm.blast_zones(e))]
         for e in storm],
        title=f"storm seed {args.storm_seed} — {storm.topology.describe()}",
    ))
    rows = []
    for policy, result in report.results:
        row = [
            policy, result.n_machines, f"{result.be_throughput:.4f}",
            f"{result.emu:.4f}", result.sla_violations,
            f"{result.sla_violation_rate:.2%}",
        ]
        if args.baseline:
            healthy = report.baseline(policy)
            row.append(f"{result.sla_violations - healthy.sla_violations:+d}")
        rows.append(row)
    headers = ["Policy", "Machines", "BE tput", "EMU", "SLA viols", "viol rate"]
    if args.baseline:
        headers.append("viols vs healthy")
    n_zones = storm.topology.n_zones
    print(render_table(
        headers, rows,
        title=f"stormed fleet — {len(storm)} event(s), blast radius "
              f"{len(storm.affected_zones())}/{n_zones} zone(s), "
              f"{elapsed:.1f}s wall",
    ))
    cache_stats = None
    for _policy, result in report.results + report.baselines:
        if result.cache is not None:
            if cache_stats is None:
                from repro.experiments.fleet import FleetCacheStats

                cache_stats = FleetCacheStats()
            cache_stats.merge(result.cache)
    if cache_stats is not None:
        print(
            f"cache: {cache_stats.hits} hits, {cache_stats.misses} misses, "
            f"{cache_stats.skipped} uncached of {cache_stats.total} zones"
        )
    if args.json:
        payload = {
            "storm_seed": args.storm_seed,
            "duration_s": args.duration,
            "topology": {
                "regions": storm.topology.n_regions,
                "azs": storm.topology.n_azs,
                "racks": storm.topology.n_racks,
                "zones": storm.topology.n_zones,
                "instances": storm.topology.n_instances,
            },
            "events": [
                {
                    "kind": e.kind.value,
                    "level": e.level,
                    "domain": e.domain,
                    "at_s": e.at_s,
                    "duration_s": e.duration_s,
                    "magnitude": e.magnitude,
                    "blast_zones": list(storm.blast_zones(e)),
                }
                for e in storm
            ],
            "affected_zones": list(storm.affected_zones()),
            "policies": {
                policy: {
                    "machines": result.n_machines,
                    "be_throughput": result.be_throughput,
                    "emu": result.emu,
                    "sla_violations": result.sla_violations,
                    "sla_violation_rate": result.sla_violation_rate,
                    "digest": result.digest,
                }
                for policy, result in report.results
            },
        }
        if args.baseline:
            payload["baselines"] = {
                policy: {
                    "sla_violations": result.sla_violations,
                    "emu": result.emu,
                    "digest": result.digest,
                }
                for policy, result in report.baselines
            }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote storm report to {args.json}")
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    """Run one production-ops scenario: canary, drift, or capacity."""
    from repro.cache import default_store
    from repro.experiments.scenarios import run_canary, run_capacity, run_drift

    cache = default_store() if args.cache else None
    payload = None
    if args.kind == "canary":
        report = run_canary(
            n_machines=args.machines,
            policy=args.policy,
            duration_s=args.duration,
            seed=args.seed,
            canary_seed=args.scenario_seed,
            slowdown=args.slowdown,
            threshold=args.threshold,
            cache=cache,
        )
        print(render_table(
            ["zone", "canary", "canary tail ms", "baseline tail ms",
             "ratio", "verdict"],
            [[v.zone, v.canary_index, f"{v.canary_tail_ms:.3f}",
              f"{v.baseline_tail_ms:.3f}", f"{v.tail_ratio:.2f}",
              "REGRESSED" if v.regressed else "ok"]
             for v in report.verdicts],
            title=f"canary rollout — slowdown {args.slowdown:.2f}, "
                  f"threshold {args.threshold:.2f}x, "
                  f"{report.detection_rate:.0%} of zones flagged",
        ))
        payload = {
            "kind": "canary",
            "slowdown": report.slowdown,
            "threshold": report.threshold,
            "detection_rate": report.detection_rate,
            "digest": report.result.digest,
            "baseline_digest": report.baseline.digest,
            "verdicts": [asdict(v) for v in report.verdicts],
        }
    elif args.kind == "drift":
        report = run_drift(
            service=args.service,
            epochs=args.epochs,
            seed=args.seed,
            cache=cache,
        )
        print(render_table(
            ["epoch", "grid", "points", "simulated", "cached"],
            [[e.epoch,
              f"{e.loads[0]:.2f}..{e.loads[-1]:.2f}",
              e.sweep_points, e.sweep_executed, e.sweep_cache_hits]
             for e in report.epochs],
            title=f"workload drift — {report.service}, "
                  f"{report.total_executed} point(s) simulated, "
                  f"{report.total_cached} served from cache",
        ))
        payload = {
            "kind": "drift",
            "service": report.service,
            "total_executed": report.total_executed,
            "total_cached": report.total_cached,
            "epochs": [asdict(e) for e in report.epochs],
        }
    else:  # capacity
        report = run_capacity(
            multipliers=tuple(args.multipliers),
            base_demand=args.base_demand,
            policy=args.policy,
            service=args.service,
            duration_s=args.duration,
            seed=args.seed,
            max_violation_rate=args.max_violation_rate,
            cache=cache,
        )
        print(render_table(
            ["demand x", "instances", "machines", "load/instance",
             "viol rate"],
            [[f"{r.multiplier:g}", r.instances, r.machines,
              f"{r.per_instance_load:.3f}", f"{r.violation_rate:.2%}"]
             for r in report.rows],
            title=f"capacity plan — {report.service} under {report.policy}, "
                  f"SLA target <= {report.max_violation_rate:.0%} violations",
        ))
        payload = {
            "kind": "capacity",
            "service": report.service,
            "policy": report.policy,
            "max_violation_rate": report.max_violation_rate,
            "rows": [asdict(r) for r in report.rows],
        }
    if args.json and payload is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote scenario report to {args.json}")
    return 0


def cmd_bakeoff(args: argparse.Namespace) -> int:
    """League-table a roster of controllers over one seeded scenario grid."""
    import time

    from repro.cache import default_store
    from repro.experiments.bakeoff import (
        BakeoffConfig,
        bakeoff_scenario_grid,
        heracles_member,
        interference_member,
        predictive_member,
        rhythm_member,
        run_bakeoff,
    )

    factories = {
        "rhythm": lambda: rhythm_member(args.service, seed=args.seed),
        "heracles": lambda: heracles_member(args.service),
        "interference": lambda: interference_member(),
        "predictive": lambda: predictive_member(),
    }
    members = [factories[name]() for name in args.members]
    scenarios = bakeoff_scenario_grid(
        service=args.service,
        loads=args.loads or (0.25, 0.45, 0.65),
        be_jobs=args.be_jobs or ("stream-llc", "wordcount"),
        duration_s=args.duration,
        seed=args.seed,
        faults_per_minute=args.faults_per_minute,
    )
    config = BakeoffConfig(duration_s=args.duration)
    cache = default_store() if args.cache else None
    start = time.perf_counter()
    result = run_bakeoff(scenarios, members, config, cache=cache)
    elapsed = time.perf_counter() - start
    league = result.league()
    print(render_table(
        ["#", "Member", "scenarios", "SLA viols", "worst p99/SLA",
         "BE tput", "EMU", "kills"],
        [[row.rank, row.member, row.scenarios, row.sla_violations,
          f"{row.worst_tail_over_sla:.2f}", f"{row.be_throughput:.4f}",
          f"{row.emu:.4f}", row.be_kills] for row in league],
        title=f"Bake-off — {len(scenarios)} scenario(s) x {len(members)} "
              f"member(s), {args.duration:g}s each, seed {args.seed}",
    ))
    print(
        f"shared pass: {result.passes} simulation(s), {result.forks} forks, "
        f"{result.merges} merges, {result.branch_ticks}/{result.member_ticks} "
        f"branch-ticks ({result.shared_fraction:.0%} physics shared), "
        f"{elapsed:.1f}s wall"
    )
    if result.cache is not None:
        print(
            f"cache: {result.cache.hits} hits, {result.cache.misses} misses, "
            f"{result.cache.skipped} uncached of {result.cache.total} cells"
        )
    if args.json:
        payload = {
            "service": args.service,
            "duration_s": args.duration,
            "seed": args.seed,
            "digest": result.digest,
            "passes": result.passes,
            "forks": result.forks,
            "merges": result.merges,
            "branch_ticks": result.branch_ticks,
            "member_ticks": result.member_ticks,
            "league": [asdict(row) for row in league],
            "cells": [asdict(cell) for cell in result.cells],
        }
        if result.cache is not None:
            payload["cache"] = {
                "hits": result.cache.hits,
                "misses": result.cache.misses,
                "skipped": result.cache.skipped,
            }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote bake-off report to {args.json}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the content-addressed result cache."""
    from repro.cache import CacheStore, cache_enabled

    store = CacheStore()
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {store.directory}")
        return 0
    stats = store.stats()
    rows = [
        ["directory", stats.directory],
        ["enabled", "yes" if cache_enabled() else "no (RHYTHM_CACHE=off)"],
        ["entries", stats.entries],
        ["size", f"{stats.total_bytes / 1e6:.1f} MB"],
        ["size cap", f"{stats.max_bytes / 1e6:.0f} MB"],
    ]
    print(render_table(["Field", "Value"], rows, title="Result cache"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rhythm (EuroSys 2020) reproduction — co-location experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list catalogued workloads").set_defaults(fn=cmd_list)

    p = sub.add_parser("profile", help="derive a service's thresholds")
    p.add_argument("service", help="LC service name (see `repro list`)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-probe", action="store_true",
                   help="use the analytic slacklimit fixed point instead of "
                        "Algorithm 1's SLA probe")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("compare", help="Rhythm vs Heracles on one cell")
    p.add_argument("service")
    p.add_argument("be_job")
    p.add_argument("--load", type=float, default=0.65)
    p.add_argument("--duration", type=float, default=120.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("chaos", help="fault storm: Rhythm vs Heracles")
    p.add_argument("service")
    p.add_argument("be_job")
    p.add_argument("--load", type=float, default=0.5)
    p.add_argument("--duration", type=float, default=240.0)
    p.add_argument("--seed", type=int, default=0, help="workload seed")
    p.add_argument("--storm-seed", type=int, default=1, help="fault-schedule seed")
    p.add_argument("--faults-per-minute", type=float, default=3.0)
    p.add_argument(
        "--probe",
        action="store_true",
        help="derive slacklimits with the full Algorithm-1 probe "
        "(default: fast analytic limits)",
    )
    p.add_argument("--json", default=None, help="also dump the report to this file")
    p.add_argument("--kernel", choices=["scalar", "batched"], default=None,
                   help="simulation kernel (default: RHYTHM_KERNEL or batched; "
                        "results are bit-identical either way)")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("production", help="replay a ClarkNet production day")
    p.add_argument("service")
    p.add_argument("be_job")
    p.add_argument("--duration", type=float, default=600.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_production)

    p = sub.add_parser("grid", help="run an evaluation grid in parallel")
    p.add_argument("kind", choices=["servpod", "service", "production"],
                   help="servpod=Figs 9-11, service=Figs 12-14, "
                        "production=Fig 15")
    p.add_argument("--services", nargs="*", default=None,
                   help="restrict to these LC services")
    p.add_argument("--be-jobs", nargs="*", default=None,
                   help="restrict to these BE jobs")
    p.add_argument("--loads", nargs="*", type=float, default=None,
                   help="load grid points (fractions of MaxLoad)")
    p.add_argument("--duration", type=float, default=60.0,
                   help="per-cell simulated seconds")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: RHYTHM_WORKERS or CPUs)")
    p.add_argument("--profile-workers", type=int, default=None,
                   help="profiling fan-out width (default: --workers, then "
                        "RHYTHM_PROFILE_WORKERS, then RHYTHM_WORKERS); the "
                        "profiling and cell phases share one process pool")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cache", action=argparse.BooleanOptionalAction, default=True,
                   help="reuse cached cell results and cache new ones "
                        "(RHYTHM_CACHE_DIR; RHYTHM_CACHE=off also disables)")
    p.add_argument("--json", default=None, help="also dump rows to this file")
    p.add_argument("--kernel", choices=["scalar", "batched"], default=None,
                   help="simulation kernel for every cell (default: "
                        "RHYTHM_KERNEL or batched; results are bit-identical "
                        "either way)")
    p.set_defaults(fn=cmd_grid)

    p = sub.add_parser("fleet", help="sharded thousand-machine fleet run")
    p.add_argument("--machines", type=int, default=1000,
                   help="minimum fleet size in machines (default 1000)")
    p.add_argument("--duration", type=float, default=600.0,
                   help="simulated seconds (default 600)")
    p.add_argument("--shards", type=int, default=4,
                   help="event-engine shards; results are shard-invariant")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: RHYTHM_WORKERS or CPUs)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--zone-size", type=int, default=4,
                   help="zone width in LC instances (shards split at zones)")
    p.add_argument("--epoch-ticks", type=int, default=30,
                   help="zone-governor epoch length in control ticks")
    p.add_argument("--violation-threshold", type=float, default=None,
                   help="zone SLA-violation fraction that clamps BE growth "
                        "for the next epoch (default: governor off)")
    p.add_argument("--policies", nargs="*", default=["rhythm", "heracles"],
                   choices=["rhythm", "heracles"],
                   help="controller policies to run (default: both)")
    p.add_argument("--load", choices=["diurnal", "alibaba"], default="diurnal",
                   help="per-instance load: parametric diurnal cycles or "
                        "replayed Alibaba cluster-trace-v2018 machine days")
    p.add_argument("--trace", default=None,
                   help="external machine_usage CSV to replay (requires "
                        "--load alibaba; default: the bundled sample)")
    p.add_argument("--services", nargs="*", default=None,
                   help="LC service catalog entries cycled across instances "
                        "(default: Redis); mixing entries gives a "
                        "heterogeneous fleet")
    p.add_argument("--cache", action=argparse.BooleanOptionalAction, default=True,
                   help="reuse cached per-zone fleet results and cache new "
                        "ones (also honors RHYTHM_CACHE=off)")
    p.add_argument("--json", default=None, help="dump the fleet report here")
    p.set_defaults(fn=cmd_fleet)

    p = sub.add_parser(
        "storm",
        help="correlated fault storm (rack/AZ/ToR events) over a fleet",
    )
    p.add_argument("--machines", type=int, default=1000,
                   help="minimum fleet size in machines (default 1000)")
    p.add_argument("--duration", type=float, default=240.0,
                   help="simulated seconds (default 240)")
    p.add_argument("--seed", type=int, default=0, help="fleet/workload seed")
    p.add_argument("--storm-seed", type=int, default=1,
                   help="topology + domain-event seed")
    p.add_argument("--events-per-minute", type=float, default=1.0,
                   help="seeded domain-event rate (default 1.0)")
    p.add_argument("--shards", type=int, default=4,
                   help="event-engine shards; results are shard-invariant")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: RHYTHM_WORKERS or CPUs)")
    p.add_argument("--zone-size", type=int, default=4,
                   help="zone width in LC instances (racks are whole zones)")
    p.add_argument("--policies", nargs="*", default=["rhythm", "heracles"],
                   choices=["rhythm", "heracles"],
                   help="controller policies facing the same storm")
    p.add_argument("--load", choices=["diurnal", "alibaba"], default="diurnal",
                   help="per-instance load shape (see `fleet --load`)")
    p.add_argument("--services", nargs="*", default=None,
                   help="LC services cycled across instances (default Redis)")
    p.add_argument("--baseline", action="store_true",
                   help="also run each policy's healthy (storm-free) fleet")
    p.add_argument("--cache", action=argparse.BooleanOptionalAction, default=True,
                   help="reuse cached per-zone fleet results; a warm "
                        "identical storm executes zero simulations")
    p.add_argument("--json", default=None, help="dump the storm report here")
    p.set_defaults(fn=cmd_storm)

    p = sub.add_parser(
        "scenario",
        help="production-ops scenarios: canary, drift, capacity",
    )
    p.add_argument("kind", choices=["canary", "drift", "capacity"],
                   help="canary=rolling release, drift=re-profiling under "
                        "workload drift, capacity=machines needed at N× load")
    p.add_argument("--machines", type=int, default=32,
                   help="fleet size for the canary scenario (default 32)")
    p.add_argument("--service", default="Redis",
                   help="LC service (drift/capacity; default Redis)")
    p.add_argument("--policy", default="heracles",
                   choices=["rhythm", "heracles"],
                   help="fleet policy (canary/capacity; default heracles)")
    p.add_argument("--duration", type=float, default=120.0,
                   help="simulated seconds per run (default 120)")
    p.add_argument("--seed", type=int, default=0, help="workload seed")
    p.add_argument("--scenario-seed", type=int, default=1,
                   help="scenario seed (canary picks; default 1)")
    p.add_argument("--slowdown", type=float, default=0.08,
                   help="canary 'new version' stall magnitude (default 0.08)")
    p.add_argument("--threshold", type=float, default=1.10,
                   help="canary tail-ratio regression threshold (default 1.10)")
    p.add_argument("--epochs", type=int, default=3,
                   help="drift epochs (default 3)")
    p.add_argument("--multipliers", nargs="*", type=float,
                   default=[1.0, 1.5, 2.0],
                   help="capacity demand multipliers (default 1.0 1.5 2.0)")
    p.add_argument("--base-demand", type=float, default=3.0,
                   help="capacity base demand in load units (default 3.0)")
    p.add_argument("--max-violation-rate", type=float, default=0.05,
                   help="capacity SLA target (default 0.05)")
    p.add_argument("--cache", action=argparse.BooleanOptionalAction, default=True,
                   help="serve repeated runs from the result cache")
    p.add_argument("--json", default=None, help="dump the scenario report here")
    p.set_defaults(fn=cmd_scenario)

    p = sub.add_parser(
        "bakeoff",
        help="single-pass controller bake-off with a league table",
    )
    p.add_argument("--service", default="Redis",
                   help="LC service the roster competes on (default Redis)")
    p.add_argument("--members", nargs="*",
                   default=["rhythm", "heracles", "interference", "predictive"],
                   choices=["rhythm", "heracles", "interference", "predictive"],
                   help="controller roster (default: all four)")
    p.add_argument("--loads", nargs="*", type=float, default=None,
                   help="diurnal base-load grid points (default 0.25 0.45 0.65)")
    p.add_argument("--be-jobs", nargs="*", default=None,
                   help="co-located BE jobs (default stream-llc wordcount)")
    p.add_argument("--duration", type=float, default=120.0,
                   help="simulated seconds per scenario (default 120)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--faults-per-minute", type=float, default=0.0,
                   help="per-scenario seeded fault rate (default: healthy)")
    p.add_argument("--cache", action=argparse.BooleanOptionalAction, default=True,
                   help="reuse cached per-(scenario, member) cells and cache "
                        "new ones (also honors RHYTHM_CACHE=off)")
    p.add_argument("--json", default=None, help="dump the bake-off report here")
    p.set_defaults(fn=cmd_bakeoff)

    p = sub.add_parser("cache", help="inspect or clear the result cache")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("stats", help="entry count, size, directory")
    cache_sub.add_parser("clear", help="delete every cached entry")
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser("trace", help="trace requests and recover sojourns")
    p.add_argument("service")
    p.add_argument("--load", type=float, default=0.5)
    p.add_argument("--requests", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
