"""Tests for runtime-loop internals: DVFS engagement, memory growth,
network shaping, and determinism of the full control loop."""

from __future__ import annotations

import pytest

from repro.bejobs.catalog import CPU_STRESS, IPERF, STREAM_DRAM
from repro.cluster.machine import BE_DOMAIN, MachineSpec
from repro.core.top_controller import ControllerThresholds, TopController
from repro.experiments.colocation import ColocationConfig, ColocationExperiment
from repro.loadgen.patterns import ConstantLoad
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams
from repro.errors import SimulationError

from conftest import make_tiny_service

FAST = ColocationConfig(duration_s=60.0, sample_cap=200, min_samples=50)


def permissive(spec):
    return {
        pod: TopController(
            pod, ControllerThresholds(loadlimit=0.95, slacklimit=0.05), spec.sla_ms
        )
        for pod in spec.servpod_names
    }


def run(spec, be, config=FAST, load=0.3, seed=0):
    return ColocationExperiment(
        spec, permissive(spec), [be], ConstantLoad(load),
        RandomStreams(seed), config,
    )


class TestFrequencySubcontrollerInLoop:
    def test_dvfs_throttles_be_on_hot_machine(self, tiny_service):
        """A low-TDP machine packed with busy cores triggers the power cap."""
        config = ColocationConfig(
            duration_s=60.0, sample_cap=200, min_samples=50,
            base_machine=MachineSpec(tdp_watts=70.0),
        )
        experiment = run(tiny_service, CPU_STRESS, config=config, load=0.6)
        experiment.run()
        frequencies = [
            m.dvfs.frequency(BE_DOMAIN) for m in experiment.deployment.cluster
        ]
        assert min(frequencies) < 2000  # stepped down at least once

    def test_cool_machine_stays_at_max(self, tiny_service):
        config = ColocationConfig(
            duration_s=60.0, sample_cap=200, min_samples=50,
            base_machine=MachineSpec(tdp_watts=1000.0),
        )
        experiment = run(tiny_service, CPU_STRESS, config=config, load=0.3)
        experiment.run()
        for machine in experiment.deployment.cluster:
            assert machine.dvfs.frequency(BE_DOMAIN) == 2000


class TestMemorySubcontrollerInLoop:
    def test_be_memory_grows_toward_working_set(self, tiny_service):
        experiment = run(tiny_service, STREAM_DRAM)  # wants 4 GB/job
        experiment.run()
        machine = experiment.deployment.servpod("back").machine
        allocations = machine.be_jobs()
        assert allocations, "no BE jobs placed"
        assert any(a.memory_gb > 2.0 for a in allocations.values())


class TestNetworkSubcontrollerInLoop:
    def test_nic_cap_follows_lc_traffic(self, tiny_service):
        experiment = run(tiny_service, IPERF, load=0.8)
        experiment.run()
        machine = experiment.deployment.servpod("front").machine
        # front's peak_net_gbps=1.0 at load 0.8 -> cap = 10 - 1.2*0.8
        assert machine.nic.be_cap_gbps == pytest.approx(
            10.0 - 1.2 * machine.nic.lc_gbps
        )
        assert machine.nic.lc_gbps > 0.5


class TestLoopDeterminismAndAccounting:
    def test_full_state_reproducible(self, tiny_service):
        def snapshot(seed):
            e = run(tiny_service, STREAM_DRAM, seed=seed)
            result = e.run()
            machine = e.deployment.servpod("back").machine
            return (
                result.be_throughput,
                result.worst_tail_ms,
                machine.be_total_cores,
                machine.be_total_llc_ways,
                tuple(s.action for s in result.machine("back").samples),
            )

        assert snapshot(3) == snapshot(3)
        assert snapshot(3) != snapshot(4)

    def test_tick_count_matches_duration(self, tiny_service):
        experiment = run(tiny_service, CPU_STRESS)
        result = experiment.run()
        assert len(result.machine("front").samples) == 30  # 60 s / 2 s

    def test_emu_accounting_consistent(self, tiny_service):
        experiment = run(tiny_service, CPU_STRESS, load=0.4)
        result = experiment.run()
        assert result.emu == pytest.approx(
            result.lc_load_mean + result.be_throughput
        )

    def test_suspended_jobs_hold_cores_but_not_progress(self, tiny_service):
        controllers = {
            pod: TopController(
                pod, ControllerThresholds(loadlimit=0.2, slacklimit=0.05),
                tiny_service.sla_ms,
            )
            for pod in tiny_service.servpod_names
        }
        experiment = ColocationExperiment(
            tiny_service, controllers, [CPU_STRESS], ConstantLoad(0.5),
            RandomStreams(0), FAST,
        )
        result = experiment.run()
        # load 0.5 > loadlimit 0.2 every tick -> jobs suspended whenever
        # placed; zero completed work.
        assert result.be_throughput == 0.0


class TestEngineGuards:
    def test_run_not_reentrant(self):
        engine = Engine()

        def recurse(t):
            with pytest.raises(SimulationError):
                engine.run(until=10.0)

        engine.at(1.0, recurse)
        engine.run(until=2.0)
