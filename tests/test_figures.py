"""Smoke tests for the per-figure experiment drivers (tiny scales).

The benchmarks run the full-scale versions; these verify each driver's
plumbing and output structure quickly.
"""

from __future__ import annotations

import pytest

from repro.bejobs.catalog import CPU_STRESS, STREAM_DRAM
from repro.experiments.colocation import ColocationConfig
from repro.experiments.figures.figure2 import increase_matrix, run_figure2
from repro.experiments.figures.figure6 import run_figure6
from repro.experiments.figures.figure7 import correlation_by_be, run_figure7
from repro.experiments.figures.figure8 import run_figure8
from repro.experiments.figures.figure9_11 import average_gain, run_servpod_grid
from repro.experiments.figures.figure12_14 import (
    average_improvement,
    improvement_table,
    run_service_grid,
)
from repro.experiments.figures.figure15 import run_figure15, worst_safety_cell
from repro.experiments.figures.figure16 import run_figure16
from repro.experiments.figures.figure17 import run_figure17
from repro.experiments.figures.figure18 import normalized_throughput, run_figure18
from repro.experiments.figures.table1 import table1_rows
from repro.experiments.runner import clear_rhythm_cache
from repro.workloads.catalog import redis_service

FAST = ColocationConfig(duration_s=30.0, sample_cap=150, min_samples=50)


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_rhythm_cache()
    yield
    clear_rhythm_cache()


def test_figure2_structure():
    rows = run_figure2(services=[redis_service()], loads=(0.4, 0.8), samples=800)
    matrix = increase_matrix(rows, "Redis")
    assert set(matrix) == {"master", "slave"}
    assert len(next(iter(matrix.values()))) == 7  # seven interference kinds


def test_figure6_structure():
    data = run_figure6(loads=(0.2, 0.5, 0.8), requests_per_load=150)
    assert len(data.p99) == 3
    for pod in data.normalized_cov:
        assert len(data.normalized_cov[pod]) == 3
    # Normalized CoV shares sum to 1 at each load.
    for j in range(3):
        total = sum(data.normalized_cov[pod][j] for pod in data.normalized_cov)
        assert total == pytest.approx(1.0)


def test_figure7_structure():
    rows = run_figure7(samples=800)
    assert len(rows) == 4 * 4  # four panels x four Servpods
    assert set(correlation_by_be(rows)) == {
        "mixed", "stream-dram", "CPU-stress", "stream-llc",
    }


def test_figure8_structure():
    data = run_figure8(requests_per_load=200)
    assert set(data.loadlimit) == {"haproxy", "tomcat", "amoeba", "mysql"}
    for pod, limit in data.loadlimit.items():
        assert 0.0 < limit <= 1.0


def test_servpod_grid_structure():
    rows = run_servpod_grid(
        servpods=[("Redis", "slave")], be_specs=[CPU_STRESS],
        loads=(0.25, 0.85), config=FAST,
    )
    assert len(rows) == 4  # 1 pod x 1 be x 2 loads x 2 systems
    assert {r.system for r in rows} == {"Rhythm", "Heracles"}
    gain = average_gain(rows, "slave", "be_throughput")
    assert isinstance(gain, float)


def test_service_grid_structure():
    rows = run_service_grid(
        services=["Redis"], be_specs=[CPU_STRESS], loads=(0.45,), config=FAST
    )
    assert len(rows) == 1
    table = improvement_table(rows, "emu_improvement")
    assert set(table) == {"Redis"}
    assert average_improvement(rows, "Redis", "cpu_improvement") == pytest.approx(
        rows[0].cpu_improvement
    )


def test_figure15_structure():
    rows = run_figure15(
        services=["Redis"], be_specs=[CPU_STRESS], duration_s=120.0
    )
    assert len(rows) == 1
    cell = worst_safety_cell(rows)
    assert cell.service == "Redis"
    assert cell.worst_p99_over_sla > 0


def test_figure16_structure():
    rows = run_figure16(be_specs=[CPU_STRESS], loads=(0.4,), config=FAST)
    assert len(rows) == 1
    row = rows[0]
    assert row.emu_solo <= row.emu_rhythm + 0.05
    assert row.cpu_solo > 0


def test_figure17_structure():
    data = run_figure17(duration_s=120.0, config=ColocationConfig(duration_s=120.0))
    assert data.servpods == ["tomcat", "mysql"]
    for pod in data.servpods:
        assert len(data.samples[pod]) == 60  # 120s / 2s period
        assert 0 < data.loadlimit[pod] <= 1
        assert 0 < data.slacklimit[pod] <= 1


def test_figure18_structure():
    rows = run_figure18(
        levels=(0.9, 1.0, 1.1), duration_s=100.0,
        config=ColocationConfig(duration_s=100.0),
    )
    by_varied = {r.varied for r in rows}
    assert by_varied == {"slacklimit", "loadlimit"}
    normalized = normalized_throughput(rows, "slacklimit")
    assert normalized[1.0] == pytest.approx(1.0)


def test_figure18_skips_illegal_levels():
    rows = run_figure18(
        levels=(1.0, 5.0), duration_s=100.0,
        config=ColocationConfig(duration_s=100.0),
    )
    # level 5.0 would push both thresholds above 1.0 -> skipped like the
    # paper's "-" cells.
    assert all(r.level == 1.0 for r in rows)


def test_table1_structure():
    lc_rows, be_rows = table1_rows()
    assert [r.workload for r in lc_rows] == [
        "E-commerce", "Redis", "Solr", "Elasticsearch", "Elgg", "SNMS",
    ]
    assert {r.intensive for r in be_rows} >= {"CPU", "LLC", "DRAM", "Network", "mixed"}
