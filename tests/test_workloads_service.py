"""Tests for the Service runtime sampler and the LC catalogs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams
from repro.workloads.catalog import (
    LC_CATALOG,
    ecommerce_service,
    lc_service_spec,
    redis_service,
)
from repro.workloads.microservices import snms_service
from repro.workloads.service import Service, ServiceState

from conftest import make_fanout_service, make_tiny_service


class TestServiceSampling:
    def test_e2e_positive(self, tiny_service, streams):
        svc = Service(tiny_service, streams)
        assert (svc.sample_e2e(0.5, 500) > 0).all()

    def test_deterministic_given_seed(self, tiny_service):
        a = Service(make_tiny_service(), RandomStreams(3)).sample_e2e(0.5, 100)
        b = Service(make_tiny_service(), RandomStreams(3)).sample_e2e(0.5, 100)
        assert (a == b).all()

    def test_sojourns_sum_to_e2e_for_chain(self, tiny_service, streams):
        svc = Service(tiny_service, streams)
        sampled = svc.sample_sojourns(0.5, 200)
        total = sampled["front"] + sampled["back"]
        assert np.allclose(total, sampled["__e2e__"])

    def test_fanout_e2e_is_critical_path(self, fanout_service, streams):
        svc = Service(fanout_service, streams)
        sampled = svc.sample_sojourns(0.5, 200)
        expected = sampled["root"] + np.maximum(sampled["long"], sampled["short"])
        assert np.allclose(expected, sampled["__e2e__"])

    def test_tail_latency_grows_with_load(self, tiny_service, streams):
        svc = Service(tiny_service, streams)
        assert svc.tail_latency(0.9, 3000) > svc.tail_latency(0.2, 3000)

    def test_interference_state_raises_tail(self, tiny_service, streams):
        svc = Service(tiny_service, streams)
        solo = svc.tail_latency(0.5, 3000)
        slowed = svc.tail_latency(
            0.5, 3000, ServiceState(slowdowns={"back": 4.0})
        )
        assert slowed > 2 * solo

    def test_state_only_affects_named_pod(self, tiny_service, streams):
        svc = Service(tiny_service, streams)
        state = ServiceState(slowdowns={"front": 5.0})
        sampled = svc.sample_sojourns(0.5, 2000, state)
        clean = Service(make_tiny_service(), RandomStreams(42)).sample_sojourns(0.5, 2000)
        assert sampled["front"].mean() > 3 * clean["front"].mean()
        assert sampled["back"].mean() == pytest.approx(clean["back"].mean(), rel=0.15)

    def test_zero_samples_rejected(self, tiny_service, streams):
        with pytest.raises(ConfigurationError):
            Service(tiny_service, streams).sample_e2e(0.5, 0)

    def test_request_records_match_tree(self, tiny_service, streams):
        svc = Service(tiny_service, streams)
        records = svc.build_request_records(0.5, 10)
        assert len(records) == 10
        for record in records:
            pods = {seg.servpod for seg in record.segments}
            assert pods == {"front", "back"}

    def test_lc_usage_scales_with_load(self, tiny_service, streams):
        svc = Service(tiny_service, streams)
        low = svc.lc_usage("back", 0.2)
        high = svc.lc_usage("back", 0.9)
        assert high.busy_cores > low.busy_cores
        assert high.membw_fraction > low.membw_fraction
        assert high.net_gbps > low.net_gbps

    def test_multi_request_type_mixing(self, streams):
        spec = make_fanout_service()
        svc = Service(spec, streams)
        sampled = svc.sample_sojourns(0.5, 400)
        assert (sampled["root"] > 0).all()  # every request visits the root


class TestCatalogs:
    def test_all_five_services_build(self):
        for name in LC_CATALOG:
            spec = lc_service_spec(name)
            assert spec.name == name

    def test_unknown_service_rejected(self):
        with pytest.raises(ConfigurationError):
            lc_service_spec("Netflix")

    def test_table1_constants(self):
        ecom = ecommerce_service(calibrated=False)
        assert ecom.max_load_qps == 1300.0
        assert ecom.sla_ms == 250.0
        assert ecom.containers == 16
        assert ecom.servpod_names == ["haproxy", "tomcat", "amoeba", "mysql"]
        redis = redis_service(calibrated=False)
        assert redis.max_load_qps == 86000.0
        assert redis.sla_ms == 1.15

    def test_calibration_puts_p99_under_sla(self):
        spec = ecommerce_service()
        svc = Service(spec, RandomStreams(5))
        p99 = svc.tail_latency(1.0, 6000)
        assert 0.8 * spec.sla_ms < p99 <= 1.02 * spec.sla_ms

    def test_redis_is_fanout(self):
        spec = redis_service(calibrated=False)
        root = spec.request_types[0].root
        assert root.servpod == "master"
        assert root.parallel

    def test_snms_servpod_split(self):
        spec = snms_service(calibrated=False)
        sizes = {pod.name: len(pod.components) for pod in spec.servpods}
        assert sizes == {"frontend": 3, "userservice": 14, "mediaservice": 13}
        assert sum(sizes.values()) == 30  # 30 unique microservices

    def test_snms_jaeger_component_present(self):
        spec = snms_service(calibrated=False)
        frontend = spec.servpod("frontend")
        assert any(c.name == "jaeger" for c in frontend.components)

    def test_master_more_sensitive_than_slave(self):
        """Figure 2a's core observation."""
        spec = redis_service(calibrated=False)
        master = spec.servpod("master").components[0].sensitivity
        slave = spec.servpod("slave").components[0].sensitivity
        assert master.llc > 10 * slave.llc
        assert master.membw > slave.membw
        assert master.cpu > slave.cpu

    def test_tomcat_dvfs_sensitive_mysql_dram_sensitive(self):
        """Figure 2b's asymmetry."""
        spec = ecommerce_service(calibrated=False)
        tomcat = spec.servpod("tomcat").components[0].sensitivity
        mysql = spec.servpod("mysql").components[0].sensitivity
        assert tomcat.freq > mysql.freq
        assert mysql.membw > tomcat.membw
        assert mysql.llc > tomcat.llc
