"""Tests for the ablation studies and the multi-LC extension."""

from __future__ import annotations

import pytest

from repro.bejobs.catalog import CPU_STRESS, WORDCOUNT
from repro.core.top_controller import ControllerThresholds, TopController
from repro.errors import ExperimentError
from repro.experiments.ablations import uniform_rhythm_controllers
from repro.experiments.colocation import ColocationConfig
from repro.experiments.multilc import (
    MultiLcExperiment,
    _combine_pressures,
    pair_servpods,
)
from repro.interference.model import Pressure
from repro.loadgen.patterns import ConstantLoad
from repro.sim.rng import RandomStreams

from conftest import make_fanout_service, make_tiny_service

FAST = ColocationConfig(duration_s=40.0, sample_cap=200, min_samples=50)


def permissive(spec):
    return {
        pod: TopController(
            pod, ControllerThresholds(loadlimit=0.9, slacklimit=0.05), spec.sla_ms
        )
        for pod in spec.servpod_names
    }


class TestPairServpods:
    def test_equal_sizes_pair_fully(self):
        a = make_tiny_service("a")
        b = make_tiny_service("b")
        placements = pair_servpods([a, b])
        assert len(placements) == 2
        assert all(len(p.residents) == 2 for p in placements)

    def test_uneven_sizes_tail_runs_solo(self):
        a = make_fanout_service()  # 3 pods
        b = make_tiny_service("b")  # 2 pods
        placements = pair_servpods([a, b])
        assert len(placements) == 3
        assert len(placements[0].residents) == 2
        assert len(placements[2].residents) == 1

    def test_three_tenants_rejected(self):
        with pytest.raises(ExperimentError):
            pair_servpods([make_tiny_service("a"), make_tiny_service("b"),
                           make_tiny_service("c")])


class TestCombinePressures:
    def test_additive(self):
        p = _combine_pressures(Pressure(membw=0.3), Pressure(membw=0.2, llc=0.1))
        assert p.membw == pytest.approx(0.5)
        assert p.llc == pytest.approx(0.1)

    def test_capped_at_one(self):
        p = _combine_pressures(Pressure(membw=0.8), Pressure(membw=0.7))
        assert p.membw == 1.0


class TestMultiLcExperiment:
    def _experiment(self, load_a=0.4, load_b=0.4, **kw):
        a = make_tiny_service("svc-a", sla_ms=150.0)
        b = make_tiny_service("svc-b", sla_ms=150.0)
        controllers = {a.name: permissive(a), b.name: permissive(b)}
        return MultiLcExperiment(
            [a, b], controllers, [CPU_STRESS],
            {a.name: ConstantLoad(load_a), b.name: ConstantLoad(load_b)},
            RandomStreams(1), FAST, **kw,
        )

    def test_runs_both_tenants(self):
        result = self._experiment().run()
        assert set(result.tenants) == {"svc-a", "svc-b"}
        assert result.machine_count == 2  # 2+2 pods paired onto 2 machines
        for tenant in result.tenants.values():
            assert tenant.lc_load_mean == pytest.approx(0.4, abs=0.02)
            assert tenant.worst_tail_ms > 0

    def test_be_jobs_make_progress(self):
        result = self._experiment().run()
        assert result.be_throughput > 0
        assert result.emu > 0.4

    def test_deterministic(self):
        a = self._experiment().run()
        b = self._experiment().run()
        assert a.be_throughput == b.be_throughput
        assert a.tenants["svc-a"].worst_tail_ms == b.tenants["svc-a"].worst_tail_ms

    def test_harshest_decision_protects_busier_tenant(self):
        """When one tenant runs over its loadlimit, its SuspendBE wins
        even though the other tenant would allow growth."""
        a = make_tiny_service("svc-a", sla_ms=400.0)
        b = make_tiny_service("svc-b", sla_ms=400.0)
        controllers = {
            a.name: permissive(a),
            b.name: {
                pod: TopController(
                    pod, ControllerThresholds(loadlimit=0.5, slacklimit=0.05),
                    b.sla_ms,
                )
                for pod in b.servpod_names
            },
        }
        experiment = MultiLcExperiment(
            [a, b], controllers, [CPU_STRESS],
            {a.name: ConstantLoad(0.2), b.name: ConstantLoad(0.8)},
            RandomStreams(1), FAST,
        )
        result = experiment.run()
        # Tenant b's load (0.8) exceeds its loadlimit (0.5) -> SuspendBE
        # dominates everywhere -> no BE progress at all.
        assert result.be_throughput == 0.0

    def test_missing_pattern_rejected(self):
        a = make_tiny_service("svc-a")
        b = make_tiny_service("svc-b")
        with pytest.raises(ExperimentError):
            MultiLcExperiment(
                [a, b],
                {a.name: permissive(a), b.name: permissive(b)},
                [CPU_STRESS],
                {a.name: ConstantLoad(0.4)},  # b missing
                RandomStreams(1), FAST,
            )

    def test_three_services_rejected(self):
        a, b, c = (make_tiny_service(n) for n in ("a", "b", "c"))
        with pytest.raises(ExperimentError):
            MultiLcExperiment(
                [a, b, c], {}, [CPU_STRESS], {}, RandomStreams(1), FAST
            )

    def test_cross_tenant_interference_visible(self):
        """A heavy neighbour raises a tenant's tail vs running lighter."""
        light = self._experiment(load_a=0.3, load_b=0.1).run()
        heavy = self._experiment(load_a=0.3, load_b=0.9).run()
        assert (
            heavy.tenants["svc-a"].worst_tail_ms
            > light.tenants["svc-a"].worst_tail_ms
        )


class TestUniformRhythmAblation:
    def test_uniform_twin_uses_worst_case_thresholds(self):
        from repro.experiments.runner import clear_rhythm_cache, get_rhythm
        from repro.workloads.catalog import ecommerce_service

        clear_rhythm_cache()
        spec = ecommerce_service()
        rhythm = get_rhythm(spec)
        uniform = uniform_rhythm_controllers(spec)
        min_load = min(rhythm.loadlimits().values())
        max_slack = max(rhythm.slacklimits().values())
        for ctrl in uniform.values():
            assert ctrl.thresholds.loadlimit == min_load
            assert ctrl.thresholds.slacklimit == max_slack
