"""The fault-injection subsystem's acceptance gates.

Covers the issue's criteria:

- same seed ⇒ bit-identical :class:`FaultSchedule` (repr equality),
- cluster injectors apply and cleanly revert through the machines'
  existing mechanisms, observable only via the controllers' normal knobs,
- fault-storm co-location runs are deterministic and the storm driver
  compares Rhythm vs Heracles under an identical storm,
- **differential identity**: grid and profiling results under
  executor-only fault schedules are bit-identical to a fault-free inline
  run (fork and spawn contexts),
- the hardened pool's ``PoolStats`` counters match the plan-predicted
  sabotage exactly; timeouts, kills and inline fallbacks all recover,
- trace corruption is deterministic and the tolerant extraction path
  degrades gracefully where the strict path would raise.
"""

from __future__ import annotations

import pytest

from repro.bejobs.catalog import evaluation_be_jobs
from repro.cluster.machine import BE_DOMAIN, LC_DOMAIN
from repro.core.servpod import deploy_service
from repro.errors import FaultError, TracingError
from repro.experiments.colocation import ColocationConfig
from repro.experiments.faultstorm import run_fault_storm
from repro.experiments.runner import (
    build_rhythm_controllers,
    clear_rhythm_cache,
    run_cell,
)
from repro.faults import (
    ClusterFaultInjector,
    ExecutorFaultPlan,
    FaultKind,
    FaultSchedule,
    FaultSpec,
    TraceFaultConfig,
    corrupt_events,
    executor_chaos,
)
from repro.loadgen.patterns import ConstantLoad
from repro.parallel import (
    GridCell,
    artifact_for,
    colocation_fingerprint,
    comparison_fingerprint,
    run_comparison_grid,
)
from repro.parallel.pool import (
    Envelope,
    envelope_task_key,
    pool_stats,
    reset_pool_state_for_tests,
    reset_pool_stats,
    resolve_task_timeout,
    run_envelopes,
)
from repro.parallel.profile import clear_profile_memo, profile_service_parallel
from repro.sim.rng import RandomStreams
from repro.tracing.causality import CausalityMatcher
from repro.tracing.emitter import EmitterConfig, TraceEmitter, default_endpoints
from repro.tracing.sojourn import SojournExtractor
from repro.workloads.service import Service
from conftest import make_tiny_service

FAST = ColocationConfig(duration_s=20.0, sample_cap=150, min_samples=50)


@pytest.fixture(scope="module", autouse=True)
def _fresh_state():
    clear_rhythm_cache()
    clear_profile_memo()
    yield
    clear_rhythm_cache()
    clear_profile_memo()


@pytest.fixture(scope="module")
def service():
    return make_tiny_service()


# -- the declarative layer -------------------------------------------------


class TestFaultSchedule:
    def test_same_seed_identical_repr(self):
        a = FaultSchedule.generate(11, 600.0, targets=("m1", "m2"))
        b = FaultSchedule.generate(11, 600.0, targets=("m1", "m2"))
        assert repr(a) == repr(b)
        assert a == b

    def test_different_seeds_differ(self):
        a = FaultSchedule.generate(11, 600.0)
        b = FaultSchedule.generate(12, 600.0)
        assert repr(a) != repr(b)

    def test_time_sorted(self):
        schedule = FaultSchedule.generate(3, 900.0, faults_per_minute=4.0)
        starts = [f.at_s for f in schedule]
        assert starts == sorted(starts)

    def test_hand_built_schedules_sort_themselves(self):
        late = FaultSpec(FaultKind.DVFS_CAP, "m", at_s=50.0)
        early = FaultSpec(FaultKind.CORE_OFFLINE, "m", at_s=5.0)
        schedule = FaultSchedule(faults=(late, early))
        assert schedule.faults == (early, late)

    def test_count_scales_with_rate(self):
        schedule = FaultSchedule.generate(0, 300.0, faults_per_minute=4.0)
        assert len(schedule) == 20

    def test_windows_clipped_to_run_end(self):
        schedule = FaultSchedule.generate(5, 120.0, max_duration_s=500.0)
        for fault in schedule:
            assert fault.at_s < 120.0
            # A window may run past the end only by the enforced minimum
            # duration (a fault cannot be shorter than min_duration_s).
            assert fault.end_s <= 120.0 + 10.0

    def test_queries(self):
        f1 = FaultSpec(FaultKind.CORE_OFFLINE, "m1", at_s=10.0, duration_s=20.0)
        f2 = FaultSpec(FaultKind.NIC_DEGRADE, "*", at_s=40.0, duration_s=10.0)
        schedule = FaultSchedule(faults=(f1, f2))
        assert schedule.for_target("m1") == (f1, f2)
        assert schedule.for_target("m2") == (f2,)
        assert schedule.active_at(15.0) == (f1,)
        assert schedule.active_at(30.0) == ()
        assert schedule.starting_in(0.0, 20.0) == (f1,)
        assert schedule.counts_by_kind() == {"core_offline": 1, "nic_degrade": 1}

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_s": 0.0},
            {"duration_s": 100.0, "faults_per_minute": -1.0},
            {"duration_s": 100.0, "targets": ()},
            {"duration_s": 100.0, "min_magnitude": 0.0},
            {"duration_s": 100.0, "min_magnitude": 0.8, "max_magnitude": 0.5},
            {"duration_s": 100.0, "min_duration_s": 0.0},
            {"duration_s": 100.0, "min_duration_s": 50.0, "max_duration_s": 10.0},
        ],
    )
    def test_generate_rejects_bad_ranges(self, kwargs):
        with pytest.raises(FaultError):
            FaultSchedule.generate(0, **kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "core_offline"},
            {"kind": FaultKind.DVFS_CAP, "target": ""},
            {"kind": FaultKind.DVFS_CAP, "at_s": -1.0},
            {"kind": FaultKind.DVFS_CAP, "duration_s": 0.0},
            {"kind": FaultKind.DVFS_CAP, "magnitude": 0.0},
            {"kind": FaultKind.DVFS_CAP, "magnitude": 1.5},
        ],
    )
    def test_spec_rejects_bad_fields(self, kwargs):
        with pytest.raises(FaultError):
            FaultSpec(**kwargs)


# -- the cluster layer -----------------------------------------------------


def _one_fault_injector(cluster, kind, magnitude=0.5, target="front"):
    spec = FaultSpec(kind, target, at_s=10.0, duration_s=20.0, magnitude=magnitude)
    return ClusterFaultInjector(cluster, FaultSchedule(faults=(spec,))), spec


class TestClusterFaultInjector:
    @pytest.fixture
    def cluster(self, service):
        return deploy_service(service, None).cluster

    def test_core_offline_applies_and_reverts(self, cluster):
        machine = cluster["front"]
        free_before = machine.cpuset.free_cores
        injector, _ = _one_fault_injector(cluster, FaultKind.CORE_OFFLINE)
        assert injector.advance(0.0) == 0
        assert injector.advance(10.0) == 1
        assert machine.offlined_cores == machine.spec.cores // 2
        assert machine.cpuset.free_cores < free_before
        assert injector.advance(30.0) == 1
        assert machine.offlined_cores == 0
        assert machine.cpuset.free_cores == free_before

    def test_core_offline_evicts_be_cores_not_lc(self, cluster):
        from repro.cluster.machine import LC_OWNER

        machine = cluster["front"]
        lc_before = machine.cpuset.count(LC_OWNER)
        for i in range(6):
            if machine.can_launch_be():
                machine.launch_be(f"be-{i}")
                for _ in range(4):
                    machine.grow_be(f"be-{i}")
        be_before = machine.be_total_cores
        assert be_before > machine.be_instance_count  # jobs hold >1 core
        injector, _ = _one_fault_injector(
            cluster, FaultKind.CORE_OFFLINE, magnitude=0.9
        )
        injector.advance(10.0)
        assert machine.offlined_cores > 0
        assert machine.cpuset.count(LC_OWNER) == lc_before
        assert machine.be_total_cores < be_before

    def test_dvfs_cap_is_stuck(self, cluster):
        machine = cluster["front"]
        injector, _ = _one_fault_injector(
            cluster, FaultKind.DVFS_CAP, magnitude=1.0
        )
        injector.advance(10.0)
        assert machine.dvfs.frequency(LC_DOMAIN) == machine.dvfs.min_mhz
        # The governor's step_up "succeeds" but the silicon stays capped.
        machine.dvfs.step_up(BE_DOMAIN)
        machine.dvfs.step_up(BE_DOMAIN)
        assert machine.dvfs.frequency(BE_DOMAIN) == machine.dvfs.min_mhz
        assert machine.dvfs.ratio(LC_DOMAIN) < 1.0
        injector.advance(30.0)
        machine.dvfs.reset(BE_DOMAIN)
        assert machine.dvfs.frequency(BE_DOMAIN) == machine.dvfs.max_mhz

    def test_nic_degrade_creates_shortfall(self, cluster):
        machine = cluster["front"]
        link = machine.spec.link_gbps
        injector, _ = _one_fault_injector(
            cluster, FaultKind.NIC_DEGRADE, magnitude=0.8
        )
        injector.advance(10.0)
        machine.nic.observe_lc_traffic(0.5 * link)
        assert machine.nic.effective_link_gbps == pytest.approx(0.2 * link)
        assert machine.nic.lc_shortfall_fraction() == pytest.approx(0.6)
        injector.advance(30.0)
        machine.nic.observe_lc_traffic(0.5 * link)
        assert machine.nic.lc_shortfall_fraction() == 0.0

    def test_llc_way_loss_fences_ways(self, cluster):
        machine = cluster["front"]
        free_before = machine.llc.free_ways
        injector, _ = _one_fault_injector(cluster, FaultKind.LLC_WAY_LOSS)
        injector.advance(10.0)
        assert machine.lost_llc_ways > 0
        assert machine.llc.free_ways < free_before
        injector.advance(30.0)
        assert machine.lost_llc_ways == 0
        assert machine.llc.free_ways == free_before

    def test_stall_factor(self, cluster):
        injector, spec = _one_fault_injector(
            cluster, FaultKind.MACHINE_STALL, magnitude=1.0
        )
        injector.advance(10.0)
        assert injector.stall_factor("front") == pytest.approx(10.0)
        assert injector.stall_factor("back") == 1.0
        injector.advance(30.0)
        assert injector.stall_factor("front") == 1.0

    def test_adjust_pressure_folds_llc_and_net(self, cluster):
        from repro.interference.model import Pressure

        machine = cluster["front"]
        faults = (
            FaultSpec(FaultKind.LLC_WAY_LOSS, "front", at_s=10.0, magnitude=0.4),
            FaultSpec(FaultKind.NIC_DEGRADE, "front", at_s=10.0, magnitude=0.9),
        )
        injector = ClusterFaultInjector(cluster, FaultSchedule(faults=faults))
        injector.advance(10.0)
        machine.nic.observe_lc_traffic(0.8 * machine.spec.link_gbps)
        base = Pressure(cpu=0.1, llc=0.2, membw=0.1, net=0.0, freq=0.0)
        adjusted = injector.adjust_pressure(machine, base)
        assert adjusted.llc == pytest.approx(0.6)
        assert adjusted.net > 0.5
        # Unrelated machine: pressure passes through untouched.
        assert injector.adjust_pressure(cluster["back"], base) == base

    def test_advance_is_idempotent(self, cluster):
        injector, _ = _one_fault_injector(cluster, FaultKind.CORE_OFFLINE)
        assert injector.advance(10.0) == 1
        assert injector.advance(10.0) == 0
        assert injector.advance(12.0) == 0

    def test_window_between_ticks_is_skipped(self, cluster):
        spec = FaultSpec(
            FaultKind.CORE_OFFLINE, "front", at_s=10.0, duration_s=2.0
        )
        injector = ClusterFaultInjector(cluster, FaultSchedule(faults=(spec,)))
        # The control loop ticks at 5 and 15; the whole window fell in
        # between. Nothing applies and nothing leaks.
        assert injector.advance(5.0) == 0
        assert injector.advance(15.0) == 0
        assert cluster["front"].offlined_cores == 0
        assert injector.active_faults == ()

    def test_overlapping_nic_faults_compose(self, cluster):
        machine = cluster["front"]
        faults = (
            FaultSpec(FaultKind.NIC_DEGRADE, "front", at_s=10.0, magnitude=0.5),
            FaultSpec(FaultKind.NIC_DEGRADE, "front", at_s=12.0, magnitude=0.5),
        )
        injector = ClusterFaultInjector(cluster, FaultSchedule(faults=faults))
        injector.advance(10.0)
        assert machine.nic.link_scale == pytest.approx(0.5)
        injector.advance(12.0)
        assert machine.nic.link_scale == pytest.approx(0.25)
        injector.advance(100.0)
        assert machine.nic.link_scale == 1.0


# -- fault storms through the co-location loop ----------------------------


class TestFaultStormColocation:
    def test_storm_run_is_deterministic(self, service):
        schedule = FaultSchedule.generate(
            9, FAST.duration_s, targets=tuple(service.servpod_names),
            faults_per_minute=12.0, min_duration_s=4.0, max_duration_s=10.0,
        )
        from dataclasses import replace as dc_replace

        config = dc_replace(FAST, faults=schedule)
        controllers = build_rhythm_controllers(service, probe_slacklimits=False)
        be = evaluation_be_jobs()[0]
        one = run_cell(service, controllers, be, ConstantLoad(0.5), config=config)
        two = run_cell(service, controllers, be, ConstantLoad(0.5), config=config)
        assert colocation_fingerprint(one) == colocation_fingerprint(two)

    def test_storm_changes_the_outcome(self, service):
        schedule = FaultSchedule.generate(
            9, FAST.duration_s, targets=tuple(service.servpod_names),
            faults_per_minute=12.0, min_duration_s=4.0, max_duration_s=10.0,
        )
        from dataclasses import replace as dc_replace

        controllers = build_rhythm_controllers(service, probe_slacklimits=False)
        be = evaluation_be_jobs()[0]
        healthy = run_cell(service, controllers, be, ConstantLoad(0.5), config=FAST)
        stormy = run_cell(
            service, controllers, be, ConstantLoad(0.5),
            config=dc_replace(FAST, faults=schedule),
        )
        assert colocation_fingerprint(healthy) != colocation_fingerprint(stormy)

    def test_driver_end_to_end(self, service):
        storm = run_fault_storm(
            service,
            evaluation_be_jobs()[0],
            load=0.5,
            duration_s=FAST.duration_s,
            faults_per_minute=9.0,
            config=FAST,
        )
        assert storm.faults_injected == 3
        assert {f.target for f in storm.schedule} <= set(service.servpod_names)
        assert storm.rhythm.duration_s == FAST.duration_s
        assert storm.heracles.duration_s == FAST.duration_s
        assert storm.violation_gap == (
            storm.heracles.sla_violations - storm.rhythm.sla_violations
        )
        systems = dict(storm.summary_rows())
        assert set(systems) == {"rhythm", "heracles"}


# -- the execution layer ---------------------------------------------------


def _mul(a, b):
    return a * b


def _boom(x):
    raise ValueError(f"genuine bug ({x})")


def _make_envelopes(n=12):
    return [Envelope(fn=_mul, args=(i, 3)) for i in range(n)]


class TestExecutorFaultPlan:
    def test_deterministic_and_first_attempt_only(self):
        plan = ExecutorFaultPlan(seed=4, crash_rate=0.5)
        actions = [plan.action_for(f"task-{i}", 0) for i in range(32)]
        assert actions == [plan.action_for(f"task-{i}", 0) for i in range(32)]
        assert "crash" in actions and None in actions
        assert all(
            plan.action_for(f"task-{i}", attempt) is None
            for i in range(32)
            for attempt in (1, 2, 5)
        )

    def test_rate_one_hits_everything(self):
        plan = ExecutorFaultPlan(seed=0, crash_rate=1.0)
        assert all(
            plan.action_for(f"k{i}", 0) == "crash" for i in range(16)
        )

    def test_threshold_ladder_partitions(self):
        plan = ExecutorFaultPlan(
            seed=2, crash_rate=0.3, kill_rate=0.3, hang_rate=0.4
        )
        keys = [f"k{i}" for i in range(200)]
        counts = plan.expected_actions(keys)
        assert sum(counts.values()) == 200  # rates sum to 1: no survivors
        assert all(counts[mode] > 0 for mode in ("crash", "kill", "hang"))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_rate": -0.1},
            {"crash_rate": 1.1},
            {"crash_rate": 0.6, "kill_rate": 0.6},
            {"hang_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(FaultError):
            ExecutorFaultPlan(seed=0, **kwargs)


class TestChaosHardenedPool:
    @pytest.fixture(autouse=True)
    def _clean_pool(self):
        reset_pool_state_for_tests()
        reset_pool_stats()
        yield
        reset_pool_state_for_tests()
        reset_pool_stats()

    def test_timeout_resolution(self, monkeypatch):
        assert resolve_task_timeout(5.0) == 5.0
        assert resolve_task_timeout(0) is None
        monkeypatch.setenv("RHYTHM_TASK_TIMEOUT_S", "2.5")
        assert resolve_task_timeout() == 2.5
        monkeypatch.setenv("RHYTHM_TASK_TIMEOUT_S", "-1")
        assert resolve_task_timeout() is None

    def test_crash_storm_counters_match_plan(self):
        envelopes = _make_envelopes()
        plan = ExecutorFaultPlan(seed=6, crash_rate=0.5)
        expected = plan.expected_actions(
            envelope_task_key(env) for env in envelopes
        )
        assert expected["crash"] > 0
        inline = run_envelopes(envelopes, workers=1)
        with executor_chaos(plan):
            chaotic = run_envelopes(envelopes, workers=2)
        assert chaotic == inline
        stats = pool_stats()
        assert stats.task_failures == expected["crash"]
        assert stats.retries == expected["crash"]
        assert stats.inline_fallbacks == 0
        assert stats.completed == len(envelopes)

    def test_kill_mode_breaks_and_rebuilds_the_pool(self):
        envelopes = _make_envelopes()
        plan = ExecutorFaultPlan(seed=1, crash_rate=0.0, kill_rate=0.25)
        expected = plan.expected_actions(
            envelope_task_key(env) for env in envelopes
        )
        assert expected["kill"] > 0
        inline = run_envelopes(envelopes, workers=1)
        with executor_chaos(plan):
            chaotic = run_envelopes(envelopes, workers=2)
        assert chaotic == inline
        stats = pool_stats()
        assert stats.worker_crashes >= expected["kill"]
        assert stats.pool_rebuilds >= 1

    def test_hang_mode_times_out_and_recovers(self):
        envelopes = _make_envelopes(6)
        plan = ExecutorFaultPlan(seed=3, hang_rate=0.4, hang_s=30.0)
        expected = plan.expected_actions(
            envelope_task_key(env) for env in envelopes
        )
        assert expected["hang"] > 0
        inline = run_envelopes(envelopes, workers=1)
        with executor_chaos(plan):
            chaotic = run_envelopes(envelopes, workers=2, timeout=1.0)
        assert chaotic == inline
        stats = pool_stats()
        assert stats.timeouts >= expected["hang"]
        assert stats.pool_rebuilds >= 1

    def test_inline_fallback_after_exhausted_retries(self):
        envelopes = _make_envelopes(6)
        plan = ExecutorFaultPlan(seed=6, crash_rate=1.0)
        inline = run_envelopes(envelopes, workers=1)
        with executor_chaos(plan):
            # With zero retries every sabotaged task falls back inline —
            # and still produces the right answers.
            chaotic = run_envelopes(envelopes, workers=2, max_retries=0)
        assert chaotic == inline
        assert pool_stats().inline_fallbacks == len(envelopes)

    def test_genuine_bug_surfaces_its_real_error(self):
        envelopes = [Envelope(fn=_boom, args=(7,))] * 2 + _make_envelopes(4)
        with pytest.raises(ValueError, match="genuine bug"):
            run_envelopes(envelopes, workers=2, max_retries=1)
        stats = pool_stats()
        assert stats.task_failures >= 2
        assert stats.inline_fallbacks >= 1

    def test_inline_path_ignores_chaos(self):
        envelopes = _make_envelopes(4)
        with executor_chaos(ExecutorFaultPlan(seed=0, crash_rate=1.0)):
            results = run_envelopes(envelopes, workers=1)
        assert results == [i * 3 for i in range(4)]
        assert pool_stats().task_failures == 0


class TestDifferentialIdentity:
    """Executor-only faults must not change a single output bit."""

    @pytest.fixture(autouse=True)
    def _clean_pool(self):
        reset_pool_state_for_tests()
        reset_pool_stats()
        yield
        reset_pool_state_for_tests()
        reset_pool_stats()

    def _cells(self, service):
        return [
            GridCell(service, be, load, seed=7)
            for be in evaluation_be_jobs()[:2]
            for load in (0.25, 0.65)
        ]

    def test_grid_identical_under_crash_storm(self, service):
        cells = self._cells(service)
        artifacts = {service.name: artifact_for(service, probe_slacklimits=False)}
        serial = run_comparison_grid(
            cells, config=FAST, workers=1, artifacts=artifacts
        )
        with executor_chaos(ExecutorFaultPlan(seed=0, crash_rate=0.6)):
            chaotic = run_comparison_grid(
                cells, config=FAST, workers=2, artifacts=artifacts
            )
        assert [comparison_fingerprint(r) for r in serial] == [
            comparison_fingerprint(r) for r in chaotic
        ]
        assert pool_stats().task_failures > 0

    def test_profiling_identical_under_crash_storm(self, service):
        clear_profile_memo()
        serial = profile_service_parallel(
            service, seed=0, probe_slacklimits=True, workers=1
        )
        clear_profile_memo()
        with executor_chaos(ExecutorFaultPlan(seed=1, crash_rate=0.6)):
            chaotic = profile_service_parallel(
                service, seed=0, probe_slacklimits=True, workers=2
            )
        assert chaotic == serial
        assert pool_stats().task_failures > 0

    @pytest.mark.slow
    def test_spawn_grid_identical_under_crash_storm(self, service, monkeypatch):
        cells = self._cells(service)[:2]
        artifacts = {service.name: artifact_for(service, probe_slacklimits=False)}
        serial = run_comparison_grid(
            cells, config=FAST, workers=1, artifacts=artifacts
        )
        monkeypatch.setenv("RHYTHM_MP_CONTEXT", "spawn")
        reset_pool_state_for_tests()
        try:
            with executor_chaos(ExecutorFaultPlan(seed=2, crash_rate=0.6)):
                chaotic = run_comparison_grid(
                    cells, config=FAST, workers=2, artifacts=artifacts
                )
            assert [comparison_fingerprint(r) for r in serial] == [
                comparison_fingerprint(r) for r in chaotic
            ]
        finally:
            reset_pool_state_for_tests()


# -- the tracing layer -----------------------------------------------------


@pytest.fixture(scope="module")
def traced(service):
    svc = Service(service, RandomStreams(0))
    records = svc.build_request_records(0.5, 150)
    endpoints = default_endpoints(service.servpod_names)
    emitter = TraceEmitter(endpoints, EmitterConfig(noise_per_request=2, seed=1))
    return endpoints, emitter.emit(records)


class TestTraceFaults:
    def test_corruption_is_deterministic(self, traced):
        _, events = traced
        config = TraceFaultConfig(
            seed=5, drop_rate=0.1, duplicate_rate=0.1, reorder_rate=0.1
        )
        assert corrupt_events(events, config) == corrupt_events(events, config)

    def test_no_corruption_is_a_noop(self, traced):
        _, events = traced
        assert corrupt_events(events, TraceFaultConfig(seed=5)) == list(events)

    def test_rates_have_their_effects(self, traced):
        _, events = traced
        dropped = corrupt_events(events, TraceFaultConfig(seed=0, drop_rate=0.3))
        assert len(dropped) < len(events)
        duplicated = corrupt_events(
            events, TraceFaultConfig(seed=0, duplicate_rate=0.3)
        )
        assert len(duplicated) > len(events)
        reordered = corrupt_events(
            events, TraceFaultConfig(seed=0, reorder_rate=0.5, reorder_jitter_ms=50.0)
        )
        times = [e.timestamp for e in reordered]
        assert times != sorted(times)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_rate": 1.0},
            {"duplicate_rate": -0.1},
            {"reorder_rate": 1.5},
            {"reorder_jitter_ms": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(FaultError):
            TraceFaultConfig(seed=0, **kwargs)

    def test_robust_stats_clean_stream_matches_strict(self, traced):
        endpoints, events = traced
        extractor = SojournExtractor(CausalityMatcher(endpoints))
        strict = extractor.mean_only(events)
        robust, health = extractor.robust_stats(events)
        assert set(robust) == set(strict)
        for pod in strict:
            assert robust[pod].mean_ms == pytest.approx(strict[pod].mean_ms)
            assert robust[pod].n_requests == strict[pod].n_requests
        assert not health.degraded

    def test_robust_stats_survive_heavy_corruption(self, traced):
        endpoints, events = traced
        extractor = SojournExtractor(CausalityMatcher(endpoints))
        mangled = corrupt_events(
            events,
            TraceFaultConfig(
                seed=2, drop_rate=0.4, duplicate_rate=0.2,
                reorder_rate=0.3, reorder_jitter_ms=20.0,
            ),
        )
        stats, health = extractor.robust_stats(mangled)
        assert health.degraded
        assert health.unmatched_sends + health.unmatched_recvs > 0
        e2e = extractor.e2e_latencies(mangled)
        bound = max(e2e) if e2e else float("inf")
        for pod, stat in stats.items():
            assert 0.0 <= stat.mean_ms <= bound
            assert stat.n_requests > 0

    def test_robust_stats_estimate_visits_when_entries_drop(self, traced):
        endpoints, events = traced
        matcher = CausalityMatcher(endpoints)
        extractor = SojournExtractor(matcher)
        # Drop every entry RECV at the frontend; its response RECVs
        # survive, so visits can only be estimated from matched segments.
        from repro.tracing.events import EventType

        surviving = [
            e
            for e in events
            if not (
                e.etype == EventType.RECV
                and matcher.is_request_direction(e)
                and matcher.servpod_of(e.context) == "front"
            )
        ]
        stats, health = extractor.robust_stats(surviving)
        assert "front" in health.pods_estimated
        assert "front" in stats and stats["front"].n_requests > 0

    def test_strict_mean_only_still_raises_without_entries(self, traced):
        endpoints, events = traced
        matcher = CausalityMatcher(endpoints)
        extractor = SojournExtractor(matcher)
        from repro.tracing.events import EventType

        surviving = [
            e
            for e in events
            if not (
                e.etype == EventType.RECV
                and matcher.is_request_direction(e)
                and matcher.servpod_of(e.context) == "front"
            )
        ]
        with pytest.raises(TracingError):
            extractor.mean_only(surviving)


# -- determinism regression (workers x fault seed x two runs) --------------


class TestDeterminismRegression:
    def test_env_pinned_chaos_run_reproduces_exactly(self, service, monkeypatch):
        monkeypatch.setenv("RHYTHM_WORKERS", "2")
        monkeypatch.setenv("RHYTHM_PROFILE_WORKERS", "2")
        schedule_a = FaultSchedule.generate(
            21, FAST.duration_s, targets=tuple(service.servpod_names),
            faults_per_minute=9.0, min_duration_s=4.0, max_duration_s=10.0,
        )
        schedule_b = FaultSchedule.generate(
            21, FAST.duration_s, targets=tuple(service.servpod_names),
            faults_per_minute=9.0, min_duration_s=4.0, max_duration_s=10.0,
        )
        assert repr(schedule_a) == repr(schedule_b)
        from dataclasses import replace as dc_replace

        from repro.cache.keys import stable_hash

        config = dc_replace(FAST, faults=schedule_a)
        cells = [
            GridCell(service, evaluation_be_jobs()[0], load, seed=3)
            for load in (0.25, 0.65)
        ]
        digests = []
        for _ in range(2):
            reset_pool_state_for_tests()
            artifacts = {
                service.name: artifact_for(service, probe_slacklimits=False)
            }
            results = run_comparison_grid(
                cells, config=config, artifacts=artifacts
            )
            digests.append(
                stable_hash([comparison_fingerprint(r) for r in results])
            )
        reset_pool_state_for_tests()
        assert digests[0] == digests[1]
