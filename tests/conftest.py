"""Shared fixtures: a small synthetic LC service for fast unit tests.

The catalogued services calibrate themselves against their SLAs at
construction, which costs a few thousand lognormal draws; unit tests that
only need *a* service use this hand-rolled two/three-Servpod spec instead.
"""

from __future__ import annotations

import pytest

from repro.interference.sensitivity import SensitivityVector
from repro.sim.rng import RandomStreams
from repro.workloads.spec import (
    CallNode,
    ComponentSpec,
    RequestType,
    ServiceSpec,
    ServpodSpec,
    chain,
)


def make_tiny_service(
    name: str = "tiny",
    sla_ms: float = 100.0,
    max_load_qps: float = 500.0,
) -> ServiceSpec:
    """A fast two-Servpod chain service (frontend -> backend)."""
    frontend = ComponentSpec(
        name="front",
        base_ms=2.0,
        sigma0=0.20,
        lin_growth=0.4,
        sat_growth=0.1,
        sigma_growth=2.0,
        cov_knee=0.8,
        sensitivity=SensitivityVector(cpu=0.2, llc=0.3, membw=0.4, net=0.8, freq=0.5),
        cores=4,
        peak_core_util=0.5,
        peak_membw_fraction=0.05,
        peak_net_gbps=1.0,
        llc_fraction=0.1,
    )
    backend = ComponentSpec(
        name="back",
        base_ms=8.0,
        sigma0=0.35,
        lin_growth=0.5,
        sat_growth=0.8,
        sigma_growth=2.0,
        cov_knee=0.6,
        sensitivity=SensitivityVector(cpu=0.5, llc=1.5, membw=1.8, net=0.5, freq=0.4),
        cores=8,
        peak_core_util=0.6,
        peak_membw_fraction=0.2,
        peak_net_gbps=0.5,
        llc_fraction=0.3,
    )
    return ServiceSpec(
        name=name,
        domain="synthetic test service",
        servpods=(
            ServpodSpec("front", (frontend,), llc_ways=4, memory_gb=8.0),
            ServpodSpec("back", (backend,), llc_ways=8, memory_gb=16.0),
        ),
        request_types=(
            RequestType(name="get", weight=1.0, root=chain("front", "back")),
        ),
        max_load_qps=max_load_qps,
        sla_ms=sla_ms,
    )


def make_fanout_service() -> ServiceSpec:
    """A three-Servpod service with a parallel fan-out (for Eq. 5 tests)."""
    def comp(name: str, base: float) -> ComponentSpec:
        return ComponentSpec(name=name, base_ms=base, cores=4)

    return ServiceSpec(
        name="fanny",
        domain="synthetic fan-out service",
        servpods=(
            ServpodSpec("root", (comp("root-c", 2.0),), llc_ways=4, memory_gb=8.0),
            ServpodSpec("long", (comp("long-c", 10.0),), llc_ways=4, memory_gb=8.0),
            ServpodSpec("short", (comp("short-c", 1.0),), llc_ways=4, memory_gb=8.0),
        ),
        request_types=(
            RequestType(
                name="scatter",
                weight=1.0,
                root=CallNode(
                    servpod="root",
                    children=(CallNode("long"), CallNode("short")),
                    parallel=True,
                ),
            ),
        ),
        max_load_qps=300.0,
        sla_ms=80.0,
    )


@pytest.fixture
def tiny_service() -> ServiceSpec:
    """The two-Servpod chain service."""
    return make_tiny_service()


@pytest.fixture
def fanout_service() -> ServiceSpec:
    """The three-Servpod fan-out service."""
    return make_fanout_service()


@pytest.fixture
def streams() -> RandomStreams:
    """Deterministic random streams."""
    return RandomStreams(42)
