"""Tests for load patterns, the ClarkNet trace and window generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.loadgen.clarknet import ClarkNetLoad, clarknet_production_load
from repro.loadgen.generator import WindowLoadGenerator
from repro.loadgen.patterns import (
    CallableLoad,
    ConstantLoad,
    DiurnalLoad,
    FlashCrowdLoad,
    ReplayLoad,
    StepLoad,
    SweepLoad,
)


class TestPatterns:
    def test_constant(self):
        p = ConstantLoad(0.6)
        assert p.load_at(0) == p.load_at(1e6) == 0.6

    def test_constant_bounds(self):
        with pytest.raises(ConfigurationError):
            ConstantLoad(1.2)

    def test_step(self):
        p = StepLoad([(0.0, 0.2), (10.0, 0.8)])
        assert p.load_at(5.0) == 0.2
        assert p.load_at(10.0) == 0.8
        assert p.load_at(50.0) == 0.8

    def test_step_sorted_automatically(self):
        p = StepLoad([(10.0, 0.8), (0.0, 0.2)])
        assert p.load_at(5.0) == 0.2

    def test_diurnal_period(self):
        p = DiurnalLoad(base=0.5, amplitude=0.3, period_s=100.0)
        assert p.load_at(0.0) == pytest.approx(p.load_at(100.0))
        assert 0.2 <= min(p.load_at(t) for t in range(100)) <= 0.21
        assert 0.79 <= max(p.load_at(t) for t in range(100)) <= 0.8

    def test_diurnal_range_validated(self):
        with pytest.raises(ConfigurationError):
            DiurnalLoad(base=0.9, amplitude=0.3)

    def test_sweep(self):
        p = SweepLoad(0.1, 0.9, 100.0)
        assert p.load_at(-5) == 0.1
        assert p.load_at(50.0) == pytest.approx(0.5)
        assert p.load_at(200.0) == 0.9

    def test_callable_clamps(self):
        p = CallableLoad(lambda t: 2.0)
        assert p.load_at(0) == 1.0

    def test_flash_crowd_ramp_and_decay(self):
        p = FlashCrowdLoad(ConstantLoad(0.3), [(100.0, 0.4, 20.0, 50.0)])
        assert p.load_at(50.0) == 0.3  # before the crowd
        assert p.load_at(110.0) == pytest.approx(0.5)  # halfway up the ramp
        assert p.load_at(120.0) == pytest.approx(0.7)  # peak
        decayed = p.load_at(170.0)
        assert 0.3 < decayed < 0.7  # exponential tail
        assert p.load_at(120.0 + 50.0) == pytest.approx(
            0.3 + 0.4 * np.exp(-1.0)
        )

    def test_flash_crowd_clamps_at_saturation(self):
        p = FlashCrowdLoad(ConstantLoad(0.8), [(0.0, 0.5, 10.0, 10.0)])
        assert p.load_at(10.0) == 1.0

    def test_flash_crowd_overlapping_crowds_sum(self):
        p = FlashCrowdLoad(
            ConstantLoad(0.1),
            [(0.0, 0.2, 10.0, 1e9), (5.0, 0.2, 10.0, 1e9)],
        )
        # At t=15 the first crowd is at peak, the second at peak too
        # (decay constants are huge, so nothing has decayed yet).
        assert p.load_at(15.0) == pytest.approx(0.5)

    def test_flash_crowd_validation(self):
        base = ConstantLoad(0.3)
        with pytest.raises(ConfigurationError):
            FlashCrowdLoad(base, [(0.0, 0.4, 20.0)])
        with pytest.raises(ConfigurationError):
            FlashCrowdLoad(base, [(-1.0, 0.4, 20.0, 50.0)])
        with pytest.raises(ConfigurationError):
            FlashCrowdLoad(base, [(0.0, 1.5, 20.0, 50.0)])
        with pytest.raises(ConfigurationError):
            FlashCrowdLoad(base, [(0.0, 0.4, 0.0, 50.0)])

    def test_replay_levels_and_clamp(self):
        p = ReplayLoad([0.2, 0.6, 0.4], interval_s=10.0)
        assert p.load_at(-5.0) == 0.2
        assert p.load_at(0.0) == 0.2
        assert p.load_at(10.0) == 0.6
        assert p.load_at(29.9) == 0.4
        assert p.load_at(1e6) == 0.4  # clamps to the last level

    def test_replay_loop_wraps(self):
        p = ReplayLoad([0.2, 0.6], interval_s=10.0, loop=True)
        assert p.load_at(20.0) == 0.2
        assert p.load_at(30.0) == 0.6
        assert p.load_at(1e6) in (0.2, 0.6)

    def test_replay_validation(self):
        with pytest.raises(ConfigurationError):
            ReplayLoad([], interval_s=10.0)
        with pytest.raises(ConfigurationError):
            ReplayLoad([0.5], interval_s=0.0)
        with pytest.raises(ConfigurationError):
            ReplayLoad([1.5], interval_s=10.0)


class TestClarkNet:
    def test_peak_normalisation(self):
        p = clarknet_production_load(duration_s=100.0, peak_fraction=0.9)
        loads = [p.load_at(t) for t in np.linspace(0, 100, 2000)]
        assert max(loads) <= 0.9 + 1e-9
        assert max(loads) > 0.85  # peak actually reached

    def test_diurnal_structure(self):
        """A trough and a peak exist within each compressed day."""
        p = clarknet_production_load(duration_s=500.0, days=1)
        loads = np.array([p.load_at(t) for t in np.linspace(0, 500, 1000)])
        assert loads.min() < 0.3
        assert loads.max() > 0.8

    def test_days_scale_sample_count(self):
        p1 = clarknet_production_load(duration_s=100.0, days=1)
        p5 = clarknet_production_load(duration_s=100.0, days=5)
        assert len(p5.levels) == 5 * len(p1.levels)

    def test_deterministic_per_seed(self):
        a = clarknet_production_load(seed=3).levels
        b = clarknet_production_load(seed=3).levels
        assert (a == b).all()

    def test_clamps_outside_duration(self):
        p = clarknet_production_load(duration_s=100.0)
        assert p.load_at(-5.0) == p.load_at(0.0)
        assert p.load_at(200.0) == p.load_at(100.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            clarknet_production_load(peak_fraction=0.0)
        with pytest.raises(ConfigurationError):
            clarknet_production_load(days=0)
        with pytest.raises(ConfigurationError):
            ClarkNetLoad([0.5], 100.0)


class TestWindowGenerator:
    def _gen(self, load=0.5, burst=0.0, **kw):
        return WindowLoadGenerator(
            ConstantLoad(load), max_qps=1000.0,
            rng=np.random.default_rng(0), burst_sigma=burst, **kw,
        )

    def test_request_count_near_expectation(self):
        gen = self._gen(0.5)
        counts = [gen.window(i * 2.0, 2.0).n_requests for i in range(200)]
        assert np.mean(counts) == pytest.approx(1000.0, rel=0.05)

    def test_sample_cap_respected(self):
        gen = self._gen(0.9, sample_cap=300, min_samples=50)
        w = gen.window(0.0, 2.0)
        assert w.n_samples == 300

    def test_zero_load_zero_requests(self):
        gen = self._gen(0.0)
        w = gen.window(0.0, 2.0)
        assert w.n_requests == 0
        assert w.n_samples == 0

    def test_burst_jitters_realized_not_metric(self):
        gen = self._gen(0.5, burst=0.1)
        ws = [gen.window(i * 2.0, 2.0) for i in range(100)]
        assert all(w.load == 0.5 for w in ws)
        realized = [w.realized_load for w in ws]
        assert np.std(realized) > 0.02

    def test_no_burst_realized_equals_metric(self):
        gen = self._gen(0.5, burst=0.0)
        w = gen.window(0.0, 2.0)
        assert w.realized_load == w.load

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self._gen(0.5).window(0.0, -1.0)
        with pytest.raises(ConfigurationError):
            WindowLoadGenerator(ConstantLoad(0.5), 0.0, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            WindowLoadGenerator(
                ConstantLoad(0.5), 10.0, np.random.default_rng(0),
                sample_cap=10, min_samples=20,
            )


class TestAlibabaTraceSample:
    """The bundled Alibaba-v2018 machine-usage sample through ReplayLoad."""

    def test_sample_parses_and_is_plausible(self):
        from repro.loadgen.alibaba import (
            ALIBABA_INTERVAL_S,
            alibaba_machine_ids,
            alibaba_machine_load,
        )

        ids = alibaba_machine_ids()
        assert len(ids) >= 4
        for machine_id in ids:
            pattern = alibaba_machine_load(machine_id)
            assert isinstance(pattern, ReplayLoad)
            assert pattern.interval_s == ALIBABA_INTERVAL_S
            # 24 hours at 5-minute resolution.
            assert len(pattern.levels) == 288
            assert all(0.0 <= level <= 1.0 for level in pattern.levels)
            # Published v2018 shape: mid-range mean utilisation, real
            # diurnal swing between the trough and the peak.
            mean = sum(pattern.levels) / len(pattern.levels)
            assert 0.2 <= mean <= 0.6
            assert max(pattern.levels) - min(pattern.levels) >= 0.15

    def test_default_machine_and_unknown_machine(self):
        from repro.loadgen.alibaba import alibaba_machine_ids, alibaba_machine_load

        default = alibaba_machine_load()
        explicit = alibaba_machine_load(alibaba_machine_ids()[0])
        assert default.levels == explicit.levels
        with pytest.raises(ConfigurationError):
            alibaba_machine_load("m_does_not_exist")

    def test_trace_loops_for_long_runs(self):
        from repro.loadgen.alibaba import alibaba_machine_load

        pattern = alibaba_machine_load()
        day = 288 * pattern.interval_s
        assert pattern.load_at(day + 42.0) == pattern.load_at(42.0)
        clamped = alibaba_machine_load(loop=False)
        assert clamped.load_at(10 * day) == clamped.levels[-1]

    def test_seeded_replay_is_deterministic_through_the_simulator(self):
        from repro.experiments.fleet import (
            FleetConfig,
            FleetExperiment,
            FleetInstanceSpec,
            heracles_fleet_policies,
        )
        from repro.loadgen.alibaba import alibaba_machine_ids, alibaba_machine_load

        policies = tuple(sorted(heracles_fleet_policies("Redis").items()))
        specs = [
            FleetInstanceSpec(
                service="Redis",
                policies=policies,
                be_jobs=("stream-llc",),
                pattern=alibaba_machine_load(machine_id),
                seed=90 + k,
            )
            for k, machine_id in enumerate(alibaba_machine_ids()[:2])
        ]
        config = FleetConfig(duration_s=30.0, workers=1, zone_size=2)
        first = FleetExperiment(specs, config).run()
        again = FleetExperiment(specs, config).run()
        assert first.digest == again.digest
        assert first.events_fired > 0


class TestReadMachineUsage:
    """External machine_usage trace files: tolerant parsing, stable digests."""

    @pytest.fixture(autouse=True)
    def isolate_trace_cache(self):
        from repro.loadgen.alibaba import clear_trace_cache

        clear_trace_cache()
        yield
        clear_trace_cache()

    def write(self, tmp_path, text, name="trace.csv"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_reads_bundled_sample_format(self):
        from repro.loadgen.alibaba import (
            DATA_FILE,
            alibaba_machine_ids,
            alibaba_machine_load,
            read_machine_usage,
        )

        trace = read_machine_usage(DATA_FILE)
        assert trace.machine_ids() == alibaba_machine_ids()
        assert trace.rows_skipped == 0
        for machine_id in trace.machine_ids():
            assert trace.load(machine_id).levels == pytest.approx(
                alibaba_machine_load(machine_id).levels
            )

    def test_headerless_v2018_rows_with_extra_columns(self, tmp_path):
        from repro.loadgen.alibaba import read_machine_usage

        path = self.write(
            tmp_path,
            "m_1,0,40,55,ignored\n"
            "m_1,300,60,57,ignored\n"
            "m_2,0,10,20\n",
        )
        trace = read_machine_usage(path)
        assert trace.machine_ids() == ("m_1", "m_2")
        assert trace.load("m_1").levels == pytest.approx([0.40, 0.60])
        assert trace.rows_read == 3 and trace.rows_skipped == 0

    def test_malformed_rows_skipped_and_counted(self, tmp_path):
        from repro.loadgen.alibaba import read_machine_usage

        path = self.write(
            tmp_path,
            "machine_id,timestamp_s,cpu_util_pct\n"   # header tolerated
            "m_1,0,40\n"
            "m_1,300,\n"          # blank utilisation (the archive does this)
            "m_1,600,not-a-number\n"
            ",900,50\n"           # empty machine id
            "m_1,-5,50\n"         # negative timestamp
            "m_1,900,140\n"       # utilisation out of range
            "short-row\n"
            "# a comment line\n"
            "m_1,900,80\n",
        )
        trace = read_machine_usage(path)
        assert trace.rows_skipped == 6
        assert trace.load("m_1").levels == pytest.approx([0.40, 0.40, 0.40, 0.80])

    def test_irregular_timestamps_bucketed_and_gaps_filled(self, tmp_path):
        from repro.loadgen.alibaba import read_machine_usage

        # Samples shifted to the machine's own first timestamp, bucketed
        # to the interval (bin mean), interior gaps forward-filled.
        path = self.write(
            tmp_path,
            "m_1,1000,20\n"
            "m_1,1140,40\n"       # same bin as 1000 (offset 140 < 150)
            "m_1,1310,60\n"       # bin 1
            "m_1,1900,80\n",      # bin 3; bin 2 is a gap
        )
        trace = read_machine_usage(path)
        assert trace.load("m_1").levels == pytest.approx(
            [0.30, 0.60, 0.60, 0.80]
        )

    def test_empty_or_fully_malformed_file_raises(self, tmp_path):
        from repro.loadgen.alibaba import read_machine_usage

        with pytest.raises(ConfigurationError, match="no valid"):
            read_machine_usage(self.write(tmp_path, ""))
        with pytest.raises(ConfigurationError, match="no valid"):
            read_machine_usage(self.write(tmp_path, "# only a comment\n"))
        with pytest.raises(ConfigurationError, match="no valid"):
            read_machine_usage(self.write(tmp_path, "bad\nrows\nonly\n"))

    def test_missing_file_and_bad_interval_raise(self, tmp_path):
        from repro.loadgen.alibaba import read_machine_usage

        with pytest.raises(ConfigurationError, match="cannot read"):
            read_machine_usage(tmp_path / "absent.csv")
        with pytest.raises(ConfigurationError, match="interval"):
            read_machine_usage(tmp_path / "absent.csv", interval_s=0.0)

    def test_unknown_machine_raises_with_catalog(self, tmp_path):
        from repro.loadgen.alibaba import read_machine_usage

        trace = read_machine_usage(self.write(tmp_path, "m_1,0,40\n"))
        with pytest.raises(ConfigurationError, match="m_404"):
            trace.load("m_404")

    def test_parse_cached_per_path(self, tmp_path):
        from repro.loadgen.alibaba import read_machine_usage

        path = self.write(tmp_path, "m_1,0,40\n")
        assert read_machine_usage(path) is read_machine_usage(path)
        # A different interval re-parses rather than serving stale bins.
        other = read_machine_usage(path, interval_s=60.0)
        assert other.interval_s == 60.0

    def test_seeded_fleet_digest_stable_over_trace(self, tmp_path):
        from repro.experiments.fleet import FleetConfig, alibaba_fleet
        from repro.loadgen.alibaba import DATA_FILE, clear_trace_cache

        config = FleetConfig(duration_s=30.0, workers=1, zone_size=2)
        first = alibaba_fleet(
            4, policy="heracles", duration_s=30.0, seed=9,
            config=config, load="alibaba", trace_path=str(DATA_FILE),
        ).run()
        clear_trace_cache()  # force a fresh parse of the same bytes
        again = alibaba_fleet(
            4, policy="heracles", duration_s=30.0, seed=9,
            config=config, load="alibaba", trace_path=str(DATA_FILE),
        ).run()
        assert first.digest == again.digest
        # The bundled sample via --trace equals the built-in loader path.
        builtin = alibaba_fleet(
            4, policy="heracles", duration_s=30.0, seed=9,
            config=config, load="alibaba",
        ).run()
        assert first.digest == builtin.digest

    def test_trace_path_requires_alibaba_load(self):
        from repro.experiments.fleet import alibaba_fleet

        with pytest.raises(ConfigurationError, match="alibaba"):
            alibaba_fleet(4, duration_s=30.0, load="diurnal",
                          trace_path="whatever.csv")
