"""Tests for the non-intrusive request tracer (§3.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.rng import RandomStreams
from repro.tracing.causality import CausalityMatcher
from repro.tracing.cpg import CLIENT_NODE, CausalPathGraph
from repro.tracing.emitter import (
    CLIENT_PROGRAM,
    EmitterConfig,
    ServpodEndpoint,
    TraceEmitter,
    default_endpoints,
)
from repro.tracing.events import ContextId, EventType, MessageId, SysEvent
from repro.tracing.jaeger import JaegerTracer
from repro.tracing.sojourn import SojournExtractor
from repro.errors import TracingError
from repro.workloads.service import Service

from conftest import make_tiny_service


@pytest.fixture
def traced(streams):
    """A small traced workload: records, endpoints, events (blocking)."""
    spec = make_tiny_service()
    svc = Service(spec, streams)
    records = svc.build_request_records(0.5, 120)
    endpoints = default_endpoints(spec.servpod_names)
    emitter = TraceEmitter(endpoints, EmitterConfig(noise_per_request=3, seed=1))
    events = emitter.emit(records)
    return spec, records, endpoints, events


class TestEvents:
    def test_data_events_need_message(self):
        ctx = ContextId("1.1.1.1", "p", 1, 1)
        with pytest.raises(ValueError):
            SysEvent(EventType.RECV, 0.0, ctx, None)

    def test_message_reversal(self):
        msg = MessageId("a", 1, "b", 2, 100)
        rev = msg.reversed()
        assert rev.sender_ip == "b" and rev.receiver_port == 1

    def test_flow_ignores_size(self):
        m1 = MessageId("a", 1, "b", 2, 100)
        m2 = MessageId("a", 1, "b", 2, 999)
        assert m1.flow == m2.flow


class TestEmitter:
    def test_event_structure(self, traced):
        spec, records, endpoints, events = traced
        # Per request on a 2-pod chain: 2 edges x 4 data events, plus noise
        # (3 noise events/request on average).
        data = [e for e in events if e.etype in (EventType.RECV, EventType.SEND)]
        assert len(data) >= len(records) * 8
        assert len(data) <= len(records) * 12

    def test_events_time_sorted(self, traced):
        _, _, _, events = traced
        times = [e.timestamp for e in events]
        assert times == sorted(times)

    def test_noise_present(self, traced):
        _, _, endpoints, events = traced
        known = {ep.program for ep in endpoints.values()} | {CLIENT_PROGRAM}
        assert any(e.context.program not in known for e in events)

    def test_accept_close_emitted_at_entry(self, traced):
        _, records, _, events = traced
        accepts = [e for e in events if e.etype == EventType.ACCEPT]
        closes = [e for e in events if e.etype == EventType.CLOSE]
        assert len(accepts) == len(records)
        assert len(closes) == len(records)

    def test_persistent_mode_reuses_ports(self):
        spec = make_tiny_service()
        svc = Service(spec, RandomStreams(1))
        records = svc.build_request_records(0.5, 20)
        endpoints = default_endpoints(spec.servpod_names)
        emitter = TraceEmitter(
            endpoints, EmitterConfig(persistent_connections=True, noise_per_request=0)
        )
        events = emitter.emit(records)
        request_sends = [
            e for e in events
            if e.etype == EventType.SEND and e.message.receiver_port >= 7000
        ]
        ports = {e.message.sender_port for e in request_sends}
        assert len(ports) == 1  # single pooled connection port

    def test_ephemeral_mode_unique_ports(self, traced):
        _, records, _, events = traced
        known_ips = {ep.host_ip for ep in default_endpoints(["front", "back"]).values()}
        request_sends = [
            e for e in events
            if e.etype == EventType.SEND and e.message is not None
            and e.message.receiver_ip in known_ips
            and 7000 <= e.message.receiver_port < 7100
            and e.message.sender_port >= 20000
        ]
        ports = [e.message.sender_port for e in request_sends]
        assert len(ports) == len(set(ports))

    def test_empty_endpoints_rejected(self):
        with pytest.raises(TracingError):
            TraceEmitter({})


class TestCausalityMatcher:
    def test_filter_drops_noise(self, traced):
        _, _, endpoints, events = traced
        matcher = CausalityMatcher(endpoints)
        clean = matcher.filter(events)
        known_programs = {ep.program for ep in endpoints.values()} | {CLIENT_PROGRAM}
        assert all(e.context.program in known_programs for e in clean)

    def test_intra_segments_pair_up(self, traced):
        _, records, endpoints, events = traced
        matcher = CausalityMatcher(endpoints)
        segments = matcher.intra_segments(matcher.filter(events))
        # front pod: 2 local segments/request; back pod: 1.
        assert len(segments) == 3 * len(records)
        assert all(seg.span_ms >= 0 for seg in segments)

    def test_inter_pairs_match_send_to_recv(self, traced):
        _, _, endpoints, events = traced
        matcher = CausalityMatcher(endpoints)
        pairs = matcher.inter_pairs(matcher.filter(events))
        assert all(p.recv.timestamp >= p.send.timestamp for p in pairs)
        assert all(p.send.message.flow == p.recv.message.flow for p in pairs)

    def test_client_latencies_match_records(self, traced):
        _, records, endpoints, events = traced
        matcher = CausalityMatcher(endpoints)
        latencies = sorted(matcher.client_latencies(matcher.filter(events)))
        truth = sorted(r.e2e_ms for r in records)
        # Client-side latency adds one wire hop in each direction.
        assert np.allclose(latencies, np.asarray(truth) + 0.04, atol=1e-9)

    def test_entry_recv_count(self, traced):
        _, records, endpoints, events = traced
        matcher = CausalityMatcher(endpoints)
        counts = matcher.entry_recv_count(matcher.filter(events))
        assert counts == {"front": len(records), "back": len(records)}


class TestSojournExtraction:
    def test_per_request_exact(self, traced):
        _, records, endpoints, events = traced
        extractor = SojournExtractor(CausalityMatcher(endpoints))
        per_request = extractor.per_request(events)
        truth = {}
        for r in records:
            for pod, s in r.sojourn_by_servpod().items():
                truth.setdefault(pod, []).append(s)
        for pod in truth:
            got = np.asarray(sorted(per_request[pod]))
            want = np.asarray(sorted(truth[pod]))
            # Leaf pods are exact; middle pods absorb the tiny hop time.
            assert np.allclose(got, want, atol=0.1)

    def test_mean_invariance_under_nonblocking_persistent(self):
        """The paper's Figure-5 argument: scrambled pairings preserve means."""
        spec = make_tiny_service()
        svc = Service(spec, RandomStreams(9))
        records = svc.build_request_records(0.5, 150)
        endpoints = default_endpoints(spec.servpod_names)
        truth = {}
        for r in records:
            for pod, s in r.sojourn_by_servpod().items():
                truth.setdefault(pod, []).append(s)
        emitter = TraceEmitter(
            endpoints,
            EmitterConfig(blocking=False, persistent_connections=True,
                          noise_per_request=2, seed=3),
        )
        events = emitter.emit(records)
        stats = SojournExtractor(CausalityMatcher(endpoints)).mean_only(events)
        for pod, stat in stats.items():
            assert stat.mean_ms == pytest.approx(np.mean(truth[pod]), rel=0.05)
            assert stat.std_ms == 0.0  # individual spans untrusted

    def test_stats_include_cov(self, traced):
        _, _, endpoints, events = traced
        stats = SojournExtractor(CausalityMatcher(endpoints)).stats(events)
        for stat in stats.values():
            assert stat.cov > 0

    def test_empty_trace_raises(self, traced):
        _, _, endpoints, _ = traced
        extractor = SojournExtractor(CausalityMatcher(endpoints))
        with pytest.raises(TracingError):
            extractor.per_request([])


class TestCpg:
    def test_chain_topology_recovered(self, traced):
        """Figure 4: the aggregate CPG mirrors the service call structure."""
        _, _, endpoints, events = traced
        cpg = CausalPathGraph(CausalityMatcher(endpoints))
        graph = cpg.aggregate_graph(events)
        assert set(graph.nodes) == {CLIENT_NODE, "front", "back"}
        assert graph.has_edge(CLIENT_NODE, "front")
        assert graph.has_edge("front", "back")
        assert not graph.has_edge(CLIENT_NODE, "back")

    def test_per_request_paths(self, traced):
        _, records, endpoints, events = traced
        cpg = CausalPathGraph(CausalityMatcher(endpoints))
        paths = cpg.reconstruct_requests(events)
        assert len(paths) == len(records)
        for path in paths:
            assert sorted(path.servpods()) == ["back", "front"]
            assert path.e2e_ms > 0


class TestJaeger:
    def test_records_per_request_spans(self, streams):
        spec = make_tiny_service()
        svc = Service(spec, streams)
        records = svc.build_request_records(0.5, 50)
        tracer = JaegerTracer()
        assert tracer.record(records) == 50
        per_request = tracer.per_request()
        assert len(per_request["front"]) == 50
        stats = tracer.stats()
        assert stats["back"].mean_ms > 0

    def test_empty_tracer_raises(self):
        with pytest.raises(TracingError):
            JaegerTracer().per_request()

    def test_reset(self, streams):
        spec = make_tiny_service()
        svc = Service(spec, streams)
        tracer = JaegerTracer()
        tracer.record(svc.build_request_records(0.5, 5))
        tracer.reset()
        with pytest.raises(TracingError):
            tracer.per_request()
