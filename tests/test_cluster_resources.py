"""Tests for resource vectors, cpusets, LLC partitioning, DVFS and NIC."""

from __future__ import annotations

import pytest

from repro.cluster.cache import LastLevelCache
from repro.cluster.cgroups import CpuSet
from repro.cluster.dvfs import DvfsGovernor, PowerModel
from repro.cluster.network import Nic
from repro.cluster.resources import ResourceVector
from repro.errors import AllocationError, ConfigurationError, ReleaseError


class TestResourceVector:
    def test_zero(self):
        assert ResourceVector.zero().is_zero()

    def test_rejects_negative(self):
        with pytest.raises(AllocationError):
            ResourceVector(cores=-1.0)

    def test_add(self):
        v = ResourceVector(cores=2, llc_mb=4) + ResourceVector(cores=1, membw_gbps=3)
        assert v.cores == 3 and v.llc_mb == 4 and v.membw_gbps == 3

    def test_sub_underflow_raises(self):
        with pytest.raises(AllocationError):
            ResourceVector(cores=1) - ResourceVector(cores=2)

    def test_scaled(self):
        v = ResourceVector(cores=4, memory_gb=8).scaled(0.5)
        assert v.cores == 2 and v.memory_gb == 4

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(AllocationError):
            ResourceVector(cores=1).scaled(-1)

    def test_fits_within(self):
        small = ResourceVector(cores=2, llc_mb=5)
        big = ResourceVector(cores=4, llc_mb=10, membw_gbps=1)
        assert small.fits_within(big)
        assert not big.fits_within(small)

    def test_fractions_of(self):
        usage = ResourceVector(cores=10, membw_gbps=40)
        cap = ResourceVector(cores=40, membw_gbps=80)
        fractions = usage.fractions_of(cap)
        assert fractions["cores"] == pytest.approx(0.25)
        assert fractions["membw_gbps"] == pytest.approx(0.5)
        assert fractions["netbw_gbps"] == 0.0  # zero capacity -> 0 usage


class TestCpuSet:
    def test_allocate_and_release(self):
        cpus = CpuSet(8)
        granted = cpus.allocate("lc", 4)
        assert len(granted) == 4
        assert cpus.free_cores == 4
        cpus.release("lc", 2)
        assert cpus.count("lc") == 2
        assert cpus.free_cores == 6

    def test_deterministic_lowest_first(self):
        cpus = CpuSet(8)
        assert cpus.allocate("a", 2) == frozenset({0, 1})
        assert cpus.allocate("b", 2) == frozenset({2, 3})

    def test_exhaustion_raises(self):
        cpus = CpuSet(4)
        cpus.allocate("a", 3)
        with pytest.raises(AllocationError):
            cpus.allocate("b", 2)

    def test_over_release_raises(self):
        cpus = CpuSet(4)
        cpus.allocate("a", 2)
        with pytest.raises(ReleaseError):
            cpus.release("a", 3)

    def test_release_all(self):
        cpus = CpuSet(4)
        cpus.allocate("a", 3)
        assert cpus.release_all("a") == 3
        assert cpus.free_cores == 4
        assert "a" not in cpus.owners()

    def test_disjoint_ownership(self):
        cpus = CpuSet(8)
        a = cpus.allocate("a", 3)
        b = cpus.allocate("b", 3)
        assert not (a & b)

    def test_zero_core_machine_rejected(self):
        with pytest.raises(AllocationError):
            CpuSet(0)


class TestLastLevelCache:
    def test_defaults_match_paper_hardware(self):
        llc = LastLevelCache()
        assert llc.size_mb == 20.0
        assert llc.n_ways == 20
        assert llc.mb_per_way == 1.0

    def test_step_is_ten_percent(self):
        assert LastLevelCache().step_ways() == 2  # 10% of 20 ways

    def test_allocate_release_cycle(self):
        llc = LastLevelCache()
        llc.allocate("lc", 10)
        llc.allocate("be", 4)
        assert llc.free_ways == 6
        assert llc.fraction_of("be") == pytest.approx(0.2)
        llc.release("be", 2)
        assert llc.ways_of("be") == 2
        assert llc.release_all("be") == 2

    def test_exhaustion_raises(self):
        llc = LastLevelCache()
        llc.allocate("lc", 18)
        with pytest.raises(AllocationError):
            llc.allocate("be", 3)

    def test_over_release_raises(self):
        llc = LastLevelCache()
        llc.allocate("x", 2)
        with pytest.raises(ReleaseError):
            llc.release("x", 3)

    def test_mb_of(self):
        llc = LastLevelCache(size_mb=40, n_ways=20)
        llc.allocate("lc", 5)
        assert llc.mb_of("lc") == pytest.approx(10.0)


class TestDvfs:
    def test_domains_start_at_max(self):
        gov = DvfsGovernor()
        assert gov.frequency("be") == 2000
        assert gov.ratio("be") == 1.0

    def test_step_down_100mhz(self):
        gov = DvfsGovernor()
        assert gov.step_down("be") == 1900
        assert gov.step_down("be") == 1800

    def test_clamped_at_min(self):
        gov = DvfsGovernor(min_mhz=1800, max_mhz=2000)
        gov.step_down("be")
        gov.step_down("be")
        assert gov.step_down("be") == 1800

    def test_step_up_clamped_at_max(self):
        gov = DvfsGovernor()
        gov.step_down("be")
        assert gov.step_up("be") == 2000
        assert gov.step_up("be") == 2000

    def test_reset(self):
        gov = DvfsGovernor()
        gov.step_down("be")
        gov.reset("be")
        assert gov.frequency("be") == 2000

    def test_set_frequency_validates_range(self):
        gov = DvfsGovernor()
        with pytest.raises(ConfigurationError):
            gov.set_frequency("be", 900)

    def test_step_must_divide_range(self):
        with pytest.raises(ConfigurationError):
            DvfsGovernor(min_mhz=1200, max_mhz=2000, step_mhz=300)


class TestPowerModel:
    def test_idle_power(self):
        model = PowerModel()
        assert model.power(0, 1.0, 0, 1.0) == pytest.approx(model.idle_watts)

    def test_power_grows_with_busy_cores(self):
        model = PowerModel()
        low = model.power(10, 1.0, 0, 1.0)
        high = model.power(30, 1.0, 0, 1.0)
        assert high > low

    def test_cubic_frequency_scaling(self):
        model = PowerModel(idle_watts=0.0, active_watts_per_core=1.0)
        full = model.power(10, 1.0, 0, 1.0)
        half = model.power(10, 0.5, 0, 1.0)
        assert half == pytest.approx(full * 0.125)

    def test_headroom_sign(self):
        model = PowerModel(tdp_watts=100.0)
        assert model.headroom(70.0) > 0
        assert model.headroom(90.0) < 0


class TestNic:
    def test_be_cap_formula(self):
        nic = Nic(link_gbps=10.0)
        cap = nic.observe_lc_traffic(5.0)
        assert cap == pytest.approx(10.0 - 1.2 * 5.0)

    def test_cap_floors_at_zero(self):
        nic = Nic(link_gbps=10.0)
        assert nic.observe_lc_traffic(9.5) == 0.0

    def test_be_share_respects_cap(self):
        nic = Nic(link_gbps=10.0)
        nic.observe_lc_traffic(5.0)
        assert nic.be_share(100.0) == pytest.approx(4.0)
        assert nic.be_share(1.0) == pytest.approx(1.0)

    def test_lc_pressure(self):
        nic = Nic(link_gbps=10.0)
        nic.observe_lc_traffic(0.0)
        assert nic.lc_pressure(5.0) == pytest.approx(0.5)

    def test_guard_factor_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            Nic(lc_guard_factor=0.9)

    def test_negative_traffic_rejected(self):
        with pytest.raises(ConfigurationError):
            Nic().observe_lc_traffic(-1.0)
