"""Integration tests: the full Rhythm pipeline end-to-end.

These use the real catalogued services (calibrated) but short runs, and
assert the paper's *qualitative* claims rather than absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.bejobs.catalog import STREAM_DRAM, WORDCOUNT
from repro.experiments.colocation import ColocationConfig
from repro.experiments.runner import (
    build_rhythm_controllers,
    clear_rhythm_cache,
    compare_systems,
    get_rhythm,
)
from repro.loadgen.clarknet import clarknet_production_load
from repro.workloads.catalog import ecommerce_service, redis_service
from repro.workloads.microservices import snms_service

FAST = ColocationConfig(duration_s=60.0, sample_cap=300, min_samples=60)


@pytest.fixture(scope="module")
def ecom():
    return ecommerce_service()


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_rhythm_cache()
    yield
    clear_rhythm_cache()


class TestDerivedThresholds:
    def test_loadlimits_match_paper_targets(self, ecom):
        """Figure 8: MySQL ~0.76, Tomcat ~0.87."""
        rhythm = get_rhythm(ecom, probe_slacklimits=False)
        limits = rhythm.loadlimits()
        assert limits["mysql"] == pytest.approx(0.76, abs=0.05)
        assert limits["tomcat"] == pytest.approx(0.87, abs=0.05)
        assert limits["mysql"] < limits["tomcat"]

    def test_redis_slave_loadlimit(self):
        """Paper §5.2.1: Slave loadlimit ~0.91."""
        rhythm = get_rhythm(redis_service(), probe_slacklimits=False)
        assert rhythm.loadlimits()["slave"] == pytest.approx(0.91, abs=0.05)

    def test_mysql_contributes_most(self, ecom):
        rhythm = get_rhythm(ecom, probe_slacklimits=False)
        normalized = rhythm.contributions().normalized()
        assert normalized["mysql"] == max(normalized.values())
        assert normalized["mysql"] > normalized["tomcat"] > normalized["haproxy"]

    def test_slacklimit_ordering(self, ecom):
        """MySQL (highest contribution) gets the most conservative gate."""
        rhythm = get_rhythm(ecom)
        limits = rhythm.slacklimits()
        assert limits["mysql"] > limits["tomcat"]
        assert limits["tomcat"] > limits["haproxy"]

    def test_snms_contribution_ordering(self):
        """Paper §5.3.2: userservice > mediaservice > frontend."""
        rhythm = get_rhythm(snms_service(), profiling_mode="jaeger",
                            probe_slacklimits=False)
        normalized = rhythm.contributions().normalized()
        assert (
            normalized["userservice"]
            > normalized["mediaservice"]
            > normalized["frontend"]
        )


class TestSystemComparison:
    def test_heracles_zero_at_85_rhythm_not(self, ecom):
        """Figures 9-11's 85% column."""
        cmp = compare_systems(ecom, STREAM_DRAM, 0.85, config=FAST)
        assert cmp.heracles.be_throughput == 0.0
        assert cmp.rhythm.be_throughput > 0.05

    def test_rhythm_at_least_matches_heracles_mid_load(self, ecom):
        cmp = compare_systems(ecom, STREAM_DRAM, 0.45, config=FAST)
        assert cmp.rhythm.be_throughput >= cmp.heracles.be_throughput - 0.02

    def test_no_rhythm_violations_constant_load(self, ecom):
        for load in (0.25, 0.65, 0.85):
            cmp = compare_systems(ecom, STREAM_DRAM, load, config=FAST)
            assert cmp.rhythm.sla_violations == 0

    def test_emu_exceeds_lc_alone(self, ecom):
        cmp = compare_systems(ecom, WORDCOUNT, 0.45, config=FAST)
        assert cmp.rhythm.emu > 0.45


class TestProductionSafety:
    def test_rhythm_guards_sla_under_production_load(self, ecom):
        """Figure 15d: no violations, worst tail below the SLA."""
        pattern = clarknet_production_load(duration_s=300.0, days=1)
        controllers = build_rhythm_controllers(ecom)
        from repro.experiments.runner import run_cell

        result = run_cell(
            ecom, controllers, STREAM_DRAM, pattern,
            config=ColocationConfig(duration_s=300.0),
        )
        assert result.sla_violations == 0
        assert result.worst_tail_ms <= ecom.sla_ms
        assert result.be_kills == 0
        assert result.be_throughput > 0.1  # and it actually co-located


class TestTracerProfilingAgreement:
    def test_tracer_and_direct_profiling_agree(self, ecom):
        """The non-intrusive tracer reproduces the generative truth."""
        from repro.core.profiler import ServiceProfiler
        from repro.sim.rng import RandomStreams

        loads = (0.2, 0.5, 0.8)
        direct = ServiceProfiler(
            ecom, RandomStreams(3), loads=loads, requests_per_load=250,
            tail_samples=500, mode="direct",
        ).profile()
        traced = ServiceProfiler(
            ecom, RandomStreams(3), loads=loads, requests_per_load=250,
            tail_samples=500, mode="tracer",
        ).profile()
        for pod in ecom.servpod_names:
            for j in range(len(loads)):
                assert traced.mean_sojourns[pod][j] == pytest.approx(
                    direct.mean_sojourns[pod][j], rel=0.25
                )
