"""The parallel profiling pipeline's acceptance gates.

Covers the issue's criteria for the profiling fan-out:

- parallel profiling (inline, fork pool, and spawn pool) is bit-identical
  to the serial ``Rhythm`` pipeline: same loadlimits, same slacklimits,
  same artifact hash;
- a warm cache re-run executes **zero** sweep or slacklimit simulations,
  at both artifact and sub-profile granularity;
- a cold grid run — profiling plus execution — constructs exactly one
  process pool;
- worker-count resolution: ``RHYTHM_PROFILE_WORKERS`` wins over
  ``RHYTHM_WORKERS``, sub-1 values clamp to a safe inline run, garbage
  raises up front.
"""

from __future__ import annotations

import pytest

from repro.bejobs.catalog import evaluation_be_jobs
from repro.cache.keys import stable_hash
from repro.cache.store import CacheStore
from repro.errors import ExperimentError, ProfilingError
from repro.experiments.colocation import ColocationConfig
from repro.experiments.runner import clear_rhythm_cache
from repro.core.rhythm import RhythmConfig
from repro.parallel import (
    GridCell,
    artifact_for,
    comparison_fingerprint,
    run_comparison_grid,
)
from repro.parallel.pool import (
    pool_constructions,
    reset_pool_state_for_tests,
    resolve_profile_workers,
)
from repro.parallel.profile import (
    ProfileStats,
    artifact_cache_key,
    clear_profile_memo,
    profile_service_parallel,
)
from conftest import make_tiny_service

FAST = ColocationConfig(duration_s=20.0, sample_cap=150, min_samples=50)


@pytest.fixture(autouse=True)
def _fresh_profiling_state():
    clear_rhythm_cache()
    clear_profile_memo()
    yield
    clear_rhythm_cache()
    clear_profile_memo()


@pytest.fixture(scope="module")
def service():
    return make_tiny_service("profile-par-svc")


@pytest.fixture
def store(tmp_path):
    return CacheStore(tmp_path / "cache")


class TestProfilingIdentity:
    """The acceptance gate: fanned-out profiling == serial pipeline."""

    def test_inline_matches_serial_pipeline(self, service):
        serial = artifact_for(service, seed=0, probe_slacklimits=True)
        clear_profile_memo()
        parallel = profile_service_parallel(
            service, seed=0, probe_slacklimits=True, workers=1
        )
        assert parallel.loadlimit_map() == serial.loadlimit_map()
        assert parallel.slacklimit_map() == serial.slacklimit_map()
        assert parallel.contribution_map() == serial.contribution_map()
        assert parallel == serial
        assert stable_hash(parallel) == stable_hash(serial)

    def test_pooled_matches_serial_pipeline(self, service):
        serial = artifact_for(service, seed=0, probe_slacklimits=True)
        clear_profile_memo()
        pooled = profile_service_parallel(
            service, seed=0, probe_slacklimits=True, workers=2
        )
        assert pooled == serial
        assert stable_hash(pooled) == stable_hash(serial)

    def test_analytic_slacklimits_match_too(self, service):
        serial = artifact_for(service, seed=0, probe_slacklimits=False)
        clear_profile_memo()
        parallel = profile_service_parallel(
            service, seed=0, probe_slacklimits=False, workers=2
        )
        assert parallel == serial

    def test_validation_mirrors_serial_profiler(self, service):
        with pytest.raises(ProfilingError):
            profile_service_parallel(
                service, config=RhythmConfig(loads=(0.2, 0.8))
            )
        with pytest.raises(ProfilingError):
            profile_service_parallel(
                service, config=RhythmConfig(requests_per_load=5)
            )


class TestWarmProfileCache:
    """A warm cache re-run must execute zero simulations."""

    def test_artifact_level_hit(self, service, store):
        cold = ProfileStats()
        first = profile_service_parallel(
            service, seed=0, workers=1, cache=store, stats=cold
        )
        assert cold.sweep_executed == cold.sweep_points > 0
        assert cold.slack_executed == cold.slack_walks == len(
            service.servpod_names
        )
        clear_profile_memo()
        warm = ProfileStats()
        second = profile_service_parallel(
            service, seed=0, workers=1, cache=store, stats=warm
        )
        assert second == first
        assert warm.artifact_cache_hits == 1
        assert warm.sweep_executed == 0 and warm.slack_executed == 0
        assert warm.sweep_points == 0 and warm.slack_walks == 0

    def test_sub_profile_hits_after_artifact_eviction(self, service, store):
        cold = ProfileStats()
        first = profile_service_parallel(
            service, seed=0, workers=1, cache=store, stats=cold
        )
        # Evict only the artifact entry: the load points and slacklimit
        # walks must then be reassembled entirely from the store.
        store._path(
            artifact_cache_key(service, 0, "direct", True)
        ).unlink()
        clear_profile_memo()
        warm = ProfileStats()
        second = profile_service_parallel(
            service, seed=0, workers=1, cache=store, stats=warm
        )
        assert second == first
        assert warm.sweep_executed == 0 and warm.slack_executed == 0
        assert warm.sweep_cache_hits == cold.sweep_points
        assert warm.slack_cache_hits == cold.slack_walks

    def test_stats_merge_accumulates(self):
        a = ProfileStats(sweep_points=3, sweep_executed=2, sweep_cache_hits=1)
        b = ProfileStats(
            sweep_points=5, slack_walks=2, slack_executed=1,
            slack_cache_hits=1, artifact_cache_hits=4,
        )
        a.merge(b)
        assert a == ProfileStats(
            sweep_points=8, sweep_executed=2, sweep_cache_hits=1,
            slack_walks=2, slack_executed=1, slack_cache_hits=1,
            artifact_cache_hits=4,
        )


class TestSinglePoolPerColdRun:
    def test_cold_grid_run_constructs_one_pool(self, service):
        # Profiling fans out first, then grid execution: both must share
        # one ProcessPoolExecutor.
        cells = [
            GridCell(service, be, load, seed=0)
            for be in evaluation_be_jobs()[:2]
            for load in (0.25, 0.65)
        ]
        reset_pool_state_for_tests()
        run_comparison_grid(
            cells, config=FAST, workers=2, profile_workers=2
        )
        assert pool_constructions() == 1


class TestSpawnContextFallback:
    def test_spawn_profiling_and_grid_bit_identical(self, service, monkeypatch):
        serial_artifact = artifact_for(service, seed=0, probe_slacklimits=True)
        cells = [
            GridCell(service, evaluation_be_jobs()[0], load, seed=0)
            for load in (0.25, 0.65)
        ]
        artifacts = {service.name: serial_artifact}
        serial_grid = run_comparison_grid(
            cells, config=FAST, workers=1, artifacts=artifacts
        )
        monkeypatch.setenv("RHYTHM_MP_CONTEXT", "spawn")
        reset_pool_state_for_tests()
        try:
            clear_profile_memo()
            spawned_artifact = profile_service_parallel(
                service, seed=0, probe_slacklimits=True, workers=2
            )
            spawned_grid = run_comparison_grid(
                cells, config=FAST, workers=2, artifacts=artifacts
            )
            assert spawned_artifact == serial_artifact
            assert [comparison_fingerprint(r) for r in spawned_grid] == [
                comparison_fingerprint(r) for r in serial_grid
            ]
            assert pool_constructions() == 1
        finally:
            # Later tests must rebuild under the default (fork) context.
            reset_pool_state_for_tests()


class TestResolveProfileWorkers:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("RHYTHM_PROFILE_WORKERS", "7")
        assert resolve_profile_workers(3) == 3

    def test_profile_env_wins_over_workers_env(self, monkeypatch):
        monkeypatch.setenv("RHYTHM_WORKERS", "2")
        monkeypatch.setenv("RHYTHM_PROFILE_WORKERS", "6")
        assert resolve_profile_workers() == 6

    def test_falls_back_to_workers_env(self, monkeypatch):
        monkeypatch.delenv("RHYTHM_PROFILE_WORKERS", raising=False)
        monkeypatch.setenv("RHYTHM_WORKERS", "4")
        assert resolve_profile_workers() == 4

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_sub_one_env_clamps_to_inline(self, monkeypatch, value):
        monkeypatch.setenv("RHYTHM_PROFILE_WORKERS", value)
        assert resolve_profile_workers() == 1

    def test_explicit_sub_one_clamps(self):
        assert resolve_profile_workers(0) == 1
        assert resolve_profile_workers(-2) == 1

    @pytest.mark.parametrize("value", ["many", "2.5", ""])
    def test_garbage_env_rejected(self, monkeypatch, value):
        monkeypatch.setenv("RHYTHM_PROFILE_WORKERS", value)
        monkeypatch.setenv("RHYTHM_WORKERS", "nope")
        with pytest.raises(ExperimentError):
            resolve_profile_workers()

    def test_non_integer_explicit_rejected(self):
        with pytest.raises(ExperimentError):
            resolve_profile_workers(2.5)
        with pytest.raises(ExperimentError):
            resolve_profile_workers(True)
