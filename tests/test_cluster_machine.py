"""Tests for the machine model and cluster."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.machine import BE_DOMAIN, Machine, MachineSpec
from repro.errors import AllocationError, ConfigurationError


@pytest.fixture
def machine() -> Machine:
    m = Machine(MachineSpec(name="m0"))
    m.reserve_lc(cores=12, llc_ways=10, memory_gb=64.0)
    return m


class TestLcReservation:
    def test_reservation_recorded(self, machine):
        assert machine.lc_cores == 12
        assert machine.lc_llc_ways == 10
        assert machine.lc_memory_gb == 64.0

    def test_double_reservation_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            machine.reserve_lc(cores=1, llc_ways=1, memory_gb=1.0)

    def test_oversized_memory_rejected(self):
        m = Machine()
        with pytest.raises(AllocationError):
            m.reserve_lc(cores=1, llc_ways=1, memory_gb=10_000.0)


class TestBeLifecycle:
    def test_launch_gets_paper_initial_allocation(self, machine):
        alloc = machine.launch_be("j1")
        assert alloc.cores == 1
        assert alloc.llc_ways == 2  # 10% of a 20-way cache
        assert alloc.memory_gb == 2.0

    def test_llc_is_best_effort_after_exhaustion(self, machine):
        # LC holds 10 ways; 5 launches consume the remaining 10.
        for i in range(5):
            machine.launch_be(f"j{i}")
        alloc = machine.launch_be("j5")  # no ways left, still launches
        assert alloc.cores == 1
        assert alloc.llc_ways == 0

    def test_duplicate_launch_rejected(self, machine):
        machine.launch_be("j1")
        with pytest.raises(ConfigurationError):
            machine.launch_be("j1")

    def test_grow_and_shrink_symmetry(self, machine):
        machine.launch_be("j1")
        assert machine.grow_be("j1")
        alloc = machine.be_allocation("j1")
        assert alloc.cores == 2
        assert machine.shrink_be("j1")
        assert alloc.cores == 1

    def test_shrink_stops_at_initial_footprint(self, machine):
        machine.launch_be("j1")
        assert not machine.shrink_be("j1")

    def test_grow_fails_when_cores_exhausted(self, machine):
        machine.launch_be("j1")
        # 40 - 12 LC - 1 initial = 27 cores available for growth
        for _ in range(27):
            assert machine.grow_be("j1")
        assert not machine.grow_be("j1")

    def test_kill_releases_everything(self, machine):
        machine.launch_be("j1")
        machine.grow_be("j1")
        free_before_kill = machine.cpuset.free_cores
        machine.kill_be("j1")
        assert machine.be_allocation("j1") is None
        assert machine.cpuset.free_cores == free_before_kill + 2
        assert machine.counters.be_kills == 1

    def test_suspend_keeps_memory(self, machine):
        machine.launch_be("j1")
        machine.suspend_be("j1")
        alloc = machine.be_allocation("j1")
        assert alloc.suspended
        assert alloc.memory_gb == 2.0
        machine.resume_be("j1")
        assert not alloc.suspended

    def test_suspend_all_and_resume_all(self, machine):
        for i in range(3):
            machine.launch_be(f"j{i}")
        assert machine.suspend_all_be() == 3
        assert machine.be_running_count == 0
        assert machine.resume_all_be() == 3
        assert machine.be_running_count == 3

    def test_kill_all(self, machine):
        for i in range(3):
            machine.launch_be(f"j{i}")
        assert machine.kill_all_be() == 3
        assert machine.be_instance_count == 0

    def test_memory_steps(self, machine):
        machine.launch_be("j1")
        assert machine.grow_be_memory("j1")
        assert machine.be_allocation("j1").memory_gb == pytest.approx(2.1)
        assert machine.shrink_be_memory("j1")
        assert machine.be_allocation("j1").memory_gb == pytest.approx(2.0)
        assert not machine.shrink_be_memory("j1")  # never below initial

    def test_unknown_job_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            machine.grow_be("ghost")

    def test_aggregate_accounting(self, machine):
        machine.launch_be("j1")
        machine.launch_be("j2")
        machine.grow_be("j1")
        assert machine.be_total_cores == 3
        assert machine.be_instance_count == 2
        assert machine.be_total_memory_gb == pytest.approx(4.0)

    def test_power_uses_be_domain_frequency(self, machine):
        machine.launch_be("j1")
        full = machine.power_watts(lc_busy_cores=10, be_busy_cores=10)
        machine.dvfs.set_frequency(BE_DOMAIN, 1200)
        throttled = machine.power_watts(lc_busy_cores=10, be_busy_cores=10)
        assert throttled < full


class TestCluster:
    def test_homogeneous_naming(self):
        cluster = Cluster.homogeneous(3)
        assert cluster.names() == ["node0", "node1", "node2"]
        assert len(cluster) == 3

    def test_lookup(self):
        cluster = Cluster.homogeneous(2)
        assert cluster["node1"].spec.name == "node1"
        with pytest.raises(ConfigurationError):
            cluster["nope"]

    def test_duplicate_name_rejected(self):
        cluster = Cluster.homogeneous(1)
        with pytest.raises(ConfigurationError):
            cluster.add(Machine(MachineSpec(name="node0")))

    def test_aggregates(self):
        cluster = Cluster.homogeneous(2)
        cluster["node0"].launch_be("a")
        cluster["node1"].launch_be("b")
        assert cluster.total_be_instances == 2
        cluster["node0"].kill_be("a")
        assert cluster.total_be_kills == 1

    def test_zero_machines_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster.homogeneous(0)
