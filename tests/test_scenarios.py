"""Tests for the production-ops scenario pack.

Covers the three drivers built on correlated storms and the fleet /
profile caches:

- ``storm_fleet`` / ``run_fleet_storm``: topology-fleet alignment is
  validated, untouched instances keep their spec *object* (and hence
  cache key), and the stormed fleet is bit-identical to the scalar
  reference across shard counts and process start methods;
- ``run_canary``: one seeded canary per zone, a whole-run latency
  shift, detection by canary-vs-controls tail ratio;
- ``run_drift``: each epoch's sweep grid slides right and only the
  newly-entered load points simulate when cached;
- ``run_capacity``: the machines-vs-demand curve is non-decreasing by
  construction and every accepted row meets the SLA target.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.cache import CacheStore
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.fleet import FleetConfig, alibaba_fleet
from repro.experiments.scenarios import (
    CanaryReport,
    canary_indices,
    constant_fleet,
    drift_grid,
    run_canary,
    run_capacity,
    run_drift,
    run_fleet_storm,
    storm_fleet,
    storm_identity_probe,
)
from repro.faults.topology import CorrelatedFaultSchedule, FleetTopology


@pytest.fixture
def store(tmp_path):
    return CacheStore(directory=str(tmp_path / "scenario-cache"))


def small_fleet(n_instances: int = 4, duration_s: float = 40.0, seed: int = 3):
    config = FleetConfig(duration_s=duration_s, workers=1, zone_size=2)
    return alibaba_fleet(
        2 * n_instances,
        policy="heracles",
        duration_s=duration_s,
        seed=seed,
        config=config,
    )


def small_storm(fleet, storm_seed: int = 7, events_per_minute: float = 2.0):
    topology = FleetTopology.generate(
        storm_seed,
        n_instances=len(fleet.instances),
        zone_size=fleet.config.zone_size,
    )
    return CorrelatedFaultSchedule.generate(
        storm_seed,
        topology,
        fleet.config.duration_s,
        events_per_minute=events_per_minute,
    )


class TestStormFleet:
    def test_rejects_mismatched_instance_count(self):
        fleet = small_fleet(4)
        topo = FleetTopology.generate(0, n_instances=99, zone_size=2)
        storm = CorrelatedFaultSchedule(topology=topo)
        with pytest.raises(ExperimentError, match="99 instances"):
            storm_fleet(fleet, storm)

    def test_rejects_mismatched_zone_size(self):
        fleet = small_fleet(4)
        topo = FleetTopology.generate(
            0, n_instances=len(fleet.instances), zone_size=4
        )
        storm = CorrelatedFaultSchedule(topology=topo)
        with pytest.raises(ExperimentError, match="zone_size"):
            storm_fleet(fleet, storm)

    def test_untouched_instances_keep_spec_identity(self):
        fleet = small_fleet(4)
        storm = small_storm(fleet)
        touched = set(storm.affected_instances())
        assert touched, "storm must touch something for this test to bite"
        stormed = storm_fleet(fleet, storm)
        for k, (before, after) in enumerate(
            zip(fleet.instances, stormed.instances)
        ):
            if k in touched:
                assert after is not before
                assert after.faults is not None and after.faults.faults
            else:
                assert after is before

    def test_expansion_rides_in_instance_faults(self):
        fleet = small_fleet(4)
        storm = small_storm(fleet)
        stormed = storm_fleet(fleet, storm)
        expanded = storm.per_instance_schedules()
        for index, schedule in expanded.items():
            spec = stormed.instances[index]
            for fault in schedule.faults:
                assert fault in spec.faults.faults

    def test_run_fleet_storm_shares_one_storm(self, store):
        # events_per_minute 6 -> 4 events, enough for the mix to include
        # faults that bind (a lone light NIC degrade can be invisible).
        report = run_fleet_storm(
            n_machines=8,
            policies=("heracles",),
            duration_s=40.0,
            seed=3,
            storm_seed=7,
            events_per_minute=6.0,
            config=FleetConfig(duration_s=40.0, workers=1, zone_size=2),
            cache=store,
            with_baseline=True,
        )
        assert len(report.storm) == 4
        assert report.topology.n_instances == 4
        stormed = report.result("heracles")
        baseline = report.baseline("heracles")
        assert stormed.n_instances == baseline.n_instances
        assert stormed.digest != baseline.digest
        with pytest.raises(ExperimentError, match="rhythm"):
            report.result("rhythm")
        with pytest.raises(ExperimentError, match="rhythm"):
            report.baseline("rhythm")

    def test_run_fleet_storm_needs_a_policy(self):
        with pytest.raises(ConfigurationError, match="policy"):
            run_fleet_storm(n_machines=8, policies=(), duration_s=40.0)


class TestStormIdentity:
    def test_fleet_matches_scalar_reference(self):
        case = {"n_instances": 4, "duration_s": 40.0, "seed": 5,
                "storm_seed": 7}
        assert storm_identity_probe("fleet", **case) == storm_identity_probe(
            "reference", **case
        )

    @pytest.mark.parametrize("shards", [2, 3])
    def test_shard_count_invariance(self, shards):
        case = {"n_instances": 4, "duration_s": 40.0, "seed": 5,
                "storm_seed": 7}
        assert storm_identity_probe(
            "fleet", shards=shards, **case
        ) == storm_identity_probe("fleet", shards=1, **case)

    def test_fork_subprocess_identity(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no fork start method")
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(1) as pool:
            child = pool.apply(
                storm_identity_probe,
                ("fleet",),
                {"n_instances": 3, "duration_s": 40.0, "seed": 5,
                 "storm_seed": 7},
            )
        parent = storm_identity_probe(
            "reference", n_instances=3, duration_s=40.0, seed=5, storm_seed=7
        )
        assert parent == child

    @pytest.mark.slow
    def test_spawn_subprocess_identity(self):
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            child = pool.apply(
                storm_identity_probe,
                ("fleet",),
                {"n_instances": 3, "duration_s": 40.0, "seed": 5,
                 "storm_seed": 7},
            )
        parent = storm_identity_probe(
            "reference", n_instances=3, duration_s=40.0, seed=5, storm_seed=7
        )
        assert parent == child

    def test_probe_rejects_unknown_mode(self):
        with pytest.raises(ExperimentError, match="mode"):
            storm_identity_probe("turbo")


class TestCanary:
    def test_canary_indices_one_per_zone_deterministic(self):
        picks = canary_indices(16, 4, canary_seed=1)
        assert picks == canary_indices(16, 4, canary_seed=1)
        assert len(picks) == 4
        for zid, pick in enumerate(picks):
            assert zid * 4 <= pick < (zid + 1) * 4
        assert any(
            canary_indices(16, 4, canary_seed=s) != picks for s in range(2, 8)
        )

    def test_canary_indices_ragged_last_zone(self):
        picks = canary_indices(5, 2, canary_seed=0)
        assert len(picks) == 3
        assert picks[2] == 4  # the short zone has only one candidate

    def test_detects_planted_regression(self, store):
        report = run_canary(
            n_machines=8,
            duration_s=40.0,
            seed=3,
            canary_seed=1,
            slowdown=0.08,
            threshold=1.10,
            config=FleetConfig(duration_s=40.0, workers=1, zone_size=2),
            cache=store,
        )
        assert isinstance(report, CanaryReport)
        assert len(report.verdicts) == 2
        # A 0.08-magnitude stall multiplies every latency ~1.7x, and the
        # A/B is against the same instance's healthy run, so every zone
        # must flag its canary.
        assert report.detection_rate == 1.0
        for verdict in report.verdicts:
            assert verdict.tail_ratio > report.threshold
            assert verdict.canary_tail_ms > verdict.baseline_tail_ms
            assert verdict.zone * 2 <= verdict.canary_index < (verdict.zone + 1) * 2
        assert report.result.digest != report.baseline.digest

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError, match="slowdown"):
            run_canary(slowdown=0.0)
        with pytest.raises(ConfigurationError, match="threshold"):
            run_canary(threshold=0.0)


class TestDrift:
    def test_drift_grid_slides_and_rounds(self):
        assert drift_grid(0, start=0.2, step=0.1, window=3) == (0.2, 0.3, 0.4)
        assert drift_grid(1, start=0.2, step=0.1, window=3) == (0.3, 0.4, 0.5)
        # 4-decimal rounding keeps float drift out of cache keys.
        assert drift_grid(3, start=0.1, step=0.1, window=3,
                          drift_per_epoch=0.1) == (0.4, 0.5, 0.6)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError, match="epochs"):
            run_drift(epochs=0)
        with pytest.raises(ConfigurationError, match="window"):
            run_drift(window=2)
        with pytest.raises(ConfigurationError, match="step"):
            run_drift(step=0.0)
        with pytest.raises(ConfigurationError, match="escapes"):
            run_drift(epochs=5, start=0.5, step=0.1, window=5)

    def test_incremental_reprofiling(self, store):
        report = run_drift(
            service="Redis",
            epochs=3,
            seed=0,
            start=0.2,
            step=0.1,
            window=3,
            requests_per_load=60,
            tail_samples=200,
            cache=store,
        )
        assert len(report.epochs) == 3
        first, *rest = report.epochs
        assert first.sweep_executed == 3
        assert first.sweep_cache_hits == 0
        for epoch in rest:
            # Window slides by exactly one step: one new point simulated,
            # the overlapping two served from the store.
            assert epoch.sweep_executed == 1
            assert epoch.sweep_cache_hits == 2
            assert epoch.loadlimits, "each epoch re-derives loadlimits"
        assert report.total_executed == 5
        assert report.total_cached == 4


class TestCapacity:
    def test_constant_fleet_validation(self):
        with pytest.raises(ConfigurationError, match="n_instances"):
            constant_fleet(0, 0.5)
        with pytest.raises(ConfigurationError, match="load"):
            constant_fleet(2, 0.0)
        with pytest.raises(ConfigurationError, match="load"):
            constant_fleet(2, 1.5)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError, match="base_demand"):
            run_capacity(base_demand=0.0)
        with pytest.raises(ConfigurationError, match="max_violation_rate"):
            run_capacity(max_violation_rate=1.5)
        with pytest.raises(ConfigurationError, match="max_per_instance_load"):
            run_capacity(max_per_instance_load=0.0)
        with pytest.raises(ConfigurationError, match="multipliers"):
            run_capacity(multipliers=())
        with pytest.raises(ConfigurationError, match="multipliers"):
            run_capacity(multipliers=(0.0, 1.0))

    def test_curve_is_monotone_and_meets_sla(self, store):
        report = run_capacity(
            multipliers=(1.0, 2.0),
            base_demand=3.0,
            duration_s=40.0,
            seed=0,
            config=FleetConfig(duration_s=40.0, workers=1, zone_size=2),
            cache=store,
        )
        rows = report.rows
        assert [r.multiplier for r in rows] == [1.0, 2.0]
        assert rows[0].instances <= rows[1].instances
        for row in rows:
            assert row.violation_rate <= report.max_violation_rate
            assert row.per_instance_load <= 0.85
            assert row.machines == row.instances * 2  # Redis has 2 pods
        assert report.machines_needed() == tuple(
            (r.multiplier, r.machines) for r in rows
        )

    def test_search_exhaustion_raises(self):
        with pytest.raises(ExperimentError, match="exhausted"):
            run_capacity(
                multipliers=(1.0,),
                base_demand=3.0,
                duration_s=40.0,
                search_limit=3,
                config=FleetConfig(duration_s=40.0, workers=1, zone_size=2),
            )
